"""Host-side preprocessing cost models (paper Table IV).

The preprocess-based baselines (merge-path, Sputnik, ASpT, Huang's
neighbor grouping) pay a host/device preparation pass before their kernel
can run.  The paper measures these on the authors' C++/CUDA
implementations; re-measuring a Python reimplementation's wall-clock
would report interpreter overhead rather than algorithmic cost, so we
model each pass analytically with per-operation constants calibrated to
the magnitudes of paper Table IV.  The *shape* that matters — ASpT /
Sputnik / Huang preprocessing dwarfing kernel execution, merge-path's
binary search being cheap — is determined by the algorithmic term, not
the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import HybridMatrix


@dataclass(frozen=True)
class HostCostParams:
    """Seconds-per-operation constants for host preprocessing passes."""

    #: Comparison-sort cost per element per log2(n) (std::sort-like).
    sort_per_elem_log: float = 3.0e-9
    #: Linear pass over an array, per element.
    pass_per_elem: float = 1.0e-9
    #: One binary search over the row pointer.
    binary_search: float = 12.0e-9
    #: Fixed allocation / kernel-setup overhead per preprocessing stage.
    fixed_overhead: float = 50.0e-6
    #: ASpT adaptive-tiling analysis cost per nonzero (multi-pass + hash).
    aspt_per_nnz: float = 2.2e-9
    #: ASpT per-row panel bookkeeping.
    aspt_per_row: float = 5.0e-9
    #: Neighbor-grouping cost per nonzero (scan + scatter + allocation).
    huang_per_nnz: float = 7.0e-9
    #: Neighbor-grouping per-row tile bookkeeping.
    huang_per_row: float = 20.0e-9


DEFAULT_HOST = HostCostParams()


def mergepath_preprocess_s(
    S: HybridMatrix, items_per_partition: int = 256, host: HostCostParams = DEFAULT_HOST
) -> float:
    """Merge-path: one binary search per partition over the row pointer.

    The merge list has ``NNZ + M`` items; each of the ``P`` partitions
    performs a ``log2(M)`` search, and a P-length row-index array is
    written.
    """
    m = max(1, S.shape[0])
    items = S.nnz + m
    partitions = max(1, -(-items // items_per_partition))
    searches = partitions * max(1.0, np.log2(m))
    return float(
        searches * host.binary_search
        + partitions * host.pass_per_elem
        + host.fixed_overhead
    )


def sputnik_preprocess_s(S: HybridMatrix, host: HostCostParams = DEFAULT_HOST) -> float:
    """Sputnik: sort rows by length, emit the swizzle, regather nnz data.

    Besides the O(M log M) sort, the sparse arrays are rewritten in the
    sorted row order (an O(NNZ) gather) so the kernel reads contiguous
    tiles.
    """
    m = max(2, S.shape[0])
    return float(
        m * np.log2(m) * host.sort_per_elem_log
        + (m + 2 * S.nnz) * host.pass_per_elem
        + host.fixed_overhead
    )


def aspt_preprocess_s(S: HybridMatrix, host: HostCostParams = DEFAULT_HOST) -> float:
    """ASpT: adaptive tiling — reorder columns, split dense/sparse parts."""
    return float(
        S.nnz * host.aspt_per_nnz
        + S.shape[0] * host.aspt_per_row
        + host.fixed_overhead
    )


def huang_preprocess_s(S: HybridMatrix, host: HostCostParams = DEFAULT_HOST) -> float:
    """Huang's neighbor grouping: split long rows into fixed-size tiles."""
    return float(
        S.nnz * host.huang_per_nnz
        + S.shape[0] * host.huang_per_row
        + host.fixed_overhead
    )
