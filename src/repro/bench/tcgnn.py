"""Section IV-C — comparison with the low-precision TC-GNN kernel.

The paper reports HP-SpMM at 8.28 ms vs TC-GNN at 17.40 ms for the Yelp
dataset on an RTX 3090: tensor cores waste most of their dense throughput
on the zeros inside sparse 16x16 tiles.  The shape to reproduce is
TC-GNN being ~2x slower despite the much higher peak FLOP/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EstimateRequest, default_engine
from ..gpusim import RTX_3090, DeviceSpec
from ..graphs import load_graph
from ..kernels.baselines import nonempty_tiles
from .tables import render_table


@dataclass
class TCGNNResult:
    """HP-SpMM vs TC-GNN on one graph."""

    graph: str
    k: int
    hp_ms: float
    tcgnn_ms: float
    tile_occupancy: float  #: avg nonzeros per nonempty 16x16 tile / 256

    @property
    def tcgnn_slowdown(self) -> float:
        return self.tcgnn_ms / self.hp_ms

    def render(self) -> str:
        return render_table(
            ["graph", "K", "HP-SpMM (ms)", "TC-GNN (ms)", "TC-GNN/HP", "tile occ. %"],
            [[
                self.graph,
                self.k,
                self.hp_ms,
                self.tcgnn_ms,
                self.tcgnn_slowdown,
                100.0 * self.tile_occupancy,
            ]],
            title=(
                "Section IV-C — TF32 Tensor-Core SpMM (TC-GNN) vs HP-SpMM "
                "on RTX 3090 (paper: 17.40 ms vs 8.28 ms on Yelp)"
            ),
            floatfmt=".3f",
        )


def run_tcgnn(
    *,
    graph: str = "yelp",
    k: int = 64,
    device: DeviceSpec = RTX_3090,
    max_edges: int | None = None,
) -> TCGNNResult:
    """Run the TC-GNN comparison."""
    # The matrix is loaded here (not by the engine) because the tile
    # occupancy below needs it too.
    S = load_graph(graph, max_edges=max_edges).matrix
    eng = default_engine()
    hp = eng.estimate(
        EstimateRequest(op="spmm", kernel="hp-spmm", graph=graph, k=k,
                        device=device),
        matrix=S,
    )
    tc = eng.estimate(
        EstimateRequest(op="spmm", kernel="tc-gnn", graph=graph, k=k,
                        device=device),
        matrix=S,
    )
    tiles = nonempty_tiles(S)
    occupancy = S.nnz / (tiles * 256.0) if tiles else 0.0
    return TCGNNResult(
        graph=graph,
        k=k,
        hp_ms=hp.stats.time_ms,
        tcgnn_ms=tc.stats.time_ms,
        tile_occupancy=occupancy,
    )
