"""TC-GNN baseline (Wang et al.) — TF32 Tensor-Core SpMM (paper §IV-C).

TC-GNN translates the sparse matrix with SGT (Sparse Graph Translation):
within each 16-row panel, the nonzero *columns* are condensed so tensor
cores multiply mostly-dense 16x8 fragments.  Even condensed, the kernel
is dominated by fragment staging through shared memory, per-MMA pipeline
dependencies and padding in the final partial fragment of each panel —
on GNN-sparsity inputs it cannot approach tensor-core peak.  The paper
reports HP-SpMM at 8.28 ms vs TC-GNN at 17.40 ms on Yelp (RTX 3090);
the model below reproduces that ~2x relationship through (a) padded
fragment compute, (b) operand traffic per condensed column, and (c) a
per-fragment pipeline overhead calibrated to that measurement.
"""

from __future__ import annotations

import numpy as np

from ...gpusim import (
    CostParams,
    DeviceSpec,
    LaunchConfig,
    WarpWorkload,
    simulate_launch,
)
from ...formats import HybridMatrix
from ..api import SpMMKernel, register_spmm
from ..common import estimate_hit_rate, split_by_hit_rate

#: Row-panel height and the TF32 MMA fragment's k-extent (m16 n16 k8).
TILE_M = 16
FRAG_K = 8

#: Pipeline cycles per condensed fragment: SGT shared-memory staging,
#: MMA issue dependencies and synchronization.  Calibrated to the
#: paper's single published measurement (Yelp, RTX 3090).
FRAGMENT_OVERHEAD_CYCLES = 1100.0


def nonempty_tiles(S: HybridMatrix, tile: int = TILE_M) -> int:
    """Nonempty ``tile x tile`` blocks of the raw (uncondensed) pattern."""
    if S.nnz == 0:
        return 0
    key = (S.row.astype(np.int64) // tile) * (
        (S.shape[1] + tile - 1) // tile
    ) + S.col.astype(np.int64) // tile
    return int(np.unique(key).size)


def condensed_fragments(
    S: HybridMatrix, tile_m: int = TILE_M, frag_k: int = FRAG_K
) -> tuple[np.ndarray, np.ndarray]:
    """SGT condensation: per-panel fragment counts and the access stream.

    Returns ``(frags_per_panel, unique_col_stream)``: fragment count per
    16-row panel (``ceil(unique_cols / 8)``), and the deduplicated
    (panel, column) access stream in panel-major order — the stream the
    tensor-core kernel actually issues to memory.  Condensation removes
    the *in-panel* column reuse that scalar kernels exploit through L2,
    so this stream has systematically longer reuse distances.
    """
    if S.nnz == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    panel = S.row.astype(np.int64) // tile_m
    key = panel * np.int64(S.shape[1]) + S.col.astype(np.int64)
    uniq = np.unique(key)
    panel_of = uniq // np.int64(S.shape[1])
    col_stream = (uniq % np.int64(S.shape[1])).astype(np.int64)
    cols_per_panel = np.bincount(
        (panel_of - panel_of.min()).astype(np.int64)
    )
    cols_per_panel = cols_per_panel[cols_per_panel > 0]
    return -(-cols_per_panel // frag_k), col_stream


@register_spmm
class TCGNNSpMM(SpMMKernel):
    """TC-GNN: SGT column condensation + TF32 tensor-core fragments."""

    name = "tc-gnn"

    def __init__(self, *, warps_per_block: int = 8) -> None:
        self.warps_per_block = warps_per_block

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        if device.tf32_tc_flops <= 0:
            raise ValueError(
                f"{device.name} has no TF32 tensor cores; TC-GNN needs them"
            )
        frags_per_panel, col_stream = condensed_fragments(S)
        total_frags = int(frags_per_panel.sum())
        if total_frags == 0:
            work = WarpWorkload.zeros(0)
            config = LaunchConfig(warps_per_block=self.warps_per_block)
            return simulate_launch(device, work, config, cost), 0.0

        sector = device.l2_sector_bytes
        # One warp drives one fragment chain.  Padded compute per
        # fragment: a 16x8 A-fragment against the full 16-wide n sweep of
        # K — expressed in FP32-FMA-equivalents via the TC/FP32 ratio.
        macs_per_frag = TILE_M * FRAG_K * k
        fp32_macs_per_cycle = device.fp32_lanes_per_sm * device.num_sms
        tc_macs_per_cycle = device.tf32_tc_flops / device.clock_hz / 2.0
        fma_equiv = (
            macs_per_frag / 32.0 * (fp32_macs_per_cycle / tc_macs_per_cycle)
        )

        # Operand traffic: 8 dense rows of K floats per fragment (the
        # condensed columns), split by the panel-column locality; output
        # written once per panel amortizes to ~2 sectors per fragment.
        # The MMA n-sweep reloads the B slab per 16-column chunk; register
        # pressure lets only part of the sweep stay resident, so wide K
        # pays a reload factor (this is what keeps TC-GNN ~2x behind
        # HP-SpMM at K = 64 despite tensor-core peak).
        reload_factor = 1.0 + 0.4 * max(0.0, k / 16.0 - 1.0)
        frag_bytes = FRAG_K * k * 4.0 * reload_factor
        hit = estimate_hit_rate(
            col_stream, bytes_per_item=k * 4.0, device=device, seed=3
        )
        frag_sectors = frag_bytes / sector
        l2_s, dram_s = split_by_hit_rate(
            np.full(total_frags, frag_sectors), hit
        )
        meta_sectors = S.nnz * 8.0 / sector / total_frags  # SGT metadata

        issue = np.full(
            total_frags,
            FRAGMENT_OVERHEAD_CYCLES / cost.cycles_per_instruction
            + (k / 16.0) * 4.0,
        )
        work = WarpWorkload(
            issue=issue,
            l2_sectors=l2_s,
            dram_sectors=dram_s + meta_sectors + 2.0,
            fma=np.full(total_frags, fma_equiv),
        )
        config = LaunchConfig(
            warps_per_block=self.warps_per_block,
            registers_per_thread=64,
            shared_mem_per_block=16 * 1024,
        )
        return simulate_launch(device, work, config, cost), 0.0
