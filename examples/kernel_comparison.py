"""Kernel leaderboard: every SpMM implementation on one dataset.

Usage::

    python examples/kernel_comparison.py [graph-name] [K]

Reproduces the per-graph view behind paper Fig. 9: all SpMM kernels on
the chosen graph, simulated on both evaluation platforms (V100 / A30),
with preprocessing cost and the dominant bottleneck of each.
"""

import sys

from repro.bench import render_table
from repro.gpusim import TESLA_A30, TESLA_V100
from repro.graphs import load_graph
from repro.kernels import SPMM_REGISTRY, make_spmm

KERNELS = [n for n in sorted(SPMM_REGISTRY) if n != "tc-gnn"]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "arxiv"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    S = load_graph(name).matrix
    flops = 2.0 * S.nnz * k

    results = {
        kname: {
            device.name: make_spmm(kname).estimate(S, k, device)
            for device in (TESLA_V100, TESLA_A30)
        }
        for kname in KERNELS
    }
    hp_v100 = results["hp-spmm"]["Tesla V100"].stats.time_s

    rows = []
    for kname, per_device in results.items():
        v100 = per_device["Tesla V100"]
        a30 = per_device["Tesla A30"]
        rows.append([
            kname,
            v100.stats.time_us,
            v100.stats.throughput_gflops(flops),
            v100.stats.bound,
            a30.stats.time_us,
            a30.stats.bound,
            v100.stats.time_s / hp_v100,
            v100.preprocessing_s * 1e3,
        ])
    rows.sort(key=lambda r: r[1])

    print(render_table(
        ["kernel", "V100 (us)", "V100 GF/s", "V100 bound",
         "A30 (us)", "A30 bound", "vs HP (x)", "pre (ms)"],
        rows,
        title=f"SpMM kernels on {name} (K={k}, nnz={S.nnz})",
    ))


if __name__ == "__main__":
    main()
