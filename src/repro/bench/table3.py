"""Table III — average speedups and win percentages on both platforms.

Aggregates the Fig. 9 (full-graph) and Fig. 10 (graph-sampling) sweeps
over Tesla V100 and Tesla A30 into the paper's summary table.  The
``paper`` column carries the published values for side-by-side
comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import TESLA_A30, TESLA_V100
from .fig9 import run_fig9
from .fig10 import run_fig10
from .runner import SDDMM_BASELINES, SPMM_BASELINES
from .tables import render_table

#: Published Table III values: {(device, dataset, baseline): (avg, win%)}.
PAPER_TABLE3 = {
    ("v100", "full", "cusparse-csr-alg2"): (1.90, None),
    ("v100", "samp", "cusparse-csr-alg2"): (2.06, 100.0),
    ("v100", "full", "cusparse-csr-alg3"): (2.75, None),
    ("v100", "samp", "cusparse-csr-alg3"): (3.33, 98.0),
    ("v100", "full", "cusparse-coo-alg4"): (1.82, None),
    ("v100", "samp", "cusparse-coo-alg4"): (1.68, 100.0),
    ("v100", "full", "ge-spmm"): (6.50, None),
    ("v100", "samp", "ge-spmm"): (8.71, 97.38),
    ("v100", "full", "row-split"): (10.85, None),
    ("v100", "samp", "row-split"): (10.09, 100.0),
    ("v100", "full", "dgl-sddmm"): (1.81, None),
    ("v100", "samp", "dgl-sddmm"): (1.31, 88.66),
    ("v100", "full", "cusparse-csr-sddmm"): (10.90, None),
    ("v100", "samp", "cusparse-csr-sddmm"): (7.87, 100.0),
    ("a30", "full", "cusparse-csr-alg2"): (2.53, None),
    ("a30", "samp", "cusparse-csr-alg2"): (2.05, 100.0),
    ("a30", "full", "cusparse-csr-alg3"): (3.52, None),
    ("a30", "samp", "cusparse-csr-alg3"): (3.40, 100.0),
    ("a30", "full", "cusparse-coo-alg4"): (2.29, None),
    ("a30", "samp", "cusparse-coo-alg4"): (1.65, 100.0),
    ("a30", "full", "ge-spmm"): (8.45, None),
    ("a30", "samp", "ge-spmm"): (8.61, 98.93),
    ("a30", "full", "row-split"): (13.33, None),
    ("a30", "samp", "row-split"): (8.75, 100.0),
    ("a30", "full", "dgl-sddmm"): (2.08, None),
    ("a30", "samp", "dgl-sddmm"): (1.54, 99.17),
    ("a30", "full", "cusparse-csr-sddmm"): (11.17, None),
    ("a30", "samp", "cusparse-csr-sddmm"): (10.49, 100.0),
}


@dataclass
class Table3Result:
    """Measured vs paper Table III."""

    rows: list[list]

    def render(self) -> str:
        return render_table(
            [
                "device",
                "dataset",
                "baseline",
                "avg speedup",
                "paper",
                "win %",
                "paper win %",
            ],
            self.rows,
            title="Table III — average speedup of HP kernels over baselines",
        )

    def measured(self, device: str, dataset: str, baseline: str) -> float:
        for row in self.rows:
            if row[0] == device and row[1] == dataset and row[2] == baseline:
                return row[3]
        raise KeyError((device, dataset, baseline))


def run_table3(
    *,
    k: int = 64,
    max_edges: int | None = None,
    num_subgraphs: int | None = None,
    devices: tuple[str, ...] = ("v100", "a30"),
) -> Table3Result:
    """Run the Table III aggregation (the heaviest experiment)."""
    device_map = {"v100": TESLA_V100, "a30": TESLA_A30}
    rows: list[list] = []
    for dev_name in devices:
        device = device_map[dev_name]
        fig9 = run_fig9(k=k, device=device, max_edges=max_edges)
        fig10 = run_fig10(
            k=k,
            device=device,
            max_edges=max_edges,
            num_subgraphs=num_subgraphs,
        )
        for dataset, sweep_pair in (("full", fig9), ("samp", fig10)):
            for baseline in SPMM_BASELINES:
                avg, pct = sweep_pair.spmm.summary_vs("hp-spmm", baseline)
                paper = PAPER_TABLE3.get((dev_name, dataset, baseline), (None, None))
                rows.append(
                    [dev_name, dataset, baseline, avg, paper[0] or "-", pct, paper[1] or "-"]
                )
            for baseline in SDDMM_BASELINES:
                avg, pct = sweep_pair.sddmm.summary_vs("hp-sddmm", baseline)
                paper = PAPER_TABLE3.get((dev_name, dataset, baseline), (None, None))
                rows.append(
                    [dev_name, dataset, baseline, avg, paper[0] or "-", pct, paper[1] or "-"]
                )
    return Table3Result(rows=rows)
