"""Unit tests for the device model (occupancy Eqs. 3-4)."""

import pytest

from repro.gpusim import (
    DEVICES,
    RTX_3090,
    TESLA_A30,
    TESLA_V100,
    WARP_SIZE,
    get_device,
)


def test_presets_registered():
    assert set(DEVICES) == {"v100", "a30", "rtx3090"}
    assert get_device("Tesla V100") is TESLA_V100
    assert get_device("A30") is TESLA_A30
    assert get_device("rtx3090") is RTX_3090


def test_get_device_unknown():
    with pytest.raises(KeyError):
        get_device("h100")


def test_warp_size():
    assert WARP_SIZE == 32


def test_v100_shape():
    assert TESLA_V100.num_sms == 80
    assert TESLA_V100.compute_capability == (7, 0)
    assert TESLA_V100.l2_cache_bytes == 6 * 1024 * 1024
    assert TESLA_A30.compute_capability == (8, 0)


def test_active_blocks_warp_limited():
    # Eq. 3: 64 warps/SM limit: with 8 warps/block and tiny resources,
    # at most 8 blocks fit.
    assert TESLA_V100.active_blocks_per_sm(8, 0, 0) == 8


def test_active_blocks_register_limited():
    # 64 regs/thread * 256 threads = 16384 regs/block -> 4 blocks/SM.
    assert TESLA_V100.active_blocks_per_sm(8, 64, 0) == 4


def test_active_blocks_smem_limited():
    # 48 KB/block on a 96 KB SM -> 2 blocks.
    assert TESLA_V100.active_blocks_per_sm(2, 16, 48 * 1024) == 2


def test_active_blocks_hard_cap():
    # 1 warp/block would allow 64 by warps; hardware caps at 32.
    assert TESLA_V100.active_blocks_per_sm(1, 0, 0) == 32


def test_active_blocks_zero_when_unfittable():
    assert TESLA_V100.active_blocks_per_sm(8, 16, 10**9) == 0


def test_active_blocks_rejects_bad_warps():
    with pytest.raises(ValueError):
        TESLA_V100.active_blocks_per_sm(0, 16, 0)


def test_full_wave_size_eq4():
    # Eq. 4: FullWaveSize = NumSM * ActiveBlocksPerSM.
    blocks = TESLA_V100.active_blocks_per_sm(8, 32, 4096)
    assert TESLA_V100.full_wave_size(8, 32, 4096) == 80 * blocks


def test_fma_throughput():
    assert TESLA_V100.fma_throughput_per_sm == 2.0  # 64 lanes / 32
    assert RTX_3090.fma_throughput_per_sm == 4.0


def test_peak_flops_v100_about_14tf():
    assert 13e12 < TESLA_V100.peak_fp32_flops < 15e12


def test_with_override():
    d = TESLA_V100.with_(num_sms=40)
    assert d.num_sms == 40
    assert TESLA_V100.num_sms == 80  # original untouched


def test_tensor_cores_only_on_ampere():
    assert TESLA_V100.tf32_tc_flops == 0.0
    assert TESLA_A30.tf32_tc_flops > 0
    assert RTX_3090.tf32_tc_flops > 0
