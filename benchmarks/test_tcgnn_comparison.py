"""Section IV-C — HP-SpMM vs TC-GNN (TF32 tensor cores, RTX 3090)."""

from repro.bench import run_tcgnn, write_report

from conftest import bench_max_edges


def test_tcgnn_comparison(run_once):
    res = run_once(run_tcgnn, graph="yelp", k=64, max_edges=bench_max_edges())
    report = res.render()
    print("\n" + report)
    write_report("tcgnn", report)

    # Paper: 17.40 ms vs 8.28 ms => TC-GNN ~2.1x slower.  The shape to
    # hold: TC-GNN loses despite tensor cores, by a factor in the same
    # ballpark.
    assert 1.2 < res.tcgnn_slowdown < 4.0
    # GNN-sparsity tiles are almost empty, which is why.
    assert res.tile_occupancy < 0.25
