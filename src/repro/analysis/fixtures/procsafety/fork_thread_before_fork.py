"""Adversarial fixture: ``procsafety/thread-before-fork``.

A thread is started and *then* fork-context workers are spawned from the
same function — the children inherit whatever locks the thread holds at
fork time, frozen forever.  Never imported; analyzed statically by the
CI negative-control loop.
"""

import multiprocessing
import threading


def serve_forever(handler):
    pump = threading.Thread(target=handler, daemon=True)
    pump.start()
    ctx = multiprocessing.get_context("fork")
    worker = ctx.Process(target=handler, daemon=True)
    worker.start()
    return pump, worker
