"""Golden-reference SpMM / SDDMM numerics (Algorithms 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, HybridMatrix
from repro.kernels import reference
from repro.kernels.reference import (
    sddmm_flops,
    sddmm_reference,
    spmm_flops,
    spmm_reference,
)

from tests.conftest import random_hybrid


def test_spmm_matches_scipy(medium_matrix, features):
    A = features(medium_matrix.shape[1], 64, seed=1)
    out = spmm_reference(medium_matrix, A)
    expected = medium_matrix.to_scipy() @ A
    np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-5)


def test_spmm_handles_empty_rows():
    S = HybridMatrix.from_arrays([1, 1], [0, 2], [2.0, 3.0], shape=(3, 3))
    A = np.eye(3, dtype=np.float32)
    out = spmm_reference(S, A)
    np.testing.assert_allclose(out[0], 0.0)
    np.testing.assert_allclose(out[2], 0.0)
    np.testing.assert_allclose(out[1], [2.0, 0.0, 3.0])


def test_spmm_empty_matrix():
    S = HybridMatrix.from_arrays([], [], shape=(4, 4))
    A = np.ones((4, 8), dtype=np.float32)
    assert spmm_reference(S, A).shape == (4, 8)
    np.testing.assert_allclose(spmm_reference(S, A), 0.0)


def test_spmm_k_zero():
    S = HybridMatrix.from_arrays([0], [0], [1.0], shape=(2, 2))
    A = np.zeros((2, 0), dtype=np.float32)
    assert spmm_reference(S, A).shape == (2, 0)


def test_spmm_chunked_matches_unchunked(monkeypatch, features):
    S = random_hybrid(500, 500, 8000, seed=9)
    A = features(500, 32, seed=2)
    full = spmm_reference(S, A)
    monkeypatch.setattr(reference, "CHUNK_ELEMS", 1024)
    chunked = spmm_reference(S, A)
    np.testing.assert_allclose(chunked, full, rtol=1e-5, atol=1e-5)


def test_spmm_single_giant_row(features):
    # One row larger than a chunk must still be reduced correctly.
    n = 3000
    S = HybridMatrix.from_arrays(
        np.zeros(n, dtype=np.int64), np.arange(n), None, shape=(2, n)
    )
    A = features(n, 8, seed=3)
    out = spmm_reference(S, A)
    np.testing.assert_allclose(out[0], A.sum(axis=0), rtol=1e-3, atol=1e-3)


def test_sddmm_matches_dense(medium_matrix, features):
    k = 32
    A1 = features(medium_matrix.shape[0], k, seed=4)
    A2T = features(medium_matrix.shape[1], k, seed=5)
    vals = sddmm_reference(medium_matrix, A1, A2T)
    dense = A1 @ A2T.T
    expected = dense[medium_matrix.row, medium_matrix.col] * medium_matrix.val
    np.testing.assert_allclose(vals, expected, rtol=1e-4, atol=1e-4)


def test_sddmm_empty():
    S = HybridMatrix.from_arrays([], [], shape=(3, 3))
    out = sddmm_reference(
        S, np.ones((3, 4), np.float32), np.ones((3, 4), np.float32)
    )
    assert out.size == 0


def test_sddmm_scales_by_sparse_value():
    S = HybridMatrix.from_arrays([0], [0], [2.5], shape=(1, 1))
    A1 = np.full((1, 4), 2.0, np.float32)
    A2T = np.full((1, 4), 3.0, np.float32)
    np.testing.assert_allclose(sddmm_reference(S, A1, A2T), [2.5 * 24.0])


def test_flop_counts():
    S = HybridMatrix.from_arrays([0, 1], [1, 0], None, shape=(2, 2))
    assert spmm_flops(S, 16) == 2 * 2 * 16
    assert sddmm_flops(S, 16) == 2 * 2 * 16 + 2


@given(
    st.integers(1, 12),
    st.integers(1, 12),
    st.integers(1, 8),
    st.integers(0, 30),
    st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_spmm_property_vs_dense(m, n, k, nnz, seed):
    r = np.random.default_rng(seed)
    rows = r.integers(0, m, size=nnz)
    cols = r.integers(0, n, size=nnz)
    vals = r.standard_normal(nnz).astype(np.float32)
    S = HybridMatrix.from_coo(
        COOMatrix.from_arrays(rows, cols, vals, shape=(m, n))
    )
    A = r.standard_normal((n, k)).astype(np.float32)
    out = spmm_reference(S, A)
    np.testing.assert_allclose(
        out, S.to_dense() @ A, rtol=1e-3, atol=1e-3
    )
