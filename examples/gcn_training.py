"""End-to-end GCN training with and without HP-SpMM (paper Table V).

Usage::

    python examples/gcn_training.py [graph-name] [hidden] [layers]

Trains the same GCN twice on a calibrated dataset — once with the
framework's stock sparse kernel (cuSPARSE CSR ALG2) and once with
HP-SpMM — and reports the loss curve (identical: the kernels are
numerically equivalent) plus the simulated GPU time breakdown.
"""

import sys

from repro.bench import render_table
from repro.gnn import SyntheticTask, train_full_graph
from repro.graphs import load_graph


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "arxiv"
    hidden = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    layers = int(sys.argv[3]) if len(sys.argv) > 3 else 4

    ds = load_graph(name, max_edges=400_000)
    task = SyntheticTask.for_graph(ds.matrix, seed=0)
    print(f"training {layers}-layer GCN (hidden={hidden}) on {ds.name}: "
          f"{ds.num_nodes} nodes, {ds.num_edges} edges, "
          f"{task.num_classes} classes\n")

    reports = {}
    for label, kernel in (
        ("cuSPARSE (w/o HP-SpMM)", "cusparse-csr-alg2"),
        ("HP-SpMM  (w/  HP-SpMM)", "hp-spmm"),
    ):
        reports[label] = train_full_graph(
            ds.matrix, task, hidden=hidden, num_layers=layers, epochs=8,
            spmm_kernel=kernel, seed=1,
        )

    rows = []
    for label, rep in reports.items():
        t = rep.timing
        rows.append([
            label,
            rep.losses[0],
            rep.final_loss,
            t["total_s"] * 1e3,
            t["sparse_s"] * 1e3,
            t["dense_s"] * 1e3,
            t["num_sparse_ops"],
        ])
    print(render_table(
        ["configuration", "loss[0]", "loss[-1]", "GPU total (ms)",
         "sparse (ms)", "dense (ms)", "#SpMM"],
        rows,
        title="Full-graph GCN training (simulated Tesla V100 time)",
        floatfmt=".3f",
    ))
    base, ours = reports.values()
    print(f"\nend-to-end speedup: "
          f"{base.simulated_gpu_s / ours.simulated_gpu_s:.2f}x "
          f"(paper Table V: up to 1.68x at hidden 32)")


if __name__ == "__main__":
    main()
