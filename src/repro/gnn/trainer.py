"""End-to-end GNN training loops with simulated GPU timing.

Reproduces the paper's Table V experiment structure: a model is trained
for a number of epochs/iterations in full-graph or graph-sampling mode;
*numerics are real* (loss genuinely decreases under Adam) while the
reported GPU time is the deterministic sum of kernel-model times — the
quantity the paper measures with Nsight Systems ("total CUDA computation
time").  Swapping ``spmm_kernel`` between the framework default and
``hp-spmm`` yields the w/o vs w/ comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs.samplers import saint_node_sampler
from .autograd import Tensor
from .models import GCN
from .optim import Adam
from .sparse_ops import GraphOperand
from .timing import TimingContext


@dataclass(frozen=True)
class SyntheticTask:
    """Node features, labels and splits for a graph, all deterministic.

    Labels come from a random teacher GCN smoothed over the graph, so a
    student GCN can genuinely learn them (loss decreases) — the paper's
    models train on real labels; what matters here is that training is a
    real optimization, not a mock.  Train/validation masks follow the
    usual transductive convention.
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    train_mask: np.ndarray
    val_mask: np.ndarray

    @classmethod
    def for_graph(
        cls,
        S: HybridMatrix,
        *,
        in_features: int = 64,
        num_classes: int = 16,
        train_fraction: float = 0.6,
        seed: int = 0,
    ) -> "SyntheticTask":
        if not 0.0 < train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n = S.shape[0]
        x = rng.standard_normal((n, in_features)).astype(np.float32)
        teacher = rng.standard_normal((in_features, num_classes)).astype(
            np.float32
        )
        logits = x @ teacher
        # One propagation step couples labels to graph structure.
        csr = S.to_scipy()
        deg = np.asarray(csr.sum(axis=1)).ravel()
        smoothed = csr @ logits / np.maximum(deg, 1.0)[:, None]
        labels = np.argmax(logits + smoothed, axis=1).astype(np.int64)
        train_mask = rng.random(n) < train_fraction
        if not train_mask.any():
            train_mask[0] = True
        val_mask = ~train_mask
        return cls(
            features=x,
            labels=labels,
            num_classes=num_classes,
            train_mask=train_mask,
            val_mask=val_mask,
        )


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    """Classification accuracy over the masked nodes (0 when mask empty)."""
    if not mask.any():
        return 0.0
    pred = np.argmax(logits[mask], axis=1)
    return float(np.mean(pred == labels[mask]))


@dataclass
class TrainReport:
    """Result of one training run."""

    losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    timing: dict = field(default_factory=dict)
    epochs: int = 0
    mode: str = ""

    @property
    def simulated_gpu_s(self) -> float:
        return self.timing.get("total_s", 0.0)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")


def train_full_graph(
    S: HybridMatrix,
    task: SyntheticTask,
    *,
    hidden: int = 32,
    num_layers: int = 4,
    epochs: int = 10,
    lr: float = 0.01,
    device: DeviceSpec = TESLA_V100,
    spmm_kernel: str = "hp-spmm",
    seed: int = 0,
) -> TrainReport:
    """Full-graph (full-batch) GCN training (paper's GCN rows of Table V)."""
    graph = GraphOperand.gcn_normalized(S)
    model = GCN(
        task.features.shape[1],
        hidden,
        task.num_classes,
        num_layers,
        seed=seed,
    )
    opt = Adam(model.parameters(), lr=lr)
    timing = TimingContext(device=device, spmm_kernel=spmm_kernel)
    # Input features are constants: like the real frameworks, no gradient
    # flows into them (the layer-1 backward SpMM is skipped).
    x = Tensor(task.features, requires_grad=False)

    report = TrainReport(mode="full-graph", epochs=epochs)
    train_w = task.train_mask.astype(np.float32)
    for _ in range(epochs):
        model.zero_grad()
        loss = model.loss(graph, x, task.labels, timing, weights=train_w)
        loss.backward()
        opt.step()
        report.losses.append(float(loss.data))
        # Validation accuracy: an eval-mode forward pass, not timed (the
        # paper's Table V measures training compute).
        model.eval()
        logits = model(graph, x).data
        model.train()
        report.val_accuracies.append(
            accuracy(logits, task.labels, task.val_mask)
        )
    report.timing = timing.summary()
    return report


def train_graph_sampling(
    S: HybridMatrix,
    task: SyntheticTask,
    *,
    hidden: int = 32,
    num_layers: int = 4,
    iterations: int = 10,
    node_budget: int = 4000,
    lr: float = 0.01,
    device: DeviceSpec = TESLA_V100,
    spmm_kernel: str = "hp-spmm",
    seed: int = 0,
) -> TrainReport:
    """Graph-sampling (GraphSAINT-style) training on sampled subgraphs.

    Every iteration samples a fresh subgraph (the *dynamic* regime that
    rules out preprocess-based kernels) and takes one optimizer step on
    it.  Kernel-model timing is evaluated per subgraph — each iteration's
    sparse matrices are different, exactly as in the paper.
    """
    model = GCN(
        task.features.shape[1],
        hidden,
        task.num_classes,
        num_layers,
        seed=seed,
    )
    opt = Adam(model.parameters(), lr=lr)
    timing = TimingContext(device=device, spmm_kernel=spmm_kernel)

    report = TrainReport(mode="graph-sampling", epochs=iterations)
    for it in range(iterations):
        sub = saint_node_sampler(S, node_budget, seed=seed + it)
        if sub.num_edges == 0:
            continue
        graph = GraphOperand.gcn_normalized(sub.matrix)
        x = Tensor(task.features[sub.node_map], requires_grad=False)
        labels = task.labels[sub.node_map]
        model.zero_grad()
        loss = model.loss(graph, x, labels, timing)
        loss.backward()
        opt.step()
        report.losses.append(float(loss.data))
    report.timing = timing.summary()
    return report
