"""CLI: render, check, or update the generated README env-var table.

Usage::

    python -m repro.config                   # print the markdown table
    python -m repro.config --check README.md # exit 1 when out of sync
    python -m repro.config --update README.md

Exit codes follow the analysis-gate convention: 0 = in sync (or
printed), 1 = drift detected by ``--check``, 2 = configuration error
(missing file or markers).
"""

from __future__ import annotations

import argparse
import sys

from .registry import (
    readme_block_in_sync,
    render_markdown_table,
    update_readme,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.config",
        description="REPRO_* env-var registry: render/check the README table.",
    )
    parser.add_argument(
        "--check", metavar="README",
        help="verify README's generated table matches the registry",
    )
    parser.add_argument(
        "--update", metavar="README",
        help="rewrite README's generated table in place",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            with open(args.check, encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            print(f"error: cannot read {args.check!r}: {exc}", file=sys.stderr)
            return 2
        if readme_block_in_sync(text):
            print(f"{args.check}: env-var table is in sync")
            return 0
        print(
            f"{args.check}: env-var table is stale; run "
            f"`python -m repro.config --update {args.check}`",
            file=sys.stderr,
        )
        return 1

    if args.update:
        try:
            with open(args.update, encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            print(f"error: cannot read {args.update!r}: {exc}", file=sys.stderr)
            return 2
        try:
            fresh = update_readme(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if fresh != text:
            with open(args.update, "w", encoding="utf-8") as f:
                f.write(fresh)
            print(f"{args.update}: env-var table updated")
        else:
            print(f"{args.update}: env-var table already in sync")
        return 0

    print(render_markdown_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
