"""Synthetic serve workloads: generation, the three drive modes, CLI."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.obs import METRICS, reset_histograms
from repro.perf import get_estimate_cache
from repro.serve import WORKLOADS, WorkloadSpec, generate_requests, run_workload

pytestmark = pytest.mark.serve


@pytest.fixture(autouse=True)
def fresh_serving_state(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    METRICS.reset()
    reset_histograms()
    get_estimate_cache().clear()
    yield
    METRICS.reset()
    reset_histograms()


# ----------------------------------------------------------------------
# Stream generation
# ----------------------------------------------------------------------

def test_generate_requests_is_a_pure_function_of_the_spec():
    spec = WORKLOADS["smoke"]
    a, b = generate_requests(spec), generate_requests(spec)
    assert a == b
    assert len(a) == spec.num_requests
    forced = [r for r in a if r.deadline_s == 0.0]
    assert len(forced) == spec.num_requests // spec.forced_deadline_every
    assert {r.graph for r in a} <= set(spec.graphs)
    assert {r.max_edges for r in a} == {spec.max_edges}


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", mode="surprise")
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", num_requests=0)
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", result_timeout_s=0.0)


def test_soak_preset_is_open_loop_at_ten_times_smoke_rate():
    smoke, soak = WORKLOADS["smoke"], WORKLOADS["soak"]
    assert soak.mode == "open"
    assert soak.arrival_rate_hz == pytest.approx(10 * smoke.arrival_rate_hz)
    assert soak.num_requests > smoke.num_requests
    assert soak.deadline_s > 0
    assert soak.forced_deadline_every == 0  # no artificial degrades


# ----------------------------------------------------------------------
# Replay mode — the CI-gated deterministic smoke
# ----------------------------------------------------------------------

def answer_key(report):
    """The deterministic core of a report (no latencies, no batch ids)."""
    return [
        (a["op"], a["kernel"], a["graph"], a["k"], a["status"],
         a["time_s"], a["bound"])
        for a in report["responses"]
    ]


def test_smoke_replay_is_deterministic_and_coalesces():
    spec = WORKLOADS["smoke"]
    report = run_workload(spec)
    summary = report["summary"]
    assert report["schema"] == "repro.serve.report/v1"
    assert summary["requests"] == spec.num_requests
    assert summary["by_status"]["degraded"] == (
        spec.num_requests // spec.forced_deadline_every
    )
    assert summary["by_status"]["error"] == 0
    assert summary["by_status"]["timeout"] == 0
    assert summary["coalesced"] > 0
    assert summary["batch_size_max"] == spec.max_batch
    assert report["latency_s"]["count"] == spec.num_requests
    assert report["latency_s"]["p99"] > 0
    assert all(
        a["time_s"] > 0 for a in report["responses"]
        if a["status"] in ("ok", "degraded")
    )
    # The estimates themselves are pure functions: a second replay of the
    # same spec answers identically (only latencies/batch ids may move).
    rerun = run_workload(spec)
    assert answer_key(rerun) == answer_key(report)


def test_closed_loop_answers_every_request_in_stream_order():
    spec = dataclasses.replace(
        WORKLOADS["closed-loop"], num_requests=8, clients=2,
        batch_window_s=0.001,
    )
    report = run_workload(spec)
    assert report["summary"]["requests"] == 8
    assert report["summary"]["by_status"]["error"] == 0
    expected = generate_requests(spec)
    got = report["responses"]
    assert [(a["op"], a["kernel"], a["graph"], a["k"]) for a in got] == [
        (r.op, r.kernel, r.graph, r.k) for r in expected
    ]


def test_open_loop_answers_every_request():
    spec = dataclasses.replace(
        WORKLOADS["open-loop"], num_requests=6, arrival_rate_hz=5000.0,
        batch_window_s=0.001,
    )
    report = run_workload(spec)
    assert report["summary"]["requests"] == 6
    assert report["summary"]["by_status"]["error"] == 0


def test_driver_times_out_instead_of_hanging_on_a_dead_server(monkeypatch):
    """A server whose worker never starts must fail the drive within the
    spec's result_timeout_s, not block ``result()`` forever."""
    from repro.serve.server import EstimationServer

    monkeypatch.setattr(EstimationServer, "start", lambda self: None)
    spec = dataclasses.replace(
        WORKLOADS["smoke"], num_requests=4, result_timeout_s=0.2
    )
    with pytest.raises(TimeoutError):
        run_workload(spec)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _run_cli(args, **env_overrides):
    env = dict(os.environ, PYTHONPATH="src", **env_overrides)
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *args],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


def test_cli_list_and_unknown_workload_exit_codes():
    listed = _run_cli(["--list"])
    assert listed.returncode == 0
    assert "smoke" in listed.stdout
    unknown = _run_cli(["--workload", "no-such"])
    assert unknown.returncode == 2
    assert "unknown workload" in unknown.stderr


def test_cli_smoke_writes_report_and_manifest(tmp_path):
    proc = _run_cli(
        ["--workload", "smoke", "--requests", "12"],
        REPRO_RESULTS_DIR=str(tmp_path),
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads((tmp_path / "serve_smoke.json").read_text())
    assert report["summary"]["requests"] == 12
    assert report["workload"]["num_requests"] == 12
    manifest = json.loads(
        (tmp_path / "serve_smoke.manifest.json").read_text()
    )
    metrics = manifest["metrics"]
    assert metrics["serve.requests"] == 12
    assert metrics["serve.request_latency.count"] == 12
    for stat in ("p50", "p95", "p99"):
        assert metrics[f"serve.request_latency.{stat}"] > 0
