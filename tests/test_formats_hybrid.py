"""Unit tests for the hybrid CSR/COO format (paper Fig. 2(d))."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix, HybridMatrix, SparseFormatError


def test_rejects_unsorted_rows():
    with pytest.raises(SparseFormatError):
        HybridMatrix.from_arrays([1, 0], [0, 0])


def test_from_coo_sorts():
    coo = COOMatrix.from_arrays([2, 0, 1], [0, 1, 2], [1.0, 2.0, 3.0])
    h = HybridMatrix.from_coo(coo)
    assert list(h.row) == [0, 1, 2]
    np.testing.assert_allclose(h.to_dense(), coo.to_dense())


def test_from_csr_matches_fig2d(paper_fig2_matrix):
    # The paper's example decodes to row indices 0 0 1 2 2 2 3.
    h = paper_fig2_matrix
    np.testing.assert_array_equal(h.row, [0, 0, 1, 2, 2, 2, 3])
    np.testing.assert_array_equal(h.col, [0, 2, 2, 0, 1, 3, 2])


def test_memory_elements_matches_paper_formula(paper_fig2_matrix):
    # Paper Section II: hybrid CSR/COO needs 3 * NNZ elements.
    assert paper_fig2_matrix.memory_elements() == 3 * 7


def test_round_trips_between_formats(medium_matrix):
    h = medium_matrix
    via_csr = HybridMatrix.from_csr(h.to_csr())
    via_coo = HybridMatrix.from_coo(h.to_coo())
    np.testing.assert_array_equal(via_csr.row, h.row)
    np.testing.assert_array_equal(via_coo.col, h.col)
    np.testing.assert_allclose(via_csr.to_dense(), h.to_dense())


def test_indptr_is_inverse_of_decode(medium_matrix):
    h = medium_matrix
    ptr = h.indptr()
    assert ptr[0] == 0
    assert ptr[-1] == h.nnz
    rebuilt = np.repeat(np.arange(h.shape[0]), np.diff(ptr))
    np.testing.assert_array_equal(rebuilt, h.row)


def test_permute_rows_identity(small_matrix):
    n = small_matrix.shape[0]
    p = np.arange(n)
    out = small_matrix.permute_rows(p)
    np.testing.assert_allclose(out.to_dense(), small_matrix.to_dense())


def test_permute_rows_semantics():
    h = HybridMatrix.from_arrays([0, 1], [0, 1], [1.0, 2.0], shape=(2, 2))
    # New row 0 is old row 1.
    out = h.permute_rows(np.array([1, 0]))
    dense = out.to_dense()
    assert dense[0, 1] == 2.0
    assert dense[1, 0] == 1.0


def test_permute_symmetric_preserves_structure(small_matrix):
    n = small_matrix.shape[0]
    rng = np.random.default_rng(0)
    perm = rng.permutation(n)
    out = small_matrix.permute_symmetric(perm)
    # Permuting rows and columns by the same p: D_out = D[p][:, p].
    expected = small_matrix.to_dense()[np.ix_(perm, perm)]
    np.testing.assert_allclose(out.to_dense(), expected)
    # Invariants preserved.
    assert out.nnz == small_matrix.nnz
    assert np.all(np.diff(out.row) >= 0)


def test_permute_symmetric_requires_square():
    h = HybridMatrix.from_arrays([0], [1], None, shape=(2, 3))
    with pytest.raises(SparseFormatError):
        h.permute_symmetric(np.array([0, 1]))


def test_permute_rejects_bad_length(small_matrix):
    with pytest.raises(SparseFormatError):
        small_matrix.permute_rows(np.arange(3))


def test_row_degrees_match_csr(medium_matrix):
    np.testing.assert_array_equal(
        medium_matrix.row_degrees(), medium_matrix.to_csr().row_degrees()
    )


def test_empty_hybrid():
    h = HybridMatrix.from_arrays([], [], shape=(3, 3))
    assert h.nnz == 0
    assert h.indptr().tolist() == [0, 0, 0, 0]
    out = h.permute_symmetric(np.array([2, 1, 0]))
    assert out.nnz == 0
