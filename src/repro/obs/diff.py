"""Perf-regression comparator for JSON bench reports.

``python -m repro.obs diff OLD.json NEW.json --threshold 0.10`` compares
two machine-readable reports — the wall-clock harness output
(``BENCH_harness.json``), a run manifest, or any JSON document with
numeric leaves — and exits nonzero when a **timing** value regressed
past the threshold.  This is what finally gives ``BENCH_harness.json`` a
trajectory: the verify recipe diffs a fresh harness run against the
committed baseline, so a PR that slows a pipeline down >15 % goes red
instead of silently re-baselining.

Rules:

* a leaf is *gated* when its final key names a timing
  (``seconds``, ``*_seconds``, ``time_s``, ``total_s``, ``time_us``,
  ``wall_s``);
* a gated leaf regresses when ``new > old * (1 + threshold)`` (an old
  value of 0 is never a regression baseline — reported as info only);
* non-timing numeric leaves (cache hits, counters) are reported as
  informational changes and never affect the exit code;
* keys present in only one report are reported but not gated.

Exit codes: 0 = within threshold, 1 = regression, 2 = malformed input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Final key names (or suffixes) that mark a leaf as wall-clock timing.
_TIMING_KEYS = ("seconds", "time_s", "total_s", "time_us", "wall_s")
_TIMING_SUFFIX = "_seconds"


class ReportError(ValueError):
    """A report file is missing, unreadable, or not a JSON object."""


def load_report(path: str) -> dict:
    """Load one JSON report, normalizing failures to :class:`ReportError`."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as exc:
        raise ReportError(f"cannot read report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReportError(f"malformed JSON in {path!r}: {exc}") from exc
    if not isinstance(doc, dict):
        raise ReportError(
            f"report {path!r} must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    return doc


def _numeric_leaves(doc, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts/lists to ``dotted.path -> float`` leaves."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        items = doc.items()
    elif isinstance(doc, list):
        items = ((str(i), v) for i, v in enumerate(doc))
    else:
        return out
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, (dict, list)):
            out.update(_numeric_leaves(value, path))
    return out


def is_timing_key(path: str) -> bool:
    last = path.rsplit(".", 1)[-1]
    return last in _TIMING_KEYS or last.endswith(_TIMING_SUFFIX)


@dataclass(frozen=True)
class DiffEntry:
    """One compared numeric leaf."""

    path: str
    old: float | None
    new: float | None
    gated: bool
    regressed: bool

    @property
    def rel_change(self) -> float | None:
        if self.old in (None, 0) or self.new is None:
            return None
        return (self.new - self.old) / self.old

    def render(self) -> str:
        if self.old is None:
            return f"  + {self.path}: (absent) -> {self.new:g}"
        if self.new is None:
            return f"  - {self.path}: {self.old:g} -> (absent)"
        rel = self.rel_change
        pct = f"{100.0 * rel:+.1f}%" if rel is not None else "n/a"
        mark = "REGRESSION" if self.regressed else (
            "timing" if self.gated else "info"
        )
        return f"  {mark:>10}  {self.path}: {self.old:g} -> {self.new:g} ({pct})"


@dataclass
class DiffResult:
    """Comparison of every numeric leaf of two reports."""

    entries: list[DiffEntry]
    threshold: float

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, *, verbose: bool = False) -> str:
        lines = []
        changed = [
            e
            for e in self.entries
            if e.regressed or verbose or (e.gated and e.old != e.new)
        ]
        lines.extend(e.render() for e in changed)
        n_gated = sum(1 for e in self.entries if e.gated)
        verdict = (
            f"{len(self.regressions)} regression(s) past "
            f"{100.0 * self.threshold:.0f}%"
            if self.regressions
            else f"ok: {n_gated} timing value(s) within "
            f"{100.0 * self.threshold:.0f}%"
        )
        lines.append(verdict)
        return "\n".join(lines)


def diff_reports(old: dict, new: dict, threshold: float = 0.10) -> DiffResult:
    """Compare two loaded reports; see the module docstring for rules."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old_leaves = _numeric_leaves(old)
    new_leaves = _numeric_leaves(new)
    paths = sorted(old_leaves.keys() | new_leaves.keys())
    entries = []
    for path in paths:
        o = old_leaves.get(path)
        n = new_leaves.get(path)
        gated = is_timing_key(path) and o is not None and n is not None
        regressed = bool(gated and o > 0 and n > o * (1.0 + threshold))
        entries.append(
            DiffEntry(path=path, old=o, new=n, gated=gated, regressed=regressed)
        )
    return DiffResult(entries=entries, threshold=threshold)
