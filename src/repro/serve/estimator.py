"""The two evaluation paths behind the estimation server.

* :func:`full_estimate` is the authoritative path: the kernel's cost
  model on the GPU simulator, routed through the process-wide estimate
  cache (:mod:`repro.perf.estimate_cache`), exactly what the bench
  harness reports.
* :func:`quick_estimate` is the degraded path: a closed-form roofline
  over aggregate matrix statistics (nnz, shape, K) with no warp-workload
  construction, no memory-transaction modeling and no cache-model
  sampling.  It is O(1), answers in microseconds, and is what the server
  falls back to when a request's deadline cannot survive the full path.

``_estimate_signature`` is the module-level (picklable) batch work unit:
serving batches fan distinct request signatures over ``REPRO_JOBS`` pool
workers through :func:`repro.perf.parallel_map`, the same fan-out path
the bench sweeps use.  It traps evaluation errors per signature so one
bad request cannot fail a whole micro-batch.
"""

from __future__ import annotations

from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, get_device
from ..kernels import make_sddmm, make_spmm
from ..obs import trace_span

#: op -> kernel factory (mirrors the bench runner's sweep makers).
_MAKERS = {"spmm": make_spmm, "sddmm": make_sddmm}


def full_estimate(
    op: str, kernel: str, S: HybridMatrix, k: int, device: DeviceSpec
) -> tuple[float, float, str]:
    """Authoritative cost-model estimate: (time_s, preprocessing_s, bound)."""
    result = _MAKERS[op](kernel).estimate(S, k, device=device)
    return result.stats.time_s, result.preprocessing_s, result.stats.bound


def quick_estimate(
    op: str, S: HybridMatrix, k: int, device: DeviceSpec
) -> tuple[float, str]:
    """Closed-form roofline approximation: (time_s, bound).

    Byte counts assume the compulsory traffic of each op — sparse
    structure (8 B per nonzero for index+value), the gathered/streamed
    K-wide operand rows, and the output — priced at peak DRAM bandwidth
    against the FP32 FMA roofline.  No occupancy, imbalance, L2 or
    tail-effect modeling: that is exactly the fidelity the degraded
    path trades away for latency.
    """
    m = S.shape[0]
    nnz = S.nnz
    flops = 2.0 * nnz * k
    if op == "spmm":
        # indices+values, one gathered K-row per nonzero, dense output.
        bytes_moved = 8.0 * nnz + 4.0 * k * nnz + 4.0 * k * m
    else:  # sddmm: two K-row reads per nonzero, nnz-length output.
        bytes_moved = 8.0 * nnz + 8.0 * k * nnz + 4.0 * nnz
    t_mem = bytes_moved / device.dram_bandwidth
    t_fma = flops / device.peak_fp32_flops
    time_s = max(t_mem, t_fma) + device.kernel_launch_overhead_s
    return time_s, ("dram" if t_mem >= t_fma else "fma")


def _estimate_signature(
    item: tuple[str, str, HybridMatrix, int, str],
) -> tuple[str, tuple]:
    """One deduplicated signature's full evaluation — the pool work unit.

    Returns ``("ok", (time_s, preprocessing_s, bound))`` or
    ``("error", (message,))``; errors are data, not exceptions, so
    :func:`repro.perf.parallel_map` never aborts a batch over one bad
    signature.
    """
    op, kernel, S, k, device_name = item
    try:
        with trace_span(
            "serve.estimate", cat="serve", op=op, kernel=kernel, k=k
        ):
            device = get_device(device_name)
            time_s, pre_s, bound = full_estimate(op, kernel, S, k, device)
        return "ok", (time_s, pre_s, bound)
    except Exception as exc:  # noqa: BLE001 - per-signature error capture
        return "error", (f"{type(exc).__name__}: {exc}",)
