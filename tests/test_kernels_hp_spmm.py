"""HP-SpMM: numerics, task partitioning, and cost-model behavior."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.gpusim import TESLA_V100
from repro.kernels import HPSpMM, spmm_reference
from repro.tuning import CANDIDATE_NNZ_PER_WARP

from tests.conftest import random_hybrid


def test_numerics_match_reference(medium_matrix, features):
    A = features(medium_matrix.shape[1], 64, seed=0)
    result = HPSpMM().run(medium_matrix, A)
    np.testing.assert_allclose(
        result.output, spmm_reference(medium_matrix, A), rtol=1e-5, atol=1e-5
    )


def test_estimate_has_no_output(medium_matrix):
    res = HPSpMM().estimate(medium_matrix, 64)
    assert res.output is None
    assert res.stats.time_s > 0
    assert res.preprocessing_s == 0.0  # HP needs no preprocessing


def test_estimate_matches_run_stats(medium_matrix, features):
    A = features(medium_matrix.shape[1], 32, seed=1)
    run = HPSpMM().run(medium_matrix, A)
    est = HPSpMM().estimate(medium_matrix, 32)
    assert run.stats.time_s == est.stats.time_s


def test_estimate_rejects_bad_k(medium_matrix):
    with pytest.raises(ValueError):
        HPSpMM().estimate(medium_matrix, 0)


def test_operand_validation(medium_matrix):
    bad = np.ones((medium_matrix.shape[1] + 1, 8), np.float32)
    with pytest.raises(ValueError):
        HPSpMM().run(medium_matrix, bad)
    with pytest.raises(ValueError):
        HPSpMM().run(medium_matrix, np.ones(4, np.float32))


def test_dtp_partition_from_candidate_set(medium_matrix):
    part = HPSpMM().partition(medium_matrix, 64, TESLA_V100)
    assert part.nnz_per_warp in CANDIDATE_NNZ_PER_WARP


def test_explicit_nnz_per_warp_override(medium_matrix):
    part = HPSpMM(nnz_per_warp=128).partition(medium_matrix, 64, TESLA_V100)
    assert part.nnz_per_warp == 128
    # HVMA rule for npw >= 128 is float4, but K=64 is not divisible by
    # 32*4, so the width downgrades to float2.
    assert part.vector_width == 2


def test_hvma_off_forces_scalar(medium_matrix):
    part = HPSpMM(use_hvma=False, nnz_per_warp=256).partition(
        medium_matrix, 64, TESLA_V100
    )
    assert part.vector_width == 1


def test_naive_partition_without_dtp(medium_matrix):
    part = HPSpMM(use_dtp=False).partition(medium_matrix, 64, TESLA_V100)
    expected = int(np.ceil(medium_matrix.nnz / medium_matrix.shape[0]))
    assert part.nnz_per_warp == max(1, expected)


def test_dtp_and_hvma_improve_over_base(medium_matrix):
    base = HPSpMM(use_dtp=False, use_hvma=False).estimate(medium_matrix, 64)
    full = HPSpMM().estimate(medium_matrix, 64)
    assert full.stats.time_s <= base.stats.time_s * 1.05


def test_balanced_on_skewed_graph(skewed_matrix):
    # HP's longest block is bounded by NnzPerWarp, not by the giant row.
    stats = HPSpMM().estimate(skewed_matrix, 64).stats
    part = HPSpMM().partition(skewed_matrix, 64, TESLA_V100)
    per_warp = stats.longest_block_cycles
    # A node-parallel kernel would pay ~1200 nnz in one warp; HP pays at
    # most NnzPerWarp per warp.
    assert part.nnz_per_warp <= 512
    assert stats.num_warps >= skewed_matrix.nnz // part.nnz_per_warp
    assert per_warp < 100_000


def test_time_grows_with_k(medium_matrix):
    times = [
        HPSpMM().estimate(medium_matrix, k).stats.time_s
        for k in (32, 64, 128, 256)
    ]
    assert all(b >= a * 0.95 for a, b in zip(times, times[1:]))


def test_empty_matrix():
    S = HybridMatrix.from_arrays([], [], shape=(8, 8))
    res = HPSpMM().run(S, np.ones((8, 4), np.float32))
    np.testing.assert_allclose(res.output, 0.0)


def test_time_scales_with_nnz():
    small = random_hybrid(2000, 2000, 10_000, seed=4)
    big = random_hybrid(2000, 2000, 80_000, seed=5)
    t_small = HPSpMM().estimate(small, 64).stats.time_s
    t_big = HPSpMM().estimate(big, 64).stats.time_s
    assert t_big > t_small


def test_feature_groups_cover_wide_k(medium_matrix):
    part = HPSpMM().partition(medium_matrix, 256, TESLA_V100)
    assert part.num_feature_groups * 32 * part.vector_width >= 256
    assert part.num_warps == part.num_slices * part.num_feature_groups


def test_launch_plan_passes_static_checker(medium_matrix, check_plan):
    # The resolved partition (DTP + HVMA) must be coverage-exact,
    # race-free via the row-switch atomic merge, and within V100 limits.
    for k in (64, 48):
        check_plan(HPSpMM(), medium_matrix, k=k)


def test_skewed_launch_plan_passes_static_checker(skewed_matrix, check_plan):
    check_plan(HPSpMM(), skewed_matrix, k=64)
