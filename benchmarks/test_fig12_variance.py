"""Fig. 12 — speedup over GE-SpMM vs node-degree standard deviation."""

from repro.bench import run_fig12, write_report


def test_fig12_degree_variance_sensitivity(run_once):
    res = run_once(run_fig12, num_graphs=10, num_nodes=20_000)
    report = res.render()
    print("\n" + report)
    write_report("fig12", report)

    # Paper: Pearson's r = 0.90 between degree std-dev and speedup.
    assert res.pearson > 0.7
    # Mean degree controlled within the paper's 21-25 band.
    assert all(19 < m < 27 for m in res.mean_degrees)
    # The most skewed graph shows a clearly larger speedup than the most
    # regular one.
    assert res.speedups[-1] > 2 * res.speedups[0]
