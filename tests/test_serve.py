"""The estimation server: protocol, batching, triage and fallback."""

import threading

import pytest

from repro.gpusim import get_device
from repro.graphs import load_graph
from repro.kernels import make_spmm
from repro.obs import METRICS, get_histogram, reset_histograms
from repro.perf import get_estimate_cache
from repro.serve import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    EstimateRequest,
    EstimateResponse,
    EstimationServer,
    quick_estimate,
)

pytestmark = pytest.mark.serve

#: Small enough that aifb/corafull generate in well under a second and
#: every full-path estimate is milliseconds.
MAX_EDGES = 20_000

#: Caller-side wait ceiling so a wedged worker fails the test instead of
#: hanging the suite.
WAIT_S = 60.0


@pytest.fixture(autouse=True)
def fresh_serving_state(monkeypatch):
    from repro.engine import cost_priors

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    METRICS.reset()
    reset_histograms()
    get_estimate_cache().clear()
    cost_priors().reset()
    yield
    METRICS.reset()
    reset_histograms()
    cost_priors().reset()


def req(**kw):
    base = dict(
        op="spmm", kernel="hp-spmm", graph="aifb", k=32,
        device="v100", max_edges=MAX_EDGES,
    )
    base.update(kw)
    return EstimateRequest(**base)


# ----------------------------------------------------------------------
# Protocol records
# ----------------------------------------------------------------------

def test_request_validation():
    with pytest.raises(ValueError):
        req(op="gemm")
    with pytest.raises(ValueError):
        req(k=0)
    with pytest.raises(ValueError):
        req(deadline_s=-1.0)


def test_batch_key_groups_structure_signature_identifies_estimate():
    a, b = req(k=32), req(k=64)
    assert a.batch_key == b.batch_key  # same graph -> same micro-batch
    assert a.signature != b.signature  # different K -> distinct estimate
    assert req().signature == req().signature


def test_response_properties():
    ok = EstimateResponse(
        request=req(), status=STATUS_OK, time_s=1e-3, preprocessing_s=2e-3
    )
    assert ok.answered and not ok.degraded
    assert ok.total_time_s == pytest.approx(3e-3)
    timeout = EstimateResponse(request=req(), status=STATUS_TIMEOUT)
    assert not timeout.answered
    assert timeout.total_time_s is None


# ----------------------------------------------------------------------
# Full path
# ----------------------------------------------------------------------

def test_full_path_matches_direct_estimate():
    with EstimationServer() as server:
        resp = server.estimate(req(), timeout=WAIT_S)
    assert resp.status == STATUS_OK
    S = load_graph("aifb", max_edges=MAX_EDGES).matrix
    direct = make_spmm("hp-spmm").estimate(S, 32, device=get_device("v100"))
    assert resp.time_s == direct.stats.time_s
    assert resp.bound == direct.stats.bound
    assert resp.latency_s > 0


def test_replay_submissions_coalesce_into_one_batch():
    server = EstimationServer(max_batch=16)
    tickets = server.submit_many(
        [req(kernel=kern, k=k) for kern in ("hp-spmm", "ge-spmm")
         for k in (32, 64) for _ in range(2)]
    )
    server.start()
    responses = [t.result(WAIT_S) for t in tickets]
    server.stop()
    assert all(r.status == STATUS_OK for r in responses)
    assert len({r.batch_id for r in responses}) == 1
    assert all(r.batch_size == 8 for r in responses)
    stats = server.stats()
    assert stats["coalesced"] == 7    # one group of 8 shares one matrix
    assert stats["deduped"] == 4      # 4 unique signatures, each twice
    assert stats["batch_size_max"] == 8
    assert METRICS.get("serve.coalesced") == 7


def test_distinct_graphs_split_into_groups_within_a_batch():
    server = EstimationServer(max_batch=16)
    tickets = server.submit_many(
        [req(graph="aifb"), req(graph="corafull"), req(graph="aifb")]
    )
    server.start()
    responses = [t.result(WAIT_S) for t in tickets]
    server.stop()
    assert [r.status for r in responses] == [STATUS_OK] * 3
    # One batch, two structural groups: only the repeated graph coalesces.
    assert len({r.batch_id for r in responses}) == 1
    assert server.stats()["coalesced"] == 1


# ----------------------------------------------------------------------
# Deadline triage and degradation
# ----------------------------------------------------------------------

def test_forced_deadline_degrades_to_quick_model():
    with EstimationServer() as server:
        resp = server.estimate(req(deadline_s=0.0), timeout=WAIT_S)
    assert resp.status == STATUS_DEGRADED
    assert resp.answered and resp.degraded
    S = load_graph("aifb", max_edges=MAX_EDGES).matrix
    time_s, bound = quick_estimate("spmm", S, 32, get_device("v100"))
    assert resp.time_s == pytest.approx(time_s)
    assert resp.bound == bound
    assert METRICS.get("serve.degraded") == 1
    assert METRICS.get("serve.quick_estimates") == 1


def test_forced_deadline_without_degradation_times_out():
    with EstimationServer() as server:
        resp = server.estimate(
            req(deadline_s=0.0, allow_degraded=False), timeout=WAIT_S
        )
    assert resp.status == STATUS_TIMEOUT
    assert not resp.answered
    assert resp.time_s is None
    assert "deadline budget" in resp.error
    assert METRICS.get("serve.timeouts") == 1


def test_generous_deadline_stays_on_full_path():
    with EstimationServer() as server:
        resp = server.estimate(req(deadline_s=600.0), timeout=WAIT_S)
    assert resp.status == STATUS_OK


def test_triage_uses_per_graph_cost_prior_over_ewma():
    """A graph whose prior says 'expensive' degrades even under a
    deadline the cold-start EWMA would accept."""
    from repro.engine import cost_priors

    cost_priors().observe("aifb", 10.0, count=4)  # 10 s/request history
    with EstimationServer(initial_full_cost_s=1e-6) as server:
        resp = server.estimate(req(deadline_s=5.0), timeout=WAIT_S)
    assert resp.status == STATUS_DEGRADED


def test_triage_falls_back_to_ewma_without_prior_history():
    """No prior for the graph: the seeded EWMA is the cold-start cost."""
    from repro.engine import cost_priors

    assert cost_priors().predict("aifb") is None
    with EstimationServer(initial_full_cost_s=100.0) as server:
        resp = server.estimate(req(deadline_s=5.0), timeout=WAIT_S)
    assert resp.status == STATUS_DEGRADED  # EWMA (100 s) vetoes the deadline
    # One deadline-free request runs the full path and records a real
    # (tiny) prior for this graph...
    with EstimationServer(initial_full_cost_s=100.0) as server:
        assert server.estimate(req(), timeout=WAIT_S).status == STATUS_OK
    assert cost_priors().predict("aifb") is not None
    # ...so the same deadline now passes triage despite the huge EWMA.
    with EstimationServer(initial_full_cost_s=100.0) as server:
        resp = server.estimate(req(deadline_s=5.0), timeout=WAIT_S)
    assert resp.status == STATUS_OK


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------

def test_unknown_graph_fails_only_its_group():
    server = EstimationServer(max_batch=4)
    bad = EstimateRequest(
        op="spmm", kernel="hp-spmm", graph="no-such-graph",
        max_edges=MAX_EDGES,
    )
    tickets = server.submit_many([req(), bad])
    server.start()
    good_resp, bad_resp = (t.result(WAIT_S) for t in tickets)
    server.stop()
    assert good_resp.status == STATUS_OK
    assert bad_resp.status == STATUS_ERROR
    assert "no-such-graph" in bad_resp.error
    assert METRICS.get("serve.errors") == 1


def test_unknown_kernel_fails_only_its_signature():
    server = EstimationServer(max_batch=4)
    tickets = server.submit_many([req(), req(kernel="no-such-kernel")])
    server.start()
    good_resp, bad_resp = (t.result(WAIT_S) for t in tickets)
    server.stop()
    assert good_resp.status == STATUS_OK
    assert bad_resp.status == STATUS_ERROR
    assert "KeyError" in bad_resp.error


def test_submit_after_stop_raises():
    server = EstimationServer()
    server.start()
    server.stop()
    with pytest.raises(RuntimeError):
        server.submit(req())


def test_stop_without_drain_answers_queued_requests():
    """Dropped pendings resolve as errors, never hang their callers.

    Regression for the nested-lock finding: ``stop(drain=False)`` used
    to resolve dropped requests while still holding ``_cond``, taking
    ``_stats_lock`` (and firing tracer hooks) inside it.  The answers
    must still arrive — now after ``_cond`` is released.
    """
    server = EstimationServer()
    tickets = [server.submit(req(k=k)) for k in (32, 64)]
    server.stop(drain=False)
    for t in tickets:
        resp = t.result(WAIT_S)
        assert resp.status == STATUS_ERROR
        assert "stopped before processing" in resp.error


# ----------------------------------------------------------------------
# Worker crash containment and lifecycle churn
# ----------------------------------------------------------------------

def _crash_batches(server, exc=None):
    """Make the next ``_process_batch`` blow up outside any inner try."""
    def boom(batch):
        raise exc if exc is not None else RuntimeError("injected fault")
    server._process_batch = boom


def test_worker_crash_resolves_all_pendings_instead_of_hanging():
    """Regression: an exception escaping ``_process_batch`` killed the
    daemon worker silently and every ``result()`` blocked forever."""
    server = EstimationServer(max_batch=2)
    tickets = server.submit_many([req(k=k) for k in (32, 64, 128, 256)])
    _crash_batches(server)
    server.start()
    for t in tickets:
        resp = t.result(WAIT_S)  # used to hang here
        assert resp.status == STATUS_ERROR
        assert "serve worker crashed" in resp.error
        assert "injected fault" in resp.error
    assert METRICS.get("serve.worker_crashes") == 1
    assert server.stats()["worker_crashes"] == 1
    # The crashed server refuses new work rather than accepting requests
    # nobody will ever answer.
    with pytest.raises(RuntimeError):
        server.submit(req())
    server.stop()


def test_worker_crash_recovery_via_restart():
    """After a crash, ``start()`` brings up a fresh worker that serves."""
    server = EstimationServer()
    _crash_batches(server)
    t = server.submit(req())
    server.start()
    assert t.result(WAIT_S).status == STATUS_ERROR
    del server._process_batch  # restore the class implementation
    server.start()
    assert server.estimate(req(), timeout=WAIT_S).status == STATUS_OK
    server.stop()
    assert METRICS.get("serve.worker_crashes") == 1


def test_base_exception_in_worker_still_resolves_pendings():
    server = EstimationServer()
    _crash_batches(server, exc=KeyboardInterrupt())
    t = server.submit(req())
    server.start()
    resp = t.result(WAIT_S)
    assert resp.status == STATUS_ERROR
    assert "KeyboardInterrupt" in resp.error
    server.stop()


def test_start_stop_submit_interleaving_never_wedges():
    """Regression for the unlocked ``_stopping`` write in ``start()``:
    concurrent start/stop/submit cycles must neither deadlock nor leak
    an unanswered ticket."""
    server = EstimationServer(batch_window_s=0.0)
    tickets = []
    tickets_lock = threading.Lock()
    errors = []

    def churn(i):
        try:
            for _ in range(10):
                server.start()
                try:
                    t = server.submit(req(k=32 + i))
                    with tickets_lock:
                        tickets.append(t)
                except RuntimeError:
                    pass  # raced a concurrent stop(); acceptable
                server.stop()
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=churn, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(WAIT_S)
        assert not t.is_alive(), "lifecycle churn deadlocked"
    assert errors == []
    server.stop()
    # Every accepted ticket got an answer — drained, dropped, or served.
    for t in tickets:
        assert t.result(WAIT_S).status in (STATUS_OK, STATUS_ERROR)


def test_concurrent_submit_during_stop_drains_or_rejects():
    """A submitter racing ``stop(drain=True)`` either gets served or a
    clean RuntimeError — never a hung ticket."""
    server = EstimationServer()
    server.start()
    accepted = []
    rejected = []

    def submitter():
        for k in (32, 64, 128, 256, 512):
            try:
                accepted.append(server.submit(req(k=k)))
            except RuntimeError:
                rejected.append(k)

    thread = threading.Thread(target=submitter)
    thread.start()
    server.stop()
    thread.join(WAIT_S)
    assert not thread.is_alive()
    assert len(accepted) + len(rejected) == 5
    for t in accepted:
        assert t.result(WAIT_S).status == STATUS_OK  # drain answered it


def test_pending_on_done_fires_once_per_resolution():
    fired = []
    with EstimationServer() as server:
        t = server.submit(req())
        t.on_done(lambda p: fired.append(p.response.status))
        assert t.result(WAIT_S).status == STATUS_OK
    assert fired == [STATUS_OK]
    # Registering after resolution fires immediately, exactly once.
    t.on_done(lambda p: fired.append("late"))
    assert fired == [STATUS_OK, "late"]


# ----------------------------------------------------------------------
# Observability wiring
# ----------------------------------------------------------------------

def test_latencies_land_in_the_serving_histograms():
    with EstimationServer() as server:
        server.estimate(req(), timeout=WAIT_S)
        server.estimate(req(deadline_s=0.0), timeout=WAIT_S)
    assert get_histogram("serve.request_latency").count == 2
    assert get_histogram("serve.queue_wait").count == 2
    assert get_histogram("serve.request_latency").percentile(99) > 0
    assert METRICS.get("serve.requests") == 2
    assert METRICS.get("serve.completed") == 2
    assert METRICS.get("serve.batches") == 2


# ----------------------------------------------------------------------
# Quick model sanity
# ----------------------------------------------------------------------

def test_quick_estimate_is_monotone_in_k_and_bounded_below():
    S = load_graph("aifb", max_edges=MAX_EDGES).matrix
    device = get_device("v100")
    t32, bound32 = quick_estimate("spmm", S, 32, device)
    t256, _ = quick_estimate("spmm", S, 256, device)
    assert bound32 in ("dram", "fma")
    assert t256 > t32 > device.kernel_launch_overhead_s
    t_sddmm, _ = quick_estimate("sddmm", S, 32, device)
    assert t_sddmm > device.kernel_launch_overhead_s
