"""Louvain community detection and GCR (paper Section III-C)."""

import numpy as np

from repro.graphs import community_graph
from repro.gpusim import TESLA_V100
from repro.kernels.common import estimate_hit_rate
from repro.reorder import GCRReorderer, louvain_communities, modularity


def planted(seed=0, n=3000, e=30_000, c=12, p=0.9):
    return community_graph(
        n, e, num_communities=c, p_in=p, seed=seed
    )


def test_louvain_recovers_planted_communities():
    g = planted()
    comm = louvain_communities(g)
    num = int(comm.max()) + 1
    # Louvain should find roughly the planted count (12), not 1 or n.
    assert 4 <= num <= 60
    assert modularity(g, comm) > 0.4


def test_louvain_beats_random_assignment():
    g = planted(seed=1)
    comm = louvain_communities(g)
    rng = np.random.default_rng(0)
    random_comm = rng.integers(0, comm.max() + 1, size=comm.size)
    assert modularity(g, comm) > modularity(g, random_comm) + 0.2


def test_louvain_deterministic():
    g = planted(seed=2)
    a = louvain_communities(g, seed=5)
    b = louvain_communities(g, seed=5)
    np.testing.assert_array_equal(a, b)


def test_louvain_on_edgeless_graph():
    from repro.formats import HybridMatrix

    g = HybridMatrix.from_arrays([0, 1], [0, 1], None, shape=(2, 2))
    comm = louvain_communities(g)  # only self-loops -> dropped
    assert comm.size == 2


def test_modularity_of_single_community_is_near_zero():
    g = planted(seed=3)
    comm = np.zeros(g.shape[0], dtype=np.int64)
    assert abs(modularity(g, comm)) < 1e-6 + 1.0  # bounded
    # All-in-one community: Q = 1 - sum((k/2m)^2) relative term -> ~0.
    assert modularity(g, comm) < 0.05


def test_gcr_groups_communities_contiguously():
    g = planted(seed=4)
    comm = louvain_communities(g)
    perm = GCRReorderer().permutation(g)
    reordered_comm = comm[perm]
    # Community labels along the new order change only C-1 times.
    changes = int(np.count_nonzero(np.diff(reordered_comm) != 0))
    assert changes == int(comm.max())


def test_gcr_improves_modeled_hit_rate():
    g = planted(seed=5, n=20_000, e=200_000, c=60, p=0.85)
    res = GCRReorderer().apply(g)
    before = estimate_hit_rate(g.col, 256.0, TESLA_V100)
    after = estimate_hit_rate(res.matrix.col, 256.0, TESLA_V100)
    assert after > before + 0.05
