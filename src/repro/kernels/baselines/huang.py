"""Huang's neighbor-grouping baseline (Huang et al., PPoPP'21).

Neighbor grouping splits long CSR rows into fixed-size tiles during a
*preprocessing* pass, producing an augmented row structure whose per-tile
work is bounded.  The kernel is then effectively balanced node-parallel:
each warp owns one tile.  Execution quality approaches HP-SpMM's (paper
Table IV: within ~2x), but the grouping pass is the most expensive of the
preprocess-based baselines, which rules it out for graph-sampling
training.
"""

from __future__ import annotations

import numpy as np

from ...gpusim import CostParams, DeviceSpec, simulate_launch
from ...formats import HybridMatrix, HybridMatrix as _Hybrid
from ..api import SpMMKernel, register_spmm
from ..preproc import DEFAULT_HOST, HostCostParams, huang_preprocess_s
from .node_parallel import NodeParallelProfile, build_node_parallel_workload

HUANG_PROFILE = NodeParallelProfile(
    features_per_warp=64,
    vector_width=2,
    sparse_instr_per_nnz=0.5,
    sparse_sectors_per_nnz=0.25,
    misaligned_dense=False,
    row_overhead_instr=14.0,
    warps_per_block=8,
    registers_per_thread=40,
    shared_mem_per_block=8 * 32 * 8,
)


def neighbor_group_degrees(degrees: np.ndarray, tile: int) -> np.ndarray:
    """Split each row's degree into tiles of at most ``tile`` nonzeros.

    Returns the per-tile nnz array — the per-warp work distribution of
    the post-grouping kernel.  Vectorized: each row of degree ``d``
    contributes ``d // tile`` full tiles plus one remainder tile.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if tile <= 0:
        raise ValueError("tile must be positive")
    full = degrees // tile
    rem = degrees % tile
    n_tiles = int(full.sum() + np.count_nonzero(rem))
    out = np.empty(n_tiles, dtype=np.int64)
    # Full tiles first, then remainders — order inside the launch does not
    # change the balance statistics the cost model consumes.
    total_full = int(full.sum())
    out[:total_full] = tile
    out[total_full:] = rem[rem > 0]
    return out


@register_spmm
class HuangNGSpMM(SpMMKernel):
    """Neighbor grouping: preprocessing splits rows into bounded tiles."""

    name = "huang-ng"

    def __init__(
        self,
        *,
        tile: int = 256,
        profile: NodeParallelProfile = HUANG_PROFILE,
        host: HostCostParams = DEFAULT_HOST,
    ) -> None:
        self.tile = tile
        self.profile = profile
        self.host = host

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        # Model the post-grouping kernel by synthesizing the tiled degree
        # distribution: one warp per tile, every tile bounded by `tile`.
        tile_nnz = neighbor_group_degrees(S.row_degrees(), self.tile)
        tiled = _tiled_view(S, tile_nnz)
        work, config = build_node_parallel_workload(
            tiled, k, self.profile, device
        )
        stats = simulate_launch(device, work, config, cost)
        return stats, huang_preprocess_s(S, self.host)


def _tiled_view(S: HybridMatrix, tile_nnz: np.ndarray) -> HybridMatrix:
    """A synthetic matrix whose rows are the grouped tiles of ``S``.

    Only the quantities the node-parallel cost model reads (row degrees
    and the column stream) are meaningful; values are reused as-is.
    """
    new_rows = np.repeat(
        np.arange(tile_nnz.size, dtype=np.int64), tile_nnz
    ).astype(S.row.dtype)
    # Column stream order is preserved: grouping is a row split, the nnz
    # sequence (and therefore locality) is unchanged.
    return _Hybrid(
        row=new_rows,
        col=S.col,
        val=S.val,
        shape=(int(tile_nnz.size), S.shape[1]),
    )
