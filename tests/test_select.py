"""The selection layer: dataset, CART, policy, engine/bench/serve paths."""

import json

import pytest

from repro.config.registry import ENV_VARS, declared
from repro.engine import Engine, cost_priors, valid_kernels
from repro.graphs import load_graph
from repro.obs import METRICS
from repro.perf import FEATURE_NAMES, get_estimate_cache, structural_features
from repro.select import (
    DEFAULT_MODEL_PATH,
    ROWS_SCHEMA,
    Candidate,
    ModelFormatError,
    ModelPolicy,
    NullPolicy,
    SelectionModel,
    active_policy,
    default_topk,
    evaluate_model,
    fit_model,
    load_model,
    model_path,
    reset_policy,
    save_model,
    select_enabled,
    training_block,
    training_rows,
)
from repro.select.__main__ import main as select_main
from repro.select.policy import _COST_SCALE_MAX, _COST_SCALE_MIN

pytestmark = pytest.mark.select

#: Small enough that graph generation and estimates are milliseconds.
MAX_EDGES = 20_000


@pytest.fixture(autouse=True)
def fresh_selection_state():
    METRICS.reset()
    reset_policy()
    get_estimate_cache().clear()
    cost_priors().reset()
    yield
    METRICS.reset()
    reset_policy()
    cost_priors().reset()


# ----------------------------------------------------------------------
# Hand-built training fixture: two kernels, winner flips on degree_mean
# ----------------------------------------------------------------------


def _x(nnz, degree_mean):
    features = {name: 0.0 for name in FEATURE_NAMES}
    features["nnz"] = nnz
    features["degree_mean"] = degree_mean
    return [features[name] for name in FEATURE_NAMES]


def _row(name, nnz, degree_mean, winner, times):
    return {
        "name": name,
        "x": _x(nnz, degree_mean),
        "winner": winner,
        "margin": 1.5,
        "nnz_per_warp": 32,
        "vector_width": 4,
        "times": times,
    }


def _fixture_rows():
    rows = []
    for i, deg in enumerate((2.0, 3.0, 4.0)):
        rows.append(
            _row(f"lo-{i}", 100.0 * (i + 1), deg, "sparse-k",
                 {"sparse-k": 1.0, "dense-k": 2.0})
        )
    for i, deg in enumerate((20.0, 30.0)):
        rows.append(
            _row(f"hi-{i}", 1000.0 * (i + 1), deg, "dense-k",
                 {"sparse-k": 4.0, "dense-k": 1.0})
        )
    return rows


# ----------------------------------------------------------------------
# Dataset extraction
# ----------------------------------------------------------------------


def _point(name, winner="a-k", status="ok"):
    return {
        "config": {"name": name},
        "features": {fname: 1.0 for fname in FEATURE_NAMES},
        "kernels": {
            "a-k": {"status": status, "total_time_s": 1.0},
            "b-k": {"status": "error", "error": "boom"},
        },
        "winner": winner,
        "margin": None,
        "partition": {"nnz_per_warp": 64, "vector_width": 2},
    }


def test_training_rows_shape_and_unlabeled_drop():
    rows = training_rows([_point("p0"), _point("p1", winner=None)])
    assert [r["name"] for r in rows] == ["p0"]
    row = rows[0]
    assert len(row["x"]) == len(FEATURE_NAMES)
    # Only ok kernels are priced; the errored one carries no total.
    assert row["times"] == {"a-k": 1.0}
    assert row["nnz_per_warp"] == 64 and row["vector_width"] == 2


def test_training_block_schema():
    block = training_block([_point("p0")])
    assert block["schema"] == ROWS_SCHEMA
    assert block["feature_names"] == list(FEATURE_NAMES)
    assert len(block["rows"]) == 1


# ----------------------------------------------------------------------
# CART: fit, determinism, serialization, evaluation
# ----------------------------------------------------------------------


def test_fit_learns_the_flip_and_ranks_runnersup():
    model = fit_model(_fixture_rows())
    lo = model.leaf_for_x(_x(150.0, 3.5))
    hi = model.leaf_for_x(_x(1500.0, 25.0))
    assert lo["ranking"][0]["kernel"] == "sparse-k"
    assert hi["ranking"][0]["kernel"] == "dense-k"
    # The full field is ranked at every leaf, not just the winner.
    assert [e["kernel"] for e in lo["ranking"]] == ["sparse-k", "dense-k"]
    assert lo["nnz_per_warp"] == 32 and lo["vector_width"] == 4
    assert model.stats["top1_train"] == 1.0
    assert model.kernels == ["dense-k", "sparse-k"]


def test_fit_is_byte_deterministic():
    a = fit_model(_fixture_rows(), sources=("w.json",))
    b = fit_model(_fixture_rows(), sources=("w.json",))
    assert a.to_json() == b.to_json()


def test_save_load_round_trip(tmp_path):
    model = fit_model(_fixture_rows())
    path = save_model(model, str(tmp_path / "m.json"))
    reloaded = load_model(path)
    assert reloaded.to_json() == model.to_json()
    x = _x(150.0, 3.5)
    assert reloaded.leaf_for_x(x) == model.leaf_for_x(x)


def test_model_format_validation(tmp_path):
    with pytest.raises(ModelFormatError):
        SelectionModel({"schema": "bogus/v1"})
    good = fit_model(_fixture_rows()).data
    missing = {k: v for k, v in good.items() if k != "tree"}
    with pytest.raises(ModelFormatError):
        SelectionModel(missing)
    renamed = dict(good, feature_names=["x0", "x1"])
    with pytest.raises(ModelFormatError):
        SelectionModel(renamed)
    with pytest.raises(ModelFormatError):
        SelectionModel.from_json("{not json")


def test_evaluate_model_prices_regret():
    rows = _fixture_rows()
    model = fit_model(rows)
    perfect = evaluate_model(model, rows)
    assert perfect["top1_accuracy"] == 1.0
    assert perfect["mean_regret"] == 0.0
    assert perfect["unpriced"] == 0
    # Flip one label: the model now misses it, and the miss is priced
    # against the flipped row's own totals (1.0 predicted / 2.0 winner).
    flipped = [dict(rows[0], winner="dense-k")] + rows[1:]
    scored = evaluate_model(model, flipped)
    assert scored["top1_correct"] == len(rows) - 1
    assert scored["regret_points"] == len(rows)
    assert scored["mean_regret"] == pytest.approx(
        (1.0 / 2.0 - 1.0) / len(rows)
    )


def test_fit_rejects_bad_args():
    with pytest.raises(ValueError):
        fit_model([])
    with pytest.raises(ValueError):
        fit_model(_fixture_rows(), max_depth=0)
    with pytest.raises(ValueError):
        fit_model(_fixture_rows(), min_leaf=0)


# ----------------------------------------------------------------------
# Policy resolution: env kill switch, model cache, degrade on failure
# ----------------------------------------------------------------------


def test_default_policy_covers_spmm():
    policy = active_policy()
    assert isinstance(policy, ModelPolicy)
    assert policy.covers("spmm") and not policy.covers("sddmm")
    assert model_path() == DEFAULT_MODEL_PATH


def test_kill_switch_yields_null_policy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SELECT", "1")
    assert not select_enabled()
    policy = active_policy()
    assert isinstance(policy, NullPolicy)
    assert policy.rank("spmm", {}) is None
    assert policy.cost_scale({}) is None


def test_absent_model_degrades_and_counts_once(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SELECT_MODEL", str(tmp_path / "nope.json"))
    assert isinstance(active_policy(), NullPolicy)
    assert isinstance(active_policy(), NullPolicy)
    # The failed load is cached: one error per process, not per call.
    assert METRICS.get("select.model_errors") == 1


def test_corrupt_model_degrades(monkeypatch, tmp_path):
    bad = tmp_path / "corrupt.json"
    bad.write_text("{\"schema\": \"repro.select/v1\"}")
    monkeypatch.setenv("REPRO_SELECT_MODEL", str(bad))
    assert isinstance(active_policy(), NullPolicy)
    assert METRICS.get("select.model_errors") == 1


def test_rank_restricts_and_backfills():
    policy = ModelPolicy(fit_model(_fixture_rows()))
    features = dict(zip(FEATURE_NAMES, _x(150.0, 3.5)))
    out = policy.rank("spmm", features, kernels=["sparse-k", "zz-unseen"])
    assert [c.kernel for c in out] == ["sparse-k", "zz-unseen"]
    assert out[0].score > 0.0
    assert out[1].score == 0.0           # backfilled, never seen in training
    assert out[1].nnz_per_warp == 32     # still carries the leaf schedule
    assert policy.rank("sddmm", features) is None


def test_cost_scale_tracks_leaf_nnz_and_clamps():
    policy = ModelPolicy(fit_model(_fixture_rows()))
    mean_nnz = policy.model.mean_nnz
    lo = policy.cost_scale(dict(zip(FEATURE_NAMES, _x(150.0, 3.5))))
    hi = policy.cost_scale(dict(zip(FEATURE_NAMES, _x(1500.0, 25.0))))
    assert lo < 1.0 < hi
    assert _COST_SCALE_MIN <= lo <= hi <= _COST_SCALE_MAX
    assert mean_nnz > 0


# ----------------------------------------------------------------------
# Engine.select: hit/miss paths and counters
# ----------------------------------------------------------------------


def test_engine_select_hit_narrows_to_topk():
    sel = Engine().select(
        "spmm", graph="aifb", max_edges=MAX_EDGES, top_k=2
    )
    assert sel.predicted and sel.policy == "model"
    assert len(sel.requests) == 2
    assert sel.kernels == tuple(c.kernel for c in sel.candidates[:2])
    # The candidate list still covers the whole requested field.
    assert sorted(c.kernel for c in sel.candidates) == sorted(valid_kernels("spmm"))
    for request in sel.requests:
        assert request.op == "spmm" and request.graph == "aifb"
        assert request.max_edges == MAX_EDGES
    assert METRICS.get("select.requests") == 1
    assert METRICS.get("select.hits") == 1


def test_engine_select_miss_is_the_full_field(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SELECT", "1")
    sel = Engine().select("spmm", graph="aifb", max_edges=MAX_EDGES)
    assert not sel.predicted and sel.policy == "null"
    assert list(sel.kernels) == list(valid_kernels("spmm"))
    assert all(isinstance(c, Candidate) and c.score == 0.0
               for c in sel.candidates)
    assert METRICS.get("select.misses") == 1


def test_engine_select_default_width_is_env_topk(monkeypatch):
    monkeypatch.setenv("REPRO_SELECT_TOPK", "4")
    assert default_topk() == 4
    sel = Engine().select("spmm", graph="aifb", max_edges=MAX_EDGES)
    assert len(sel.requests) == 4


# ----------------------------------------------------------------------
# Golden predicted-frontier equivalence (bench path)
# ----------------------------------------------------------------------


def test_predicted_frontier_is_byte_identical_restriction():
    from repro.bench import FRONTIER_KERNELS, restrict_result, run_frontier

    graphs = ("aifb", "mutag")
    full = run_frontier(graphs=graphs, max_edges=MAX_EDGES)
    predicted = run_frontier(graphs=graphs, max_edges=MAX_EDGES, top_k=3)
    for g in graphs:
        assert predicted.predicted[g]
        assert len(predicted.frontier[g]) == 3
        assert set(predicted.frontier[g]) <= set(FRONTIER_KERNELS)
        assert full.frontier[g] == FRONTIER_KERNELS
    # The contract the report format is designed around: the oracle
    # sweep restricted to the predicted kernels renders byte-identically
    # to the predicted run — estimates don't depend on sweep company.
    restricted = restrict_result(full, predicted.frontier)
    assert restricted.render() == predicted.render()


def test_frontier_falls_back_to_full_field_without_model(monkeypatch):
    from repro.bench import FRONTIER_KERNELS, run_frontier

    monkeypatch.setenv("REPRO_NO_SELECT", "1")
    result = run_frontier(graphs=("aifb",), max_edges=MAX_EDGES, top_k=3)
    # The policy declined, so the "predicted" run swept everything:
    # the sweep never silently shrinks below what was promised.
    assert result.frontier["aifb"] == FRONTIER_KERNELS
    assert not result.predicted["aifb"]


# ----------------------------------------------------------------------
# Serve: cost-scaled triage with a bit-for-bit degrade path
# ----------------------------------------------------------------------


def _serve_req(**kw):
    from repro.serve import EstimateRequest

    base = dict(
        op="spmm", kernel="hp-spmm", graph="aifb", k=32,
        device="v100", max_edges=MAX_EDGES,
    )
    base.update(kw)
    return EstimateRequest(**base)


def test_serve_triage_scales_ewma_when_model_covers():
    from repro.serve import STATUS_DEGRADED, EstimationServer

    S = load_graph("aifb", max_edges=MAX_EDGES).matrix
    scale = active_policy().cost_scale(structural_features(S))
    assert scale is not None
    with EstimationServer(initial_full_cost_s=100.0) as server:
        resp = server.estimate(_serve_req(deadline_s=5.0), timeout=60.0)
        assert resp.status == STATUS_DEGRADED
        # The shed hint reflects the scaled cold-start estimate.
        assert server.predicted_cost_s("aifb") == pytest.approx(100.0 * scale)
    assert METRICS.get("select.cost_hits") == 1


def test_serve_triage_is_bitforbit_historical_when_disabled(monkeypatch):
    from repro.serve import STATUS_DEGRADED, EstimationServer

    monkeypatch.setenv("REPRO_NO_SELECT", "1")
    with EstimationServer(initial_full_cost_s=100.0) as server:
        resp = server.estimate(_serve_req(deadline_s=5.0), timeout=60.0)
        assert resp.status == STATUS_DEGRADED
        # Unscaled EWMA, exactly the pre-selection behavior.
        assert server.predicted_cost_s("aifb") == 100.0
    assert METRICS.get("select.cost_hits") == 0
    # The decline is still visible in telemetry (once per graph).
    assert METRICS.get("select.cost_misses") == 1


def test_serve_full_path_result_is_selection_invariant(monkeypatch):
    from repro.serve import STATUS_OK, EstimationServer

    with EstimationServer() as server:
        with_model = server.estimate(_serve_req(), timeout=60.0)
    cost_priors().reset()
    get_estimate_cache().clear()
    monkeypatch.setenv("REPRO_NO_SELECT", "1")
    with EstimationServer() as server:
        without = server.estimate(_serve_req(), timeout=60.0)
    assert with_model.status == without.status == STATUS_OK
    # Selection shapes triage only; the estimate itself is untouched.
    assert with_model.time_s == without.time_s
    assert with_model.bound == without.bound


# ----------------------------------------------------------------------
# World report carries the training matrix; CLI round-trip
# ----------------------------------------------------------------------


def _world_report(tmp_path, monkeypatch):
    from repro.world import build_report, run_world_sweep, sample_universe

    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    configs = sample_universe(4, seed=0, max_nodes=320)
    result = run_world_sweep(
        configs, kernels=["ge-spmm", "hp-spmm", "row-split"]
    )
    return build_report(result, mode="sampled", seed=0)


def test_world_report_embeds_training_block(tmp_path, monkeypatch):
    report = _world_report(tmp_path, monkeypatch)
    block = report["training"]
    assert block["schema"] == ROWS_SCHEMA
    assert block["feature_names"] == list(FEATURE_NAMES)
    labeled = [p for p in report["points"] if p["winner"] is not None]
    assert len(block["rows"]) == len(labeled)
    for row, point in zip(block["rows"], labeled):
        assert row["winner"] == point["winner"]
        assert row["nnz_per_warp"] == point["partition"]["nnz_per_warp"]


def test_cli_fit_eval_round_trip(tmp_path, monkeypatch, capsys):
    from repro.world import write_world_report

    report = _world_report(tmp_path, monkeypatch)
    report_path = write_world_report(report, "selftest")
    model_a = str(tmp_path / "model_a.json")
    model_b = str(tmp_path / "model_b.json")
    assert select_main(["--fit", report_path, "--out", model_a]) == 0
    assert select_main(["--fit", report_path, "--out", model_b]) == 0
    # The CI cmp gate in miniature: same report -> byte-identical model.
    assert open(model_a, "rb").read() == open(model_b, "rb").read()

    capsys.readouterr()
    assert select_main(
        ["--eval", report_path, "--model", model_a, "--json"]
    ) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["points"] == 4
    assert 0.0 <= result["top1_accuracy"] <= 1.0
    assert result["mean_regret"] >= 0.0
    assert result["model"] == "model_a.json"


def test_cli_min_top1_gate_fails_below_threshold(tmp_path, monkeypatch):
    from repro.world import write_world_report

    report = _world_report(tmp_path, monkeypatch)
    report_path = write_world_report(report, "gate")
    model = str(tmp_path / "model.json")
    assert select_main(["--fit", report_path, "--out", model]) == 0
    # Accuracy can never exceed 1.0, so a 1.1 gate must always trip.
    assert select_main(
        ["--eval", report_path, "--model", model, "--min-top1", "1.1"]
    ) == 1


def test_cli_show_and_missing_model(tmp_path, capsys):
    assert select_main(["--show"]) == 0
    out = capsys.readouterr().out
    assert DEFAULT_MODEL_PATH in out and "spmm" in out
    missing = str(tmp_path / "nope.json")
    assert select_main(["--show", "--model", missing]) == 1


# ----------------------------------------------------------------------
# Env registry
# ----------------------------------------------------------------------


def test_select_env_vars_declared():
    for name in (
        "REPRO_SELECT_MODEL",
        "REPRO_SELECT_TOPK",
        "REPRO_NO_SELECT",
    ):
        assert declared(name), name
        assert ENV_VARS[name].subsystem == "select"


def test_packaged_default_model_is_valid_and_current():
    model = load_model(DEFAULT_MODEL_PATH)
    assert model.op == "spmm"
    assert model.data["feature_names"] == list(FEATURE_NAMES)
    # Every kernel the model ranks is still registered for SpMM, so a
    # kernel rename forces a model refit rather than silent misses.
    assert set(model.kernels) <= set(valid_kernels("spmm"))
    assert model.stats["top1_train"] >= 0.8
