"""Shared graph/matrix store: lifecycle, corruption, and fallbacks.

The store's contract is *transport optimization, never correctness
dependency*: every test here pins one edge of that contract — zero-copy
round-trips, concurrent attach from separate processes, unlink on
shutdown, corrupted-segment detection degrading to the pickle/inline
path with identical results, and the probe-once dispatch fix.
"""

import dataclasses
import multiprocessing
import os

import numpy as np
import pytest

from repro.engine import Engine, EstimateRequest, ShardedExecutor
from repro.engine.core import _Point, _WorkUnit, _execute_unit
from repro.gpusim import TESLA_V100
from repro.obs import METRICS
from repro.obs.metrics import snapshot
from repro.store import (
    SharedGraphStore,
    StoreAttachError,
    get_store,
    reset_store,
    store_counters,
    store_enabled,
)

from tests.conftest import random_hybrid

pytestmark = pytest.mark.store


@pytest.fixture(autouse=True)
def fresh_store(monkeypatch):
    monkeypatch.delenv("REPRO_NO_SHARED_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    reset_store()
    yield
    reset_store()


def _toy_unit(S, store_ref=None, index=0):
    return _WorkUnit(
        graph="toy",
        S=S,
        points=[
            _Point(
                index=index, op="spmm", kernel="hp-spmm", kwargs=(),
                k=32, device=TESLA_V100,
            )
        ],
        check_plans=False,
        capture_errors=False,
        span="engine.estimate",
        cat="engine",
        store_ref=store_ref,
    )


# ----------------------------------------------------------------------
# Publish / attach round-trips
# ----------------------------------------------------------------------

def test_publish_attach_roundtrip():
    S = random_hybrid(120, 120, 900, seed=61)
    store = get_store()
    handle = store.publish(S)

    # A *fresh* store instance has no memo, so this is a real attach
    # through the segment name — the same path a non-forked process
    # would take.
    attacher = SharedGraphStore(backend=handle.backend)
    attached = attacher.attach(handle)
    np.testing.assert_array_equal(attached.row, S.row)
    np.testing.assert_array_equal(attached.col, S.col)
    np.testing.assert_array_equal(attached.val, S.val)
    assert attached.shape == S.shape
    assert not attached.row.flags.writeable
    assert attacher.counters()["attaches"] == 1

    # Re-attaching is a memo hit, not a second mapping.
    again = attacher.attach(handle)
    assert again is attached
    assert attacher.counters()["attach_hits"] == 1


def test_publish_is_idempotent_by_fingerprint():
    S = random_hybrid(100, 100, 700, seed=62)
    store = get_store()
    h1 = store.publish(S)
    h2 = store.publish(S)
    assert h1 == h2
    counters = store.counters()
    assert counters["publishes"] == 1
    assert counters["publish_hits"] == 1
    assert counters["segments"] == 1


def test_shared_matrix_is_segment_backed_and_equal():
    S = random_hybrid(90, 90, 500, seed=63)
    store = get_store()
    shared = store.shared_matrix(S)
    np.testing.assert_array_equal(shared.row, S.row)
    np.testing.assert_array_equal(shared.val, S.val)
    assert not shared.row.flags.writeable
    assert store.counters()["bytes_shared"] > 0
    # The publisher's copy IS the segment: a separate attacher sees the
    # same physical bytes that shared references.
    handle = store.publish(S)
    attached = SharedGraphStore(backend=handle.backend).attach(handle)
    np.testing.assert_array_equal(attached.row, shared.row)


def test_registry_graphs_come_back_store_backed():
    from repro.graphs import load_graph

    assert store_enabled()
    before = get_store().counters()["segments"]
    # A max_edges value no other test uses, so the registry's lru_cache
    # cannot serve a matrix loaded before this store existed.
    dataset = load_graph("aifb", max_edges=17_000)
    assert not dataset.matrix.row.flags.writeable
    assert get_store().counters()["segments"] == before + 1


# ----------------------------------------------------------------------
# Concurrency and cross-process attach
# ----------------------------------------------------------------------

def _attach_and_sum(handle, outq):
    # A brand-new store instance: forces a name-based attach even though
    # fork inherited the parent's populated singleton.
    attacher = SharedGraphStore(backend=handle.backend)
    M = attacher.attach(handle)
    outq.put(
        (int(M.row.sum()), int(M.col.sum()), float(M.val.sum()),
         attacher.counters()["attaches"])
    )


def test_concurrent_attach_from_two_processes():
    S = random_hybrid(150, 150, 1200, seed=64)
    handle = get_store().publish(S)
    ctx = multiprocessing.get_context("fork")
    outq = ctx.Queue()
    procs = [
        ctx.Process(target=_attach_and_sum, args=(handle, outq))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    replies = [outq.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    expected = (int(S.row.sum()), int(S.col.sum()), float(S.val.sum()), 1)
    assert replies == [expected, expected]
    # The transient attachers' exits must not have unlinked the segment.
    again = SharedGraphStore(backend=handle.backend).attach(handle)
    np.testing.assert_array_equal(again.row, S.row)


# ----------------------------------------------------------------------
# Lifecycle: unlink on shutdown
# ----------------------------------------------------------------------

def test_mmap_backend_unlinks_files_on_shutdown(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BACKEND", "mmap")
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
    S = random_hybrid(80, 80, 400, seed=65)
    store = SharedGraphStore()
    handle = store.publish(S)
    assert os.path.exists(handle.name)
    matrix = store.shared_matrix(S)

    store.shutdown()
    assert not os.path.exists(handle.name)
    # Matrices attached before shutdown keep valid mappings...
    np.testing.assert_array_equal(matrix.row, S.row)
    # ...but new attaches fail cleanly.
    with pytest.raises(StoreAttachError):
        SharedGraphStore().attach(handle)


def test_shm_segment_gone_after_reset():
    S = random_hybrid(70, 70, 300, seed=66)
    handle = get_store().publish(S)
    reset_store()
    with pytest.raises(StoreAttachError):
        SharedGraphStore(backend=handle.backend).attach(handle)


# ----------------------------------------------------------------------
# Corruption detection
# ----------------------------------------------------------------------

def test_corrupted_magic_is_rejected():
    S = random_hybrid(60, 60, 250, seed=67)
    store = get_store()
    handle = store.publish(S)
    seg = store._segments[handle.fingerprint]
    seg.buf[:4] = b"XXXX"
    with pytest.raises(StoreAttachError, match="bad magic"):
        SharedGraphStore(backend=handle.backend).attach(handle)


def test_fingerprint_mismatch_is_rejected():
    S = random_hybrid(60, 60, 250, seed=68)
    store = get_store()
    handle = store.publish(S)
    forged = dataclasses.replace(handle, fingerprint="m1x1-nnz1-deadbeef")
    with pytest.raises(StoreAttachError, match="recycled or corrupted"):
        SharedGraphStore(backend=handle.backend).attach(forged)


def test_truncated_backing_file_is_rejected_cleanly(tmp_path, monkeypatch):
    """A zero-length mmap file surfaces as StoreAttachError, not ValueError.

    Regression: ``mmap.mmap`` raises ``ValueError`` (not ``OSError``) on
    an empty backing file, which used to escape the attach-error
    contract — and leak the descriptor — instead of letting callers
    degrade to the pickle path.
    """
    monkeypatch.setenv("REPRO_STORE_BACKEND", "mmap")
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
    S = random_hybrid(60, 60, 250, seed=70)
    store = SharedGraphStore()
    handle = store.publish(S)
    # A crashed publisher can leave the file truncated to zero bytes.
    with open(handle.name, "w+b"):
        pass
    with pytest.raises(StoreAttachError):
        SharedGraphStore().attach(handle)
    store.shutdown()


def test_sharded_attach_failure_falls_back_to_parent_copy():
    """A worker losing the segment degrades, with identical results."""
    S = random_hybrid(110, 110, 800, seed=69)
    real = get_store().publish(S)
    # Structurally valid handle pointing at a segment that was never
    # created — the worker's attach raises StoreAttachError, and the
    # parent must re-evaluate from its own full copy.  The fingerprint
    # is forged as well: with the real one, the worker would serve the
    # matrix from the segment memo it inherited at fork and never
    # consult the bogus name (which is the desired behavior, tested
    # above via reset/unlink).
    bad = dataclasses.replace(
        real, name=f"{real.name}_gone", fingerprint=f"{real.fingerprint}x"
    )
    units = [_toy_unit(S, store_ref=bad, index=0),
             _toy_unit(S, store_ref=real, index=1)]
    expected = [_execute_unit(_toy_unit(S, index=i)) for i in range(2)]

    before = store_counters()["fallbacks"]
    with ShardedExecutor(workers=2) as executor:
        mapped = executor.map(_execute_unit, units)
    assert store_counters()["fallbacks"] == before + 1
    for got, want in zip(mapped, expected):
        assert [
            (o.index, o.status, o.time_s, o.gflops) for o in got.outcomes
        ] == [
            (o.index, o.status, o.time_s, o.gflops) for o in want.outcomes
        ]


# ----------------------------------------------------------------------
# Engine dispatch equivalence and accounting
# ----------------------------------------------------------------------

def _spmm_requests():
    return [
        EstimateRequest(op="spmm", kernel=kernel, graph="aifb", k=k,
                        max_edges=20_000)
        for kernel in ("hp-spmm", "ge-spmm") for k in (32, 64)
    ]


def test_store_disabled_env_reverts_to_pickle_path(monkeypatch):
    reqs = _spmm_requests()
    inline = Engine().estimate_batch(reqs)
    monkeypatch.setenv("REPRO_NO_SHARED_STORE", "1")
    assert not store_enabled()
    before = store_counters()
    with ShardedExecutor(workers=2) as executor:
        sharded = Engine(executor=executor).estimate_batch(reqs)
    assert store_counters() == before  # no store traffic at all
    assert [
        (r.status, r.time_s, r.gflops, r.bound) for r in inline
    ] == [
        (r.status, r.time_s, r.gflops, r.bound) for r in sharded
    ]


def test_sharded_dispatch_uses_store_and_counts_in_snapshot():
    reqs = _spmm_requests()
    inline = Engine().estimate_batch(reqs)
    with ShardedExecutor(workers=2) as executor:
        sharded = Engine(executor=executor).estimate_batch(reqs)
    assert [
        (r.status, r.time_s, r.gflops, r.bound) for r in inline
    ] == [
        (r.status, r.time_s, r.gflops, r.bound) for r in sharded
    ]
    counters = store_counters()
    assert counters["segments"] >= 1
    assert counters["bytes_shared"] > 0
    # Worker-side attach activity shipped back through the executor.
    assert counters["attaches"] + counters["attach_hits"] >= 1
    snap = snapshot()
    for key in ("store.attaches", "store.bytes_shared", "store.fallbacks",
                "store.publishes", "store.segments"):
        assert key in snap
    assert snap["store.bytes_shared"] == counters["bytes_shared"]


# ----------------------------------------------------------------------
# ShardedExecutor probe-once (the per-batch double-serialization fix)
# ----------------------------------------------------------------------

def test_pickle_probe_runs_once_per_executor_lifetime():
    METRICS.reset()
    with ShardedExecutor(workers=2) as executor:
        assert executor.map(str, [1, 2, 3]) == ["1", "2", "3"]
        assert executor.map(str, [4, 5]) == ["4", "5"]
        assert executor.map(str, [6]) == ["6"]
    assert METRICS.get("engine.shard_probes") == 1
    assert METRICS.get("engine.shard_fallbacks") == 0


def test_unpicklable_probe_verdict_is_cached_too():
    METRICS.reset()
    double = lambda x: 2 * x  # noqa: E731 - deliberately unpicklable
    with ShardedExecutor(workers=2) as executor:
        assert executor.map(double, [1, 2]) == [2, 4]
        assert executor.map(double, [3]) == [6]
    assert METRICS.get("engine.shard_probes") == 1
    assert METRICS.get("engine.shard_fallbacks") == 2


def test_probe_cache_clears_on_stop():
    METRICS.reset()
    executor = ShardedExecutor(workers=2)
    with executor:
        executor.map(str, [1])
    with executor:
        executor.map(str, [2])
    assert METRICS.get("engine.shard_probes") == 2


def test_worker_loop_replies_even_when_accounting_raises(monkeypatch):
    """A failure inside the counter-delta accounting still yields a reply.

    Regression: ``delta`` was first bound inside the ``finally`` that
    computes it, so if ``store_counters()`` raised there the error-reply
    constructor hit ``NameError`` and the worker loop died silently,
    wedging the parent's result collection.
    """
    import queue

    from repro.engine import executors as executors_mod

    calls = {"n": 0}

    def flaky_counters():
        calls["n"] += 1
        if calls["n"] > 1:  # the post-item read in the finally
            raise RuntimeError("accounting boom")
        return {"attaches": 0, "attach_hits": 0, "fallbacks": 0}

    monkeypatch.setattr(executors_mod, "store_counters", flaky_counters)
    inbox: queue.Queue = queue.Queue()
    outbox: queue.Queue = queue.Queue()
    inbox.put((0, lambda x: x * 2, 21, None))
    inbox.put(None)  # _STOP sentinel
    executors_mod._shard_worker_loop(inbox, outbox)

    seq, status, payload, spans, pid, delta = outbox.get_nowait()
    assert (seq, status) == (0, "error")
    assert isinstance(payload, RuntimeError)
    assert "accounting boom" in str(payload)
    assert delta == {}
