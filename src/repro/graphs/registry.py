"""Dataset registry: the 19 graphs of paper Table II, scaled.

Each entry records the paper's true node/edge counts plus the generator
parameters (degree exponent, community strength) that match the graph
family's character.  Graphs are scaled down uniformly — mean degree is
preserved, node count shrinks — so they fit the single-core simulator;
``scale=1.0`` with ``max_edges=None`` would regenerate at full size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..config import env_int, env_str
from ..formats import HybridMatrix
from ..store import shared_matrix
from .generators import community_graph

#: Default cap on generated edge count (before self-loops); override with
#: the REPRO_MAX_EDGES environment variable.
DEFAULT_MAX_EDGES = 1_500_000


@dataclass(frozen=True)
class GraphSpec:
    """Calibration record for one paper dataset."""

    name: str
    source: str           #: paper source collection (Table II)
    paper_nodes: int
    paper_edges: int
    gamma: float          #: degree power-law exponent (skew)
    p_in: float           #: community internal-edge probability
    communities: int      #: planted community count at full scale
    seed: int

    @property
    def paper_mean_degree(self) -> float:
        return self.paper_edges / self.paper_nodes

    def scaled_size(self, max_edges: int) -> tuple[int, int]:
        """(nodes, edges) after uniform scaling to at most ``max_edges``.

        Mean degree is preserved except for extremely dense graphs, where
        the scaled node count cannot host it (density is capped at 20% so
        the sparse structure remains meaningful).
        """
        scale = min(1.0, max_edges / self.paper_edges)
        nodes = max(256, int(round(self.paper_nodes * scale)))
        degree = min(self.paper_mean_degree, 0.2 * nodes)
        edges = int(round(degree * nodes))
        return nodes, edges


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: the adjacency matrix plus its provenance."""

    spec: GraphSpec
    matrix: HybridMatrix

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_edges(self) -> int:
        return self.matrix.nnz


def _spec(name, source, nodes, edges, gamma, p_in, comms, seed) -> GraphSpec:
    return GraphSpec(
        name=name,
        source=source,
        paper_nodes=nodes,
        paper_edges=edges,
        gamma=gamma,
        p_in=p_in,
        communities=comms,
        seed=seed,
    )


#: The 19 graphs of paper Table II.  gamma/p_in reflect the family:
#: social graphs are skewed with strong communities, citation graphs
#: moderate, biological/interaction graphs dense and flatter.
FULL_GRAPH_SPECS: dict[str, GraphSpec] = {
    s.name: s
    for s in [
        _spec("flickr", "GraphSAINT", 89_250, 989_006, 2.0, 0.75, 300, 101),
        _spec("yelp", "GraphSAINT", 716_847, 13_954_819, 2.1, 0.75, 800, 102),
        _spec("amazon", "GraphSAINT", 1_598_960, 264_339_468, 2.0, 0.85, 1200, 103),
        _spec("corafull", "DGL", 19_793, 146_635, 2.3, 0.7, 70, 104),
        _spec("aifb", "DGL", 7_262, 44_298, 2.2, 0.6, 30, 105),
        _spec("mutag", "DGL", 27_163, 173_037, 2.2, 0.6, 90, 106),
        _spec("bgs", "DGL", 94_806, 656_226, 2.1, 0.6, 250, 107),
        _spec("am", "DGL", 881_680, 7_141_524, 1.9, 0.2, 900, 108),
        _spec("reddit", "DGL", 232_965, 114_848_857, 1.9, 0.7, 500, 109),
        _spec("arxiv", "OGB", 169_343, 2_484_941, 2.2, 0.7, 400, 110),
        _spec("proteins", "OGB", 132_534, 79_255_038, 2.4, 0.8, 300, 111),
        _spec("products", "OGB", 2_449_029, 126_167_053, 2.1, 0.8, 1500, 112),
        _spec("collab", "OGB", 235_868, 2_171_132, 2.3, 0.75, 500, 113),
        _spec("ddi", "OGB", 4_267, 2_140_089, 2.6, 0.5, 12, 114),
        _spec("ppa", "OGB", 576_289, 43_040_151, 2.2, 0.85, 700, 115),
        _spec("coauthor-cs", "gnnbench", 18_333, 163_788, 2.3, 0.8, 70, 116),
        _spec("amazon-photo", "gnnbench", 7_650, 245_812, 2.2, 0.75, 30, 117),
        _spec("amazon-computer", "gnnbench", 13_752, 505_474, 2.2, 0.75, 45, 118),
        _spec("coauthor-physics", "gnnbench", 34_493, 530_417, 2.3, 0.8, 110, 119),
    ]
}

#: Display order matching paper Table II.
FULL_GRAPH_ORDER: tuple[str, ...] = tuple(FULL_GRAPH_SPECS)


def max_edges_limit() -> int:
    """Edge cap for scaled generation (REPRO_MAX_EDGES overrides)."""
    return env_int("REPRO_MAX_EDGES", DEFAULT_MAX_EDGES)


def _cache_dir() -> str:
    """On-disk cache for generated graphs (generation is seconds-scale)."""
    base = env_str("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-graphs"
    )
    os.makedirs(base, exist_ok=True)
    return base


@lru_cache(maxsize=32)
def _load_cached(name: str, max_edges: int) -> Dataset:
    spec = FULL_GRAPH_SPECS[name]
    nodes, edges = spec.scaled_size(max_edges)
    path = os.path.join(_cache_dir(), f"{name}-{max_edges}-v1.npz")
    if os.path.exists(path):
        try:
            data = np.load(path)
            matrix = HybridMatrix.from_arrays(
                data["row"], data["col"], data["val"],
                shape=(int(data["m"]), int(data["n"])),
            )
            return Dataset(spec=spec, matrix=shared_matrix(matrix))
        except Exception:
            os.remove(path)  # corrupt cache entry: regenerate
    scale = nodes / spec.paper_nodes
    comms = max(4, int(round(spec.communities * np.sqrt(scale))))
    matrix = community_graph(
        nodes,
        edges,
        gamma=spec.gamma,
        num_communities=comms,
        p_in=spec.p_in,
        seed=spec.seed,
    )
    np.savez_compressed(
        path,
        row=matrix.row,
        col=matrix.col,
        val=matrix.val,
        m=matrix.shape[0],
        n=matrix.shape[1],
    )
    # Registry datasets are re-backed by their shared-store segment, so
    # the in-process copy IS the copy every worker attaches (zero-copy
    # dispatch) and the matrix arrives pre-fingerprinted.  Returns the
    # original matrix untouched when the store is disabled.
    return Dataset(spec=spec, matrix=shared_matrix(matrix))


def load_graph(name: str, *, max_edges: int | None = None) -> Dataset:
    """Generate (or fetch from cache) a calibrated dataset by name."""
    key = name.strip().lower()
    if key not in FULL_GRAPH_SPECS:
        raise KeyError(
            f"unknown graph {name!r}; choose from {sorted(FULL_GRAPH_SPECS)}"
        )
    return _load_cached(key, max_edges or max_edges_limit())


def load_all(max_edges: int | None = None) -> list[Dataset]:
    """All 19 Table II datasets in paper order."""
    return [load_graph(n, max_edges=max_edges) for n in FULL_GRAPH_ORDER]
