"""The unified counters registry and its subsystem integrations."""

import pytest

from repro.obs import METRICS, MetricsRegistry, snapshot
from repro.perf import get_estimate_cache, parallel_map

from tests.conftest import random_hybrid

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def fresh_metrics(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    METRICS.reset()
    get_estimate_cache().clear()
    yield
    METRICS.reset()


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------

def test_registry_inc_get_reset():
    reg = MetricsRegistry()
    assert reg.get("a") == 0
    reg.inc("a")
    reg.inc("a", 4)
    reg.inc("b", 2.5)
    assert reg.get("a") == 5
    assert reg.counters() == {"a": 5, "b": 2.5}
    reg.reset()
    assert reg.counters() == {}


def test_snapshot_merges_estimate_cache_counters(small_matrix):
    from repro.kernels import make_spmm

    kern = make_spmm("hp-spmm")
    kern.estimate(small_matrix, 64)
    kern.estimate(small_matrix, 64)
    snap = snapshot()
    assert snap["estimate_cache.misses"] == 1
    assert snap["estimate_cache.hits"] == 1
    assert snap["estimate_cache.entries"] == 1
    assert snap["trace.spans"] == 0  # tracing off


# ----------------------------------------------------------------------
# Subsystem integrations
# ----------------------------------------------------------------------

def test_parallel_map_counts_pool_and_fallback_runs():
    parallel_map(abs, [1, -2, 3], jobs=1)
    assert METRICS.get("parallel.serial_runs") == 1
    assert METRICS.get("parallel.items") == 3
    # A lambda cannot cross the process boundary: counted as a fallback.
    parallel_map(lambda x: x, [1, 2], jobs=2)
    assert METRICS.get("parallel.pool_fallbacks") == 1
    assert METRICS.get("parallel.serial_runs") == 2
    parallel_map(abs, [1, -2], jobs=2)
    assert METRICS.get("parallel.pool_runs") == 1


def test_sweep_counts_plan_checks():
    from repro.bench.runner import sweep_spmm

    graphs = [("g", random_hybrid(200, 200, 1500, seed=31))]
    sweep_spmm(graphs, ("hp-spmm", "ge-spmm"), k=32)
    assert METRICS.get("plan_check.checked") == 2
    assert METRICS.get("bench.sweeps") == 1


def test_timing_context_counts_ops(small_matrix):
    from repro.gnn.timing import TimingContext

    ctx = TimingContext()
    ctx.record_spmm(small_matrix, 32)
    ctx.record_spmm(small_matrix, 32)
    ctx.record_gemm(64, 64, 64)
    assert METRICS.get("gnn.spmm_ops") == 2
    assert METRICS.get("gnn.gemm_ops") == 1


def test_trace_replay_and_profile_report_counted(paper_fig2_matrix):
    from repro.gpusim import TESLA_V100
    from repro.gpusim.profile import profile_report
    from repro.gpusim.trace import trace_hp_spmm
    from repro.kernels import make_spmm

    trace_hp_spmm(paper_fig2_matrix, 32, nnz_per_warp=4)
    assert METRICS.get("gpusim.trace_replays") == 1
    res = make_spmm("hp-spmm").estimate(paper_fig2_matrix, 32)
    profile_report(res.stats, TESLA_V100, kernel_name="hp-spmm")
    assert METRICS.get("gpusim.profile_reports") == 1


# ----------------------------------------------------------------------
# record_max and latency histograms
# ----------------------------------------------------------------------

def test_record_max_keeps_the_high_water_mark():
    reg = MetricsRegistry()
    reg.record_max("depth", 3)
    reg.record_max("depth", 1)
    assert reg.get("depth") == 3
    reg.record_max("depth", 7)
    assert reg.get("depth") == 7


def test_histogram_rejects_bad_bounds():
    from repro.obs import LatencyHistogram

    with pytest.raises(ValueError):
        LatencyHistogram("h", bounds_s=())
    with pytest.raises(ValueError):
        LatencyHistogram("h", bounds_s=(1e-3, 1e-4))  # not ascending
    with pytest.raises(ValueError):
        LatencyHistogram("h", bounds_s=(0.0, 1e-3))  # non-positive


def test_histogram_bucket_math():
    from repro.obs import LatencyHistogram

    h = LatencyHistogram("h", bounds_s=(1e-3, 1e-2, 1e-1))
    for s in (5e-4, 1e-3):        # both land in the first bucket (<=)
        h.observe(s)
    h.observe(5e-2)               # third bucket
    h.observe(2.0)                # overflow
    h.observe(-1.0)               # clamps to 0 -> first bucket
    assert h.count == 5
    assert h._counts == [3, 0, 1, 1]
    assert h.max_s == 2.0
    assert h.sum_s == pytest.approx(5e-4 + 1e-3 + 5e-2 + 2.0)


def test_histogram_percentiles_empty_and_single_sample():
    from repro.obs import LatencyHistogram

    h = LatencyHistogram("h")
    assert h.percentile(50) == 0.0            # empty -> 0
    assert h.summary()["count"] == 0
    h.observe(3.3e-3)
    # A single sample answers exactly (bucket bound clamps to the max).
    for p in (0, 50, 99, 100):
        assert h.percentile(p) == pytest.approx(3.3e-3)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_percentile_ranks_and_overflow():
    from repro.obs import LatencyHistogram

    h = LatencyHistogram("h", bounds_s=(1e-3, 1e-2, 1e-1))
    for _ in range(90):
        h.observe(5e-4)           # first bucket
    for _ in range(10):
        h.observe(42.0)           # overflow bucket
    assert h.percentile(50) == 1e-3   # bucket upper bound
    assert h.percentile(90) == 1e-3
    assert h.percentile(95) == 42.0   # overflow reports the observed max
    assert h.percentile(99) == 42.0
    assert h.summary()["p95"] == 42.0


def test_histogram_registry_and_snapshot_keys():
    from repro.obs import (
        get_histogram,
        histogram_summaries,
        observe_latency,
        reset_histograms,
    )

    reset_histograms()
    try:
        assert histogram_summaries() == {}
        empty = get_histogram("serve.request_latency")
        # Present but unobserved histograms stay out of snapshots, so
        # non-serving manifests remain byte-stable.
        assert "serve.request_latency.count" not in snapshot()
        observe_latency("serve.request_latency", 2e-3)
        observe_latency("serve.request_latency", 4e-3)
        assert get_histogram("serve.request_latency") is empty
        snap = snapshot()
        assert snap["serve.request_latency.count"] == 2
        assert snap["serve.request_latency.p50"] > 0
        assert snap["serve.request_latency.p99"] > 0
        summaries = histogram_summaries()
        assert set(summaries) == {"serve.request_latency"}
        assert summaries["serve.request_latency"]["count"] == 2
    finally:
        reset_histograms()
