"""Graph reordering for data locality: GCR (paper Section III-C) and the
competitor methods of Section IV-D."""

from .base import (
    DegreeSortReorderer,
    IdentityReorderer,
    Reorderer,
    ReorderResult,
    validate_permutation,
)
from .louvain import GCRReorderer, louvain_communities, modularity
from .lsh import LSHReorderer, estimated_jaccard, minhash_signatures
from .pairmerge import PairMergeReorderer
from .rcm import RCMReorderer

#: Registry used by the benchmark harness.
REORDERERS = {
    cls.name: cls
    for cls in (
        IdentityReorderer,
        DegreeSortReorderer,
        GCRReorderer,
        LSHReorderer,
        PairMergeReorderer,
        RCMReorderer,
    )
}

__all__ = [
    "DegreeSortReorderer",
    "IdentityReorderer",
    "Reorderer",
    "ReorderResult",
    "validate_permutation",
    "GCRReorderer",
    "louvain_communities",
    "modularity",
    "LSHReorderer",
    "estimated_jaccard",
    "minhash_signatures",
    "PairMergeReorderer",
    "RCMReorderer",
    "REORDERERS",
]
