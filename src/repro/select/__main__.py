"""CLI: fit, evaluate and inspect selection models.

Usage::

    python -m repro.select --fit results/world_nightly.json \\
        --out results/select_model.json
    python -m repro.select --eval results/world_nightly.json \\
        --model results/select_model.json --min-top1 0.8 --json
    python -m repro.select --show

``--fit`` trains the deterministic CART from one or more world reports
(same reports in any order -> byte-identical model file).  ``--eval``
scores a model against reports' full-sweep oracle: top-1 accuracy and
mean regret (predicted total / oracle-winner total - 1).  ``--min-top1``
turns the evaluation into a gate: exit 1 below the threshold — the
nightly CI accuracy gate is exactly this flag.  ``--show`` prints the
active model's summary (the packaged default unless
``REPRO_SELECT_MODEL`` points elsewhere).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .dataset import load_training_rows
from .model import evaluate_model, fit_model, load_model, save_model
from .policy import model_path


def _report_meta(paths: list[str]) -> dict:
    """(op is spmm-only today) k/device metadata if the reports agree."""
    ks, devices = set(), set()
    for path in paths:
        with open(path) as f:
            world = json.load(f).get("world", {})
        ks.add(world.get("k"))
        devices.add(world.get("device"))
    return {
        "k": ks.pop() if len(ks) == 1 else None,
        "device": devices.pop() if len(devices) == 1 else None,
    }


def _print_eval(result: dict, *, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return
    print(
        f"top-1 accuracy: {result['top1_accuracy']:.3f} "
        f"({result['top1_correct']}/{result['points']})"
    )
    print(
        f"mean regret:    {result['mean_regret']:.4f} "
        f"over {result['regret_points']} priced point(s)"
    )
    if result["unpriced"]:
        print(f"unpriced:       {result['unpriced']} point(s)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.select",
        description=(
            "Train and evaluate the input-aware kernel selection model "
            "from world-sweep reports."
        ),
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--fit", nargs="+", metavar="REPORT",
        help="fit a model from these results/world_*.json reports",
    )
    mode.add_argument(
        "--eval", nargs="+", metavar="REPORT",
        help="score a model against these reports' full-sweep oracle",
    )
    mode.add_argument(
        "--show", action="store_true",
        help="print the active model's summary",
    )
    parser.add_argument(
        "--out", default="results/select_model.json",
        help="model output path for --fit",
    )
    parser.add_argument(
        "--model", default=None,
        help="model path for --eval/--show (default: the active model)",
    )
    parser.add_argument(
        "--op", default="spmm", help="operation the model selects for"
    )
    parser.add_argument(
        "--max-depth", type=int, default=10, help="CART depth cap"
    )
    parser.add_argument(
        "--min-leaf", type=int, default=1, help="minimum rows per leaf"
    )
    parser.add_argument(
        "--min-top1", type=float, default=None,
        help="with --eval: exit 1 when top-1 accuracy is below this",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --eval: machine-readable JSON to stdout",
    )
    args = parser.parse_args(argv)

    if args.fit:
        rows, sources = load_training_rows(args.fit)
        if not rows:
            print("error: reports contain no labeled points", file=sys.stderr)
            return 1
        meta = _report_meta(args.fit)
        model = fit_model(
            rows,
            op=args.op,
            k=meta["k"],
            device=meta["device"],
            max_depth=args.max_depth,
            min_leaf=args.min_leaf,
            sources=tuple(sources),
        )
        path = save_model(model, args.out)
        stats = model.stats
        print(
            f"[fit {args.op} model: {stats['points']} rows from "
            f"{len(sources)} report(s) -> {path}; "
            f"{stats['leaves']} leaves, depth {stats['depth']}, "
            f"train top-1 {stats['top1_train']:.3f}]"
        )
        return 0

    path = args.model or model_path()
    try:
        model = load_model(path)
    except Exception as exc:  # noqa: BLE001 - CLI surface, report and exit
        print(f"error: cannot load model {path}: {exc}", file=sys.stderr)
        return 1

    if args.show:
        stats = model.stats
        print(f"model:    {path}")
        print(f"op:       {model.op}")
        print(f"kernels:  {', '.join(model.kernels)}")
        print(f"trained:  {', '.join(model.data.get('trained_on', [])) or '-'}")
        print(
            f"tree:     {stats.get('leaves')} leaves, "
            f"depth {stats.get('depth')}, {stats.get('points')} rows, "
            f"train top-1 {stats.get('top1_train', 0.0):.3f}"
        )
        return 0

    rows, _ = load_training_rows(args.eval)
    if not rows:
        print("error: reports contain no labeled points", file=sys.stderr)
        return 1
    result = evaluate_model(model, rows)
    result["model"] = os.path.basename(path)
    _print_eval(result, as_json=args.json)
    if args.min_top1 is not None and result["top1_accuracy"] < args.min_top1:
        print(
            f"error: top-1 accuracy {result['top1_accuracy']:.3f} is below "
            f"the {args.min_top1:.3f} gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
