"""Adversarial fixture: ``waiver/bad``.

The waiver names a rule id that does not exist, so it suppresses
nothing while looking like an approved exception.  Never imported;
analyzed statically by the CI negative-control loop.
"""


def checksum(values):
    total = 0.0  # lint: allow(float-accumulate) not a real rule id
    for v in values:
        total += v
    return total
