"""Fig. 11 — ablation of DTP, HVMA and GCR on four representative graphs."""

from repro.bench import run_fig11, write_report

from conftest import locality_max_edges


def test_fig11_ablation(run_once):
    res = run_once(run_fig11, max_edges=locality_max_edges())
    report = res.render()
    print("\n" + report)
    write_report("fig11", report)

    for graph in res.graphs:
        # DTP + HVMA combined never hurt (paper: "robust to various
        # graphs").
        assert res.speedup(graph, "+dtp+hvma") >= 0.95
        # Adding GCR on top never hurts.
        assert res.speedup(graph, "+dtp+hvma+gcr") >= res.speedup(
            graph, "+dtp+hvma"
        ) * 0.99

    # Graph-dependent GCR benefit (paper: ~40% on Yelp/PPA, <10% on
    # AM/DDI).
    assert res.gcr_gain("yelp") > 0.25
    assert res.gcr_gain("ppa") > 0.25
    assert res.gcr_gain("am") < 0.15
    assert res.gcr_gain("ddi") < 0.15
