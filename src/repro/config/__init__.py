"""``repro.config`` — the declarative ``REPRO_*`` environment registry.

See :mod:`repro.config.registry` for the variable declarations, the
checked ``env_str`` / ``env_int`` / ``env_flag`` readers, and the
README table generator (``python -m repro.config``).
"""

from __future__ import annotations

from .registry import (
    ENV_VARS,
    SUBSYSTEMS,
    EnvVar,
    declared,
    env_flag,
    env_int,
    env_str,
    readme_block_in_sync,
    render_markdown_table,
    render_readme_block,
    update_readme,
)

__all__ = [
    "ENV_VARS",
    "SUBSYSTEMS",
    "EnvVar",
    "declared",
    "env_flag",
    "env_int",
    "env_str",
    "readme_block_in_sync",
    "render_markdown_table",
    "render_readme_block",
    "update_readme",
]
