"""Design-choice ablations beyond the paper's Fig. 11.

The paper fixes several constants (DTP's scale factor alpha, the block
shape, the NnzPerWarp candidate set) without a published sensitivity
study; Section II explicitly criticizes prior work for leaving "task
partition granularity" unstudied.  These sweeps document how HP-SpMM's
simulated performance depends on each choice:

* ``sweep_nnz_per_warp`` — raw granularity sweep (the core trade-off:
  small slices expose parallelism but amplify sparse reloads and
  row-switch writes; large slices starve the device — the tail effect).
* ``sweep_alpha`` — DTP's required-waves threshold (Ineq. 5's alpha).
* ``sweep_warps_per_block`` — block shape (occupancy input of Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import load_graph
from ..kernels import HPSpMM
from ..tuning import CANDIDATE_NNZ_PER_WARP
from .tables import render_table


@dataclass
class AblationResult:
    """One parameter sweep: parameter values vs simulated times."""

    name: str
    graph: str
    k: int
    values: list
    times_us: list[float]
    chosen: object = None  #: the library default / DTP's own pick

    def best(self):
        return self.values[self.times_us.index(min(self.times_us))]

    def regret(self) -> float:
        """Slowdown of the chosen setting vs the sweep's best."""
        if self.chosen is None or self.chosen not in self.values:
            return float("nan")
        t_chosen = self.times_us[self.values.index(self.chosen)]
        return t_chosen / min(self.times_us)

    def render(self) -> str:
        rows = [
            [v, t, "*" if v == self.chosen else ""]
            for v, t in zip(self.values, self.times_us)
        ]
        return render_table(
            [self.name, "time (us)", "chosen"],
            rows,
            title=f"Ablation: {self.name} on {self.graph} (K={self.k})",
        )


def sweep_nnz_per_warp(
    graph: str = "arxiv",
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    candidates: tuple[int, ...] = CANDIDATE_NNZ_PER_WARP,
    max_edges: int | None = None,
) -> AblationResult:
    """Granularity sweep; marks DTP's own pick."""
    S = load_graph(graph, max_edges=max_edges).matrix
    times = [
        HPSpMM(nnz_per_warp=npw).estimate(S, k, device).stats.time_us
        for npw in candidates
    ]
    chosen = HPSpMM().partition(S, k, device).nnz_per_warp
    return AblationResult(
        name="NnzPerWarp",
        graph=graph,
        k=k,
        values=list(candidates),
        times_us=times,
        chosen=chosen,
    )


def sweep_alpha(
    graph: str = "arxiv",
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    alphas: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0),
    max_edges: int | None = None,
) -> AblationResult:
    """DTP scale-factor sweep (Ineq. 5's alpha; library default 4)."""
    S = load_graph(graph, max_edges=max_edges).matrix
    times = [
        HPSpMM(alpha=a).estimate(S, k, device).stats.time_us for a in alphas
    ]
    return AblationResult(
        name="alpha",
        graph=graph,
        k=k,
        values=list(alphas),
        times_us=times,
        chosen=4.0,
    )


def sweep_warps_per_block(
    graph: str = "arxiv",
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    shapes: tuple[int, ...] = (2, 4, 8, 16),
    max_edges: int | None = None,
) -> AblationResult:
    """Block-shape sweep (occupancy input of Eq. 3; library default 8)."""
    S = load_graph(graph, max_edges=max_edges).matrix
    times = [
        HPSpMM(warps_per_block=w).estimate(S, k, device).stats.time_us
        for w in shapes
    ]
    return AblationResult(
        name="WarpsPerBlock",
        graph=graph,
        k=k,
        values=list(shapes),
        times_us=times,
        chosen=8,
    )


def sweep_l2_capacity(
    graph: str = "yelp",
    *,
    k: int = 128,
    device: DeviceSpec = TESLA_V100,
    capacities_mb: tuple[float, ...] = (1.5, 3.0, 6.0, 12.0, 24.0, 48.0),
    max_edges: int | None = None,
) -> AblationResult:
    """What-if L2 sizes: where does GCR's locality benefit come from?

    Reports the GCR speedup (reordered vs original HP-SpMM time) at each
    hypothetical L2 capacity.  The benefit vanishes once the operand
    footprint fits in cache — the same mechanism that makes GCR useless
    on DDI in paper Fig. 11.
    """
    from ..reorder import GCRReorderer

    S = load_graph(graph, max_edges=max_edges).matrix
    reordered = GCRReorderer().apply(S).matrix
    hp = HPSpMM()
    gains = []
    for mb in capacities_mb:
        dev = device.with_(l2_cache_bytes=int(mb * 1024 * 1024))
        t0 = hp.estimate(S, k, dev).stats.time_us
        t1 = hp.estimate(reordered, k, dev).stats.time_us
        gains.append(t0 / t1)
    return AblationResult(
        name="L2 capacity (MB) -> GCR speedup",
        graph=graph,
        k=k,
        values=list(capacities_mb),
        times_us=gains,  # interpreted as speedups by the caller
        chosen=device.l2_cache_bytes / 1024 / 1024,
    )


def run_design_ablations(
    *,
    graphs: tuple[str, ...] = ("arxiv", "ddi"),
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    max_edges: int | None = None,
) -> list[AblationResult]:
    """All three sweeps over the requested graphs."""
    out: list[AblationResult] = []
    for g in graphs:
        out.append(sweep_nnz_per_warp(g, k=k, device=device, max_edges=max_edges))
        out.append(sweep_alpha(g, k=k, device=device, max_edges=max_edges))
        out.append(
            sweep_warps_per_block(g, k=k, device=device, max_edges=max_edges)
        )
    return out
