"""The declarative registry of every ``REPRO_*`` environment variable.

Before this module, thirteen ``REPRO_*`` knobs were read ad hoc across
eight modules and documented (or not) in three separate README tables —
the classic drift recipe: a new variable lands in code, never in docs,
and nothing notices.  This registry is the single source of truth:

* every variable is declared once as an :class:`EnvVar` (name, type,
  default, owning subsystem, one-line meaning);
* readers go through :func:`env_str` / :func:`env_int` /
  :func:`env_flag`, which refuse undeclared names at call time;
* the ``procsafety/env-drift`` rule in :mod:`repro.analysis.procsafety`
  statically rejects any literal ``os.environ`` read of a ``REPRO_*``
  name that is not declared here;
* the README environment-variable table is **generated** from this
  registry (``python -m repro.config --update README.md``) and CI
  verifies it is in sync (``--check``), so the docs cannot go stale.

Adding a variable therefore takes exactly one declaration below; the
static analyzer and the docs check both fail until it exists.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Variable value types (documentation + helper validation).
TYPE_INT = "int"
TYPE_FLAG = "flag"       #: set to anything but ""/"0" to engage
TYPE_STR = "str"
TYPE_PATH = "path"
TYPE_CHOICE = "choice"

VALID_TYPES = (TYPE_INT, TYPE_FLAG, TYPE_STR, TYPE_PATH, TYPE_CHOICE)

#: Owning subsystems, in README table order.
SUBSYSTEMS = (
    "graphs", "bench", "perf", "engine", "store", "obs", "serve", "world",
    "select", "tests",
)


@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable."""

    name: str         #: full ``REPRO_*`` name
    type: str         #: one of :data:`VALID_TYPES`
    default: str      #: human-readable default (as documented)
    subsystem: str    #: owning subsystem (one of :data:`SUBSYSTEMS`)
    description: str  #: one-line meaning for the README table

    def __post_init__(self) -> None:
        if not self.name.startswith("REPRO_"):
            raise ValueError(f"env var name must start with REPRO_: {self.name}")
        if self.type not in VALID_TYPES:
            raise ValueError(f"type must be one of {VALID_TYPES}: {self.type}")
        if self.subsystem not in SUBSYSTEMS:
            raise ValueError(
                f"subsystem must be one of {SUBSYSTEMS}: {self.subsystem}"
            )


#: Every REPRO_* variable the repo reads, by name.  Keep alphabetical
#: within a subsystem; the README table groups by subsystem.
ENV_VARS: dict[str, EnvVar] = {
    v.name: v
    for v in (
        # -- graphs ------------------------------------------------------
        EnvVar(
            "REPRO_MAX_EDGES", TYPE_INT, "1500000", "graphs",
            "edge cap for the scaled Table-II datasets",
        ),
        EnvVar(
            "REPRO_CACHE_DIR", TYPE_PATH, "~/.cache/repro-graphs", "graphs",
            "on-disk cache for generated graphs",
        ),
        # -- bench -------------------------------------------------------
        EnvVar(
            "REPRO_SUBGRAPHS", TYPE_INT, "96", "bench",
            "graph-sampling dataset size (paper: 838)",
        ),
        EnvVar(
            "REPRO_RESULTS_DIR", TYPE_PATH, "./results", "bench",
            "where experiment reports and manifests are written",
        ),
        # -- perf --------------------------------------------------------
        EnvVar(
            "REPRO_JOBS", TYPE_INT, "1", "perf",
            "process-pool width for sweeps (`1` serial, `auto`/`0` = cpu "
            "count)",
        ),
        EnvVar(
            "REPRO_NO_ESTIMATE_CACHE", TYPE_FLAG, "off", "perf",
            "set to `1` to bypass the estimate memo cache",
        ),
        EnvVar(
            "REPRO_ESTIMATE_CACHE_DIR", TYPE_PATH, "memory only", "perf",
            "optional on-disk layer for estimate entries",
        ),
        EnvVar(
            "REPRO_ESTIMATE_CACHE_SIZE", TYPE_INT, "4096", "perf",
            "in-process estimate-cache LRU capacity (entries)",
        ),
        # -- engine ------------------------------------------------------
        EnvVar(
            "REPRO_NO_PLAN_CHECK", TYPE_FLAG, "off", "engine",
            "set to `1` to skip per-sweep-point kernel plan checking",
        ),
        # -- store -------------------------------------------------------
        EnvVar(
            "REPRO_NO_SHARED_STORE", TYPE_FLAG, "off", "store",
            "set to `1` to disable the shared store (executors revert to "
            "pickling matrices)",
        ),
        EnvVar(
            "REPRO_STORE_BACKEND", TYPE_CHOICE, "shm", "store",
            "`shm` (POSIX shared memory) or `mmap` (files under "
            "`REPRO_STORE_DIR`); `shm` degrades to `mmap` automatically",
        ),
        EnvVar(
            "REPRO_STORE_DIR", TYPE_PATH, "per-pid tempdir", "store",
            "directory for `mmap`-backend segment files",
        ),
        # -- obs ---------------------------------------------------------
        EnvVar(
            "REPRO_TRACE", TYPE_STR, "off", "obs",
            "`1` = trace to `repro-trace.json`; any other non-empty value "
            "= trace to that path",
        ),
        # -- serve -------------------------------------------------------
        EnvVar(
            "REPRO_SERVE_HOST", TYPE_STR, "127.0.0.1", "serve",
            "bind/connect address for the socket front end",
        ),
        EnvVar(
            "REPRO_SERVE_PORT", TYPE_INT, "0", "serve",
            "socket front-end TCP port (`0` = OS-assigned ephemeral)",
        ),
        EnvVar(
            "REPRO_SERVE_QUEUE_HIGH", TYPE_INT, "512", "serve",
            "queue-depth watermark above which the front end load-sheds "
            "(`STATUS_SHED` + retry hint) instead of enqueueing",
        ),
        EnvVar(
            "REPRO_SERVE_ACCEPT_BACKLOG", TYPE_INT, "128", "serve",
            "TCP accept backlog for the socket front end's listener",
        ),
        EnvVar(
            "REPRO_SERVE_MAX_FRAME", TYPE_INT, "8388608", "serve",
            "largest accepted wire frame in bytes (guards the length "
            "prefix against garbage/hostile peers)",
        ),
        # -- world -------------------------------------------------------
        EnvVar(
            "REPRO_WORLD_SAMPLES", TYPE_INT, "64", "world",
            "default sampled-config count for `python -m repro.world`",
        ),
        EnvVar(
            "REPRO_WORLD_SEED", TYPE_INT, "0", "world",
            "universe sampling seed (same seed = identical config list)",
        ),
        EnvVar(
            "REPRO_WORLD_MAX_NODES", TYPE_INT, "2048", "world",
            "upper bound of the sampled size axis (log-uniform strata)",
        ),
        EnvVar(
            "REPRO_WORLD_K", TYPE_INT, "32", "world",
            "feature width the world sweep estimates every kernel at",
        ),
        EnvVar(
            "REPRO_WORLD_WORKERS", TYPE_INT, "0", "world",
            "shard workers for the world sweep (`0`/`1` = inline dispatch)",
        ),
        # -- select ------------------------------------------------------
        EnvVar(
            "REPRO_SELECT_MODEL", TYPE_PATH, "packaged default model",
            "select",
            "selection-model JSON the active policy loads (default: the "
            "in-repo model fit from the seed-0 240-config universe)",
        ),
        EnvVar(
            "REPRO_SELECT_TOPK", TYPE_INT, "3", "select",
            "predicted-frontier width: candidates kept per graph when a "
            "caller asks for the top-k predicted configs",
        ),
        EnvVar(
            "REPRO_NO_SELECT", TYPE_FLAG, "off", "select",
            "set to `1` to disable the selection policy everywhere "
            "(callers use their historical full-sweep/EWMA paths)",
        ),
        # -- tests -------------------------------------------------------
        EnvVar(
            "REPRO_NO_DURATION_BUDGET", TYPE_FLAG, "off", "tests",
            "set to `1` to disable the test-suite duration budget",
        ),
    )
}


def declared(name: str) -> bool:
    """True when ``name`` is a registered ``REPRO_*`` variable."""
    return name in ENV_VARS


def _require(name: str) -> EnvVar:
    var = ENV_VARS.get(name)
    if var is None:
        raise KeyError(
            f"undeclared environment variable {name!r}; declare it in "
            f"repro.config.registry.ENV_VARS (the procsafety env-drift "
            f"rule enforces this statically)"
        )
    return var


def env_str(name: str, default: str = "") -> str:
    """Raw string value of a *declared* variable (stripped)."""
    _require(name)
    return os.environ.get(name, default).strip()


def env_int(name: str, default: int) -> int:
    """Integer value of a *declared* variable; empty/unset -> default."""
    _require(name)
    raw = os.environ.get(name, "").strip()
    if not raw:
        return int(default)
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer; got {raw!r}"
        ) from None


def env_flag(name: str) -> bool:
    """True when a *declared* flag variable is set to anything but 0.

    The repo-wide flag convention: unset, empty, and ``"0"`` mean *off*;
    any other value means *on*.
    """
    _require(name)
    return os.environ.get(name, "").strip() not in ("", "0")


# ----------------------------------------------------------------------
# README table generation
# ----------------------------------------------------------------------

#: Markers delimiting the generated block in README.md.
TABLE_BEGIN = "<!-- env-table:begin (generated by `python -m repro.config --update README.md`; do not edit by hand) -->"
TABLE_END = "<!-- env-table:end -->"


def render_markdown_table() -> str:
    """The README environment-variable table, grouped by subsystem."""
    lines = [
        "| variable | subsystem | type | default | meaning |",
        "|---|---|---|---|---|",
    ]
    for subsystem in SUBSYSTEMS:
        rows = [v for v in ENV_VARS.values() if v.subsystem == subsystem]
        for v in sorted(rows, key=lambda v: v.name):
            lines.append(
                f"| `{v.name}` | {v.subsystem} | {v.type} "
                f"| {v.default} | {v.description} |"
            )
    return "\n".join(lines)


def render_readme_block() -> str:
    """The full generated block, markers included."""
    return f"{TABLE_BEGIN}\n{render_markdown_table()}\n{TABLE_END}"


def readme_block_in_sync(readme_text: str) -> bool:
    """True when ``readme_text`` contains the current generated block."""
    return render_readme_block() in readme_text


def update_readme(readme_text: str) -> str:
    """``readme_text`` with the block between the markers regenerated.

    Raises :class:`ValueError` when the markers are missing or out of
    order — the table's home in the README must exist before it can be
    refreshed.
    """
    begin = readme_text.find(TABLE_BEGIN)
    end = readme_text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            "README has no env-table markers; add the "
            "`<!-- env-table:begin ... -->` / `<!-- env-table:end -->` "
            "pair where the table should live"
        )
    return (
        readme_text[:begin] + render_readme_block()
        + readme_text[end + len(TABLE_END):]
    )
