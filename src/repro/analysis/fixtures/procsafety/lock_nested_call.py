"""Adversarial fixture: ``procsafety/nested-lock-call``.

``drain`` calls a sibling method while holding the queue lock; the
sibling takes the stats lock — invisible lock nesting, the way
lock-order cycles are born.  Never imported; analyzed statically by the
CI negative-control loop.
"""

import threading


class Draining:
    def __init__(self):
        self._queue_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.pending = []

    def drain(self):
        with self._queue_lock:
            while self.pending:
                self._account(self.pending.pop())

    def _account(self, item):
        with self._stats_lock:
            self.completed = getattr(self, "completed", 0) + 1
