"""GNN models: multi-layer GCN and the GraphSAINT training wrapper.

These are the models of paper Table V: GCN trained full-graph (8 layers
on arxiv for DGL, 4 on Flickr for PyG) and GraphSAINT trained with
graph sampling (4 layers on Amazon, 3 on Yelp).  GraphSAINT's model is a
GCN backbone applied to sampled subgraphs with loss normalization
weights.
"""

from __future__ import annotations

import numpy as np

from .attention import edge_softmax, leaky_relu, sddmm_op, weighted_spmm
from .autograd import Tensor, cross_entropy
from .layers import GCNConv, Linear, Module
from .sparse_ops import GraphOperand
from .timing import TimingContext


class GCN(Module):
    """An ``num_layers``-deep GCN with a fixed hidden width."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int,
        *,
        dropout_p: float = 0.1,
        seed: int = 0,
    ):
        super().__init__()
        if num_layers < 2:
            raise ValueError("GCN needs at least 2 layers")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers = [
            GCNConv(
                dims[i],
                dims[i + 1],
                rng,
                activation=(i < num_layers - 1),
                dropout_p=dropout_p if i < num_layers - 1 else 0.0,
            )
            for i in range(num_layers)
        ]
        self.hidden = hidden
        self.num_classes = num_classes

    def __call__(
        self,
        graph: GraphOperand,
        x: Tensor,
        timing: TimingContext | None = None,
    ) -> Tensor:
        h = x
        for layer in self.layers:
            h = layer(graph, h, timing)
        return h

    def loss(
        self,
        graph: GraphOperand,
        x: Tensor,
        labels: np.ndarray,
        timing: TimingContext | None = None,
        weights: np.ndarray | None = None,
    ) -> Tensor:
        logits = self(graph, x, timing)
        if timing is not None:
            timing.record_elementwise(logits.data.size, num_arrays=3)
        return cross_entropy(logits, labels, weights)


class DotGATConv(Module):
    """Dot-product attention convolution (single head).

    Forward per layer: ``H = X @ W``; edge scores via SDDMM
    (``e_uv = <H_v, H_u>`` scaled by ``1/sqrt(K)``); LeakyReLU; edge
    softmax per destination; aggregation via value-weighted SpMM.  Every
    training step therefore runs SDDMM and SpMM in both directions —
    exactly the kernel pair the paper accelerates.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        activation: bool = True,
        slope: float = 0.2,
    ):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng)
        self.activation = activation
        self.slope = slope
        self.out_features = out_features

    def __call__(
        self,
        graph: GraphOperand,
        x: Tensor,
        timing: TimingContext | None = None,
    ) -> Tensor:
        from .autograd import relu

        h = self.linear(x, timing)
        # Raw dot-product scores; the edge softmax is max-shifted so no
        # extra temperature scaling is needed for stability.
        scores = sddmm_op(graph, h, h, timing)
        scores = leaky_relu(scores, self.slope)
        alpha = edge_softmax(graph, scores, timing)
        out = weighted_spmm(graph, alpha, h, timing)
        if self.activation:
            if timing is not None:
                timing.record_elementwise(out.data.size)
            out = relu(out)
        return out


class GAT(Module):
    """A stack of dot-product attention layers (GAT-style model)."""

    def __init__(
        self,
        in_features: int,
        hidden: int,
        num_classes: int,
        num_layers: int,
        *,
        seed: int = 0,
    ):
        super().__init__()
        if num_layers < 2:
            raise ValueError("GAT needs at least 2 layers")
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers = [
            DotGATConv(
                dims[i], dims[i + 1], rng, activation=(i < num_layers - 1)
            )
            for i in range(num_layers)
        ]

    def __call__(
        self,
        graph: GraphOperand,
        x: Tensor,
        timing: TimingContext | None = None,
    ) -> Tensor:
        h = x
        for layer in self.layers:
            h = layer(graph, h, timing)
        return h

    def loss(
        self,
        graph: GraphOperand,
        x: Tensor,
        labels: np.ndarray,
        timing: TimingContext | None = None,
    ) -> Tensor:
        logits = self(graph, x, timing)
        if timing is not None:
            timing.record_elementwise(logits.data.size, num_arrays=3)
        return cross_entropy(logits, labels)


def saint_normalization(
    parent_num_nodes: int, node_map: np.ndarray, num_subgraphs_seen: int
) -> np.ndarray:
    """GraphSAINT loss-normalization weights (simplified estimator).

    GraphSAINT weighs each sampled node's loss by the inverse of its
    sampling probability; with degree-proportional node sampling the
    empirical estimator reduces to ``1 / count_seen`` aggregated over
    past minibatches.  We use the one-shot approximation
    ``parent_n / (|V_sub| * num_subgraphs)``-scaled uniform weights,
    which keeps the estimator unbiased in expectation.
    """
    n_sub = node_map.size
    if n_sub == 0:
        return np.ones(0, dtype=np.float32)
    w = np.full(
        n_sub,
        parent_num_nodes / (n_sub * max(1, num_subgraphs_seen)),
        dtype=np.float32,
    )
    return w
