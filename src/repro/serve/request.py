"""Request/response records for the estimation-serving layer.

A request names everything that identifies one kernel-estimate answer —
op, kernel, graph-registry name, feature width, device — plus the
serving policy for producing it: an optional relative deadline and
whether a degraded (quick cost-model) answer is acceptable when the
full simulation would miss that deadline.

Two derived keys drive the server's batching:

* :attr:`EstimateRequest.batch_key` — the *structural* identity (graph
  name + edge cap).  Requests sharing it are micro-batched together so
  the matrix is loaded once and their estimate-cache keys share the
  same structural fingerprint.
* :attr:`EstimateRequest.signature` — the *full* estimate identity.
  Requests sharing it are answered by a single cost-model evaluation.

Both records travel over the socket front end (:mod:`repro.serve.net`)
as plain JSON objects; :func:`request_to_wire` /
:func:`request_from_wire` and the response pair below are the single
encode/decode points, so the wire schema cannot drift from the
dataclasses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..engine.bounds import VALID_BOUNDS
from ..engine.registry import VALID_OPS  # noqa: F401 - re-exported

#: Response statuses, in decreasing order of answer quality.
STATUS_OK = "ok"              #: full cost-model simulation
STATUS_DEGRADED = "degraded"  #: quick roofline answer (deadline pressure)
STATUS_TIMEOUT = "timeout"    #: deadline missed, degradation not allowed
STATUS_SHED = "shed"          #: load-shed by the front end before queueing
STATUS_ERROR = "error"        #: request could not be evaluated at all
STATUSES = (
    STATUS_OK, STATUS_DEGRADED, STATUS_TIMEOUT, STATUS_SHED, STATUS_ERROR,
)


@dataclass(frozen=True)
class EstimateRequest:
    """One kernel-estimate query against the serving layer."""

    op: str                        #: "spmm" | "sddmm"
    kernel: str                    #: kernel registry name (e.g. "hp-spmm")
    graph: str                     #: graph-registry name (Table II)
    k: int = 64                    #: feature width
    device: str = "v100"           #: device short name (see gpusim.DEVICES)
    deadline_s: float | None = None  #: relative deadline from submission
    allow_degraded: bool = True    #: quick-model fallback permitted?
    max_edges: int | None = None   #: registry edge cap (None = env default)

    def __post_init__(self) -> None:
        if self.op not in VALID_OPS:
            raise ValueError(
                f"op must be one of {VALID_OPS}, got {self.op!r}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError(
                f"deadline_s must be non-negative, got {self.deadline_s}"
            )

    @property
    def batch_key(self) -> tuple:
        """Structural micro-batching key: same key -> same loaded matrix."""
        return (self.graph, self.max_edges)

    @property
    def signature(self) -> tuple:
        """Full estimate identity: equal signatures share one evaluation."""
        return (
            self.op, self.kernel, self.graph, self.k,
            self.device, self.max_edges,
        )


@dataclass(frozen=True)
class EstimateResponse:
    """The serving layer's answer to one :class:`EstimateRequest`."""

    request: EstimateRequest
    status: str                    #: one of :data:`STATUSES`
    time_s: float | None = None    #: simulated kernel seconds (ok/degraded)
    preprocessing_s: float = 0.0   #: modeled host preprocessing seconds
    bound: str | None = None       #: dominant bound ("dram", "balance", ...)
    error: str | None = None       #: failure detail for STATUS_ERROR
    latency_s: float = 0.0         #: measured submit -> response latency
    queue_wait_s: float = 0.0      #: measured time spent queued
    batch_id: int = -1             #: micro-batch that served this request
    batch_size: int = 0            #: total requests in that batch
    retry_after_s: float | None = None  #: STATUS_SHED back-off hint

    def __post_init__(self) -> None:
        # Schema assertion: every answer's bound label must come from
        # the engine's canonical vocabulary (repro.engine.bounds), so a
        # new label cannot leak into serve reports unreviewed.
        if self.bound is not None and self.bound not in VALID_BOUNDS:
            raise ValueError(
                f"unknown bound label {self.bound!r}; valid bounds are "
                f"{list(VALID_BOUNDS)}"
            )
        if self.status not in STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; valid statuses are "
                f"{list(STATUSES)}"
            )

    @property
    def answered(self) -> bool:
        """True when a usable estimate came back (full or degraded)."""
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED

    @property
    def total_time_s(self) -> float | None:
        """Kernel + preprocessing, mirroring the kernel-API results."""
        if self.time_s is None:
            return None
        return self.time_s + self.preprocessing_s


# ----------------------------------------------------------------------
# Wire codec (the socket front end's JSON frame payloads)
# ----------------------------------------------------------------------
#
# JSON round-trips every field exactly: ints stay ints, and Python's
# float repr/parse is shortest-round-trip, so a response encoded on the
# server and decoded on the client compares equal — the golden
# socket-vs-in-process report test depends on this.

def request_to_wire(request: EstimateRequest) -> dict:
    """``request`` as a plain JSON-ready dict."""
    return asdict(request)


def request_from_wire(payload: dict) -> EstimateRequest:
    """Decode a request dict; raises ``ValueError`` on a bad payload."""
    if not isinstance(payload, dict):
        raise ValueError(f"request payload must be an object, got {payload!r}")
    try:
        return EstimateRequest(**payload)
    except TypeError as exc:  # unknown/missing fields
        raise ValueError(f"malformed request payload: {exc}") from None


def response_to_wire(response: EstimateResponse) -> dict:
    """``response`` as a plain JSON-ready dict (request nested)."""
    out = asdict(response)
    out["request"] = asdict(response.request)
    return out


def response_from_wire(payload: dict) -> EstimateResponse:
    """Decode a response dict; raises ``ValueError`` on a bad payload."""
    if not isinstance(payload, dict) or "request" not in payload:
        raise ValueError(
            f"response payload must be an object with a request, "
            f"got {payload!r}"
        )
    fields = dict(payload)
    request = request_from_wire(fields.pop("request"))
    try:
        return EstimateResponse(request=request, **fields)
    except TypeError as exc:
        raise ValueError(f"malformed response payload: {exc}") from None
