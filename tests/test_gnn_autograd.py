"""Autograd engine: gradients checked against finite differences."""

import numpy as np
import pytest

from repro.gnn import (
    Tensor,
    add,
    cross_entropy,
    dropout,
    log_softmax,
    matmul,
    nll_loss,
    relu,
)


def numerical_grad(f, x, eps=1e-3):
    """Central finite differences of scalar-valued f at x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        hi = f()
        x[i] = orig - eps
        lo = f()
        x[i] = orig
        g[i] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


def test_matmul_gradients():
    rng = np.random.default_rng(0)
    a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
    out = matmul(a, b)
    seed = rng.standard_normal(out.shape).astype(np.float32)
    out.backward(seed)

    def f_a():
        return float(((a.data @ b.data) * seed).sum())

    np.testing.assert_allclose(
        a.grad, numerical_grad(f_a, a.data), rtol=1e-2, atol=1e-2
    )
    np.testing.assert_allclose(b.grad, a.data.T @ seed, rtol=1e-5)


def test_add_broadcast_gradient():
    a = Tensor(np.zeros((3, 4), np.float32), requires_grad=True)
    bias = Tensor(np.zeros((1, 4), np.float32), requires_grad=True)
    out = add(a, bias)
    out.backward(np.ones((3, 4), np.float32))
    np.testing.assert_allclose(a.grad, 1.0)
    np.testing.assert_allclose(bias.grad, 3.0)  # summed over broadcast dim


def test_relu_gradient_masks_negative():
    a = Tensor(np.array([[-1.0, 2.0]], np.float32), requires_grad=True)
    out = relu(a)
    out.backward(np.ones_like(a.data))
    np.testing.assert_allclose(a.grad, [[0.0, 1.0]])
    np.testing.assert_allclose(out.data, [[0.0, 2.0]])


def test_log_softmax_rows_sum_to_one():
    a = Tensor(np.random.default_rng(1).standard_normal((5, 7)))
    out = log_softmax(a)
    np.testing.assert_allclose(
        np.exp(out.data).sum(axis=1), 1.0, rtol=1e-5
    )


def test_log_softmax_gradient_vs_numeric():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((2, 3)).astype(np.float32)
    a = Tensor(x.copy(), requires_grad=True)
    seed = rng.standard_normal((2, 3)).astype(np.float32)
    log_softmax(a).backward(seed)

    def f():
        z = a.data - a.data.max(axis=1, keepdims=True)
        ls = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        return float((ls * seed).sum())

    np.testing.assert_allclose(
        a.grad, numerical_grad(f, a.data), rtol=2e-2, atol=2e-2
    )


def test_cross_entropy_gradient_vs_numeric():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((4, 5)).astype(np.float32)
    labels = np.array([0, 2, 4, 1])
    a = Tensor(x.copy(), requires_grad=True)
    loss = cross_entropy(a, labels)
    loss.backward()

    def f():
        z = a.data - a.data.max(axis=1, keepdims=True)
        ls = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        return float(-np.mean(ls[np.arange(4), labels]))

    np.testing.assert_allclose(
        a.grad, numerical_grad(f, a.data), rtol=2e-2, atol=2e-2
    )


def test_nll_loss_weights():
    logp = Tensor(
        np.log(np.full((2, 2), 0.5, np.float32)), requires_grad=True
    )
    loss_uniform = nll_loss(logp, np.array([0, 1]))
    loss_weighted = nll_loss(
        logp, np.array([0, 1]), weights=np.array([1.0, 3.0])
    )
    # Both rows carry the same -log(0.5); weighting keeps the mean.
    np.testing.assert_allclose(loss_uniform.data, np.log(2), rtol=1e-5)
    np.testing.assert_allclose(loss_weighted.data, np.log(2), rtol=1e-5)


def test_dropout_modes():
    rng = np.random.default_rng(4)
    a = Tensor(np.ones((100, 10), np.float32), requires_grad=True)
    out_eval = dropout(a, 0.5, rng, training=False)
    assert out_eval is a  # identity when not training
    out_train = dropout(a, 0.5, rng, training=True)
    zeros = np.count_nonzero(out_train.data == 0)
    assert 300 < zeros < 700  # about half
    # Kept entries are scaled by 1/(1-p).
    kept = out_train.data[out_train.data != 0]
    np.testing.assert_allclose(kept, 2.0)


def test_gradient_accumulates_over_reuse():
    a = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
    out = add(a, a)
    out.backward(np.ones((2, 2), np.float32))
    np.testing.assert_allclose(a.grad, 2.0)


def test_backward_through_chain():
    a = Tensor(np.full((1, 4), 2.0, np.float32), requires_grad=True)
    w = Tensor(np.eye(4, dtype=np.float32), requires_grad=True)
    out = relu(matmul(a, w))
    out.backward(np.ones((1, 4), np.float32))
    np.testing.assert_allclose(a.grad, 1.0)


def test_detach_blocks_gradient():
    a = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
    d = a.detach()
    assert not d.requires_grad
    np.testing.assert_array_equal(d.data, a.data)
