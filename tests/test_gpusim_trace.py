"""Exact trace replay of Algorithm 3 validates the analytic cost model."""

import numpy as np
import pytest

from repro.gpusim import TESLA_V100, trace_hp_spmm
from repro.kernels.common import (
    per_warp_nnz,
    row_segments_per_slice,
    warp_slice_starts,
)
from repro.kernels.hp_spmm import _hp_spmm_workload
from repro.tuning import fixed_partition

from tests.conftest import random_hybrid


@pytest.fixture(scope="module")
def tiny():
    return random_hybrid(120, 120, 1200, seed=77)


def test_trace_rejects_large_inputs():
    big = random_hybrid(500, 500, 30_000, seed=1)
    with pytest.raises(ValueError):
        trace_hp_spmm(big, 32, nnz_per_warp=64, max_nnz=1000)
    with pytest.raises(ValueError):
        trace_hp_spmm(big, 32, nnz_per_warp=0)


def test_trace_empty_matrix():
    from repro.formats import HybridMatrix

    S = HybridMatrix.from_arrays([], [], shape=(4, 4))
    counts = trace_hp_spmm(S, 32, nnz_per_warp=32)
    assert counts.warps == 0
    assert counts.instructions == 0


def test_trace_warp_partition_matches_analytic(tiny):
    npw = 64
    counts = trace_hp_spmm(tiny, 32, nnz_per_warp=npw)
    expected = per_warp_nnz(tiny.nnz, npw)
    assert counts.warps == expected.size
    np.testing.assert_array_equal(counts.per_warp_nnz, expected)


def test_trace_row_switches_match_segment_count(tiny):
    # The analytic model's "segments per slice" must equal the literal
    # replay's row-switch store count (including final flushes).
    npw = 32
    counts = trace_hp_spmm(tiny, 32, nnz_per_warp=npw)
    starts = warp_slice_starts(tiny.nnz, npw)
    segments = row_segments_per_slice(tiny.row, starts, npw)
    assert counts.row_switches == int(segments.sum())


def test_trace_dense_access_per_nonzero(tiny):
    counts = trace_hp_spmm(tiny, 64, nnz_per_warp=64, vector_width=2)
    assert counts.dense_accesses == tiny.nnz
    # K=64 fp32 rows are sector-aligned: exactly 8 sectors per access.
    assert counts.dense_sectors == tiny.nnz * 8


def test_trace_sparse_sectors_match_analytic(tiny):
    npw = 64
    k = 32
    counts = trace_hp_spmm(tiny, k, nnz_per_warp=npw)
    part = fixed_partition(tiny.nnz, k, npw, device=TESLA_V100)
    work, _ = _hp_spmm_workload(tiny, k, part, TESLA_V100)
    # Analytic sparse traffic (l2 + dram shares of it) is bytes-exact up
    # to the final partial tile's rounding.
    analytic = float(
        (work.dram_sectors.sum() + work.l2_sectors.sum())
    )
    # Compare only the sparse portion: reconstruct it from the formula.
    analytic_sparse = tiny.nnz * 12.0 / 32.0
    assert abs(counts.sparse_sectors - analytic_sparse) <= counts.warps * 3
    assert analytic > 0


def test_trace_instruction_count_tracks_analytic(tiny):
    npw = 64
    k = 64
    vw = 2
    counts = trace_hp_spmm(tiny, k, nnz_per_warp=npw, vector_width=vw)
    part = fixed_partition(tiny.nnz, k, npw, vector_width=vw,
                           device=TESLA_V100)
    work, _ = _hp_spmm_workload(tiny, k, part, TESLA_V100)
    analytic_instr = float(work.issue.sum())
    # Within 35%: the analytic model adds loop-overhead terms the trace
    # does not; both count the same loads/FMAs/stores.
    assert counts.instructions == pytest.approx(analytic_instr, rel=0.35)
    assert counts.fma_instructions == pytest.approx(
        float(work.fma.sum()), rel=0.05
    )


def test_trace_hit_rate_responds_to_locality():
    # A matrix whose columns all hit few rows caches perfectly; a matrix
    # scanning many columns does not.
    hot = random_hybrid(2000, 8, 4000, seed=5)
    cold = random_hybrid(2000, 2000, 4000, seed=6)
    dev = TESLA_V100.with_(l2_cache_bytes=16 * 1024)
    h = trace_hp_spmm(hot, 64, nnz_per_warp=64, vector_width=2, device=dev)
    c = trace_hp_spmm(cold, 64, nnz_per_warp=64, vector_width=2, device=dev)
    assert h.dense_hit_rate > c.dense_hit_rate + 0.3


# ---------------------------------------------------------------------
# HP-SDDMM trace (Algorithm 4)
# ---------------------------------------------------------------------
def test_sddmm_trace_a1_reuse(tiny):
    """A1 loads happen once per row segment, A2 once per nonzero."""
    from repro.gpusim import trace_hp_sddmm

    npw = 32
    counts = trace_hp_sddmm(tiny, 32, nnz_per_warp=npw)
    starts = warp_slice_starts(tiny.nnz, npw)
    segments = int(row_segments_per_slice(tiny.row, starts, npw).sum())
    # dense accesses = A2 per nonzero + A1 per segment.
    assert counts.dense_accesses == tiny.nnz + segments
    assert counts.row_switches == segments


def test_sddmm_trace_fewer_reads_than_edge_parallel(tiny):
    """Register reuse: HP-SDDMM reads fewer operand rows than 2x nnz."""
    from repro.gpusim import trace_hp_sddmm

    counts = trace_hp_sddmm(tiny, 64, nnz_per_warp=64, vector_width=2)
    assert counts.dense_accesses < 2 * tiny.nnz


def test_sddmm_trace_rejects_large():
    from repro.gpusim import trace_hp_sddmm

    big = random_hybrid(500, 500, 30_000, seed=2)
    with pytest.raises(ValueError):
        trace_hp_sddmm(big, 32, nnz_per_warp=64, max_nnz=1000)
