"""Section IV-D — reordering-technique efficiency comparison.

The paper reports, for the `proteins` dataset: GCR 4.6 s, the
LSH/Jaccard method of [35] 15.56 s, and the pair-merging method of [11]
over 120 minutes.  Here all three run in the same NumPy substrate, so
their wall-clock *ratio* is meaningful; pair merging's quadratic cost is
measured on a node-subsample and extrapolated when the full run would
exceed ``pairmerge_budget_s``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..formats import HybridMatrix
from ..graphs import induced_subgraph, load_graph
from ..reorder import GCRReorderer, LSHReorderer, PairMergeReorderer
from .tables import render_table


@dataclass
class ReorderEffResult:
    """Wall-clock (seconds) of each reordering technique."""

    graph: str
    gcr_s: float
    lsh_s: float
    pairmerge_s: float
    pairmerge_extrapolated: bool

    def render(self) -> str:
        pm = f"{self.pairmerge_s:.2f}"
        if self.pairmerge_extrapolated:
            pm = f">= {pm} (extrapolated)"
        return render_table(
            ["graph", "GCR (ours)", "LSH/Jaccard [35]", "pair-merge [11]"],
            [[self.graph, f"{self.gcr_s:.2f}", f"{self.lsh_s:.2f}", pm]],
            title=(
                "Section IV-D — reordering efficiency in seconds "
                "(paper, full-size proteins: 4.6 / 15.56 / >7200)"
            ),
        )


def estimate_pairmerge_s(
    S: HybridMatrix, *, budget_s: float = 30.0, probe_nodes: int = 400
) -> tuple[float, bool]:
    """Measure pair merging, extrapolating quadratically when too slow.

    Runs the full algorithm when the probe predicts it fits in
    ``budget_s``; otherwise measures a ``probe_nodes`` induced subgraph
    and scales by ``(N / probe)^2`` (the algorithm's pair-comparison
    count is quadratic in nodes).
    """
    n = S.shape[0]
    probe_nodes = min(probe_nodes, n)
    rng = np.random.default_rng(0)
    nodes = rng.choice(n, size=probe_nodes, replace=False)
    probe = induced_subgraph(S, nodes)
    t0 = time.perf_counter()  # lint: allow(wallclock) §IV-D compares measured reorderer wall-clock
    PairMergeReorderer().permutation(probe)
    probe_s = time.perf_counter() - t0  # lint: allow(wallclock) see above
    predicted = probe_s * (n / probe_nodes) ** 2
    if predicted <= budget_s:
        t0 = time.perf_counter()  # lint: allow(wallclock) measured reorderer pass
        PairMergeReorderer().permutation(S)
        return time.perf_counter() - t0, False  # lint: allow(wallclock) see above
    return predicted, True


def run_reorder_efficiency(
    *,
    graph: str = "proteins",
    max_edges: int | None = None,
    pairmerge_budget_s: float = 30.0,
) -> ReorderEffResult:
    """Run the reordering-efficiency comparison."""
    S = load_graph(graph, max_edges=max_edges).matrix
    gcr = GCRReorderer().apply(S)
    lsh = LSHReorderer().apply(S)
    pm_s, extrapolated = estimate_pairmerge_s(S, budget_s=pairmerge_budget_s)
    return ReorderEffResult(
        graph=graph,
        gcr_s=gcr.elapsed_s,
        lsh_s=lsh.elapsed_s,
        pairmerge_s=pm_s,
        pairmerge_extrapolated=extrapolated,
    )
