"""Sputnik baseline (Gale et al., SC'20) — sorted row-parallel 1-D tiling.

Sputnik targets moderately-sparse deep-learning matrices.  It sorts rows
by length as a *preprocessing* pass (alleviating imbalance: similar-size
rows land in the same block, so a block's slot time matches its average
row), uses vectorized loads with reverse-offset alignment, and 1-D tiles
along the row.  Its weakness on GNN graphs is per-row tile bookkeeping
overhead on the many short rows of power-law graphs; its preprocessing
must be re-run whenever the graph changes, which graph-sampling training
does every iteration (paper Table IV / Section IV-C).
"""

from __future__ import annotations


from ...gpusim import CostParams, DeviceSpec, simulate_launch
from ...formats import HybridMatrix
from ..api import SpMMKernel, register_spmm
from ..preproc import DEFAULT_HOST, HostCostParams, sputnik_preprocess_s
from .node_parallel import NodeParallelProfile, build_node_parallel_workload

SPUTNIK_PROFILE = NodeParallelProfile(
    features_per_warp=64,
    vector_width=4,                # float4 / reverse-offset alignment
    sparse_instr_per_nnz=0.4,
    sparse_sectors_per_nnz=0.25,
    misaligned_dense=False,
    row_overhead_instr=28.0,       # 1-D tile setup dominates short rows
    warps_per_block=8,
    registers_per_thread=48,       # wide vector accumulators
    shared_mem_per_block=8 * 32 * 8,
    sorted_rows=True,
    dense_traffic_factor=1.05,
)


@register_spmm
class SputnikSpMM(SpMMKernel):
    """Sputnik: row-length sorting (preprocessing) + vectorized 1-D tiles."""

    name = "sputnik"

    def __init__(
        self,
        profile: NodeParallelProfile = SPUTNIK_PROFILE,
        host: HostCostParams = DEFAULT_HOST,
    ) -> None:
        self.profile = profile
        self.host = host

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        work, config = build_node_parallel_workload(S, k, self.profile, device)
        stats = simulate_launch(device, work, config, cost)
        return stats, sputnik_preprocess_s(S, self.host)
