"""Cycle-level cost accounting for simulated kernels.

The model is a bulk-synchronous *roofline + critical path* hybrid:

* each warp's serial execution time is derived from its instruction count
  and its memory transactions (latency partially hidden by memory-level
  parallelism);
* each scheduling wave is then bound below by four device-level
  throughput rooflines (instruction issue, FP32 FMA, L2 bandwidth, DRAM
  bandwidth) *and* by the critical path of its slowest warp.

Load imbalance (node-parallel kernels on skewed graphs) surfaces through
the critical-path term; the tail effect (paper Fig. 6) surfaces through
partial waves that cannot saturate the throughput terms; HVMA surfaces
through reduced instruction counts and transaction counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CostParams:
    """Microarchitectural cost constants shared by every kernel model.

    The defaults are calibrated to public V100/A100 microbenchmarks
    (instruction issue latency, L2/DRAM load-to-use latency) and are held
    fixed across all kernels and experiments — only the *work* each kernel
    generates differs.
    """

    #: Cycles between dependent instructions of one warp (issue + ALU lat).
    cycles_per_instruction: float = 6.0
    #: Load-to-use latency of an L2 hit, in cycles.
    l2_latency: float = 220.0
    #: Load-to-use latency of a DRAM access, in cycles.
    dram_latency: float = 470.0
    #: Memory-level parallelism: outstanding transactions per warp that
    #: overlap, dividing observed latency on the warp's critical path.
    mlp: float = 16.0
    #: Cycles per warp-wide atomic RMW op on its critical path.
    atomic_latency: float = 40.0
    #: Device-level warp-atomic throughput (ops / cycle / SM).
    atomic_throughput_per_sm: float = 1.0
    #: Margin on the Little's-law warp count needed to saturate DRAM
    #: bandwidth (1.0 = exactly bandwidth x latency / in-flight bytes).
    dram_saturation_margin: float = 1.6
    #: Margin on the Little's-law warp count needed to saturate L2.
    l2_saturation_margin: float = 0.8
    #: Fixed per-block scheduling overhead in cycles (block dispatch).
    block_dispatch_cycles: float = 300.0


#: Library-wide default cost parameters.
DEFAULT_COST = CostParams()


@dataclass
class WarpWorkload:
    """Per-warp work description produced by a kernel cost model.

    Each field is an array of length ``num_warps`` (float64); entry ``w``
    describes everything warp ``w`` executes over the kernel's lifetime.
    """

    #: Warp-wide instructions issued (loads, stores, FMA, control).
    issue: np.ndarray
    #: 32-byte transactions served by L2 (hits).
    l2_sectors: np.ndarray
    #: 32-byte transactions served by DRAM (L2 misses, incl. write-backs).
    dram_sectors: np.ndarray
    #: Warp-wide FP32 FMA instructions.
    fma: np.ndarray
    #: Warp-wide atomic RMW operations (already conflict-inflated).
    atomics: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = self.issue.shape[0]
        if self.atomics is None:
            self.atomics = np.zeros(n, dtype=np.float64)
        for name in ("issue", "l2_sectors", "dram_sectors", "fma", "atomics"):
            arr = np.asarray(getattr(self, name), dtype=np.float64)
            if arr.shape != (n,):
                raise ValueError(
                    f"{name} has shape {arr.shape}, expected ({n},)"
                )
            if arr.size and float(arr.min()) < 0:
                raise ValueError(f"{name} contains negative work")
            setattr(self, name, arr)

    @property
    def num_warps(self) -> int:
        return int(self.issue.shape[0])

    @classmethod
    def zeros(cls, num_warps: int) -> "WarpWorkload":
        """A workload of ``num_warps`` idle warps (useful as a base)."""
        z = lambda: np.zeros(num_warps, dtype=np.float64)  # noqa: E731
        return cls(issue=z(), l2_sectors=z(), dram_sectors=z(), fma=z())

    def scaled(self, factor: float) -> "WarpWorkload":
        """Uniformly scale all work (e.g. per-K replication)."""
        return WarpWorkload(
            issue=self.issue * factor,
            l2_sectors=self.l2_sectors * factor,
            dram_sectors=self.dram_sectors * factor,
            fma=self.fma * factor,
            atomics=self.atomics * factor,
        )

    def total_bytes(self, sector_bytes: int = 32) -> float:
        """Total bytes moved through the memory hierarchy."""
        return float((self.l2_sectors.sum() + self.dram_sectors.sum()) * sector_bytes)


def warp_critical_cycles(
    work: WarpWorkload, cost: CostParams = DEFAULT_COST
) -> np.ndarray:
    """Serial execution time of each warp in cycles.

    ``issue * CPI`` models the dependent-instruction stream; memory
    latencies are divided by the MLP factor because a warp keeps several
    transactions in flight; atomics serialize at their own latency.
    """
    return (
        work.issue * cost.cycles_per_instruction
        + (work.l2_sectors * cost.l2_latency + work.dram_sectors * cost.dram_latency)
        / cost.mlp
        + work.atomics * cost.atomic_latency
    )
