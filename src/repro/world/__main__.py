"""CLI: sample a scenario universe, sweep every kernel, write the map.

Usage::

    python -m repro.world --samples 64 --seed 0
    python -m repro.world --preset smoke
    python -m repro.world --grid 8x6 --workers 2
    python -m repro.world --samples 240 --workers 2 --out nightly

Reports land as ``results/world_<out>.json`` (override the directory
with ``REPRO_RESULTS_DIR``) with a run manifest beside them; the global
kernel ranking and the density x skew crossover grid print to stdout.
Exit status is nonzero when any engine evaluation errored — the CI
smoke and nightly jobs rely on that as their zero-error gate.
"""

from __future__ import annotations

import argparse
import sys

from ..obs import export_trace, tracing_enabled
from .report import (
    build_report,
    render_crossover_table,
    render_ranking_table,
    write_world_report,
)
from .sweep import run_world_sweep
from .universe import (
    DEFAULT_MIN_NODES,
    default_max_nodes,
    default_samples,
    default_seed,
    grid_universe,
    sample_universe,
)

#: ``--preset`` bundles; explicit flags override individual entries.
PRESETS = {
    "smoke": {"samples": 16, "seed": 0, "max_nodes": 512, "out": "smoke"},
}


def _parse_grid(spec: str) -> tuple[int, int]:
    try:
        d, s = spec.lower().split("x", 1)
        return int(d), int(s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--grid wants DEGREESxSKEWS (e.g. 8x6), got {spec!r}"
        ) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.world",
        description=(
            "Sample a parametric universe of synthetic graphs and map "
            "where each kernel wins."
        ),
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="sampled config count (default REPRO_WORLD_SAMPLES)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="universe sampling seed (default REPRO_WORLD_SEED)",
    )
    parser.add_argument(
        "--grid", type=_parse_grid, default=None, metavar="DxS",
        help="full density x skew grid instead of stratified sampling",
    )
    parser.add_argument(
        "--preset", choices=sorted(PRESETS),
        help="named parameter bundle (explicit flags still override)",
    )
    parser.add_argument(
        "--k", type=int, default=None,
        help="feature width (default REPRO_WORLD_K)",
    )
    parser.add_argument("--device", default="v100", help="device short name")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shard workers (default REPRO_WORLD_WORKERS; <2 = inline)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated kernel subset (default: every SpMM kernel)",
    )
    parser.add_argument(
        "--min-nodes", type=int, default=DEFAULT_MIN_NODES,
        help="size-axis floor",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None,
        help="size-axis cap (default REPRO_WORLD_MAX_NODES)",
    )
    parser.add_argument(
        "--out", default=None,
        help="report name: results/world_<out>.json (default 'sweep')",
    )
    args = parser.parse_args(argv)

    preset = PRESETS.get(args.preset, {})
    samples = (
        args.samples
        if args.samples is not None
        else preset.get("samples", default_samples())
    )
    seed = (
        args.seed if args.seed is not None else preset.get("seed", default_seed())
    )
    max_nodes = (
        args.max_nodes
        if args.max_nodes is not None
        else preset.get("max_nodes", default_max_nodes())
    )
    out = args.out if args.out is not None else preset.get("out", "sweep")
    kernels = (
        [kn.strip() for kn in args.kernels.split(",") if kn.strip()]
        if args.kernels
        else None
    )

    if args.grid is not None:
        degree_steps, skew_steps = args.grid
        configs = grid_universe(degree_steps, skew_steps, seed=seed)
        mode = "grid"
    else:
        configs = sample_universe(
            samples, seed, min_nodes=args.min_nodes, max_nodes=max_nodes
        )
        mode = "sampled"

    result = run_world_sweep(
        configs,
        kernels=kernels,
        k=args.k,
        device=args.device,
        workers=args.workers,
    )
    spec = {
        "mode": mode,
        "samples": len(configs),
        "seed": seed,
        "min_nodes": args.min_nodes,
        "max_nodes": max_nodes,
        "k": result.k,
        "device": result.device,
        "workers": result.workers,
        "kernels": result.kernels,
    }
    report = build_report(result, mode=mode, seed=seed)
    path = write_world_report(report, out, config=spec)

    print("## Kernel ranking\n")
    print(render_ranking_table(report))
    print("\n## Crossover map (top winner per region)\n")
    print(render_crossover_table(report))
    print(
        f"\n[world {mode} sweep: {len(configs)} configs x "
        f"{len(result.kernels)} kernels -> {path}]"
    )
    for name, reason in sorted(result.skipped_kernels.items()):
        print(f"[skipped {name}: ineligible on {result.device} — {reason}]")
    if tracing_enabled():
        trace_path = export_trace()
        print(f"[trace -> {trace_path}]")
    if result.errors:
        print(
            f"error: {result.errors} evaluation(s) failed; see the "
            f"per-kernel error records in {path}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
