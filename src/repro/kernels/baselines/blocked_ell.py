"""cuSPARSE Blocked-ELL SpMM — the GEMM-like third format (paper §II).

Blocked-ELL SpMM multiplies each stored dense block against the
corresponding operand slab, so per-block execution is regular and fully
coalesced; the cost is (a) the padding blocks of skewed block-rows,
which execute as full blocks of zeros, and (b) the low intra-block
occupancy of GNN sparsity (most stored elements are zeros too).  It also
requires an offline format conversion, charged as preprocessing.
"""

from __future__ import annotations

import numpy as np

from ...formats import HybridMatrix
from ...formats.blocked_ell import blocked_ell_stats
from ...gpusim import (
    CostParams,
    DeviceSpec,
    LaunchConfig,
    WarpWorkload,
    simulate_launch,
)
from ..api import SpMMKernel, register_spmm
from ..common import estimate_hit_rate, split_by_hit_rate
from ..preproc import DEFAULT_HOST, HostCostParams


def blocked_ell_preprocess_s(
    S: HybridMatrix, host: HostCostParams = DEFAULT_HOST
) -> float:
    """Conversion cost: a sort over nnz plus a scatter into dense blocks."""
    nnz = max(1, S.nnz)
    return float(
        nnz * np.log2(nnz) * host.sort_per_elem_log
        + 2 * nnz * host.pass_per_elem
        + host.fixed_overhead
    )


@register_spmm
class BlockedEllSpMM(SpMMKernel):
    """cuSPARSE Blocked-ELL SpMM model (block-regular, padding-bound)."""

    name = "cusparse-blocked-ell"

    def __init__(self, *, block_size: int = 16, warps_per_block: int = 8,
                 host: HostCostParams = DEFAULT_HOST) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.warps_per_block = warps_per_block
        self.host = host

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        bell = blocked_ell_stats(S, self.block_size)
        total_slots = bell.padded_blocks  # padding executes too
        if total_slots == 0:
            work = WarpWorkload.zeros(0)
            return (
                simulate_launch(
                    device, work, LaunchConfig(self.warps_per_block), cost
                ),
                blocked_ell_preprocess_s(S, self.host),
            )
        bs = self.block_size
        sector = device.l2_sector_bytes
        feats = float(k)

        # One warp per block slot: multiply a bs x bs dense block against
        # a bs x K operand slab.
        macs = bs * bs * feats
        fma = np.full(total_slots, macs / 32.0)
        issue = np.full(
            total_slots,
            macs / 32.0                      # FMA issue
            + bs * np.ceil(feats / 32.0)     # slab loads
            + bs * bs * 4 / 128.0            # block loads (dense, coalesced)
            + 12.0,                          # slot bookkeeping
        )
        slab_sectors = bs * feats * 4 / sector
        block_sectors = bs * bs * 4 / sector
        # Padding slots still stream their (zero) blocks and slabs; use
        # the block-column stream of stored blocks for the hit model.
        stored_cols = bell.stored_col_blocks
        hit = estimate_hit_rate(
            stored_cols, bytes_per_item=bs * k * 4.0, device=device, seed=4
        ) if stored_cols.size else 0.0
        l2_s, dram_s = split_by_hit_rate(
            np.full(total_slots, slab_sectors), hit
        )
        write_sectors = bs * feats * 4 / sector / max(1.0, bell.ell_width)

        work = WarpWorkload(
            issue=issue,
            l2_sectors=l2_s,
            dram_sectors=dram_s + block_sectors + write_sectors,
            fma=fma,
        )
        config = LaunchConfig(
            warps_per_block=self.warps_per_block,
            registers_per_thread=64,
            shared_mem_per_block=bs * bs * 4 * self.warps_per_block,
        )
        return (
            simulate_launch(device, work, config, cost),
            blocked_ell_preprocess_s(S, self.host),
        )
