"""SpMM / SDDMM kernels: the paper's HP kernels plus all baselines.

Importing this package registers every kernel in
:data:`~repro.kernels.api.SPMM_REGISTRY` /
:data:`~repro.kernels.api.SDDMM_REGISTRY` so the benchmark harness can
instantiate them by name.
"""

from .api import (
    SDDMM_REGISTRY,
    SPMM_REGISTRY,
    SDDMMKernel,
    SDDMMResult,
    SpMMKernel,
    SpMMResult,
    make_sddmm,
    make_spmm,
)
from .cusparse_model import (
    CusparseCooAlg4,
    CusparseCsrAlg2,
    CusparseCsrAlg3,
    CusparseCsrSDDMM,
)
from .fusedmm import FusedMM, FusedMMResult, fusedmm_reference
from .hp_sddmm import HPSDDMM
from .hp_spmm import HPSpMM
from .reference import sddmm_flops, sddmm_reference, spmm_flops, spmm_reference
from . import baselines  # noqa: F401  (registers baseline kernels)
from .baselines import (
    ASpTSpMM,
    DGLSDDMM,
    GESpMM,
    HuangNGSpMM,
    MergePathSpMM,
    RowSplitSpMM,
    SputnikSpMM,
    TCGNNSpMM,
)

__all__ = [
    "SDDMM_REGISTRY",
    "SPMM_REGISTRY",
    "SDDMMKernel",
    "SDDMMResult",
    "SpMMKernel",
    "SpMMResult",
    "make_sddmm",
    "make_spmm",
    "CusparseCooAlg4",
    "CusparseCsrAlg2",
    "CusparseCsrAlg3",
    "CusparseCsrSDDMM",
    "FusedMM",
    "FusedMMResult",
    "fusedmm_reference",
    "HPSDDMM",
    "HPSpMM",
    "sddmm_flops",
    "sddmm_reference",
    "spmm_flops",
    "spmm_reference",
    "ASpTSpMM",
    "DGLSDDMM",
    "GESpMM",
    "HuangNGSpMM",
    "MergePathSpMM",
    "RowSplitSpMM",
    "SputnikSpMM",
    "TCGNNSpMM",
]
