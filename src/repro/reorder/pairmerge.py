"""Greedy pair-merging reordering — the [11]-style competitor.

The paper notes (Section III-C, IV-D) that pair merging clusters similar
rows well but "is very time-consuming on larger graphs and difficult to
execute in parallel": the algorithm repeatedly merges the most similar
pair of row groups, which is inherently quadratic.  Section IV-D reports
more than 120 minutes on `proteins` versus GCR's 4.6 s.  This is an
honest implementation of that algorithm (agglomerative, Jaccard-scored,
greedy) so the efficiency comparison can be reproduced on the scaled
graphs.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from .base import Reorderer
from .lsh import exact_jaccard


class PairMergeReorderer(Reorderer):
    """Agglomerative pair merging on Jaccard similarity (quadratic)."""

    name = "pair-merge"

    def __init__(self, *, num_hashes: int = 8, seed: int = 0) -> None:
        self.num_hashes = num_hashes
        self.seed = seed

    def permutation(self, S: HybridMatrix) -> np.ndarray:
        m = S.shape[0]
        if m <= 2:
            return np.arange(m, dtype=np.int64)
        indptr = S.indptr()
        cols = S.col

        def neighbors(u: int) -> np.ndarray:
            return cols[indptr[u] : indptr[u + 1]]

        # Greedy chaining formulation of pair merging: start from the
        # densest row, repeatedly append the unvisited row with the
        # highest *exact* Jaccard similarity to the current chain tail.
        # Every step scans all remaining rows and intersects neighbor
        # sets — the O(n^2 * d) work that makes the method impractical on
        # large graphs (paper Section IV-D: > 120 minutes on proteins).
        deg = S.row_degrees()
        current = int(np.argmax(deg))
        order = np.empty(m, dtype=np.int64)
        remaining = np.arange(m, dtype=np.int64)
        for i in range(m):
            order[i] = current
            remaining = remaining[remaining != current]
            if remaining.size == 0:
                break
            tail_n = neighbors(current)
            best_sim = -1.0
            best = int(remaining[0])
            for v in remaining:
                sim = exact_jaccard(tail_n, neighbors(int(v)))
                if sim > best_sim:
                    best_sim = sim
                    best = int(v)
            current = best
        return order
