"""Structured diagnostics shared by both analysis layers.

Every rule violation — whether found by the schedule/plan checker
(:mod:`repro.analysis.schedule`) or the codebase linter
(:mod:`repro.analysis.lint`) — is reported as a :class:`Diagnostic`
record: rule id, severity, the object it concerns (kernel or file), a
location (slice/row or line number), a one-line message and a fix hint.
Records render as human-readable text or JSON; a :class:`Report`
aggregates them and decides the process exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Severity levels, ordered. ERROR diagnostics fail the CI gate; WARNING
#: marks legal-but-suspicious configurations (e.g. a tail-effect launch);
#: INFO carries reports (wave geometry) that are never failures.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of either analysis layer."""

    rule: str          #: rule id, e.g. ``plan/row-race`` or ``lint/wallclock``
    severity: str      #: one of :data:`SEVERITIES`
    subject: str       #: kernel name (plan rules) or file path (lint rules)
    message: str       #: one-line description of the violation
    location: str = ""  #: slice/row ("slice 3, row 17") or "line 42"
    hint: str = ""     #: how to fix it

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        hint = f"  (hint: {self.hint})" if self.hint else ""
        return (
            f"{self.severity.upper():7s} {self.rule} {self.subject}{loc}: "
            f"{self.message}{hint}"
        )


@dataclass
class Report:
    """A collection of diagnostics plus summary/rendering helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Number of kernel plans the schedule checker examined (0 when only
    #: the linter ran); lets harness output show checking actually happened.
    plans_checked: int = 0
    #: Number of source files the linter examined.
    files_linted: int = 0
    #: Number of source files the procsafety analyzer examined.
    files_scanned: int = 0

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(WARNING)

    def counts(self) -> dict[str, int]:
        return {s: len(self.by_severity(s)) for s in SEVERITIES}

    @property
    def exit_code(self) -> int:
        """Nonzero iff any error-severity diagnostic was recorded."""
        return 1 if self.errors else 0

    def summary(self) -> str:
        c = self.counts()
        return (
            f"{self.plans_checked} plans checked, {self.files_linted} files "
            f"linted, {self.files_scanned} files safety-scanned: "
            f"{c[ERROR]} errors, {c[WARNING]} warnings, "
            f"{c[INFO]} info"
        )

    def render_text(self, *, show_info: bool = False) -> str:
        lines = [
            d.render()
            for d in self.diagnostics
            if show_info or d.severity != INFO
        ]
        lines.append(self.summary())
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in self.diagnostics],
                "counts": self.counts(),
                "plans_checked": self.plans_checked,
                "files_linted": self.files_linted,
                "files_scanned": self.files_scanned,
                "exit_code": self.exit_code,
            },
            indent=2,
        )
