"""Fig. 12 — sensitivity to node-degree variance.

Ten graphs with the same mean degree (21-25 in the paper) and ascending
degree standard deviation; the y-axis is HP-SpMM's speedup over GE-SpMM
(node-parallel, so variance hurts it).  The paper reports Pearson's
r = 0.90 between degree std-dev and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import pearson_r, variance_suite
from ..kernels import make_spmm
from .tables import render_table


@dataclass
class Fig12Result:
    """(degree std-dev, speedup) series plus the correlation."""

    stds: list[float]
    speedups: list[float]
    pearson: float
    mean_degrees: list[float]

    def render(self) -> str:
        rows = [
            [i + 1, self.mean_degrees[i], self.stds[i], self.speedups[i]]
            for i in range(len(self.stds))
        ]
        table = render_table(
            ["graph #", "mean degree", "degree std", "speedup over GE-SpMM (x)"],
            rows,
            title="Fig. 12 — speedup vs node-degree standard deviation",
        )
        return table + f"\nPearson's r = {self.pearson:.3f} (paper: 0.90)"


def run_fig12(
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    num_graphs: int = 10,
    num_nodes: int = 20_000,
    mean_degree: float = 23.0,
    seed: int = 7,
) -> Fig12Result:
    """Run the degree-variance sensitivity experiment."""
    hp = make_spmm("hp-spmm")
    ge = make_spmm("ge-spmm")
    suite = variance_suite(
        num_graphs=num_graphs,
        num_nodes=num_nodes,
        mean_degree=mean_degree,
        seed=seed,
    )
    stds, speedups, means = [], [], []
    for graph, st in suite:
        t_hp = hp.estimate(graph, k, device).stats.time_s
        t_ge = ge.estimate(graph, k, device).stats.time_s
        stds.append(st.std)
        means.append(st.mean)
        speedups.append(t_ge / t_hp)
    return Fig12Result(
        stds=stds,
        speedups=speedups,
        pearson=pearson_r(stds, speedups),
        mean_degrees=means,
    )
