"""Synthetic graph generators: calibration, determinism, invariants."""

import numpy as np
import pytest

from repro.graphs import (
    chung_lu_graph,
    community_graph,
    lognormal_degree_graph,
    rmat_graph,
)


@pytest.mark.parametrize(
    "gen,kwargs",
    [
        (chung_lu_graph, {}),
        (community_graph, {"num_communities": 8, "p_in": 0.8}),
        (rmat_graph, {}),
    ],
)
def test_generators_hit_size_targets(gen, kwargs):
    g = gen(2000, 16_000, seed=0, **kwargs)
    assert g.shape == (2000, 2000)
    # Self-loops add up to n edges on top of the target.
    assert 16_000 * 0.9 <= g.nnz <= 16_000 + 2000 + 16


@pytest.mark.parametrize(
    "gen,kwargs",
    [
        (chung_lu_graph, {}),
        (community_graph, {"num_communities": 8}),
        (rmat_graph, {}),
    ],
)
def test_generators_deterministic(gen, kwargs):
    a = gen(500, 4000, seed=42, **kwargs)
    b = gen(500, 4000, seed=42, **kwargs)
    np.testing.assert_array_equal(a.row, b.row)
    np.testing.assert_array_equal(a.col, b.col)
    c = gen(500, 4000, seed=43, **kwargs)
    assert not (
        c.nnz == a.nnz and np.array_equal(c.row, a.row) and np.array_equal(c.col, a.col)
    )


def test_self_loops_present_by_default():
    g = chung_lu_graph(100, 500, seed=0)
    loops = np.count_nonzero(g.row == g.col)
    assert loops == 100


def test_self_loops_can_be_disabled():
    g = chung_lu_graph(100, 500, seed=0, self_loops=False)
    assert np.count_nonzero(g.row == g.col) <= 10  # only random collisions


def test_no_duplicate_edges():
    g = community_graph(400, 4000, num_communities=5, seed=1)
    keys = g.row.astype(np.int64) * g.shape[1] + g.col.astype(np.int64)
    assert np.unique(keys).size == keys.size


def test_symmetric_option():
    g = chung_lu_graph(300, 2000, seed=2, symmetric=True, self_loops=False)
    dense = g.to_dense()
    np.testing.assert_array_equal(dense > 0, (dense > 0).T)


def test_gamma_controls_skew():
    flat = chung_lu_graph(3000, 30_000, gamma=10.0, seed=3, self_loops=False)
    skewed = chung_lu_graph(3000, 30_000, gamma=1.8, seed=3, self_loops=False)
    # In-degree (column) skew follows the weights.
    cv = lambda g: np.std(np.bincount(g.col, minlength=3000)) / max(  # noqa: E731
        1e-9, np.mean(np.bincount(g.col, minlength=3000))
    )
    assert cv(skewed) > 2 * cv(flat)


def test_community_graph_has_internal_edge_excess():
    n, c = 1200, 6
    g = community_graph(n, 12_000, num_communities=c, p_in=0.9, seed=4,
                        self_loops=False)
    # Can't observe the hidden assignment, but Louvain-recoverable
    # structure implies modularity > 0 (checked in reorder tests); here
    # check the generator accepted the parameters and sized correctly.
    assert g.nnz > 10_000


def test_community_graph_validates_p_in():
    with pytest.raises(ValueError):
        community_graph(10, 20, p_in=1.5)


def test_rmat_validates_quadrants():
    with pytest.raises(ValueError):
        rmat_graph(10, 20, a=0.6, b=0.3, c=0.3)


def test_lognormal_degree_graph_mean_and_variance():
    lo = lognormal_degree_graph(4000, 20.0, 0.1, seed=5)
    hi = lognormal_degree_graph(4000, 20.0, 1.8, seed=5)
    d_lo = lo.row_degrees()
    d_hi = hi.row_degrees()
    # Equal mean (within tolerance), very different variance.
    assert abs(d_lo.mean() - d_hi.mean()) < 4.0
    assert d_hi.std() > 3 * d_lo.std()


def test_lognormal_validates_sigma():
    with pytest.raises(ValueError):
        lognormal_degree_graph(100, 5.0, -1.0)


def test_dense_request_saturates_gracefully():
    # More edges than pairs: generator returns all it can, no hang.
    g = chung_lu_graph(30, 2000, seed=6, self_loops=False)
    assert g.nnz <= 900
