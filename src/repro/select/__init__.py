"""Input-aware kernel selection (ROADMAP: "kernel auto-selection").

The paper's DTP/HVMA machinery picks a *schedule* from structure alone;
this package does the same for the *kernel*: a small decision tree
(CART) fit offline from :mod:`repro.world` full-sweep oracles maps
structural features (degree cv/p99, heavy-row fractions, density) to a
ranked candidate list.  Three pillars:

* :mod:`repro.select.dataset` — training rows extracted from world
  reports (the report's first-class ``"training"`` block);
* :mod:`repro.select.model` — the deterministic CART: fit, evaluate
  (top-1 accuracy + mean regret vs the oracle), JSON round-trip;
* :mod:`repro.select.policy` — the :class:`SelectionPolicy` interface
  every "what should run?" call site resolves through, with the
  degrade contract: no model, wrong op, or ``REPRO_NO_SELECT=1`` means
  callers behave bit-for-bit as before selection existed.

``python -m repro.select --fit/--eval`` is the offline training CLI.
"""

from .dataset import (
    ROWS_SCHEMA,
    load_training_rows,
    rows_from_report,
    training_block,
    training_rows,
)
from .model import (
    SCHEMA,
    ModelFormatError,
    SelectionModel,
    evaluate_model,
    fit_model,
    load_model,
    save_model,
)
from .policy import (
    DEFAULT_MODEL_PATH,
    Candidate,
    ModelPolicy,
    NullPolicy,
    SelectionPolicy,
    active_policy,
    default_topk,
    model_path,
    reset_policy,
    select_enabled,
)

__all__ = [
    "Candidate",
    "DEFAULT_MODEL_PATH",
    "ModelFormatError",
    "ModelPolicy",
    "NullPolicy",
    "ROWS_SCHEMA",
    "SCHEMA",
    "SelectionModel",
    "SelectionPolicy",
    "active_policy",
    "default_topk",
    "evaluate_model",
    "fit_model",
    "load_model",
    "load_training_rows",
    "model_path",
    "reset_policy",
    "rows_from_report",
    "save_model",
    "select_enabled",
    "training_block",
    "training_rows",
]
