"""GNN training substrate: autograd, layers, models, simulated timing.

Replaces the DGL / PyG + PyTorch stack of the paper's end-to-end
evaluation (Section IV-G) with a from-scratch implementation whose sparse
operators dispatch to this library's kernels.
"""

from .attention import edge_softmax, leaky_relu, sddmm_op, weighted_spmm
from .autograd import (
    Tensor,
    add,
    cross_entropy,
    dropout,
    log_softmax,
    matmul,
    nll_loss,
    relu,
)
from .layers import GCNConv, Linear, Module, glorot
from .models import GAT, GCN, DotGATConv, saint_normalization
from .optim import SGD, Adam
from .sage import GraphSAGE, SAGEConv, row_normalized
from .sparse_ops import GraphOperand, sddmm_values, spmm
from .timing import TimingContext
from .trainer import (
    SyntheticTask,
    TrainReport,
    train_full_graph,
    train_graph_sampling,
)

__all__ = [
    "edge_softmax",
    "leaky_relu",
    "sddmm_op",
    "weighted_spmm",
    "GAT",
    "DotGATConv",
    "Tensor",
    "add",
    "cross_entropy",
    "dropout",
    "log_softmax",
    "matmul",
    "nll_loss",
    "relu",
    "GCNConv",
    "Linear",
    "Module",
    "glorot",
    "GCN",
    "saint_normalization",
    "SGD",
    "Adam",
    "GraphSAGE",
    "SAGEConv",
    "row_normalized",
    "GraphOperand",
    "sddmm_values",
    "spmm",
    "TimingContext",
    "SyntheticTask",
    "TrainReport",
    "train_full_graph",
    "train_graph_sampling",
]
