"""Common kernel interface: results, registries and the base classes.

Every SpMM / SDDMM implementation in this library produces *two* things:

* the numerical result (computed exactly, in NumPy, with the same
  reduction semantics as the modeled CUDA kernel), and
* a :class:`~repro.gpusim.launch.KernelStats` describing the simulated
  GPU execution (the quantity the paper's evaluation compares).

Kernels that need host-side preprocessing (merge-path, Sputnik, ASpT,
Huang's neighbor grouping) additionally report a modeled preprocessing
time, reproducing paper Table IV.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import DEFAULT_COST, CostParams, DeviceSpec, KernelStats, TESLA_V100
from ..obs import trace_span
from ..perf.estimate_cache import cached_estimate


@dataclass(frozen=True)
class SpMMResult:
    """Output of one simulated SpMM ``O = S @ A``.

    ``output`` is ``None`` when the result came from
    :meth:`SpMMKernel.estimate` (timing-only evaluation).
    """

    output: np.ndarray | None   #: dense (M, K) product, or None
    stats: KernelStats          #: simulated kernel execution
    preprocessing_s: float = 0.0  #: modeled host preprocessing time

    @property
    def total_time_s(self) -> float:
        """Kernel + preprocessing (what dynamic GNN computing pays)."""
        return self.stats.time_s + self.preprocessing_s


@dataclass(frozen=True)
class SDDMMResult:
    """Output of one simulated SDDMM ``S_O = (A1 @ A2) ⊙ S``.

    ``values`` is ``None`` for timing-only evaluations.
    """

    values: np.ndarray | None   #: nnz-length output values, in S's order
    stats: KernelStats
    preprocessing_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        return self.stats.time_s + self.preprocessing_s


class SpMMKernel(abc.ABC):
    """Base class for SpMM implementations.

    Subclasses set :attr:`name` and implement :meth:`_estimate`, which
    builds the simulated execution for a given feature width.  ``S`` is
    always supplied in hybrid CSR/COO form; kernels that natively consume
    CSR/COO convert views internally (conversion is free — the arrays are
    shared — matching the paper's convention of excluding
    format-conversion time).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple[KernelStats, float]:
        """Simulate one launch; returns (stats, preprocessing_seconds)."""

    def estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec = TESLA_V100,
        cost: CostParams = DEFAULT_COST,
    ) -> SpMMResult:
        """Timing-only evaluation: no numerics are computed.

        Routed through :mod:`repro.perf.estimate_cache` — estimates are
        pure functions of their inputs, so repeat sweeps over the same
        (matrix, kernel, K, device, cost) tuple are memo hits.  Set
        ``REPRO_NO_ESTIMATE_CACHE=1`` to bypass.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        with trace_span(
            "spmm.estimate", cat="kernel", kernel=self.name, k=int(k),
            nnz=S.nnz, device=device.name,
        ):
            stats, pre = cached_estimate(self, "spmm", S, int(k), device, cost)
        return SpMMResult(output=None, stats=stats, preprocessing_s=pre)

    def run(
        self,
        S: HybridMatrix,
        A: np.ndarray,
        device: DeviceSpec = TESLA_V100,
        cost: CostParams = DEFAULT_COST,
    ) -> SpMMResult:
        """Execute ``S @ A``: exact numerics plus simulated stats."""
        from .reference import spmm_reference

        A = validate_spmm_operands(S, A)
        stats, pre = cached_estimate(
            self, "spmm", S, A.shape[1], device, cost
        )
        return SpMMResult(
            output=spmm_reference(S, A), stats=stats, preprocessing_s=pre
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class SDDMMKernel(abc.ABC):
    """Base class for SDDMM implementations.

    ``A1`` has shape ``(M, K)``; ``A2T`` is supplied *transposed* with
    shape ``(N, K)`` so both operand reads are row-major, matching the
    layout HP-SDDMM (Algorithm 4) assumes.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple[KernelStats, float]:
        """Simulate one launch; returns (stats, preprocessing_seconds)."""

    def estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec = TESLA_V100,
        cost: CostParams = DEFAULT_COST,
    ) -> SDDMMResult:
        """Timing-only evaluation: no numerics are computed.

        Memoized exactly like :meth:`SpMMKernel.estimate`.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        with trace_span(
            "sddmm.estimate", cat="kernel", kernel=self.name, k=int(k),
            nnz=S.nnz, device=device.name,
        ):
            stats, pre = cached_estimate(self, "sddmm", S, int(k), device, cost)
        return SDDMMResult(values=None, stats=stats, preprocessing_s=pre)

    def run(
        self,
        S: HybridMatrix,
        A1: np.ndarray,
        A2T: np.ndarray,
        device: DeviceSpec = TESLA_V100,
        cost: CostParams = DEFAULT_COST,
    ) -> SDDMMResult:
        """Execute ``(A1 @ A2) ⊙ S``: exact numerics plus simulated stats."""
        from .reference import sddmm_reference

        A1, A2T = validate_sddmm_operands(S, A1, A2T)
        stats, pre = cached_estimate(
            self, "sddmm", S, A1.shape[1], device, cost
        )
        return SDDMMResult(
            values=sddmm_reference(S, A1, A2T), stats=stats, preprocessing_s=pre
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


#: Registries mapping kernel short-name -> factory, used by the harness.
SPMM_REGISTRY: dict[str, type] = {}
SDDMM_REGISTRY: dict[str, type] = {}


def register_spmm(cls):
    """Class decorator registering an :class:`SpMMKernel` by its name."""
    SPMM_REGISTRY[cls.name] = cls
    return cls


def register_sddmm(cls):
    """Class decorator registering an :class:`SDDMMKernel` by its name."""
    SDDMM_REGISTRY[cls.name] = cls
    return cls


def make_spmm(name: str, **kwargs) -> SpMMKernel:
    """Instantiate a registered SpMM kernel by name."""
    if name not in SPMM_REGISTRY:
        raise KeyError(f"unknown SpMM kernel {name!r}; have {sorted(SPMM_REGISTRY)}")
    return SPMM_REGISTRY[name](**kwargs)


def make_sddmm(name: str, **kwargs) -> SDDMMKernel:
    """Instantiate a registered SDDMM kernel by name."""
    if name not in SDDMM_REGISTRY:
        raise KeyError(f"unknown SDDMM kernel {name!r}; have {sorted(SDDMM_REGISTRY)}")
    return SDDMM_REGISTRY[name](**kwargs)


def validate_spmm_operands(S: HybridMatrix, A: np.ndarray) -> np.ndarray:
    """Check shapes/dtypes for SpMM; returns A as float32 C-contiguous."""
    A = np.ascontiguousarray(A, dtype=np.float32)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-D, got shape {A.shape}")
    if A.shape[0] != S.shape[1]:
        raise ValueError(
            f"dimension mismatch: S is {S.shape}, A is {A.shape}"
        )
    return A


def validate_sddmm_operands(
    S: HybridMatrix, A1: np.ndarray, A2T: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Check shapes/dtypes for SDDMM; returns float32 C-contiguous copies."""
    A1 = np.ascontiguousarray(A1, dtype=np.float32)
    A2T = np.ascontiguousarray(A2T, dtype=np.float32)
    if A1.ndim != 2 or A2T.ndim != 2:
        raise ValueError("A1 and A2T must be 2-D")
    if A1.shape[0] != S.shape[0]:
        raise ValueError(f"A1 rows {A1.shape[0]} != S rows {S.shape[0]}")
    if A2T.shape[0] != S.shape[1]:
        raise ValueError(f"A2T rows {A2T.shape[0]} != S cols {S.shape[1]}")
    if A1.shape[1] != A2T.shape[1]:
        raise ValueError(
            f"feature dims differ: A1 K={A1.shape[1]}, A2T K={A2T.shape[1]}"
        )
    return A1, A2T
