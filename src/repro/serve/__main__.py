"""CLI: replay a synthetic workload through the estimation server.

Usage::

    python -m repro.serve --workload smoke
    python -m repro.serve --workload open-loop --requests 128
    python -m repro.serve --list

Writes ``results/serve_<workload>.json`` (override the directory with
``REPRO_RESULTS_DIR``) plus a ``serve_<workload>.manifest.json`` run
manifest whose metrics snapshot carries the serving counters and the
``serve.request_latency`` p50/p95/p99.  ``REPRO_TRACE=<path>`` records
per-request and per-batch spans alongside the usual estimate spans.

Exit codes: 0 on success, 2 on configuration errors (unknown workload
or invalid overrides) — matching the ``repro.obs diff`` convention.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from ..bench.runner import results_dir
from ..obs import export_trace, tracing_enabled, write_manifest
from .workload import WORKLOADS, run_workload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run a synthetic workload against the estimation server.",
    )
    parser.add_argument(
        "--workload", default="smoke",
        help=f"workload preset ({', '.join(WORKLOADS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list workload presets and exit"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="override request count"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the stream seed"
    )
    parser.add_argument(
        "--max-edges", type=int, default=None,
        help="override the registry edge cap",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for batch fan-out (sets REPRO_JOBS)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "serve batches through N persistent sharded worker servers "
            "(repro.engine.ShardedExecutor) instead of per-batch pools"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in WORKLOADS.items():
            print(
                f"{name}: mode={spec.mode} requests={spec.num_requests} "
                f"graphs={','.join(spec.graphs)}"
            )
        return 0
    if args.workload not in WORKLOADS:
        print(
            f"error: unknown workload {args.workload!r}; "
            f"choose from {', '.join(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)

    spec = WORKLOADS[args.workload]
    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.max_edges is not None:
        overrides["max_edges"] = args.max_edges
    if overrides:
        try:
            spec = dataclasses.replace(spec, **overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2

    if args.workers is not None:
        from ..engine import ShardedExecutor

        with ShardedExecutor(workers=args.workers) as executor:
            report = run_workload(spec, executor=executor)
            print(
                f"[sharded: {executor.worker_count} worker servers, "
                f"dispatch={sorted(executor.dispatch_counts.values())}]",
                file=sys.stderr,
            )
    else:
        report = run_workload(spec)

    from ..store import store_counters, store_enabled

    if store_enabled():
        sc = store_counters()
        print(
            f"[store: {sc['segments']} segments, "
            f"{sc['bytes_shared']} bytes shared, "
            f"attaches={sc['attaches']}+{sc['attach_hits']} cached, "
            f"fallbacks={sc['fallbacks']}]",
            file=sys.stderr,
        )

    experiment = f"serve_{spec.name}"
    base = results_dir()
    path = os.path.join(base, f"{experiment}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    write_manifest(experiment, base, dataclasses.asdict(spec))

    summary = report["summary"]
    latency = report["latency_s"]
    print(
        f"[serve {spec.name}: {summary['requests']} requests in "
        f"{summary['batches']} batches | "
        f"ok={summary['by_status']['ok']} "
        f"degraded={summary['by_status']['degraded']} "
        f"timeout={summary['by_status']['timeout']} "
        f"error={summary['by_status']['error']} | "
        f"coalesced={summary['coalesced']} deduped={summary['deduped']} | "
        f"p50={latency['p50'] * 1e3:.2f}ms p95={latency['p95'] * 1e3:.2f}ms "
        f"p99={latency['p99'] * 1e3:.2f}ms -> {path}]",
        file=sys.stderr,
    )
    if tracing_enabled():
        trace_path = export_trace()
        print(f"[trace -> {trace_path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
