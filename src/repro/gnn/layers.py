"""Neural-network layers: Linear, GCNConv, and the module container.

GCNConv follows the GNN-framework implementation the paper describes
(Section I): one SpMM aggregation over the normalized adjacency matrix
followed by a fully-connected transform.  Every layer records its dense
costs into the shared :class:`~repro.gnn.timing.TimingContext`; the SpMM
cost is recorded by :func:`repro.gnn.sparse_ops.spmm`.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, add, dropout, matmul, relu
from .sparse_ops import GraphOperand, spmm
from .timing import TimingContext


class Module:
    """Base class: tracks parameters, training mode, and a name."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Tensor]:
        out: list[Tensor] = []
        for v in self.__dict__.values():
            if isinstance(v, Tensor) and v.requires_grad:
                out.append(v)
            elif isinstance(v, Module):
                out.extend(v.parameters())
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        out.extend(item.parameters())
        return out

    def train(self) -> None:
        self.training = True
        for v in self.__dict__.values():
            if isinstance(v, Module):
                v.train()
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        item.train()

    def eval(self) -> None:
        self.training = False
        for v in self.__dict__.values():
            if isinstance(v, Module):
                v.eval()
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        item.eval()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float32)


class Linear(Module):
    """Dense affine transform ``X @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            glorot(rng, in_features, out_features), requires_grad=True, name="W"
        )
        self.bias = Tensor(
            np.zeros((1, out_features), dtype=np.float32),
            requires_grad=True,
            name="b",
        )

    def __call__(self, x: Tensor, timing: TimingContext | None = None) -> Tensor:
        if timing is not None:
            m = x.data.shape[0]
            # forward GEMM + the two backward GEMMs it will trigger
            timing.record_gemm(m, self.out_features, self.in_features)
            timing.record_gemm(m, self.in_features, self.out_features)
            timing.record_gemm(self.in_features, self.out_features, m)
        return add(matmul(x, self.weight), self.bias)


class GCNConv(Module):
    """One graph-convolution layer: aggregate (SpMM) then transform (FC)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        activation: bool = True,
        dropout_p: float = 0.0,
    ):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng)
        self.activation = activation
        self.dropout_p = dropout_p
        self._rng = rng

    def __call__(
        self,
        graph: GraphOperand,
        x: Tensor,
        timing: TimingContext | None = None,
    ) -> Tensor:
        h = spmm(graph, x, timing)
        h = self.linear(h, timing)
        if self.activation:
            if timing is not None:
                timing.record_elementwise(h.data.size)
            h = relu(h)
        if self.dropout_p > 0:
            if timing is not None:
                timing.record_elementwise(h.data.size)
            h = dropout(h, self.dropout_p, self._rng, self.training)
        return h
