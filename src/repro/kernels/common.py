"""Shared helpers for kernel cost models.

These functions translate a sparse matrix plus a task-partition strategy
into the per-warp quantities (instruction counts, memory sectors, row
switches) that :func:`repro.gpusim.simulate_launch` consumes.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, FootprintCacheModel


def warp_slice_starts(nnz: int, nnz_per_warp: int) -> np.ndarray:
    """Start offsets of each warp's nnz slice; length = number of warps."""
    if nnz_per_warp <= 0:
        raise ValueError("nnz_per_warp must be positive")
    num_warps = max(1, -(-nnz // nnz_per_warp)) if nnz else 0
    return np.arange(num_warps, dtype=np.int64) * nnz_per_warp


def per_warp_nnz(nnz: int, nnz_per_warp: int) -> np.ndarray:
    """Nonzeros assigned to each warp under an equal-nnz partition."""
    starts = warp_slice_starts(nnz, nnz_per_warp)
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.minimum(starts + nnz_per_warp, nnz)
    return ends - starts


def row_segments_per_slice(row: np.ndarray, starts: np.ndarray, nnz_per_warp: int) -> np.ndarray:
    """Distinct row segments each warp's slice touches (row-switch count + 1).

    For the hybrid format ``row`` is non-decreasing, so the number of
    distinct rows inside a slice is ``1 + (# boundaries with a row change
    strictly inside the slice)``.  Each segment triggers one row-switch
    store in HP-SpMM / one A1 reload in HP-SDDMM.

    Raises ``ValueError`` when ``row`` violates the hybrid-format
    invariant (unsorted) or is empty while slices claim nonzeros — both
    would otherwise yield garbage segment counts that silently corrupt
    every downstream cost estimate.
    """
    nnz = row.size
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    if nnz == 0:
        raise ValueError(
            f"row array is empty but {starts.size} warp slices were "
            "requested; slice an empty stream with zero slices"
        )
    if np.any(row[1:] < row[:-1]):
        bad = int(np.argmax(row[1:] < row[:-1]))
        raise ValueError(
            "row indices must be non-decreasing (hybrid CSR/COO "
            f"invariant); row[{bad}]={int(row[bad])} > "
            f"row[{bad + 1}]={int(row[bad + 1])}"
        )
    change = np.empty(nnz, dtype=np.int64)
    change[0] = 0
    change[1:] = (row[1:] != row[:-1]).astype(np.int64)
    csum = np.concatenate(([0], np.cumsum(change)))
    ends = np.minimum(starts + nnz_per_warp, nnz)
    # Changes strictly inside (start, end): csum[end] - csum[start+1] counts
    # boundaries at positions start+1 .. end-1 ... boundary at position i
    # means row[i] != row[i-1]; internal boundaries are i in [start+1, end-1].
    internal = csum[ends] - csum[np.minimum(starts + 1, nnz)]
    lengths = ends - starts
    return np.where(lengths > 0, internal + 1, 0)


#: Fraction of L2 effectively available to operand-row reuse; the rest is
#: polluted by the streaming sparse arrays and the output write traffic.
L2_EFFECTIVE_FRACTION = 0.5

#: Memo for hit-rate estimates: the footprint sampling is the expensive
#: part of a cost-model evaluation and identical across kernels that scan
#: the same matrix, so the cache pays off heavily in benchmark sweeps.
_HIT_RATE_CACHE: dict = {}
_HIT_RATE_CACHE_MAX = 512


def _stream_fingerprint(stream: np.ndarray) -> tuple:
    """Cheap, content-sensitive fingerprint of an access stream."""
    step = max(1, stream.size // 64)
    sample = np.ascontiguousarray(stream[::step][:65])
    head = int(stream[: min(4096, stream.size)].sum())
    return (stream.size, sample.tobytes(), head)


def estimate_hit_rate(
    col_stream: np.ndarray,
    bytes_per_item: float,
    device: DeviceSpec,
    *,
    concurrent_warps: int = 0,
    seed: int = 0,
) -> float:
    """L2 hit rate for a stream of dense-matrix row accesses.

    All concurrent warps read the *same* operand matrix, so their
    interleaved streams share reuse; the access stream in nonzero order is
    therefore a faithful proxy regardless of warp count
    (``concurrent_warps`` is accepted for interface stability but does not
    change the estimate).  A fixed :data:`L2_EFFECTIVE_FRACTION` accounts
    for cache pollution by sparse-array streaming and output writes.
    """
    del concurrent_warps  # see docstring
    stream = np.asarray(col_stream)
    if stream.size == 0:
        return 0.0
    key = (
        _stream_fingerprint(stream),
        float(bytes_per_item),
        device.l2_cache_bytes,
        seed,
    )
    if key in _HIT_RATE_CACHE:
        return _HIT_RATE_CACHE[key]
    model = FootprintCacheModel(
        capacity_bytes=int(device.l2_cache_bytes * L2_EFFECTIVE_FRACTION),
        bytes_per_item=bytes_per_item,
        seed=seed,
    )
    rate = model.hit_rate(stream)
    if len(_HIT_RATE_CACHE) >= _HIT_RATE_CACHE_MAX:
        _HIT_RATE_CACHE.clear()
    _HIT_RATE_CACHE[key] = rate
    return rate


def split_by_hit_rate(
    sectors: np.ndarray, hit_rate: float
) -> tuple[np.ndarray, np.ndarray]:
    """Split per-warp sector counts into (L2-hit, DRAM) parts."""
    hit_rate = float(np.clip(hit_rate, 0.0, 1.0))
    l2 = sectors * hit_rate
    dram = sectors * (1.0 - hit_rate)
    return l2, dram


def rows_to_warp_degrees(S: HybridMatrix) -> np.ndarray:
    """Per-warp nnz for node-parallel kernels (one warp per matrix row)."""
    return S.row_degrees().astype(np.float64)


def dense_row_alignment(k: int, sector_bytes: int = 32) -> bool:
    """Whether every row of a row-major (N, K) fp32 matrix is sector-aligned."""
    return (k * 4) % sector_bytes == 0


def output_write_sectors(k: int, sector_bytes: int = 32) -> float:
    """Sectors written when storing one K-float output row."""
    return float(-(-k * 4 // sector_bytes))
