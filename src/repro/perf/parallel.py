"""Process-pool fan-out for experiment sweeps.

``parallel_map`` is a deterministic-order ``map`` that fans work items
over a ``concurrent.futures`` process pool when ``REPRO_JOBS`` asks for
more than one worker, and degrades to a plain in-process loop otherwise.
The serial fallback is reserved for *pool* failures — a pool that cannot
be built (nested pools, missing semaphores in sandboxes), work that
cannot be pickled (lambdas, closures), or worker processes dying — never
for exceptions raised by ``fn`` itself: a deterministic error at one
sweep point (e.g. a plan-check failure) propagates immediately instead
of silently re-running the whole sweep serially, which used to double
the work and re-execute side effects before re-raising the same error.

Results always come back in item order, so serial and parallel sweeps
produce identical output.  Fan-out activity is visible in the
observability layer: ``parallel.pool_runs`` / ``parallel.pool_fallbacks``
/ ``parallel.serial_runs`` counters in :data:`repro.obs.METRICS`, and a
``parallel_map`` span on the host trace when ``REPRO_TRACE`` is on.

When tracing is active, work items are wrapped so each pool worker runs
them under a fresh :class:`~repro.obs.tracer.Tracer` anchored at the
parent tracer's ``t0_ns``; the worker's spans come back with the result
and are spliced onto the parent's host track (tagged with a
``pool_worker`` pid arg).  Spans used to die with the worker, leaving
parallel traces with a bare ``parallel_map`` span and no sweep-point
detail — serving batches fan out through this same path, so complete
traces matter beyond the bench harness.

``REPRO_JOBS`` semantics: unset or ``1`` → serial; ``N`` → N workers;
``0`` or ``auto`` → one worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from ..config import env_str
from ..obs import METRICS, trace_span
from ..obs.tracer import Tracer, get_tracer, set_tracer

T = TypeVar("T")
R = TypeVar("R")

#: Pool-infrastructure failures that justify the serial fallback.
#: ``BrokenProcessPool``: a worker died (fork bomb guard, OOM kill);
#: ``PicklingError``: ``fn``/items/results cannot cross the process
#: boundary.  Exceptions *raised by fn* are none of these and propagate.
_POOL_RUNTIME_FAILURES = (BrokenProcessPool, pickle.PicklingError)

#: Failures constructing the pool itself (queues need semaphores some
#: sandboxes forbid; a missing start method raises ValueError).
_POOL_SETUP_FAILURES = (OSError, PermissionError, ValueError, ImportError)


def resolve_jobs(num_items: int | None = None) -> int:
    """Worker count from ``REPRO_JOBS``, clamped to the item count."""
    raw = env_str("REPRO_JOBS", "1").lower()
    if raw in ("", "0", "auto"):
        jobs = os.cpu_count() or 1
    else:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, 'auto' or unset; got {raw!r}"
            ) from None
    jobs = max(1, jobs)
    if num_items is not None:
        jobs = min(jobs, max(1, num_items))
    return jobs


def _pool_context():
    """Prefer fork (cheap, inherits loaded graphs); else the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _serial_map(fn: Callable[[T], R], seq: Sequence[T]) -> list[R]:
    METRICS.inc("parallel.serial_runs")
    METRICS.inc("parallel.items", len(seq))
    return [fn(item) for item in seq]


def _traced_call(payload: tuple):
    """Pool-worker wrapper: run one item under a worker-local tracer.

    The worker installs a fresh tracer anchored at the parent's
    ``t0_ns`` (so span timestamps are already on the parent timeline),
    runs the item, restores whatever tracer the worker had, and returns
    ``(result, spans)``.  Exceptions from ``fn`` propagate unchanged —
    only the spans of the failing item are lost.
    """
    fn, item, t0_ns = payload
    prev = get_tracer()
    worker_tracer = Tracer(t0_ns=t0_ns)
    set_tracer(worker_tracer)
    try:
        result = fn(item)
    finally:
        set_tracer(prev)
    pid = os.getpid()
    for span in worker_tracer.spans:
        span.args.setdefault("pool_worker", pid)
    return result, worker_tracer.spans


def _work_is_picklable(fn: Callable, seq: Sequence) -> bool:
    """Parent-side pre-check that work can cross the process boundary.

    Unpicklable callables surface from the pool as ``AttributeError`` /
    ``TypeError`` — the same types ``fn`` itself may raise — so checking
    after the fact cannot distinguish a pool problem from a real worker
    error.  Checking before keeps the serial fallback for lambdas and
    closures without swallowing deterministic worker exceptions.  Items
    are homogeneous in every sweep, so the first one is representative
    (pickling all of them would double the pool's own serialization
    work).
    """
    try:
        pickle.dumps(fn)
        if seq:
            pickle.dumps(seq[0])
    except Exception:
        return False
    return True


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` with deterministic result ordering.

    ``fn`` must be a module-level callable and items picklable for the
    parallel path; a pool that cannot be built or fed falls back to the
    serial loop (counted in ``parallel.pool_fallbacks``).  Exceptions
    raised *by fn* — deterministic failures like a plan-check error at
    one sweep point — propagate from both paths without a serial retry.
    """
    seq: Sequence[T] = items if isinstance(items, Sequence) else list(items)
    if jobs is None:
        jobs = resolve_jobs(len(seq))
    if jobs <= 1 or len(seq) <= 1:
        return _serial_map(fn, seq)
    if not _work_is_picklable(fn, seq):
        METRICS.inc("parallel.pool_fallbacks")
        return _serial_map(fn, seq)

    try:
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=_pool_context())
    except _POOL_SETUP_FAILURES:
        METRICS.inc("parallel.pool_fallbacks")
        return _serial_map(fn, seq)
    tracer = get_tracer()
    try:
        with trace_span("parallel_map", cat="perf", jobs=jobs, items=len(seq)):
            with pool:
                # submit + result (rather than pool.map) so a worker
                # exception carries the original exception object.
                if tracer is None:
                    futures = [pool.submit(fn, item) for item in seq]
                    results = [f.result() for f in futures]
                else:
                    # Ship each item's worker spans back with its result
                    # and splice them onto the parent trace.
                    t0 = tracer.t0_ns
                    futures = [
                        pool.submit(_traced_call, (fn, item, t0))
                        for item in seq
                    ]
                    results = []
                    for f in futures:
                        result, spans = f.result()
                        results.append(result)
                        tracer.splice(spans)
    except _POOL_RUNTIME_FAILURES:
        METRICS.inc("parallel.pool_fallbacks")
        return _serial_map(fn, seq)
    METRICS.inc("parallel.pool_runs")
    METRICS.inc("parallel.items", len(seq))
    return results
