"""Table IV — preprocessing vs execution time of preprocess-based kernels.

Runs ASpT, Sputnik, Merge-path and Huang's neighbor grouping against
HP-SpMM on CoraFull, AM and Amazon (Tesla A30 in the paper) and reports
preprocessing (Pre.) and execution (Exe.) times.  The headline shape:
preprocessing dwarfs execution for ASpT / Sputnik / Huang (up to ~43x in
the paper), merge-path's binary search is cheap, and HP-SpMM needs no
preprocessing while staying competitive or faster on execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EstimateRequest, default_engine
from ..gpusim import DeviceSpec, TESLA_A30
from .tables import render_table

#: Kernels of paper Table IV, in column order.
TABLE4_KERNELS: tuple[str, ...] = (
    "aspt",
    "sputnik",
    "merge-path",
    "huang-ng",
    "hp-spmm",
)

#: The three graphs of paper Table IV (small / medium / large).
TABLE4_GRAPHS: tuple[str, ...] = ("corafull", "am", "amazon")


@dataclass
class Table4Result:
    """Pre./Exe. time per kernel per graph, in milliseconds."""

    rows: list[list]
    k: int
    device: str

    def render(self) -> str:
        headers = ["graph"]
        for kname in TABLE4_KERNELS:
            if kname != "hp-spmm":
                headers.append(f"{kname} Pre.")
            headers.append(f"{kname} Exe.")
        return render_table(
            headers,
            self.rows,
            title=(
                f"Table IV — preprocessing vs execution (ms) on {self.device},"
                f" K={self.k}; HP-SpMM (ours) needs no preprocessing"
            ),
            floatfmt=".3f",
        )

    def entry(self, graph: str, kernel: str, which: str) -> float:
        """Look up a cell: which in {'pre', 'exe'}."""
        headers = ["graph"]
        for kname in TABLE4_KERNELS:
            if kname != "hp-spmm":
                headers.append((kname, "pre"))
            headers.append((kname, "exe"))
        idx = headers.index((kernel, which))
        for row in self.rows:
            if row[0] == graph:
                return row[idx]
        raise KeyError(graph)


def run_table4(
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_A30,
    graphs: tuple[str, ...] = TABLE4_GRAPHS,
    max_edges: int | None = None,
) -> Table4Result:
    """Run the Table IV experiment (no GCR, per the paper)."""
    # Graphs-outer / kernels-inner requests; the engine's plan stage
    # loads each graph once and evaluates its column of kernels in order.
    requests = [
        EstimateRequest(
            op="spmm", kernel=kname, graph=gname, k=k,
            device=device, max_edges=max_edges,
        )
        for gname in graphs
        for kname in TABLE4_KERNELS
    ]
    batch = default_engine().estimate_batch(requests)
    by_graph: dict[str, list] = {}
    for res in batch:
        row = by_graph.setdefault(res.request.graph, [res.request.graph])
        if res.request.kernel != "hp-spmm":
            row.append(res.preprocessing_s * 1e3)
        row.append(res.time_s * 1e3)
    rows = [by_graph[gname] for gname in graphs]
    return Table4Result(rows=rows, k=k, device=device.name)
