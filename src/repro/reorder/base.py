"""Reorderer interface and permutation plumbing.

A reorderer maps a (square) adjacency matrix to a node permutation that
improves data locality; Graph Clustering based Reordering (paper Section
III-C) applies the permutation symmetrically and converts back to hybrid
CSR/COO.  Reordering time is *measured wall-clock* — Section IV-D
compares reorderer efficiency directly, and all competitors here share
the same NumPy substrate, so their ratio is meaningful.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from ..formats import HybridMatrix


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of applying one reorderer to a graph."""

    matrix: HybridMatrix      #: the symmetric-permuted adjacency matrix
    permutation: np.ndarray   #: new position i holds old node permutation[i]
    elapsed_s: float          #: wall-clock time of permutation *computation*
    reorderer: str


class Reorderer(abc.ABC):
    """Base class: subclasses compute a node permutation for a graph."""

    name: str = "abstract"

    @abc.abstractmethod
    def permutation(self, S: HybridMatrix) -> np.ndarray:
        """Return a permutation array ``p`` (new position -> old node)."""

    def apply(self, S: HybridMatrix) -> ReorderResult:
        """Compute the permutation (timed) and permute the matrix."""
        if S.shape[0] != S.shape[1]:
            raise ValueError("reordering requires a square adjacency matrix")
        t0 = time.perf_counter()  # lint: allow(wallclock) reorderer cost is measured host time by design (DESIGN §1)
        perm = self.permutation(S)
        elapsed = time.perf_counter() - t0  # lint: allow(wallclock) see above
        validate_permutation(perm, S.shape[0])
        return ReorderResult(
            matrix=S.permute_symmetric(perm),
            permutation=perm,
            elapsed_s=elapsed,
            reorderer=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def validate_permutation(perm: np.ndarray, n: int) -> None:
    """Raise if ``perm`` is not a permutation of ``range(n)``."""
    perm = np.asarray(perm)
    if perm.shape != (n,):
        raise ValueError(f"permutation has shape {perm.shape}, expected ({n},)")
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    if not seen.all():
        raise ValueError("not a permutation: missing or duplicate entries")


class IdentityReorderer(Reorderer):
    """No-op reorderer (the un-reordered baseline in the ablation)."""

    name = "identity"

    def permutation(self, S: HybridMatrix) -> np.ndarray:
        return np.arange(S.shape[0], dtype=np.int64)


class DegreeSortReorderer(Reorderer):
    """Sort nodes by descending degree — the cheapest locality heuristic."""

    name = "degree-sort"

    def permutation(self, S: HybridMatrix) -> np.ndarray:
        deg = S.row_degrees()
        return np.argsort(-deg, kind="stable").astype(np.int64)
