"""repro — reproduction of "Fast Sparse GPU Kernels for Accelerated
Training of Graph Neural Networks" (Fan, Wang, Chu — IPDPS 2023).

The package implements HP-SpMM and HP-SDDMM with Dynamic Task Partition,
Hierarchical Vectorized Memory Access and Graph Clustering based
Reordering, together with every baseline kernel and substrate the paper's
evaluation depends on, on top of a deterministic GPU execution-model
simulator (see DESIGN.md).

Quickstart::

    import numpy as np
    from repro import HPSpMM, HybridMatrix, TESLA_V100
    from repro.graphs import load_graph

    S = load_graph("flickr").matrix
    A = np.random.default_rng(0).standard_normal((S.shape[1], 64), dtype=np.float32)
    result = HPSpMM().run(S, A, device=TESLA_V100)
    print(result.stats.time_ms, result.output.shape)
"""

from .formats import COOMatrix, CSRMatrix, HybridMatrix
from .gpusim import (
    RTX_3090,
    TESLA_A30,
    TESLA_V100,
    DeviceSpec,
    KernelStats,
    get_device,
)
from .kernels import (
    HPSDDMM,
    HPSpMM,
    SDDMMResult,
    SpMMResult,
    make_sddmm,
    make_spmm,
    sddmm_reference,
    spmm_reference,
)

__version__ = "1.0.0"

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "HybridMatrix",
    "RTX_3090",
    "TESLA_A30",
    "TESLA_V100",
    "DeviceSpec",
    "KernelStats",
    "get_device",
    "HPSDDMM",
    "HPSpMM",
    "SDDMMResult",
    "SpMMResult",
    "make_sddmm",
    "make_spmm",
    "sddmm_reference",
    "spmm_reference",
    "__version__",
]
