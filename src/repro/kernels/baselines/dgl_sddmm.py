"""DGL's SDDMM baseline — edge-parallel, no operand reuse.

DGL implements SDDMM with edge parallelism: each edge independently
gathers its source and destination feature rows and reduces the dot
product.  This is perfectly balanced (the paper calls its performance
competitive) but reloads the ``A1`` row for *every* edge of a node —
exactly the redundancy HP-SDDMM's row-switch register reuse removes.
"""

from __future__ import annotations

import numpy as np

from ...gpusim import (
    CostParams,
    DeviceSpec,
    LaunchConfig,
    WarpWorkload,
    simulate_launch,
)
from ...formats import HybridMatrix
from ..api import (
    SDDMMKernel,
    register_sddmm,
)
from ..common import estimate_hit_rate, per_warp_nnz, split_by_hit_rate


@register_sddmm
class DGLSDDMM(SDDMMKernel):
    """DGL edge-parallel SDDMM: one warp per edge (slice of 32 edges)."""

    name = "dgl-sddmm"

    def __init__(self, *, warps_per_block: int = 8) -> None:
        self.warps_per_block = warps_per_block

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        nnz = S.nnz
        npw = 32
        slice_nnz = per_warp_nnz(nnz, npw).astype(np.float64)
        num_warps = slice_nnz.size
        sector = device.l2_sector_bytes
        feats = float(k)
        row_sectors = feats * 4 / sector

        issue = slice_nnz * (
            3.0                                # row, col, val loads
            + 2.0 * np.ceil(feats / 32.0)      # A1 and A2 row loads
            + np.ceil(feats / 32.0)            # multiply
            + 5.0                              # warp reduction
            + 3.0                              # edge bookkeeping + store
        )
        fma = slice_nnz * np.ceil(feats / 32.0)

        sparse_sectors = slice_nnz * (12.0 / sector)
        # Both operand gathers go through the cache model: A2 via the
        # column stream, A1 via the row stream (re-read per edge!).
        hit_col = estimate_hit_rate(
            S.col, bytes_per_item=k * 4.0, device=device,
            concurrent_warps=num_warps, seed=1,
        )
        hit_row = estimate_hit_rate(
            S.row, bytes_per_item=k * 4.0, device=device,
            concurrent_warps=num_warps, seed=2,
        )
        # No A1 register reuse and no vectorization: the operand gathers
        # carry a mild redundancy factor versus HP-SDDMM's tiled loads.
        traffic = 1.15
        a2_l2, a2_dram = split_by_hit_rate(
            slice_nnz * row_sectors * traffic, hit_col
        )
        a1_l2, a1_dram = split_by_hit_rate(
            slice_nnz * row_sectors * traffic, hit_row
        )
        store_sectors = slice_nnz * 4.0 / sector

        work = WarpWorkload(
            issue=issue,
            l2_sectors=a1_l2 + a2_l2,
            dram_sectors=sparse_sectors + a1_dram + a2_dram + store_sectors,
            fma=fma,
        )
        config = LaunchConfig(
            warps_per_block=self.warps_per_block,
            registers_per_thread=32,
            shared_mem_per_block=0,
        )
        return simulate_launch(device, work, config, cost), 0.0
