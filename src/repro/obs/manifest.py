"""Run manifests: the provenance record written next to every report.

A report file alone (``results/fig9.txt``) says nothing about *how* it
was produced.  The manifest captures the reproducibility-relevant state
— experiment id and kwargs, library versions, every ``REPRO_*`` env
flag, and the unified metrics snapshot — as
``results/<experiment>.manifest.json``.  Deliberately excluded: wall
clock timestamps and hostnames, so manifests from identical runs diff
clean (the determinism linter also bans wall-clock reads here).

Schema (all keys always present)::

    {
      "schema": "repro.obs.manifest/v1",
      "experiment": "fig9",
      "config": {...},              # runner kwargs, if the caller knows them
      "env": {"REPRO_MAX_EDGES": "60000", ...},   # REPRO_* only
      "versions": {"python": "3.11.7", "numpy": ..., "scipy": ...},
      "platform": {"machine": "x86_64", "cpus": 8},
      "metrics": {...}              # repro.obs.metrics.snapshot()
    }
"""

from __future__ import annotations

import json
import os
import platform

from .metrics import snapshot

SCHEMA = "repro.obs.manifest/v1"


def _repro_env() -> dict[str, str]:
    """Every ``REPRO_*`` environment flag, sorted by name."""
    return {
        k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
    }


def _versions() -> dict[str, str]:
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }


def run_manifest(experiment: str, config: dict | None = None) -> dict:
    """Build the manifest payload for one experiment run."""
    return {
        "schema": SCHEMA,
        "experiment": experiment,
        "config": dict(config or {}),
        "env": _repro_env(),
        "versions": _versions(),
        "platform": {
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "metrics": snapshot(),
    }


def write_manifest(
    experiment: str, directory: str, config: dict | None = None
) -> str:
    """Write ``<directory>/<experiment>.manifest.json``; returns the path."""
    payload = run_manifest(experiment, config)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{experiment}.manifest.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path
