"""Fig. 10 — kernel performance over the graph-sampling dataset (V100)."""

from repro.bench import run_fig10, write_report

from conftest import bench_max_edges, bench_subgraphs


def test_fig10_sampling_dataset(run_once):
    res = run_once(
        run_fig10,
        k=64,
        max_edges=bench_max_edges(),
        num_subgraphs=bench_subgraphs(),
    )
    report = res.render()
    print("\n" + report)
    write_report("fig10", report)

    # Paper Table III (graph-sampling column) shape: HP wins on ~all
    # subgraphs against every baseline, without any preprocessing.
    for baseline in (
        "cusparse-csr-alg2",
        "cusparse-csr-alg3",
        "cusparse-coo-alg4",
        "ge-spmm",
        "row-split",
    ):
        avg, pct = res.spmm.summary_vs("hp-spmm", baseline)
        assert avg > 1.0, baseline
        assert pct > 85.0, baseline

    for baseline in ("dgl-sddmm", "cusparse-csr-sddmm"):
        avg, pct = res.sddmm.summary_vs("hp-sddmm", baseline)
        assert avg > 1.0, baseline
