"""Executor strategies for the engine's execute stage.

An executor is anything with ``map(fn, items) -> list`` that preserves
item order.  The engine's work units are deterministic pure functions of
their inputs, so the executor choice changes wall-clock time and process
topology — never results.  Three strategies cover the repo's needs:

* :class:`InlineExecutor` — a plain serial loop in the calling process.
  No pool counters, no extra processes; the default, and what the
  fig/table scripts and GNN timing use (their evaluation loops were
  always inline).
* :class:`PoolExecutor` — delegates to :func:`repro.perf.parallel_map`,
  keeping every behavior call sites already rely on: ``REPRO_JOBS``
  resolution, deterministic ordering, serial fallback on pool
  infrastructure failures only, ``parallel.*`` counters, and worker
  tracer spans spliced back onto the parent trace.
* :class:`ShardedExecutor` — a pool of *persistent* worker server
  processes (the ROADMAP "multi-worker serving" item).  Where
  ``PoolExecutor`` builds and tears down a pool per batch, the sharded
  workers live across batches, so a serving process pays fork cost once
  and every subsequent batch only pays queue traffic.  Units are
  sharded round-robin; results return in item order; worker spans are
  shipped back and spliced like the pool path; a worker exception is
  re-raised in the parent (lowest item index first, for determinism).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Callable, Protocol, Sequence

from ..obs import METRICS, trace_span
from ..obs.tracer import Tracer, get_tracer, set_tracer
from ..perf.parallel import parallel_map, resolve_jobs
from ..store import StoreAttachError, get_store, store_counters

#: Failures creating processes/queues in restricted sandboxes.
_SPAWN_FAILURES = (OSError, PermissionError, ValueError, ImportError)

_STOP = None  # sentinel shutting down a shard worker


class Executor(Protocol):
    """Order-preserving ``map`` over the engine's work units.

    ``ships_work`` tells the planner whether ``map`` may move items
    across a process boundary — only then is publishing matrices to the
    shared store worth anything.
    """

    ships_work: bool

    def map(self, fn: Callable, items: Sequence) -> list:
        ...


class InlineExecutor:
    """Serial, in-process evaluation — the deterministic baseline."""

    ships_work = False

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(item) for item in items]


class PoolExecutor:
    """Per-batch process-pool fan-out via :func:`repro.perf.parallel_map`.

    ``jobs=None`` defers to ``REPRO_JOBS`` exactly as the bench runner
    and serve layer always have; all ``parallel.*`` counters and the
    worker-span splicing behavior are ``parallel_map``'s own.
    """

    ships_work = True

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = jobs

    def map(self, fn: Callable, items: Sequence) -> list:
        seq_items = list(items)
        try:
            return parallel_map(fn, seq_items, jobs=self.jobs)
        except StoreAttachError:
            # A pool worker could not attach a shared segment (unlinked
            # or corrupted).  The parent's items keep their full
            # matrices, so re-evaluating inline is exact — the store is
            # a transport optimization, never a correctness dependency.
            get_store().record_fallback()
        return [fn(item) for item in seq_items]


def _shard_worker_loop(inbox, outbox) -> None:
    """A shard worker server: evaluate inbox items until told to stop.

    Each item runs under a worker-local tracer anchored at the parent
    tracer's ``t0_ns`` (when the parent traces), and the spans ship back
    with the result — the same splicing contract as ``parallel_map``
    pool workers, tagged ``shard_worker`` instead.  Worker exceptions
    come back as data; the parent re-raises them deterministically.
    """
    pid = os.getpid()
    while True:
        msg = inbox.get()
        if msg is _STOP:
            return
        seq, fn, item, t0_ns = msg
        spans: list = []
        # Bound before the try: if the accounting in the finally below
        # itself raises, the error reply must still be constructible.
        delta: dict = {}
        # Store counters accumulate in the worker's own process; ship
        # the per-item delta back so the parent's snapshot (and run
        # manifests) account for the sharing actually happening.
        before = store_counters()
        if t0_ns is not None:
            prev = get_tracer()
            worker_tracer = Tracer(t0_ns=t0_ns)
            set_tracer(worker_tracer)
        try:
            try:
                result = fn(item)
            finally:
                if t0_ns is not None:
                    set_tracer(prev)
                    for span in worker_tracer.spans:
                        span.args.setdefault("shard_worker", pid)
                    spans = worker_tracer.spans
                after = store_counters()
                delta = {
                    key: after[key] - before[key]
                    for key in ("attaches", "attach_hits", "fallbacks")
                    if after[key] != before[key]
                }
            reply = (seq, "ok", result, spans, pid, delta)
        except Exception as exc:  # noqa: BLE001 - shipped to parent
            reply = (seq, "error", exc, spans, pid, delta)
        try:
            outbox.put(reply)
        except Exception:  # unpicklable result/exception: degrade to repr
            outbox.put(
                (seq, "error", RuntimeError(repr(reply[2])), [], pid, {})
            )


class ShardedExecutor:
    """Persistent worker servers sharding batches round-robin.

    ``workers`` fixes the pool size; ``None`` resolves via
    ``REPRO_JOBS`` (minimum 2 — a single shard is just a slow inline
    loop).  Workers start lazily on the first ``map`` and persist until
    :meth:`stop` (or context-manager exit).  In sandboxes that forbid
    process/queue creation, ``map`` falls back to the inline loop and
    counts ``engine.shard_fallbacks`` — results are identical either
    way.

    ``affinity`` pins items to shards: a callable taking one work item
    and returning a shard key (any int — reduced modulo the pool size)
    or ``None`` to fall back to round-robin for that item.  The serve
    tier passes :meth:`repro.serve.ShardRouter.shard_of_unit` so every
    batch touching a graph lands on the worker that owns that graph's
    estimate cache and cost priors.  Determinism is unaffected: the
    executor only places work; results return in item order regardless.
    """

    ships_work = True

    def __init__(
        self, workers: int | None = None, *, affinity=None
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._requested = workers
        self._affinity = affinity
        self._procs: list = []
        self._inboxes: list = []
        self._outbox = None
        self._seq = 0
        #: fn -> pickle-probe verdict, held for the executor's lifetime.
        self._probe_ok: dict = {}
        #: worker pid -> items evaluated there (tests assert sharding).
        self.dispatch_counts: dict[int, int] = {}

    # -- lifecycle ------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    @property
    def worker_count(self) -> int:
        return len(self._procs)

    def _resolve_workers(self) -> int:
        if self._requested is not None:
            return self._requested
        return max(2, resolve_jobs())

    def start(self) -> None:
        """Fork the worker servers (idempotent)."""
        if self._procs:
            return
        n = self._resolve_workers()
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:
            ctx = multiprocessing.get_context()
        outbox = ctx.Queue()
        inboxes, procs = [], []
        for _ in range(n):
            inbox = ctx.Queue()
            proc = ctx.Process(
                target=_shard_worker_loop, args=(inbox, outbox), daemon=True
            )
            proc.start()
            inboxes.append(inbox)
            procs.append(proc)
        self._outbox = outbox
        self._inboxes = inboxes
        self._procs = procs

    def stop(self) -> None:
        """Shut the worker servers down (idempotent)."""
        for inbox in self._inboxes:
            try:
                inbox.put(_STOP)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for q in [*self._inboxes, self._outbox]:
            if q is not None:
                q.close()
        self._procs = []
        self._inboxes = []
        self._outbox = None
        self._probe_ok.clear()

    def __enter__(self) -> "ShardedExecutor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- execution ------------------------------------------------------
    def map(self, fn: Callable, items: Sequence) -> list:
        seq_items = list(items)
        if not seq_items:
            return []
        if not self._procs:
            try:
                self.start()
            except _SPAWN_FAILURES:
                METRICS.inc("engine.shard_fallbacks")
                return [fn(item) for item in seq_items]
        # Probe picklability once per (executor lifetime, fn) — a
        # serving process dispatches thousands of homogeneous batches
        # through one fn, and the old per-batch probe double-serialized
        # the first item of every one of them.
        probed = self._probe_ok.get(fn)
        if probed is None:
            METRICS.inc("engine.shard_probes")
            try:
                pickle.dumps(fn)
                pickle.dumps(seq_items[0])
                probed = True
            except Exception:
                probed = False
            self._probe_ok[fn] = probed
        if not probed:
            METRICS.inc("engine.shard_fallbacks")
            return [fn(item) for item in seq_items]

        tracer = get_tracer()
        t0_ns = tracer.t0_ns if tracer is not None else None
        n = len(self._inboxes)
        base = self._seq
        self._seq += len(seq_items)
        with trace_span(
            "sharded_map", cat="engine", workers=n, items=len(seq_items)
        ):
            # Placement: the affinity hook pins an item to its owning
            # shard; items it declines (None, or a hook failure) fall
            # back to round-robin on the batch-global sequence number,
            # so a serving process issuing many single-unit batches
            # still spreads unpinned work across the worker pool.
            for i, item in enumerate(seq_items):
                target = None
                if self._affinity is not None:
                    try:
                        key = self._affinity(item)
                    except Exception:
                        key = None
                        METRICS.inc("engine.shard_affinity_errors")
                    if key is not None:
                        target = int(key) % n
                        METRICS.inc("engine.shard_affinity_hits")
                if target is None:
                    target = (base + i) % n
                self._inboxes[target].put((base + i, fn, item, t0_ns))
            replies: dict[int, tuple] = {}
            for _ in seq_items:
                seq, status, payload, spans, pid, delta = self._outbox.get()
                replies[seq] = (status, payload)
                self.dispatch_counts[pid] = (
                    self.dispatch_counts.get(pid, 0) + 1
                )
                if delta:
                    get_store().absorb(delta)
                if spans and tracer is not None:
                    tracer.splice(spans)
        results = []
        for i in range(len(seq_items)):
            status, payload = replies[base + i]
            if status == "error":
                if isinstance(payload, StoreAttachError):
                    # The worker lost the shared segment; the parent's
                    # item still holds its matrix, so evaluate it here
                    # (fn is deterministic — same result either way).
                    get_store().record_fallback()
                    results.append(fn(seq_items[i]))
                    continue
                # Deterministic: the lowest-index failure raises, as it
                # would have in a serial loop.
                raise payload
            results.append(payload)
        METRICS.inc("engine.shard_runs")
        METRICS.inc("engine.shard_items", len(seq_items))
        return results
