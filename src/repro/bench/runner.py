"""Shared experiment machinery: kernel sweeps and speedup aggregation.

Conventions follow the paper's Section IV-A: times are kernel execution
only (format conversion excluded; hybrid CSR/COO needs none), speedups
are averaged per-graph ratios against HP kernels, and the "percentage"
column is the fraction of graphs on which the HP kernel is faster.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

import numpy as np

from ..analysis import ERROR, check_plan, plan_for_kernel
from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, TESLA_V100
from ..kernels import make_sddmm, make_spmm
from ..obs import METRICS, trace_span, write_manifest
from ..perf import parallel_map


class PlanCheckError(RuntimeError):
    """A sweep point's kernel plan failed the static schedule checker."""


def plan_checking_enabled() -> bool:
    """Sweeps plan-check every point unless ``REPRO_NO_PLAN_CHECK=1``."""
    return os.environ.get("REPRO_NO_PLAN_CHECK", "").strip() in ("", "0")

#: Paper kernel display names for the standard comparison sets.
SPMM_BASELINES: tuple[str, ...] = (
    "cusparse-csr-alg2",
    "cusparse-csr-alg3",
    "cusparse-coo-alg4",
    "ge-spmm",
    "row-split",
)
SDDMM_BASELINES: tuple[str, ...] = ("dgl-sddmm", "cusparse-csr-sddmm")


@dataclass(frozen=True)
class KernelRun:
    """One kernel on one graph."""

    graph: str
    kernel: str
    time_s: float
    preprocessing_s: float
    gflops: float

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6


@dataclass
class SweepResult:
    """All kernels over all graphs of one dataset."""

    device: str
    k: int
    runs: list[KernelRun] = field(default_factory=list)
    #: Plans verified by the static schedule checker before simulation;
    #: 0 means checking was skipped (REPRO_NO_PLAN_CHECK) — visible so a
    #: sweep that bypassed verification cannot masquerade as checked.
    plans_checked: int = 0
    #: Per-severity totals from the checker (error/warning/info).
    plan_diagnostics: dict = field(default_factory=dict)

    def plan_check_summary(self) -> str:
        """One-line checker summary for harness output."""
        if not self.plans_checked:
            return "plan-check: skipped (REPRO_NO_PLAN_CHECK=1)"
        c = self.plan_diagnostics
        return (
            f"plan-check: {self.plans_checked} plans verified "
            f"({c.get('error', 0)} errors, {c.get('warning', 0)} warnings, "
            f"{c.get('info', 0)} info)"
        )

    def times(self, kernel: str) -> dict[str, float]:
        return {r.graph: r.time_s for r in self.runs if r.kernel == kernel}

    def speedups_vs(self, ours: str, baseline: str) -> np.ndarray:
        """Per-graph ratio baseline_time / our_time (aligned by graph)."""
        t_ours = self.times(ours)
        t_base = self.times(baseline)
        graphs = [g for g in t_ours if g in t_base]
        return np.array([t_base[g] / t_ours[g] for g in graphs])

    def summary_vs(self, ours: str, baseline: str) -> tuple[float, float]:
        """(average speedup, win percentage) — the Table III columns."""
        s = self.speedups_vs(ours, baseline)
        if s.size == 0:
            return float("nan"), float("nan")
        return float(s.mean()), float(100.0 * np.mean(s > 1.0))


#: op -> kernel factory, for the unified sweep body.
_SWEEP_MAKERS = {"spmm": make_spmm, "sddmm": make_sddmm}


def _sweep_one_graph(
    item: tuple[str, str, HybridMatrix, tuple[str, ...], int, DeviceSpec],
) -> list[KernelRun]:
    """All kernels on one graph — the unit of work fanned over workers.

    Module-level (picklable) so :func:`repro.perf.parallel_map` can ship
    it to a process pool; estimates are deterministic, so parallel and
    serial sweeps return identical runs.
    """
    op, gname, S, kernels, k, device = item
    make = _SWEEP_MAKERS[op]
    flops = 2.0 * S.nnz * k
    runs = []
    checked = 0
    counts: dict[str, int] = {}
    do_check = plan_checking_enabled()
    for kname in kernels:
        # One span per sweep point (kernel x graph).  With REPRO_JOBS>1
        # these run in pool workers and stay there; run serially for a
        # complete single-process trace.
        with trace_span(
            f"sweep_point[{op}]", cat="bench",
            graph=gname, kernel=kname, k=k, device=device.name,
        ):
            kernel = make(kname)
            if do_check:
                diags = check_plan(plan_for_kernel(kernel, S, k, device))
                checked += 1
                for d in diags:
                    counts[d.severity] = counts.get(d.severity, 0) + 1
                errors = [d for d in diags if d.severity == ERROR]
                if errors:
                    detail = "\n".join(d.render() for d in errors)
                    raise PlanCheckError(
                        f"kernel {kname!r} on graph {gname!r} (k={k}, "
                        f"{device.name}) has an illegal schedule; refusing to "
                        f"simulate a silently-wrong sweep point:\n{detail}"
                    )
            res = kernel.estimate(S, k, device)
        runs.append(
            KernelRun(
                graph=gname,
                kernel=kname,
                time_s=res.stats.time_s,
                preprocessing_s=res.preprocessing_s,
                gflops=res.stats.throughput_gflops(flops),
            )
        )
    return runs, checked, counts


def _sweep(
    op: str,
    graphs: list[tuple[str, HybridMatrix]],
    kernels: tuple[str, ...],
    *,
    k: int,
    device: DeviceSpec,
    jobs: int | None,
) -> SweepResult:
    out = SweepResult(device=device.name, k=k)
    items = [
        (op, gname, S, tuple(kernels), k, device) for gname, S in graphs
    ]
    METRICS.inc("bench.sweeps")
    try:
        with trace_span(
            f"sweep[{op}]", cat="bench",
            k=k, device=device.name, graphs=len(items),
            kernels=len(kernels),
        ):
            mapped = parallel_map(_sweep_one_graph, items, jobs=jobs)
    except PlanCheckError:
        METRICS.inc("plan_check.failed")
        raise
    for runs, checked, counts in mapped:
        out.runs.extend(runs)
        out.plans_checked += checked
        for sev, n in counts.items():
            out.plan_diagnostics[sev] = out.plan_diagnostics.get(sev, 0) + n
    # Aggregated parent-side: with REPRO_JOBS>1 the per-point counters
    # accrue in pool workers and come back through the mapped results.
    METRICS.inc("plan_check.checked", out.plans_checked)
    for sev, n in out.plan_diagnostics.items():
        METRICS.inc(f"plan_check.diag_{sev}", n)
    if items:
        # Surface to stderr so report files stay byte-identical.
        print(
            f"[{op} sweep k={k} {device.name}] {out.plan_check_summary()}",
            file=sys.stderr,
        )
    return out


def sweep_spmm(
    graphs: list[tuple[str, HybridMatrix]],
    kernels: tuple[str, ...],
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    jobs: int | None = None,
) -> SweepResult:
    """Timing-only SpMM sweep of ``kernels`` over named graphs.

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable) fans
    per-graph work over a process pool; results keep graph order.
    """
    return _sweep("spmm", graphs, kernels, k=k, device=device, jobs=jobs)


def sweep_sddmm(
    graphs: list[tuple[str, HybridMatrix]],
    kernels: tuple[str, ...],
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    jobs: int | None = None,
) -> SweepResult:
    """Timing-only SDDMM sweep of ``kernels`` over named graphs."""
    return _sweep("sddmm", graphs, kernels, k=k, device=device, jobs=jobs)


def results_dir() -> str:
    """Directory where experiment reports are written."""
    base = os.environ.get("REPRO_RESULTS_DIR") or os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))),
        "results",
    )
    os.makedirs(base, exist_ok=True)
    return base


def write_report(
    experiment_id: str, text: str, *, config: dict | None = None
) -> str:
    """Persist a rendered experiment report; returns the path.

    A run manifest (``<experiment_id>.manifest.json`` — env flags,
    versions, unified metrics snapshot; see :mod:`repro.obs.manifest`)
    is written next to the report.  The report text itself is untouched,
    so reports stay byte-identical with or without observability on.
    """
    base = results_dir()
    path = os.path.join(base, f"{experiment_id}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    METRICS.inc("bench.reports")
    write_manifest(experiment_id, base, config)
    return path
