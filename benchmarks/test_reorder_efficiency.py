"""Section IV-D — reordering efficiency: GCR vs LSH vs pair merging."""

from repro.bench import run_reorder_efficiency, write_report

from conftest import locality_max_edges


def test_reorder_efficiency(run_once):
    res = run_once(
        run_reorder_efficiency,
        graph="proteins",
        max_edges=locality_max_edges(),
        pairmerge_budget_s=20.0,
    )
    report = res.render()
    print("\n" + report)
    write_report("reorder", report)

    # Paper (full-size proteins): GCR 4.6 s < LSH 15.56 s << pair-merge
    # > 120 min.  The ordering must hold at any scale.
    assert res.gcr_s < res.lsh_s
    assert res.lsh_s < res.pairmerge_s
    # Pair merging is catastrophically slower than GCR.
    assert res.pairmerge_s > 5 * res.gcr_s
