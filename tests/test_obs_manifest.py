"""Run manifests: schema, env capture, and report-side emission."""

import json
import os

import pytest

from repro.obs import METRICS, run_manifest, write_manifest
from repro.obs.manifest import SCHEMA

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def fresh_metrics():
    METRICS.reset()
    yield
    METRICS.reset()


def test_manifest_schema_keys(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EDGES", "60000")
    monkeypatch.setenv("NOT_OURS", "ignored")
    doc = run_manifest("fig9", config={"k": 64})
    assert set(doc) == {
        "schema", "experiment", "config", "env", "versions", "platform",
        "metrics",
    }
    assert doc["schema"] == SCHEMA
    assert doc["experiment"] == "fig9"
    assert doc["config"] == {"k": 64}
    # Env capture: REPRO_* flags only.
    assert doc["env"]["REPRO_MAX_EDGES"] == "60000"
    assert "NOT_OURS" not in doc["env"]
    assert set(doc["versions"]) == {"python", "numpy", "scipy"}
    assert doc["platform"]["cpus"] == os.cpu_count()
    assert "estimate_cache.hits" in doc["metrics"]


def test_write_manifest_round_trip(tmp_path):
    path = write_manifest("table3", str(tmp_path), config={"k": 32})
    assert path == str(tmp_path / "table3.manifest.json")
    with open(path) as f:
        doc = json.load(f)
    assert doc["experiment"] == "table3"
    assert doc["config"] == {"k": 32}


def test_write_report_emits_manifest_beside_report(tmp_path, monkeypatch):
    from repro.bench.runner import write_report

    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = write_report("toy", "report body", config={"k": 8})
    assert path == str(tmp_path / "toy.txt")
    with open(path) as f:
        assert f.read() == "report body\n"
    with open(tmp_path / "toy.manifest.json") as f:
        doc = json.load(f)
    assert doc["experiment"] == "toy"
    assert doc["config"] == {"k": 8}
    assert doc["metrics"]["bench.reports"] == 1
