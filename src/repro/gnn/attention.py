"""Attention-style GNN ops: autograd SDDMM, edge softmax, weighted SpMM.

This is the edge-wise half of the Message Passing Paradigm (paper
Eq. 2): attention models compute an edge score with SDDMM, normalize it
per destination with an edge softmax, and aggregate with an SpMM whose
*values* are the attention weights.  The sparse-kernel symmetry the
paper exploits shows up in autograd:

* ``sddmm_op``'s backward is two SpMMs (gradients w.r.t. both dense
  operands);
* ``weighted_spmm``'s backward w.r.t. its edge values is an SDDMM.

So a single attention layer triggers both HP kernels in both passes —
the workload mix the paper's Section I motivates.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..formats import HybridMatrix
from .autograd import Tensor, _make
from .sparse_ops import GraphOperand
from .timing import TimingContext


def sddmm_op(
    graph: GraphOperand,
    a1: Tensor,
    a2: Tensor,
    timing: TimingContext | None = None,
) -> Tensor:
    """Edge scores ``e_(u,v) = <a1[v], a2[u]>`` over the sparsity pattern.

    ``a1`` has shape (M, K) (destination features), ``a2`` shape (N, K)
    (source features).  Returns an nnz-length Tensor in the matrix's
    element order.  Backward gradients are SpMM products with the
    gradient-weighted pattern.
    """
    S = graph.matrix
    k = a1.data.shape[1]
    scores = np.einsum(
        "ij,ij->i", a1.data[S.row], a2.data[S.col], dtype=np.float32
    )
    if timing is not None:
        timing.record_sddmm(S, k)

    def backward(g: np.ndarray) -> None:
        weighted = sp.csr_matrix(
            (g.astype(np.float32), (S.row, S.col)), shape=S.shape
        )
        if a1.requires_grad:
            if timing is not None:
                timing.record_spmm(S, k)
            a1._accumulate(weighted @ a2.data)
        if a2.requires_grad:
            if timing is not None:
                timing.record_spmm(graph.matrix_t, k)
            a2._accumulate(weighted.T @ a1.data)

    return _make(
        scores, (a1, a2), backward, a1.requires_grad or a2.requires_grad
    )


def edge_softmax(
    graph: GraphOperand,
    scores: Tensor,
    timing: TimingContext | None = None,
) -> Tensor:
    """Softmax of edge scores over each destination node's incoming edges.

    Works on the row-sorted hybrid layout: each row's contiguous segment
    is one softmax group.  Rows with no edges contribute nothing.
    """
    S = graph.matrix
    indptr = S.indptr()
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    starts = indptr[:-1][nonempty].astype(np.int64)

    x = scores.data
    seg_max = np.maximum.reduceat(x, starts)
    per_edge_max = np.repeat(seg_max, lengths[nonempty])
    ex = np.exp(x - per_edge_max)
    seg_sum = np.add.reduceat(ex, starts)
    per_edge_sum = np.repeat(seg_sum, lengths[nonempty])
    alpha = (ex / per_edge_sum).astype(np.float32)
    if timing is not None:
        # Two segment reductions + one elementwise pass over the edges.
        timing.record_elementwise(int(S.nnz), num_arrays=4)

    def backward(g: np.ndarray) -> None:
        if scores.requires_grad:
            dot = np.add.reduceat(alpha * g, starts)
            per_edge_dot = np.repeat(dot, lengths[nonempty])
            scores._accumulate(alpha * (g - per_edge_dot))

    return _make(alpha, (scores,), backward, scores.requires_grad)


def weighted_spmm(
    graph: GraphOperand,
    values: Tensor,
    x: Tensor,
    timing: TimingContext | None = None,
) -> Tensor:
    """``out = S(values) @ X`` with the sparsity pattern of ``graph``.

    ``values`` replaces the pattern's stored values (e.g. attention
    weights).  Backward: grad w.r.t. ``values`` is an SDDMM of the output
    gradient against ``X``; grad w.r.t. ``X`` is a transposed SpMM.
    """
    S = graph.matrix
    k = x.data.shape[1]
    weighted = sp.csr_matrix(
        (values.data.astype(np.float32), (S.row, S.col)), shape=S.shape
    )
    out_data = (weighted @ x.data).astype(np.float32)
    if timing is not None:
        timing.record_spmm(S, k)

    def backward(g: np.ndarray) -> None:
        if values.requires_grad:
            if timing is not None:
                timing.record_sddmm(S, k)
            grad_vals = np.einsum(
                "ij,ij->i", g[S.row], x.data[S.col], dtype=np.float32
            )
            values._accumulate(grad_vals)
        if x.requires_grad:
            if timing is not None:
                timing.record_spmm(graph.matrix_t, k)
            x._accumulate(weighted.T @ g)

    return _make(
        out_data, (values, x), backward,
        values.requires_grad or x.requires_grad,
    )


def leaky_relu(a: Tensor, slope: float = 0.2) -> Tensor:
    """LeakyReLU (GAT's score nonlinearity)."""
    mask = a.data > 0
    grad_factor = np.where(mask, 1.0, slope).astype(np.float32)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(g * grad_factor)

    return _make(a.data * grad_factor, (a,), backward, a.requires_grad)
