"""Louvain community detection, from scratch — the engine of GCR.

Graph Clustering based Reordering (paper Section III-C) runs the Louvain
method to find communities and renumbers nodes so each community becomes
a contiguous block of rows/columns.  This implementation uses the
*parallel local-moving* formulation (the same family as the GPU Louvain
the paper cites): every pass evaluates, fully vectorized, the modularity
gain of moving each node to its best neighboring community, applies the
moves for a random half of the nodes (breaking oscillation), and then
aggregates communities into supernodes for the next level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import HybridMatrix
from .base import Reorderer


@dataclass
class _Level:
    """A working graph at one Louvain level: symmetric weighted edges."""

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    num_nodes: int

    @property
    def total_weight(self) -> float:
        """Sum of edge weights counting both directions (2m)."""
        return float(self.weight.sum())


def _symmetrize(S: HybridMatrix) -> _Level:
    """Undirected weighted view of an adjacency matrix, self-loops dropped."""
    keep = S.row != S.col
    src = np.concatenate([S.row[keep], S.col[keep]]).astype(np.int64)
    dst = np.concatenate([S.col[keep], S.row[keep]]).astype(np.int64)
    w = np.abs(S.val[keep]).astype(np.float64)
    w = np.concatenate([w, w])
    # Merge duplicate (src, dst) pairs by summing weights.
    n = S.shape[0]
    key = src * n + dst
    order = np.argsort(key, kind="stable")
    key = key[order]
    w = w[order]
    uniq_mask = np.empty(key.size, dtype=bool)
    if key.size:
        uniq_mask[0] = True
        uniq_mask[1:] = key[1:] != key[:-1]
    starts = np.nonzero(uniq_mask)[0]
    merged_w = np.add.reduceat(w, starts) if key.size else w
    ukey = key[starts] if key.size else key
    return _Level(
        src=(ukey // n),
        dst=(ukey % n),
        weight=merged_w,
        num_nodes=n,
    )


def _node_strengths(level: _Level) -> np.ndarray:
    """Weighted degree of each node."""
    return np.bincount(
        level.src, weights=level.weight, minlength=level.num_nodes
    )


def _best_moves(
    level: _Level,
    comm: np.ndarray,
    strength: np.ndarray,
    comm_strength: np.ndarray,
    two_m: float,
    resolution: float,
) -> tuple[np.ndarray, np.ndarray]:
    """For every node: best neighboring community and its modularity gain.

    Fully vectorized: edges are grouped by (node, neighbor community),
    weights summed per group, and the per-node maximum gain selected.
    """
    n = level.num_nodes
    dst_comm = comm[level.dst]
    key = level.src * np.int64(n) + dst_comm
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    w_s = level.weight[order]
    if key_s.size == 0:
        return comm.copy(), np.zeros(n)
    group_start = np.empty(key_s.size, dtype=bool)
    group_start[0] = True
    group_start[1:] = key_s[1:] != key_s[:-1]
    starts = np.nonzero(group_start)[0]
    w_group = np.add.reduceat(w_s, starts)
    g_node = (key_s[starts] // n).astype(np.int64)
    g_comm = (key_s[starts] % n).astype(np.int64)

    # Gain of node u joining community c (after conceptually leaving its
    # own): k_{u->c} - resolution * k_u * Sigma_c / 2m.  Remove the node's
    # own contribution when c is its current community.
    sigma = comm_strength[g_comm] - np.where(
        g_comm == comm[g_node], strength[g_node], 0.0
    )
    w_own = np.where(g_comm == comm[g_node], 0.0, w_group)
    gain = w_own - resolution * strength[g_node] * sigma / two_m

    # Current-community baseline gain for staying put.
    stay_sigma = comm_strength[comm] - strength
    stay_w = np.zeros(n)
    own_groups = g_comm == comm[g_node]
    stay_w[g_node[own_groups]] = w_group[own_groups]
    stay_gain = stay_w - resolution * strength * stay_sigma / two_m

    # Per-node argmax over its groups.
    best_comm = comm.copy()
    best_gain = stay_gain.copy()
    node_order = np.argsort(g_node, kind="stable")
    gn = g_node[node_order]
    gc = g_comm[node_order]
    gg = gain[node_order]
    node_starts = np.empty(gn.size, dtype=bool)
    node_starts[0] = True
    node_starts[1:] = gn[1:] != gn[:-1]
    seg = np.nonzero(node_starts)[0]
    max_per_node = np.maximum.reduceat(gg, seg)
    seg_nodes = gn[seg]
    # Identify one argmax entry per node: an entry equal to its segment max.
    seg_id = np.cumsum(node_starts) - 1
    is_max = gg == max_per_node[seg_id]
    # Keep the first max per segment.
    first_max = np.zeros(gn.size, dtype=bool)
    idx_max = np.nonzero(is_max)[0]
    keep = np.empty(idx_max.size, dtype=bool)
    if idx_max.size:
        keep[0] = True
        keep[1:] = seg_id[idx_max[1:]] != seg_id[idx_max[:-1]]
    first_max[idx_max[keep]] = True
    upd_nodes = gn[first_max]
    upd_comm = gc[first_max]
    upd_gain = gg[first_max]
    better = upd_gain > best_gain[upd_nodes] + 1e-12
    best_comm[upd_nodes[better]] = upd_comm[better]
    best_gain[upd_nodes[better]] = upd_gain[better]
    return best_comm, best_gain - stay_gain


def louvain_communities(
    S: HybridMatrix,
    *,
    resolution: float = 1.0,
    max_levels: int = 8,
    max_passes: int = 12,
    min_improvement: float = 1e-4,
    seed: int = 0,
) -> np.ndarray:
    """Community id per node of ``S`` via multi-level Louvain.

    Deterministic in ``seed``.  Returns an int64 array with community ids
    compacted to ``0..C-1``.
    """
    rng = np.random.default_rng(seed)
    level = _symmetrize(S)
    n0 = level.num_nodes
    mapping = np.arange(n0, dtype=np.int64)  # original node -> supernode

    for _ in range(max_levels):
        n = level.num_nodes
        two_m = level.total_weight
        if two_m <= 0 or n <= 1:
            break
        strength = _node_strengths(level)
        comm = np.arange(n, dtype=np.int64)
        comm_strength = strength.copy()

        moved_any = False
        for _ in range(max_passes):
            best_comm, gains = _best_moves(
                level, comm, strength, comm_strength, two_m, resolution
            )
            want = (best_comm != comm) & (gains > min_improvement)
            if not want.any():
                break
            # Move a random half of the willing nodes (oscillation breaker).
            candidates = np.nonzero(want)[0]
            take = rng.random(candidates.size) < 0.5
            if not take.any():
                take[rng.integers(0, candidates.size)] = True
            movers = candidates[take]
            np.add.at(comm_strength, comm[movers], -strength[movers])
            comm[movers] = best_comm[movers]
            np.add.at(comm_strength, comm[movers], strength[movers])
            moved_any = True

        # Compact community labels.
        uniq, comm = np.unique(comm, return_inverse=True)
        if not moved_any or uniq.size == n:
            mapping = comm[mapping]
            break
        mapping = comm[mapping]

        # Aggregate: communities become supernodes.
        c = uniq.size
        key = comm[level.src] * np.int64(c) + comm[level.dst]
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        w_s = level.weight[order]
        gstart = np.empty(key_s.size, dtype=bool)
        gstart[0] = True
        gstart[1:] = key_s[1:] != key_s[:-1]
        starts = np.nonzero(gstart)[0]
        level = _Level(
            src=(key_s[starts] // c).astype(np.int64),
            dst=(key_s[starts] % c).astype(np.int64),
            weight=np.add.reduceat(w_s, starts),
            num_nodes=int(c),
        )

    # Compact the final labels over original nodes.
    _, compact = np.unique(mapping, return_inverse=True)
    return compact.astype(np.int64)


def modularity(S: HybridMatrix, comm: np.ndarray, resolution: float = 1.0) -> float:
    """Newman modularity of a community assignment (undirected view)."""
    level = _symmetrize(S)
    two_m = level.total_weight
    if two_m <= 0:
        return 0.0
    strength = _node_strengths(level)
    internal = level.weight[comm[level.src] == comm[level.dst]].sum()
    comm_strength = np.bincount(comm, weights=strength)
    return float(
        internal / two_m
        - resolution * np.sum((comm_strength / two_m) ** 2)
    )


class GCRReorderer(Reorderer):
    """Graph Clustering based Reordering: Louvain + contiguous renumbering.

    Nodes of one community become consecutive; communities are laid out
    in descending size so the hottest operand rows cluster at the front.
    """

    name = "gcr-louvain"

    def __init__(self, *, resolution: float = 1.0, seed: int = 0) -> None:
        self.resolution = resolution
        self.seed = seed

    def permutation(self, S: HybridMatrix) -> np.ndarray:
        comm = louvain_communities(
            S, resolution=self.resolution, seed=self.seed
        )
        sizes = np.bincount(comm)
        order_of_comm = np.argsort(-sizes, kind="stable")
        rank = np.empty_like(order_of_comm)
        rank[order_of_comm] = np.arange(order_of_comm.size)
        return np.lexsort((np.arange(comm.size), rank[comm])).astype(np.int64)
