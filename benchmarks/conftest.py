"""Benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation.
By default they run at a reduced scale (``BENCH_MAX_EDGES`` edges per
graph, a reduced subgraph count) so the whole suite finishes in minutes;
export ``REPRO_MAX_EDGES=1500000`` and ``REPRO_SUBGRAPHS=838`` to run at
the library's full calibrated scale.

Each benchmark writes its rendered report under ``results/``.
"""

import os

os.environ.setdefault("REPRO_MAX_EDGES", "400000")
os.environ.setdefault("REPRO_SUBGRAPHS", "48")

import pytest


def bench_max_edges() -> int:
    return int(os.environ["REPRO_MAX_EDGES"])


def bench_subgraphs() -> int:
    return int(os.environ["REPRO_SUBGRAPHS"])


def locality_max_edges() -> int:
    """Scale for locality/preprocessing experiments (fig11, table4,
    reorder): their effects require operand footprints exceeding the L2
    cache and host passes large enough to dominate, so they always run
    at the library's full calibrated scale."""
    return max(bench_max_edges(), 1_500_000)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run
