"""Unit tests for the memory transaction model (HVMA substrate)."""

import numpy as np
import pytest

from repro.gpusim import (
    dense_row_profile,
    is_aligned,
    max_vector_width,
    sectors_for_access,
    sparse_tile_load_sectors,
    strided_gather_sectors,
    warp_scatter_sectors,
)


def test_sectors_for_aligned_access():
    assert sectors_for_access(0, 32) == 1
    assert sectors_for_access(0, 64) == 2
    assert sectors_for_access(32, 32) == 1


def test_sectors_for_misaligned_access_touches_extra():
    # A 32-byte access starting at byte 4 straddles two sectors.
    assert sectors_for_access(4, 32) == 2
    assert sectors_for_access(28, 8) == 2


def test_sectors_for_zero_bytes():
    assert sectors_for_access(0, 0) == 0


def test_sectors_vectorized_over_arrays():
    starts = np.array([0, 4, 64])
    nbytes = np.array([32, 32, 16])
    np.testing.assert_array_equal(
        sectors_for_access(starts, nbytes), [1, 2, 1]
    )


def test_is_aligned():
    assert is_aligned(0, 32)
    assert is_aligned(64, 32)
    assert not is_aligned(4, 32)
    np.testing.assert_array_equal(
        is_aligned(np.array([0, 4]), 32), [True, False]
    )


def test_max_vector_width():
    assert max_vector_width(0, 64) == 4       # aligned, divisible
    assert max_vector_width(8, 64) == 2       # 8-byte aligned only
    assert max_vector_width(4, 64) == 1       # 4-byte aligned
    assert max_vector_width(0, 3) == 1        # length not divisible


def test_dense_row_profile_k64():
    # K=64 fp32: 256 bytes, aligned; float2 -> 1 instruction per row.
    p = dense_row_profile(64, vector_width=2)
    assert p.aligned
    assert p.instructions == 1
    assert p.sectors_aligned == 8
    assert p.sectors == 8


def test_dense_row_profile_misaligned_k():
    # K=7 fp32: 28 bytes, never sector-aligned.
    p = dense_row_profile(7, vector_width=4)
    assert not p.aligned
    assert p.vector_width == 1  # downgraded: 7 not divisible
    assert p.sectors == p.sectors_misaligned == p.sectors_aligned + 1


def test_dense_row_profile_scalar_instructions():
    p = dense_row_profile(128, vector_width=1)
    assert p.instructions == 4  # 128 / 32


def test_dense_row_profile_validates():
    with pytest.raises(ValueError):
        dense_row_profile(0)
    with pytest.raises(ValueError):
        dense_row_profile(32, vector_width=3)


def test_sparse_tile_load_sectors_aligned():
    # 32 elements x 4B = 128B per array = 4 sectors; 3 arrays = 12.
    assert sparse_tile_load_sectors(32) == 12


def test_sparse_tile_load_sectors_misaligned_pays_extra():
    assert sparse_tile_load_sectors(32, aligned=False) == 15


def test_gather_and_scatter_costs():
    assert strided_gather_sectors(64) == 8
    assert warp_scatter_sectors(32) == 32
