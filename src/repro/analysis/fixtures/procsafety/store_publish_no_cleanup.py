"""Adversarial fixture: ``procsafety/publish-without-cleanup``.

Shared-memory segments are created and never unlinked anywhere in the
module — they outlive the process and fill ``/dev/shm``.  Never
imported; analyzed statically by the CI negative-control loop.
"""

from multiprocessing import shared_memory


def publish_segment(name, payload):
    shm = shared_memory.SharedMemory(create=True, size=len(payload), name=name)
    shm.buf[: len(payload)] = payload
    return shm
