"""Adversarial fixture: ``procsafety/leaked-resource-on-error``.

The file is opened inside a ``try`` whose next statement can raise, and
the handler re-raises without closing it — the descriptor leaks on every
failed attach.  Never imported; analyzed statically by the CI
negative-control loop.
"""

import mmap


def attach_segment(path):
    try:
        f = open(path, "rb")
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    except OSError as exc:
        raise RuntimeError(f"cannot attach segment {path!r}") from exc
    return f, mm
