"""Adversarial fixture: ``procsafety/tracer-not-restored``.

``set_tracer`` installs process-global tracer state and the function
returns without restoring the previous tracer — spans from unrelated
work land on this timeline.  Never imported; analyzed statically by the
CI negative-control loop.
"""

from repro.obs.tracer import Tracer, set_tracer


def trace_one(fn, item, t0_ns):
    set_tracer(Tracer(t0_ns=t0_ns))
    return fn(item)
