"""Design-choice ablation sweeps (small-scale unit coverage)."""

import pytest

from repro.bench.ablations import (
    run_design_ablations,
    sweep_alpha,
    sweep_l2_capacity,
    sweep_nnz_per_warp,
    sweep_warps_per_block,
)

SMALL = 40_000


def test_nnz_per_warp_sweep_structure():
    res = sweep_nnz_per_warp("corafull", max_edges=SMALL)
    assert res.values == [8, 32, 64, 128, 256, 512]
    assert len(res.times_us) == 6
    assert res.chosen in res.values
    assert res.best() in res.values
    assert res.regret() >= 1.0
    assert "NnzPerWarp" in res.render()


def test_alpha_sweep_monotone_domain():
    res = sweep_alpha("corafull", max_edges=SMALL)
    assert res.chosen == 4.0
    assert all(t > 0 for t in res.times_us)


def test_warps_per_block_sweep():
    res = sweep_warps_per_block("corafull", max_edges=SMALL)
    assert res.values == [2, 4, 8, 16]
    assert res.regret() < 3.0


def test_run_design_ablations_bundle():
    out = run_design_ablations(graphs=("corafull",), max_edges=SMALL)
    assert len(out) == 3
    names = {r.name for r in out}
    assert names == {"NnzPerWarp", "alpha", "WarpsPerBlock"}


def test_l2_capacity_sweep_gcr_gain_shrinks():
    res = sweep_l2_capacity("corafull", k=128, max_edges=SMALL,
                            capacities_mb=(0.5, 2.0, 64.0))
    gains = res.times_us  # speedups here
    # With an enormous L2 everything is cached: GCR gain ~ 1.0;
    # with a tiny L2 the reordering matters more.
    assert gains[0] >= gains[-1] - 0.05
    assert gains[-1] == pytest.approx(1.0, abs=0.1)
