"""Design-choice sensitivity sweeps (DESIGN.md's ablation benches)."""

from repro.bench import write_report
from repro.bench.ablations import run_design_ablations

from conftest import bench_max_edges


def test_design_ablations(run_once):
    results = run_once(
        run_design_ablations,
        graphs=("arxiv", "ddi"),
        max_edges=bench_max_edges(),
    )
    report = "\n\n".join(r.render() for r in results)
    print("\n" + report)
    write_report("ablations", report)

    for res in results:
        assert len(res.times_us) == len(res.values)
        assert all(t > 0 for t in res.times_us)
        # The library's chosen setting is never catastrophically wrong:
        # within 2.5x of the sweep's best for every knob and graph.
        assert res.regret() < 2.5, (res.name, res.graph, res.regret())

    # DTP's NnzPerWarp pick is near-optimal (within 40% of the best
    # candidate) on both graphs.
    for res in results:
        if res.name == "NnzPerWarp":
            assert res.regret() < 1.4, (res.graph, res.regret())
