"""Structural features of a sampled world graph.

One row per config in the world report: the feature table the
ROADMAP's input-aware auto-selection item will train on.  Everything
here is a deterministic function of the matrix structure (the same
quantities the estimate-cache fingerprint and the cost priors already
key on), so feature rows are byte-stable across runs and processes.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from ..graphs import DegreeStats


def structural_features(S: HybridMatrix) -> dict:
    """Feature vector for one graph, JSON-ready.

    Degree dispersion (cv), tail mass (p99 / heavy-row fraction) and
    density are the axes the paper's own sensitivity study (Fig. 12)
    shows drive kernel crossovers; empty-row fraction separates the
    row-parallel baselines, which pay for rows they skip.
    """
    n = int(S.shape[0])
    deg = S.row_degrees()
    stats = DegreeStats.of(S)
    if deg.size:
        p99 = float(np.quantile(deg, 0.99))
        heavy = float(np.mean(deg > 4.0 * stats.mean)) if stats.mean else 0.0
        empty = float(np.mean(deg == 0))
    else:
        p99, heavy, empty = 0.0, 0.0, 0.0
    return {
        "nodes": n,
        "nnz": int(S.nnz),
        "density": float(S.nnz / (n * n)) if n else 0.0,
        "degree_mean": stats.mean,
        "degree_std": stats.std,
        "degree_cv": stats.cv,
        "degree_max": stats.max,
        "degree_p99": p99,
        "frac_heavy_rows": heavy,
        "frac_empty_rows": empty,
    }
