"""CSR (compressed sparse row) format (paper Fig. 2(b)).

CSR stores ``RowOffset`` (length ``M + 1``), ``ColInd`` and ``Value``.
It is the format consumed by cuSPARSE's ALG2/ALG3 SpMM and CSR SDDMM, and
by the row-split / merge-path / GE-SpMM baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .base import (
    SparseFormatError,
    as_index_array,
    as_value_array,
    check_bounds,
    check_shape,
)


@dataclass(frozen=True)
class CSRMatrix:
    """An ``M x N`` sparse matrix in compressed sparse row format.

    Attributes
    ----------
    indptr : int32 array of length ``M + 1``
        ``indptr[i]`` is the index into ``indices``/``data`` of the first
        element of row ``i`` (the paper's ``Row Offset`` array).
    indices : int32 array of length ``nnz``
        Column index of each stored element, grouped by row.
    data : float32 array of length ``nnz``
        Stored values.
    shape : (int, int)
        Dense shape ``(M, N)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_arrays(cls, indptr, indices, data=None, *, shape) -> "CSRMatrix":
        """Build a validated :class:`CSRMatrix` from raw arrays."""
        m, n = check_shape(shape)
        ptr = as_index_array(indptr, "indptr")
        idx = as_index_array(indices, "indices")
        if ptr.size != m + 1:
            raise SparseFormatError(
                f"indptr length {ptr.size} does not match {m} rows"
            )
        if ptr.size and (ptr[0] != 0 or ptr[-1] != idx.size):
            raise SparseFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(ptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        check_bounds(idx, n, "indices")
        val = as_value_array(data, "data", idx.size)
        return cls(indptr=ptr, indices=idx, data=val, shape=(m, n))

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Convert any scipy sparse matrix to :class:`CSRMatrix`."""
        m = sp.csr_matrix(mat)
        m.sort_indices()
        return cls.from_arrays(m.indptr, m.indices, m.data, shape=m.shape)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored elements."""
        return int(self.data.size)

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def memory_elements(self) -> int:
        """Storage cost in array elements: ``M + 1 + 2 * NNZ`` (paper Section II)."""
        return self.shape[0] + 1 + 2 * self.nnz

    def row_degrees(self) -> np.ndarray:
        """Number of stored elements per row."""
        return np.diff(self.indptr).astype(np.int64)

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` as array views."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def to_scipy(self) -> sp.csr_matrix:
        """Convert to ``scipy.sparse.csr_matrix``."""
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Densify (test-sized matrices only)."""
        return self.to_scipy().toarray()

    def decode_row_indices(self) -> np.ndarray:
        """Expand ``indptr`` into a full per-element row-index array.

        This is exactly the CSR-to-hybrid decode step of paper Fig. 2(d).
        """
        return np.repeat(
            np.arange(self.shape[0], dtype=self.indices.dtype),
            np.diff(self.indptr),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
