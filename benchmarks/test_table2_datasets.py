"""Table II — dataset inventory and calibration audit."""

from repro.bench import run_table2, write_report

from conftest import bench_max_edges


def test_table2_dataset_calibration(run_once):
    res = run_once(run_table2, max_edges=bench_max_edges())
    report = res.render()
    print("\n" + report)
    write_report("table2", report)

    # All 19 paper datasets present with positive sizes.
    assert len(res.rows) == 19
    for row in res.rows:
        name, _, p_nodes, p_edges, s_nodes, s_edges, mean, std, mx = row
        assert s_nodes > 0 and s_edges > 0
        assert s_nodes <= p_nodes
        # Mean degree preserved under scaling unless density-capped.
        paper_deg = p_edges / p_nodes
        if paper_deg < 0.2 * s_nodes:
            assert mean == __import__("pytest").approx(paper_deg, rel=0.35)

    # Degree skew present where the paper's graphs are skewed.
    am = res.row("am")
    assert am[7] > 5 * am[6]  # std >> mean on the AM entity graph
