"""Per-graph cost priors for admission control.

The serve layer triages deadlines by predicting how long a full-path
estimate will take.  A single process-wide EWMA conflates graphs whose
evaluation costs differ by orders of magnitude (a 1k-row synthetic vs
reddit), so the engine records what each graph's evaluations *actually*
cost — a running mean of measured per-request seconds, keyed by graph
name.  Because the engine evaluates through the estimate cache, a
graph's prior automatically tightens as its cache warms: repeat
evaluations measure cache hits (microseconds), first-touch evaluations
measure the simulator.  The EWMA survives only as the cold-start
fallback for graphs with no observations yet.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class _Prior:
    count: int = 0
    mean_s: float = 0.0


class CostPriorBook:
    """Thread-safe running means of per-request evaluation seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._priors: dict[str, _Prior] = {}

    @staticmethod
    def _key(graph: str | None) -> str:
        return graph if graph is not None else ""

    def observe(
        self, graph: str | None, seconds_per_request: float, *, count: int = 1
    ) -> None:
        """Fold ``count`` requests that averaged ``seconds_per_request``."""
        if count <= 0:
            return
        key = self._key(graph)
        with self._lock:
            prior = self._priors.setdefault(key, _Prior())
            total = prior.count + count
            prior.mean_s += (seconds_per_request - prior.mean_s) * (
                count / total
            )
            prior.count = total

    def predict(self, graph: str | None) -> float | None:
        """Expected per-request seconds, or ``None`` with no history."""
        with self._lock:
            prior = self._priors.get(self._key(graph))
            if prior is None or prior.count == 0:
                return None
            return prior.mean_s

    def observations(self, graph: str | None) -> int:
        with self._lock:
            prior = self._priors.get(self._key(graph))
            return prior.count if prior else 0

    def snapshot(self) -> dict[str, dict]:
        """``{graph: {count, mean_s}}`` for manifests and tests."""
        with self._lock:
            return {
                name: {"count": p.count, "mean_s": p.mean_s}
                for name, p in sorted(self._priors.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._priors.clear()


#: Process-wide book.  The engine writes it (``observe_priors`` configs);
#: the serve layer reads it for deadline triage.
_BOOK = CostPriorBook()


def cost_priors() -> CostPriorBook:
    return _BOOK
