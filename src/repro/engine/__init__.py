"""``repro.engine`` — the unified estimation pipeline.

One pipeline serves every evaluation path in the repo: build an
:class:`EstimateRequest`, plan it (graph + device resolution, kernel
registry lookup, optional static plan check), execute it through a
pluggable :class:`Executor`, get an :class:`EstimateResult` back.  The
bench runner, the fig/table CLI scripts, the serve layer, and GNN
training-epoch timing all mount this module instead of carrying private
copies of kernel dispatch, cache wiring, plan checking, and span
instrumentation.

Quickstart::

    from repro.engine import Engine, EstimateRequest

    eng = Engine()
    res = eng.estimate(
        EstimateRequest(op="spmm", kernel="hp-spmm", graph="ca-2010", k=64)
    )
    print(res.time_s, res.bound, res.gflops)

See DESIGN.md ("Execution engine") for the pipeline diagram and the
executor strategies.
"""

from .bounds import (
    BOUND_ATOMIC,
    BOUND_BALANCE,
    BOUND_DRAM,
    BOUND_FMA,
    BOUND_ISSUE,
    BOUND_L2,
    BOUND_LAUNCH,
    VALID_BOUNDS,
    check_bound,
)
from .core import (
    STATUS_ERROR,
    STATUS_OK,
    BatchResult,
    Engine,
    EngineConfig,
    EstimateRequest,
    EstimateResult,
    PlanCheckError,
    Selection,
    default_engine,
    estimate_caching_enabled,
    plan_checking_enabled,
)
from .executors import (
    Executor,
    InlineExecutor,
    PoolExecutor,
    ShardedExecutor,
)
from .priors import CostPriorBook, cost_priors
from .registry import (
    OP_SDDMM,
    OP_SPMM,
    VALID_OPS,
    kernel_factory,
    make_kernel,
    valid_kernels,
)

__all__ = [
    "BOUND_ATOMIC",
    "BOUND_BALANCE",
    "BOUND_DRAM",
    "BOUND_FMA",
    "BOUND_ISSUE",
    "BOUND_L2",
    "BOUND_LAUNCH",
    "BatchResult",
    "CostPriorBook",
    "Engine",
    "EngineConfig",
    "EstimateRequest",
    "EstimateResult",
    "Executor",
    "InlineExecutor",
    "OP_SDDMM",
    "OP_SPMM",
    "PlanCheckError",
    "PoolExecutor",
    "STATUS_ERROR",
    "STATUS_OK",
    "Selection",
    "ShardedExecutor",
    "VALID_BOUNDS",
    "VALID_OPS",
    "check_bound",
    "cost_priors",
    "default_engine",
    "estimate_caching_enabled",
    "kernel_factory",
    "make_kernel",
    "plan_checking_enabled",
    "valid_kernels",
]
