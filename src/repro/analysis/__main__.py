"""CLI: ``python -m repro.analysis [--json] [--fixture NAME] [paths...]``.

Default run checks every shipped kernel config's plan and lints
``src/repro``; exits nonzero on any error-severity diagnostic.  With
``--fixture`` it checks one seeded adversarial plan instead — those must
always fail, which CI uses as the checker's negative control.
"""

from __future__ import annotations

import argparse
import sys

from . import ADVERSARIAL_PLANS, Report, check_plan, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static schedule checker + determinism linter.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro source tree)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--no-plans", action="store_true", help="skip the plan-checker layer"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the linter layer"
    )
    parser.add_argument(
        "--show-info",
        action="store_true",
        help="include info-severity diagnostics (wave reports) in text output",
    )
    parser.add_argument(
        "--fixture",
        choices=sorted(ADVERSARIAL_PLANS),
        help="check one seeded adversarial plan (must exit nonzero)",
    )
    args = parser.parse_args(argv)

    if args.fixture:
        report = Report()
        report.extend(check_plan(ADVERSARIAL_PLANS[args.fixture]()))
        report.plans_checked = 1
    else:
        report = run_all(
            args.paths or None,
            plans=not args.no_plans,
            lint=not args.no_lint,
        )

    if args.json:
        print(report.render_json())
    else:
        print(report.render_text(show_info=args.show_info))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
