"""Subgraph samplers (GraphSAINT / GraphSAGE)."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.graphs import (
    build_sampling_dataset,
    community_graph,
    induced_subgraph,
    sage_neighbor_sampler,
    saint_edge_sampler,
    saint_node_sampler,
    saint_walk_sampler,
)


@pytest.fixture(scope="module")
def parent():
    return community_graph(3000, 36_000, num_communities=10, p_in=0.8, seed=9)


def test_induced_subgraph_correctness():
    S = HybridMatrix.from_arrays(
        [0, 0, 1, 2, 3], [1, 2, 2, 3, 0], [1.0, 2.0, 3.0, 4.0, 5.0],
        shape=(4, 4),
    )
    sub = induced_subgraph(S, np.array([0, 2, 3]))
    # Kept edges among {0, 2, 3}: (0,2)=2, (2,3)=4, (3,0)=5.
    dense = sub.to_dense()
    assert sub.shape == (3, 3)
    assert dense[0, 1] == 2.0   # 0->2
    assert dense[1, 2] == 4.0   # 2->3
    assert dense[2, 0] == 5.0   # 3->0
    assert sub.nnz == 3


def test_induced_subgraph_dedups_nodes():
    S = HybridMatrix.from_arrays([0], [1], None, shape=(3, 3))
    sub = induced_subgraph(S, np.array([1, 1, 0]))
    assert sub.shape == (2, 2)


def test_node_sampler_budget_and_determinism(parent):
    a = saint_node_sampler(parent, 500, seed=3)
    b = saint_node_sampler(parent, 500, seed=3)
    assert a.num_nodes <= 500
    np.testing.assert_array_equal(a.node_map, b.node_map)
    c = saint_node_sampler(parent, 500, seed=4)
    assert not np.array_equal(a.node_map, c.node_map)


def test_node_sampler_prefers_high_degree(parent):
    sub = saint_node_sampler(parent, 600, seed=5)
    deg = parent.row_degrees()
    sampled_mean = deg[sub.node_map].mean()
    assert sampled_mean > deg.mean()


def test_edge_sampler(parent):
    sub = saint_edge_sampler(parent, 2000, seed=6)
    assert sub.sampler == "saint-edge"
    assert sub.num_edges > 0
    assert sub.node_map.size == sub.num_nodes


def test_walk_sampler(parent):
    sub = saint_walk_sampler(parent, 100, 4, seed=7)
    assert sub.sampler == "saint-walk"
    assert 0 < sub.num_nodes <= 100 * 5  # roots x (length + 1)


def test_sage_sampler_expands_neighborhood(parent):
    sub = sage_neighbor_sampler(parent, 50, (5, 5), seed=8)
    assert sub.num_nodes >= 50
    assert sub.sampler == "sage-neighbor"


def test_subgraph_nodes_are_sorted_parent_ids(parent):
    sub = saint_node_sampler(parent, 300, seed=9)
    assert np.all(np.diff(sub.node_map) > 0)
    assert sub.node_map.max() < parent.shape[0]


def test_build_sampling_dataset_mixes_samplers(parent):
    subs = build_sampling_dataset([parent], per_parent=8, node_budget=400)
    kinds = {s.sampler for s in subs}
    assert kinds == {
        "saint-node", "saint-edge", "saint-walk", "sage-neighbor"
    }
    assert all(s.num_edges > 0 for s in subs)


def test_build_sampling_dataset_deterministic(parent):
    a = build_sampling_dataset([parent], per_parent=4, node_budget=400, seed=1)
    b = build_sampling_dataset([parent], per_parent=4, node_budget=400, seed=1)
    assert [s.num_edges for s in a] == [s.num_edges for s in b]
