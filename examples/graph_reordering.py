"""Graph Clustering based Reordering demo (paper Section III-C).

Usage::

    python examples/graph_reordering.py [graph-name]

Runs Louvain community detection on a calibrated dataset, reorders the
adjacency matrix so communities are contiguous, and shows the effect on
the modeled L2 hit rate and on HP-SpMM's simulated time — the mechanism
behind the +GCR bars of paper Fig. 11.  Also compares reordering cost
against the LSH/Jaccard competitor (Section IV-D).
"""

import sys

from repro.bench import render_table
from repro.gpusim import TESLA_V100
from repro.graphs import load_graph
from repro.kernels import HPSpMM
from repro.kernels.common import estimate_hit_rate
from repro.reorder import GCRReorderer, LSHReorderer, louvain_communities, modularity


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "yelp"
    S = load_graph(name).matrix
    k = 128

    comm = louvain_communities(S)
    print(f"{name}: {S.shape[0]} nodes, {S.nnz} edges")
    print(f"Louvain found {int(comm.max()) + 1} communities, "
          f"modularity {modularity(S, comm):.3f}\n")

    gcr = GCRReorderer().apply(S)
    lsh = LSHReorderer().apply(S)

    rows = []
    for label, matrix, elapsed in (
        ("original", S, 0.0),
        ("GCR (Louvain)", gcr.matrix, gcr.elapsed_s),
        ("LSH/Jaccard [35]", lsh.matrix, lsh.elapsed_s),
    ):
        hit = estimate_hit_rate(matrix.col, k * 4.0, TESLA_V100)
        t = HPSpMM().estimate(matrix, k, TESLA_V100).stats
        rows.append([
            label, elapsed, 100.0 * hit, t.time_us,
            t.dram_bytes / 1e6,
        ])
    print(render_table(
        ["ordering", "reorder time (s)", "L2 hit %", "HP-SpMM (us)",
         "DRAM (MB)"],
        rows,
        title=f"Effect of reordering on locality ({name}, K={k})",
    ))
    base, after = rows[0][3], rows[1][3]
    print(f"\nGCR speedup on HP-SpMM: {base / after:.2f}x "
          f"(paper Fig. 11: up to ~1.4x on Yelp/PPA)")


if __name__ == "__main__":
    main()
