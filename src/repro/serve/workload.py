"""Synthetic replay workloads for exercising the estimation server.

A :class:`WorkloadSpec` describes a reproducible request stream over the
graph registry — which graphs, kernels, feature widths and devices to
draw from, how many requests, and how they arrive:

* ``replay`` — every request is submitted *before* the server starts,
  so the batcher drains them in deterministic full micro-batches.  This
  is the mode CI smokes: coalescing and dedup counters are exact
  functions of the spec.
* ``closed`` — ``clients`` threads each submit their share of the
  stream one request at a time, waiting for each answer before sending
  the next (closed-loop arrival; concurrency = client count).
* ``open`` — one thread submits the whole stream with seeded
  exponential inter-arrival gaps at ``arrival_rate_hz`` (open-loop
  arrival; queue depth floats with service time).

Every ``forced_deadline_every``-th request carries ``deadline_s=0.0``:
its budget is already exhausted when triaged, so it deterministically
exercises the degraded quick-model path regardless of machine speed.

:func:`run_workload` executes a spec against a fresh
:class:`~repro.serve.server.EstimationServer` and returns the report
dict (schema ``repro.serve.report/v1``) the serve CLI writes to
``results/serve_<name>.json``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import asdict, dataclass

from ..engine import Executor, check_bound
from ..obs import get_histogram
from .request import EstimateRequest, EstimateResponse, STATUSES
from .server import EstimationServer

SCHEMA = "repro.serve.report/v1"


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible request stream against the estimation server."""

    name: str
    mode: str = "replay"            #: "replay" | "closed" | "open"
    graphs: tuple[str, ...] = ("aifb", "corafull")
    spmm_kernels: tuple[str, ...] = ("hp-spmm", "ge-spmm")
    sddmm_kernels: tuple[str, ...] = ("hp-sddmm",)
    ks: tuple[int, ...] = (32, 64)
    devices: tuple[str, ...] = ("v100",)
    num_requests: int = 48
    seed: int = 7
    max_edges: int = 20_000         #: registry edge cap for every request
    forced_deadline_every: int = 6  #: every Nth request gets deadline 0
    deadline_s: float | None = None  #: deadline for the other requests
    clients: int = 4                #: closed-loop client threads
    arrival_rate_hz: float = 200.0  #: open-loop mean arrival rate
    max_batch: int = 16
    batch_window_s: float = 0.02
    #: Caller-side ceiling on each ``result()`` wait.  A dead or wedged
    #: server fails the run with ``TimeoutError`` instead of hanging the
    #: driver (and CI) forever.
    result_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.mode not in ("replay", "closed", "open"):
            raise ValueError(f"unknown workload mode {self.mode!r}")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.result_timeout_s <= 0:
            raise ValueError("result_timeout_s must be positive")


#: Named presets the serve CLI exposes (``--workload <name>``).
WORKLOADS: dict[str, WorkloadSpec] = {
    "smoke": WorkloadSpec(name="smoke"),
    "closed-loop": WorkloadSpec(
        name="closed-loop", mode="closed", num_requests=64, clients=4,
        batch_window_s=0.005,
    ),
    "open-loop": WorkloadSpec(
        name="open-loop", mode="open", num_requests=64,
        arrival_rate_hz=400.0, deadline_s=0.5,
    ),
    "mixed-graphs": WorkloadSpec(
        name="mixed-graphs",
        graphs=("aifb", "corafull", "coauthor-cs", "amazon-photo"),
        num_requests=96, forced_deadline_every=8,
    ),
    # Open-loop Poisson arrivals at 10x the smoke-workload rate with a
    # hard per-request deadline: the CI soak drives this through the
    # socket front end against a 2-shard server and asserts p99 stays
    # under deadline_s with zero worker crashes.
    "soak": WorkloadSpec(
        name="soak", mode="open", num_requests=400,
        arrival_rate_hz=2000.0, deadline_s=0.25,
        forced_deadline_every=0, batch_window_s=0.005,
    ),
}


def generate_requests(spec: WorkloadSpec) -> list[EstimateRequest]:
    """The spec's request stream — a pure function of the spec."""
    rng = random.Random(spec.seed)
    requests: list[EstimateRequest] = []
    for i in range(spec.num_requests):
        op = rng.choice(("spmm", "sddmm"))
        kernels = spec.spmm_kernels if op == "spmm" else spec.sddmm_kernels
        forced = (
            spec.forced_deadline_every > 0
            and (i + 1) % spec.forced_deadline_every == 0
        )
        requests.append(
            EstimateRequest(
                op=op,
                kernel=rng.choice(kernels),
                graph=rng.choice(spec.graphs),
                k=rng.choice(spec.ks),
                device=rng.choice(spec.devices),
                deadline_s=0.0 if forced else spec.deadline_s,
                max_edges=spec.max_edges,
            )
        )
    return requests


def _drive_replay(server, requests, timeout_s: float) -> list:
    tickets = server.submit_many(requests)  # queued before the worker runs
    server.start()
    return [t.result(timeout_s) for t in tickets]


def _drive_closed(server, requests, clients: int, timeout_s: float) -> list:
    server.start()
    shares = [requests[c::clients] for c in range(clients)]
    results: list[list] = [[] for _ in range(clients)]

    def client(c: int) -> None:
        for req in shares[c]:
            results[c].append(server.estimate(req, timeout=timeout_s))

    threads = [
        threading.Thread(target=client, args=(c,), name=f"client-{c}")
        for c in range(clients)
        if shares[c]
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Reassemble stream order (client c owned indices c, c+clients, ...).
    out: list = [None] * len(requests)
    for c, share in enumerate(results):
        out[c::clients] = share
    return out


def _drive_open(
    server, requests, rate_hz: float, seed: int, timeout_s: float
) -> list:
    server.start()
    rng = random.Random(seed + 1)
    tickets = []
    for i, req in enumerate(requests):
        tickets.append(server.submit(req))
        # No gap after the last submit: a trailing sleep would inflate
        # the open-loop makespan (and deflate throughput) by one full
        # inter-arrival time that no request ever occupies.
        if i + 1 < len(requests):
            time.sleep(rng.expovariate(rate_hz))
    return [t.result(timeout_s) for t in tickets]


def run_workload(
    spec: WorkloadSpec, *, executor: Executor | None = None
) -> dict:
    """Run one workload on a fresh server; returns the report dict.

    ``executor`` overrides the server's engine execution strategy —
    e.g. a started :class:`~repro.engine.ShardedExecutor` for
    multi-worker serving.  Estimates are deterministic, so the report's
    answers are identical for every executor; only latencies move.
    """
    requests = generate_requests(spec)
    server = EstimationServer(
        max_batch=spec.max_batch, batch_window_s=spec.batch_window_s,
        executor=executor,
    )
    hist = get_histogram("serve.request_latency")
    count_before = hist.count
    try:
        if spec.mode == "replay":
            responses = _drive_replay(server, requests, spec.result_timeout_s)
        elif spec.mode == "closed":
            responses = _drive_closed(
                server, requests, spec.clients, spec.result_timeout_s
            )
        else:
            responses = _drive_open(
                server, requests, spec.arrival_rate_hz, spec.seed,
                spec.result_timeout_s,
            )
    finally:
        server.stop()
    return build_report(spec, server, responses, count_before)


def build_report(
    spec: WorkloadSpec,
    server: EstimationServer | None,
    responses: list[EstimateResponse],
    hist_count_before: int = 0,
    *,
    stats: dict | None = None,
    latency: dict | None = None,
) -> dict:
    """Assemble the ``repro.serve.report/v1`` payload.

    The in-process path reads ``server.stats()`` and this process's
    latency histogram; remote clients (:mod:`repro.serve.net`) pass the
    server's ``stats``/``latency`` fetched over the wire instead.
    """
    if stats is None:
        assert server is not None
        stats = server.stats()
    if latency is None:
        hist = get_histogram("serve.request_latency")
        latency = hist.summary()
        latency["count"] -= hist_count_before  # this run's share
    by_status = {s: stats.get(s, 0) for s in STATUSES}
    # Report-schema assertion: every answered bound must come from the
    # engine's canonical vocabulary (belt to EstimateResponse's braces).
    for r in responses:
        if r.bound is not None:
            check_bound(r.bound)
    answers = [
        {
            "op": r.request.op,
            "kernel": r.request.kernel,
            "graph": r.request.graph,
            "k": r.request.k,
            "device": r.request.device,
            "status": r.status,
            "time_s": r.time_s,
            "preprocessing_s": r.preprocessing_s,
            "bound": r.bound,
            "batch_id": r.batch_id,
            "batch_size": r.batch_size,
            "error": r.error,
        }
        for r in responses
    ]
    return {
        "schema": SCHEMA,
        "workload": asdict(spec),
        "summary": {
            "requests": len(responses),
            "by_status": by_status,
            "batches": stats["batches"],
            "coalesced": stats["coalesced"],
            "deduped": stats["deduped"],
            "queue_depth_max": stats["queue_depth_max"],
            "batch_size_max": stats["batch_size_max"],
            "worker_crashes": stats.get("worker_crashes", 0),
        },
        "latency_s": latency,
        "responses": answers,
    }
