"""The socket front end: framing, streaming, shedding, shard routing."""

import json
import socket

import pytest

from repro.engine import ShardedExecutor, cost_priors
from repro.obs import METRICS, reset_histograms
from repro.perf import get_estimate_cache
from repro.perf.fingerprint import matrix_fingerprint
from repro.serve import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    EstimateRequest,
    EstimateResponse,
    EstimationServer,
    ProtocolError,
    ServeClient,
    ShardRouter,
    SocketFrontEnd,
    WORKLOADS,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    run_workload,
    run_workload_remote,
)
from repro.serve.net import recv_frame, send_frame

pytestmark = pytest.mark.serve

MAX_EDGES = 20_000
WAIT_S = 60.0


@pytest.fixture(autouse=True)
def fresh_serving_state(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    METRICS.reset()
    reset_histograms()
    get_estimate_cache().clear()
    cost_priors().reset()
    yield
    METRICS.reset()
    reset_histograms()
    cost_priors().reset()


def req(**kw):
    base = dict(
        op="spmm", kernel="hp-spmm", graph="aifb", k=32,
        device="v100", max_edges=MAX_EDGES,
    )
    base.update(kw)
    return EstimateRequest(**base)


def front_end(server=None, **kw):
    server = EstimationServer() if server is None else server
    return SocketFrontEnd(server, "127.0.0.1", 0, **kw)


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------

def test_request_wire_roundtrip_is_exact():
    r = req(k=64, deadline_s=0.25, allow_degraded=False)
    assert request_from_wire(request_to_wire(r)) == r
    # And through actual JSON, as the socket does it.
    assert request_from_wire(json.loads(json.dumps(request_to_wire(r)))) == r


def test_response_wire_roundtrip_is_exact():
    resp = EstimateResponse(
        request=req(), status=STATUS_OK, time_s=4.9735368402426696e-06,
        preprocessing_s=1e-3, bound="dram", latency_s=0.012,
        queue_wait_s=0.003, batch_id=3, batch_size=16,
    )
    again = response_from_wire(json.loads(json.dumps(response_to_wire(resp))))
    assert again == resp
    assert again.time_s == resp.time_s  # float round-trips bit-exact


def test_malformed_wire_payloads_raise_value_error():
    with pytest.raises(ValueError):
        request_from_wire({"op": "spmm"})  # missing required fields
    with pytest.raises(ValueError):
        request_from_wire({"op": "spmm", "kernel": "x", "graph": "g",
                           "bogus_field": 1})
    with pytest.raises(ValueError):
        response_from_wire({"status": "ok"})  # no nested request


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        send_frame(a, {"type": "ping", "payload": [1, 2, 3]})
        frame = recv_frame(b, max_frame=1 << 20)
        assert frame == {"type": "ping", "payload": [1, 2, 3]}
        a.close()
        assert recv_frame(b, max_frame=1 << 20) is None  # clean EOF
    finally:
        b.close()


def test_oversized_and_garbage_frames_are_protocol_errors():
    a, b = socket.socketpair()
    try:
        send_frame(a, {"type": "big", "blob": "x" * 1000})
        with pytest.raises(ProtocolError, match="max_frame"):
            recv_frame(b, max_frame=64)
    finally:
        a.close()
        b.close()
    a, b = socket.socketpair()  # fresh pair: the big body is unread above
    try:
        a.sendall(b"\x00\x00\x00\x04abcd")  # length ok, body not JSON
        with pytest.raises(ProtocolError, match="JSON"):
            recv_frame(b, max_frame=1 << 20)
        a.sendall(b"\x00\x00\x00\x02[]")  # valid JSON, not an object
        with pytest.raises(ProtocolError, match="object"):
            recv_frame(b, max_frame=1 << 20)
    finally:
        a.close()
        b.close()


# ----------------------------------------------------------------------
# Round trip through a live front end
# ----------------------------------------------------------------------

def test_socket_estimate_matches_in_process():
    server = EstimationServer()
    with front_end(server) as fe:
        with ServeClient(*fe.address) as client:
            assert client.ping()
            remote = client.estimate(req(), timeout=WAIT_S)
    local = EstimationServer()
    with local:
        direct = local.estimate(req(), timeout=WAIT_S)
    server.stop()
    assert remote.status == STATUS_OK
    assert remote.time_s == direct.time_s
    assert remote.bound == direct.bound
    assert METRICS.get("serve.conn_opened") == 1
    assert METRICS.get("serve.conn_closed") == 1
    assert METRICS.get("serve.net_requests") == 1
    assert METRICS.get("serve.net_responses") == 1


def test_responses_stream_per_micro_batch():
    """A raw-socket replay observes answers arriving batch by batch:
    batch ids are non-decreasing in arrival order and span >1 batch."""
    server = EstimationServer(max_batch=4, batch_window_s=0.005)
    requests = [req(k=k) for k in (32, 64, 128, 256)] * 2  # 8 -> 2 batches
    with front_end(server) as fe:
        sock = socket.create_connection(fe.address, timeout=WAIT_S)
        try:
            send_frame(sock, {
                "type": "reqs",
                "ids": list(range(len(requests))),
                "requests": [request_to_wire(r) for r in requests],
            })
            arrival_batches = []
            answered = {}
            while len(answered) < len(requests):
                frame = recv_frame(sock, max_frame=1 << 24)
                assert frame["type"] == "resp"
                resp = response_from_wire(frame["response"])
                answered[frame["id"]] = resp
                arrival_batches.append(resp.batch_id)
        finally:
            sock.close()
    server.stop()
    assert all(r.status == STATUS_OK for r in answered.values())
    assert len(set(arrival_batches)) == 2          # two micro-batches
    assert arrival_batches == sorted(arrival_batches)  # streamed in order


def test_shed_then_retry():
    """Past the watermark the client is refused with a back-off hint;
    once depth recovers, the same request succeeds."""

    class DepthSpoofServer(EstimationServer):
        forced_depth = 0

        @property
        def queue_depth(self):
            return self.forced_depth

    server = DepthSpoofServer()
    with front_end(server, queue_high=2) as fe:
        with ServeClient(*fe.address) as client:
            DepthSpoofServer.forced_depth = 100
            shed = client.estimate(req(), timeout=WAIT_S)
            assert shed.status == STATUS_SHED
            assert not shed.answered
            assert shed.retry_after_s is not None and shed.retry_after_s > 0
            assert "watermark" in shed.error
            # The client backs off and retries once the queue drains.
            DepthSpoofServer.forced_depth = 0
            retried = client.estimate(req(), timeout=WAIT_S)
            assert retried.status == STATUS_OK
    server.stop()
    DepthSpoofServer.forced_depth = 0
    assert METRICS.get("serve.shed") == 1
    assert server.stats()[STATUS_SHED] == 1


def test_atomic_submission_sheds_whole_frame():
    class DepthSpoofServer(EstimationServer):
        @property
        def queue_depth(self):
            return 0

    server = DepthSpoofServer()
    with front_end(server, queue_high=2) as fe:
        with ServeClient(*fe.address) as client:
            tickets = client.submit_atomic([req(k=k) for k in (32, 64, 128)])
            responses = [t.result(WAIT_S) for t in tickets]
    server.stop()
    # 0 + 3 > 2: every request in the frame shed together.
    assert [r.status for r in responses] == [STATUS_SHED] * 3
    assert METRICS.get("serve.shed") == 3


def test_stats_and_error_frames():
    server = EstimationServer()
    with front_end(server) as fe:
        with ServeClient(*fe.address) as client:
            client.estimate(req(), timeout=WAIT_S)
            info = client.stats()
            assert info["stats"]["requests"] == 1
            assert info["stats"]["completed"] == 1
            assert "p99" in info["latency_s"]
            assert info["queue_depth"] == 0
        # A bad request payload fails only itself; the connection and
        # subsequent requests keep working.
        sock = socket.create_connection(fe.address, timeout=WAIT_S)
        try:
            send_frame(sock, {"type": "req", "id": 0,
                              "request": {"op": "spmm"}})
            frame = recv_frame(sock, max_frame=1 << 20)
            assert frame["type"] == "error"
            assert "malformed" in frame["error"]
            send_frame(sock, {"type": "req", "id": 1,
                              "request": request_to_wire(req())})
            frame = recv_frame(sock, max_frame=1 << 20)
            assert frame["type"] == "resp"
            assert response_from_wire(frame["response"]).status == STATUS_OK
            # An unknown frame type is fatal to the connection.
            send_frame(sock, {"type": "bogus"})
            frame = recv_frame(sock, max_frame=1 << 20)
            assert frame["type"] == "error"
            assert recv_frame(sock, max_frame=1 << 20) is None
        finally:
            sock.close()
    server.stop()
    assert METRICS.get("serve.net_bad_requests") == 1
    assert METRICS.get("serve.protocol_errors") == 1


def test_stopped_server_answers_errors_not_hangs():
    server = EstimationServer()
    with front_end(server) as fe:
        server.stop(drain=False)
        with ServeClient(*fe.address) as client:
            resp = client.estimate(req(), timeout=WAIT_S)
            assert resp.status == STATUS_ERROR
            assert "stopped" in resp.error


# ----------------------------------------------------------------------
# Golden: the socket path reproduces the in-process report exactly
# ----------------------------------------------------------------------

def _deterministic_core(report):
    return json.dumps(
        {"responses": report["responses"], "summary": report["summary"]},
        sort_keys=True,
    )


def _reset_state():
    METRICS.reset()
    reset_histograms()
    get_estimate_cache().clear()
    cost_priors().reset()


def test_remote_smoke_report_is_byte_identical_to_in_process():
    spec = WORKLOADS["smoke"]
    _reset_state()
    local = run_workload(spec)
    _reset_state()
    server = EstimationServer(
        max_batch=spec.max_batch, batch_window_s=spec.batch_window_s
    )
    with front_end(server) as fe:
        remote = run_workload_remote(spec, *fe.address)
    server.stop()
    assert _deterministic_core(remote) == _deterministic_core(local)
    assert remote["client_latency_s"]["count"] == spec.num_requests
    assert remote["client_latency_s"]["p99"] > 0


# ----------------------------------------------------------------------
# Shard router
# ----------------------------------------------------------------------

def test_shard_router_is_deterministic_and_spreads():
    fingerprints = [f"m100x100-nnz{i}-abc{i}" for i in range(64)]
    a, b = ShardRouter(4), ShardRouter(4)
    placed = [a.shard_of_fingerprint(fp) for fp in fingerprints]
    assert placed == [b.shard_of_fingerprint(fp) for fp in fingerprints]
    assert all(0 <= s < 4 for s in placed)
    assert len(set(placed)) == 4  # 64 structures cover all 4 buckets
    assert a.table() == dict(zip(fingerprints, placed))
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_shard_router_routes_units_by_matrix_fingerprint():
    from repro.engine.core import _WorkUnit
    from repro.graphs import load_graph

    S = load_graph("aifb", max_edges=MAX_EDGES).matrix
    router = ShardRouter(3)
    unit = _WorkUnit(
        graph="aifb", S=S, points=[], check_plans=False,
        capture_errors=True, span="s", cat="c",
    )
    expected = router.shard_of_fingerprint(matrix_fingerprint(S))
    assert router.shard_of_unit(unit) == expected
    assert router.shard_of_matrix(S) == expected
    assert router.shard_of_graph("aifb", max_edges=MAX_EDGES) == expected
    # No matrix and no store handle: decline (round-robin fallback).
    bare = _WorkUnit(
        graph="aifb", S=None, points=[], check_plans=False,
        capture_errors=True, span="s", cat="c",
    )
    assert router.shard_of_unit(bare) is None


def test_sharded_executor_affinity_pins_items():
    def everything_to_shard_one(item):
        return 1

    with ShardedExecutor(
        workers=2, affinity=everything_to_shard_one
    ) as executor:
        results = executor.map(len, [[1], [2, 2], [3, 3, 3]])
    if METRICS.get("engine.shard_fallbacks"):
        pytest.skip("sandbox forbids worker processes")
    assert results == [1, 2, 3]
    # Every item landed on the single pinned worker.
    assert len(executor.dispatch_counts) == 1
    assert sum(executor.dispatch_counts.values()) == 3
    assert METRICS.get("engine.shard_affinity_hits") == 3


def test_sharded_executor_affinity_none_falls_back_to_round_robin():
    with ShardedExecutor(workers=2, affinity=lambda item: None) as executor:
        results = executor.map(len, [[1], [2, 2], [3, 3, 3], [4] * 4])
    if METRICS.get("engine.shard_fallbacks"):
        pytest.skip("sandbox forbids worker processes")
    assert results == [1, 2, 3, 4]
    assert len(executor.dispatch_counts) == 2  # spread over both workers
    assert METRICS.get("engine.shard_affinity_hits") == 0
