"""The ``python -m repro.bench`` command-line interface."""

import pytest

from repro.bench.__main__ import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig9", "table3", "table5", "reorder", "ablations", "table2"):
        assert name in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["definitely-not-an-experiment"])


def test_run_single_experiment(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["table2", "--max-edges", "20000"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert (tmp_path / "table2.txt").exists()


def test_run_fig12_with_default_args(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    # fig12 generates its own graphs (no max-edges knob).
    assert main(["fig12"]) == 0
    assert "Pearson" in capsys.readouterr().out
