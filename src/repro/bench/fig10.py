"""Fig. 10 — kernel performance on the graph-sampling dataset (V100, K=64).

Regenerates the subgraph comparison: samplers draw subgraphs from the
calibrated parent graphs (the paper collects 838 from ten sampling-based
GNN training runs), every kernel is timed on each, and the distribution
of speedups is summarized.  GCR is *not* applied — subgraphs are sampled
at runtime (paper Section IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import env_int
from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import build_sampling_dataset, load_graph
from .runner import (
    SDDMM_BASELINES,
    SPMM_BASELINES,
    SweepResult,
    sweep_sddmm,
    sweep_spmm,
)
from .tables import render_table

#: Parent graphs the sampling models of the paper train on.
DEFAULT_PARENTS: tuple[str, ...] = (
    "flickr",
    "yelp",
    "arxiv",
    "products",
    "ppa",
    "collab",
)


def default_subgraph_count() -> int:
    """Subgraphs to sample; REPRO_SUBGRAPHS=838 reproduces the full set."""
    return env_int("REPRO_SUBGRAPHS", 96)


@dataclass
class Fig10Result:
    """Speedup distribution over sampled subgraphs."""

    spmm: SweepResult
    sddmm: SweepResult
    num_subgraphs: int
    k: int
    device: str

    def summary_rows(self) -> list[list]:
        rows = []
        for b in SPMM_BASELINES:
            avg, pct = self.spmm.summary_vs("hp-spmm", b)
            s = self.spmm.speedups_vs("hp-spmm", b)
            rows.append(["spmm", b, avg, float(np.median(s)), pct])
        for b in SDDMM_BASELINES:
            avg, pct = self.sddmm.summary_vs("hp-sddmm", b)
            s = self.sddmm.speedups_vs("hp-sddmm", b)
            rows.append(["sddmm", b, avg, float(np.median(s)), pct])
        return rows

    def render(self) -> str:
        return render_table(
            ["op", "baseline", "avg speedup", "median", "win %"],
            self.summary_rows(),
            title=(
                f"Fig. 10 — sparse kernels, graph-sampling dataset "
                f"({self.device}, K={self.k}, {self.num_subgraphs} subgraphs)"
            ),
        )


def run_fig10(
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    parents: tuple[str, ...] = DEFAULT_PARENTS,
    num_subgraphs: int | None = None,
    max_edges: int | None = None,
    seed: int = 0,
) -> Fig10Result:
    """Run the Fig. 10 experiment."""
    total = num_subgraphs or default_subgraph_count()
    per_parent = max(1, total // len(parents))
    datasets = [load_graph(p, max_edges=max_edges) for p in parents]
    subs = build_sampling_dataset(datasets, per_parent=per_parent, seed=seed)
    named = [
        (f"{s.sampler}-{i}", s.matrix) for i, s in enumerate(subs)
    ]
    spmm = sweep_spmm(named, ("hp-spmm",) + SPMM_BASELINES, k=k, device=device)
    sddmm = sweep_sddmm(
        named, ("hp-sddmm",) + SDDMM_BASELINES, k=k, device=device
    )
    return Fig10Result(
        spmm=spmm,
        sddmm=sddmm,
        num_subgraphs=len(named),
        k=k,
        device=device.name,
    )
