"""COO (coordinate) sparse-matrix format (paper Fig. 2(c)).

COO stores three parallel arrays ``RowInd``, ``ColInd`` and ``Value``.  It
is the simplest format and the one cuSPARSE's ALG4 SpMM consumes.  Entries
are *not* required to be sorted; :meth:`COOMatrix.sorted_by_row` produces
the row-major ordering needed by the hybrid CSR/COO format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .base import (
    SparseFormatError,
    as_index_array,
    as_value_array,
    check_bounds,
    check_shape,
)


@dataclass(frozen=True)
class COOMatrix:
    """An ``M x N`` sparse matrix in coordinate format.

    Attributes
    ----------
    row, col : int32 arrays of length ``nnz``
        Row / column index of each stored element.
    val : float32 array of length ``nnz``
        Stored values.
    shape : (int, int)
        Dense shape ``(M, N)``.
    """

    row: np.ndarray
    col: np.ndarray
    val: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_arrays(cls, row, col, val=None, *, shape=None) -> "COOMatrix":
        """Build a validated :class:`COOMatrix` from index/value arrays."""
        r = as_index_array(row, "row")
        c = as_index_array(col, "col")
        if r.size != c.size:
            raise SparseFormatError(
                f"row ({r.size}) and col ({c.size}) lengths differ"
            )
        v = as_value_array(val, "val", r.size)
        if shape is None:
            m = int(r.max()) + 1 if r.size else 0
            n = int(c.max()) + 1 if c.size else 0
            shape = (m, n)
        m, n = check_shape(shape)
        check_bounds(r, m, "row")
        check_bounds(c, n, "col")
        return cls(row=r, col=c, val=v, shape=(m, n))

    @classmethod
    def from_scipy(cls, mat) -> "COOMatrix":
        """Convert any scipy sparse matrix to :class:`COOMatrix`."""
        m = sp.coo_matrix(mat)
        return cls.from_arrays(m.row, m.col, m.data, shape=m.shape)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored elements."""
        return int(self.val.size)

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def memory_elements(self) -> int:
        """Storage cost in array elements: ``3 * NNZ`` (paper Section II)."""
        return 3 * self.nnz

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy sorted row-major (stable on column within a row)."""
        order = np.lexsort((self.col, self.row))
        return COOMatrix(
            row=self.row[order],
            col=self.col[order],
            val=self.val[order],
            shape=self.shape,
        )

    def is_row_sorted(self) -> bool:
        """True if entries are in non-decreasing row order."""
        return bool(np.all(np.diff(self.row) >= 0)) if self.nnz > 1 else True

    def transpose(self) -> "COOMatrix":
        """Return the transpose (rows and columns swapped)."""
        return COOMatrix(
            row=self.col.copy(),
            col=self.row.copy(),
            val=self.val.copy(),
            shape=(self.shape[1], self.shape[0]),
        )

    def to_scipy(self) -> sp.coo_matrix:
        """Convert to ``scipy.sparse.coo_matrix`` (duplicates summed by scipy ops)."""
        return sp.coo_matrix((self.val, (self.row, self.col)), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        """Densify (test-sized matrices only); duplicate entries are summed."""
        out = np.zeros(self.shape, dtype=self.val.dtype)
        np.add.at(out, (self.row, self.col), self.val)
        return out

    def row_degrees(self) -> np.ndarray:
        """Number of stored elements per row (node in-degree for adjacency)."""
        return np.bincount(self.row, minlength=self.shape[0]).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
