"""CLI for the observability layer.

Usage::

    python -m repro.obs diff OLD.json NEW.json [--threshold 0.10] [-v]
    python -m repro.obs snapshot

``diff`` compares two JSON bench reports (e.g. ``BENCH_harness.json``
baselines) and exits 1 on a wall-clock regression past the threshold,
2 on malformed input — the perf-regression gate of the verify recipe.
``snapshot`` prints the unified metrics snapshot of a fresh process
(mostly useful for schema inspection).
"""

from __future__ import annotations

import argparse
import json
import sys

from .diff import ReportError, diff_reports, load_report
from .metrics import snapshot


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tools: perf diffs and metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_diff = sub.add_parser(
        "diff", help="compare two JSON bench reports for perf regressions"
    )
    p_diff.add_argument("old", help="baseline report (e.g. BENCH_harness.json)")
    p_diff.add_argument("new", help="candidate report")
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed relative slowdown for timing keys (default 0.10)",
    )
    p_diff.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print unchanged and non-timing leaves",
    )

    sub.add_parser("snapshot", help="print the unified metrics snapshot")

    args = parser.parse_args(argv)

    if args.command == "snapshot":
        print(json.dumps(snapshot(), indent=2, sort_keys=True))
        return 0

    if args.threshold < 0:
        print(
            f"error: --threshold must be >= 0, got {args.threshold}",
            file=sys.stderr,
        )
        return 2
    try:
        old = load_report(args.old)
        new = load_report(args.new)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = diff_reports(old, new, threshold=args.threshold)
    print(f"diff {args.old} -> {args.new}")
    print(result.render(verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
