"""Synthetic graph generators calibrated to the paper's datasets.

The paper evaluates on 19 public graphs (Table II) plus 838 sampled
subgraphs.  We cannot ship those datasets, so each is substituted by a
seeded synthetic graph matched on the statistics that drive kernel
behavior:

* node / edge count (scaled down uniformly, see ``repro.graphs.registry``),
* mean degree and degree skew (power-law exponent / log-normal sigma),
* community structure (planted partitions with shuffled node ids), which
  is what Graph Clustering based Reordering exploits.

All generators are deterministic functions of their seed.
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix, HybridMatrix


def _zipf_weights(n: int, gamma: float, rng: np.random.Generator) -> np.ndarray:
    """Expected-degree weights with a power-law tail, randomly permuted.

    ``gamma`` is the degree-distribution exponent; weights follow
    ``rank^(-1/(gamma-1))`` (Chung-Lu correspondence).  ``gamma <= 1``
    degenerates to uniform weights.
    """
    if n <= 0:
        return np.zeros(0)
    if gamma <= 1.0:
        w = np.ones(n)
    else:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        w = ranks ** (-1.0 / (gamma - 1.0))
    rng.shuffle(w)
    return w / w.sum()


def _sample_categorical(
    p_cum: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``size`` indices from a categorical given cumulative probs."""
    u = rng.random(size)
    return np.searchsorted(p_cum, u, side="right")


def _dedupe(src: np.ndarray, dst: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate edges (keeping one copy)."""
    key = src.astype(np.int64) * n + dst.astype(np.int64)
    key = np.unique(key)
    return (key // n).astype(np.int64), (key % n).astype(np.int64)


def _collect_unique_edges(
    draw,
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
    *,
    max_rounds: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate unique edges until ``num_edges`` are collected.

    ``draw(m)`` returns ``m`` candidate (src, dst) pairs.  Skewed weight
    distributions collide heavily under deduplication, so a single
    oversampled draw systematically undershoots the requested edge count;
    this helper tops up in geometric rounds and finally downsamples to
    exactly ``num_edges`` (or returns all distinct edges if the graph is
    too dense to supply that many).
    """
    keys = np.empty(0, dtype=np.int64)
    acceptance = 1.0
    for _ in range(max_rounds):
        need = num_edges - keys.size
        if need <= 0:
            break
        m = min(int(need / max(acceptance, 0.02) * 1.3) + 16, 8 * num_edges + 16)
        src, dst = draw(m)
        new = src.astype(np.int64) * num_nodes + dst.astype(np.int64)
        before = keys.size
        keys = np.unique(np.concatenate([keys, new]))
        gained = keys.size - before
        acceptance = max(gained / m, 1e-3)
        if gained == 0:
            break  # the distribution is saturated; accept what we have
    if keys.size > num_edges:
        keep = rng.choice(keys.size, size=num_edges, replace=False)
        keys = np.sort(keys[keep])
    return (keys // num_nodes).astype(np.int64), (keys % num_nodes).astype(np.int64)


def chung_lu_graph(
    num_nodes: int,
    num_edges: int,
    *,
    gamma: float = 2.2,
    seed: int = 0,
    self_loops: bool = True,
    symmetric: bool = False,
) -> HybridMatrix:
    """Chung-Lu random graph: endpoints drawn proportional to weights.

    Produces a power-law degree distribution with exponent ``gamma``;
    no community structure (use :func:`community_graph` when locality
    matters).
    """
    rng = np.random.default_rng(seed)
    w = _zipf_weights(num_nodes, gamma, rng)
    cum = np.cumsum(w)
    cum[-1] = 1.0

    def draw(m: int):
        return (
            _sample_categorical(cum, m, rng),
            _sample_categorical(cum, m, rng),
        )

    src, dst = _collect_unique_edges(draw, num_nodes, num_edges, rng)
    return _finalize(src, dst, num_nodes, self_loops, symmetric)


def community_graph(
    num_nodes: int,
    num_edges: int,
    *,
    gamma: float = 2.2,
    num_communities: int = 0,
    p_in: float = 0.8,
    seed: int = 0,
    self_loops: bool = True,
    symmetric: bool = False,
) -> HybridMatrix:
    """Planted-partition graph with power-law degrees and shuffled ids.

    Nodes belong to communities; each edge's destination stays inside the
    source's community with probability ``p_in``.  Node ids are random
    with respect to community membership, so the natural ordering has
    poor locality — exactly the situation GCR's Louvain reordering
    repairs.
    """
    if not 0.0 <= p_in <= 1.0:
        raise ValueError("p_in must be in [0, 1]")
    rng = np.random.default_rng(seed)
    if num_communities <= 0:
        num_communities = max(4, int(np.sqrt(num_nodes) / 2))
    num_communities = min(num_communities, max(1, num_nodes))

    w = _zipf_weights(num_nodes, gamma, rng)
    community = rng.integers(0, num_communities, size=num_nodes)
    cum_global = np.cumsum(w)
    cum_global[-1] = 1.0

    # Community membership index, built once for all sampling rounds.
    members_by_comm = np.argsort(community, kind="stable")
    comm_sorted = community[members_by_comm]
    mstarts = np.searchsorted(comm_sorted, np.arange(num_communities))
    mends = np.append(mstarts[1:], num_nodes)
    comm_cums: list[np.ndarray | None] = []
    for c in range(num_communities):
        wc = w[members_by_comm[mstarts[c] : mends[c]]]
        cumc = np.cumsum(wc)
        comm_cums.append(cumc if cumc.size and cumc[-1] > 0 else None)

    def draw(m: int):
        src = _sample_categorical(cum_global, m, rng)
        dst = np.empty(m, dtype=np.int64)
        internal = rng.random(m) < p_in
        n_ext = int(np.count_nonzero(~internal))
        if n_ext:
            dst[~internal] = _sample_categorical(cum_global, n_ext, rng)
        if internal.any():
            int_idx = np.nonzero(internal)[0]
            int_comm = community[src[int_idx]]
            order = np.argsort(int_comm, kind="stable")
            int_idx = int_idx[order]
            int_comm = int_comm[order]
            starts = np.searchsorted(int_comm, np.arange(num_communities))
            ends = np.append(starts[1:], int_idx.size)
            for c in range(num_communities):
                lo, hi = starts[c], ends[c]
                if lo == hi:
                    continue
                cumc = comm_cums[c]
                if cumc is None:
                    dst[int_idx[lo:hi]] = _sample_categorical(
                        cum_global, hi - lo, rng
                    )
                    continue
                members = members_by_comm[mstarts[c] : mends[c]]
                u = rng.random(hi - lo) * cumc[-1]
                picks = np.minimum(
                    np.searchsorted(cumc, u, side="right"), members.size - 1
                )
                dst[int_idx[lo:hi]] = members[picks]
        return src, dst

    src, dst = _collect_unique_edges(draw, num_nodes, num_edges, rng)
    return _finalize(src, dst, num_nodes, self_loops, symmetric)


def lognormal_degree_graph(
    num_nodes: int,
    mean_degree: float,
    sigma: float,
    *,
    seed: int = 0,
    self_loops: bool = True,
) -> HybridMatrix:
    """Graph with log-normal expected degrees of controlled variance.

    Used by the Fig. 12 sensitivity suite: graphs share ``mean_degree``
    while ``sigma`` tunes the degree standard deviation (``sigma = 0``
    approaches a regular graph).
    """
    rng = np.random.default_rng(seed)
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=num_nodes)
    weights = raw / raw.sum()
    num_edges = int(round(mean_degree * num_nodes))
    cum = np.cumsum(weights)
    cum[-1] = 1.0

    # Degrees concentrate on the weighted side: draw *rows* by weight so
    # the out-degree distribution carries the variance, columns uniform.
    def draw(m: int):
        return (
            _sample_categorical(cum, m, rng),
            rng.integers(0, num_nodes, size=m),
        )

    src, dst = _collect_unique_edges(draw, num_nodes, num_edges, rng)
    return _finalize(src, dst, num_nodes, self_loops, symmetric=False)


def rmat_graph(
    num_nodes: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    self_loops: bool = True,
    symmetric: bool = False,
) -> HybridMatrix:
    """R-MAT recursive generator (Kronecker-style skew + blocks).

    ``a + b + c <= 1``; the remainder is the d-quadrant probability.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must not exceed 1")
    rng = np.random.default_rng(seed)
    levels = max(1, int(np.ceil(np.log2(max(2, num_nodes)))))

    def draw(m: int):
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        for _ in range(levels):
            u = rng.random(m)
            right = (u >= a) & (u < a + b)
            down = (u >= a + b) & (u < a + b + c)
            both = u >= a + b + c
            src = src * 2 + (down | both)
            dst = dst * 2 + (right | both)
        return src % num_nodes, dst % num_nodes

    src, dst = _collect_unique_edges(draw, num_nodes, num_edges, rng)
    return _finalize(src, dst, num_nodes, self_loops, symmetric)


#: Parametric generator families — the axis vocabulary of the scenario
#: universe (``repro.world``).  Each family maps the universe's
#: normalized ``skew`` knob onto its native skew parameter in
#: :func:`generate_graph`.
FAMILY_CHUNG_LU = "chung-lu"
FAMILY_COMMUNITY = "community"
FAMILY_LOGNORMAL = "lognormal"
FAMILY_RMAT = "rmat"

GENERATOR_FAMILIES: tuple[str, ...] = (
    FAMILY_CHUNG_LU,
    FAMILY_COMMUNITY,
    FAMILY_LOGNORMAL,
    FAMILY_RMAT,
)


def generate_graph(
    family: str,
    num_nodes: int,
    num_edges: int,
    *,
    skew: float = 0.5,
    p_in: float = 0.8,
    seed: int = 0,
) -> HybridMatrix:
    """One parametric entry point over every generator family.

    ``skew`` is the universe's normalized degree-skew knob in ``[0, 1]``
    (0 = near-uniform degrees, 1 = heaviest tail each family supports);
    it maps to the family-native parameter:

    * ``chung-lu`` / ``community`` — power-law exponent
      ``gamma = 3.2 - 1.6 * skew`` (3.2 is effectively uniform, 1.6 a
      very heavy tail);
    * ``lognormal`` — ``sigma = 0.1 + 2.0 * skew`` (the Fig. 12 sweep's
      range);
    * ``rmat`` — top-left quadrant mass ``a = 0.40 + 0.25 * skew`` with
      the remainder split evenly over b/c/d.

    ``p_in`` only shapes the ``community`` family (in-community edge
    probability); other families ignore it.  All outputs are
    deterministic functions of ``(family, num_nodes, num_edges, skew,
    p_in, seed)``.
    """
    if not 0.0 <= skew <= 1.0:
        raise ValueError(f"skew must be in [0, 1], got {skew}")
    if family == FAMILY_CHUNG_LU:
        return chung_lu_graph(
            num_nodes, num_edges, gamma=3.2 - 1.6 * skew, seed=seed
        )
    if family == FAMILY_COMMUNITY:
        return community_graph(
            num_nodes, num_edges, gamma=3.2 - 1.6 * skew, p_in=p_in,
            seed=seed,
        )
    if family == FAMILY_LOGNORMAL:
        return lognormal_degree_graph(
            num_nodes, num_edges / max(1, num_nodes), 0.1 + 2.0 * skew,
            seed=seed,
        )
    if family == FAMILY_RMAT:
        a = 0.40 + 0.25 * skew
        bc = (1.0 - a) / 3.0
        return rmat_graph(num_nodes, num_edges, a=a, b=bc, c=bc, seed=seed)
    raise ValueError(
        f"unknown generator family {family!r}; valid families are "
        f"{list(GENERATOR_FAMILIES)}"
    )


def _finalize(
    src: np.ndarray,
    dst: np.ndarray,
    n: int,
    self_loops: bool,
    symmetric: bool,
) -> HybridMatrix:
    """Assemble edges into a hybrid CSR/COO adjacency matrix."""
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        src, dst = _dedupe(src, dst, n)
    if self_loops:
        loops = np.arange(n, dtype=np.int64)
        src = np.concatenate([src, loops])
        dst = np.concatenate([dst, loops])
        src, dst = _dedupe(src, dst, n)
    coo = COOMatrix.from_arrays(src, dst, None, shape=(n, n))
    return HybridMatrix.from_coo(coo)
