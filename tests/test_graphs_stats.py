"""Degree statistics, Pearson correlation, the Fig. 12 variance suite."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.graphs import DegreeStats, pearson_r, variance_suite


def test_degree_stats_basic():
    S = HybridMatrix.from_arrays([0, 0, 1], [0, 1, 2], None, shape=(3, 3))
    st = DegreeStats.of(S)
    assert st.mean == pytest.approx(1.0)
    assert st.max == 2
    assert st.min == 0
    assert st.cv == pytest.approx(st.std / st.mean)


def test_degree_stats_empty():
    st = DegreeStats.of(HybridMatrix.from_arrays([], [], shape=(0, 0)))
    assert st.mean == 0.0
    assert st.cv == 0.0


def test_pearson_perfect_correlation():
    x = [1, 2, 3, 4]
    assert pearson_r(x, [2, 4, 6, 8]) == pytest.approx(1.0)
    assert pearson_r(x, [-1, -2, -3, -4]) == pytest.approx(-1.0)


def test_pearson_constant_series():
    assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0


def test_pearson_validates():
    with pytest.raises(ValueError):
        pearson_r([1], [1])
    with pytest.raises(ValueError):
        pearson_r([1, 2], [1, 2, 3])


def test_variance_suite_controls_mean_and_sweeps_std():
    suite = variance_suite(num_graphs=5, num_nodes=4000, mean_degree=23.0)
    means = [st.mean for _, st in suite]
    stds = [st.std for _, st in suite]
    # Paper: average degree between 21 and 25 across the suite.
    assert all(19.0 < m < 27.0 for m in means)
    # Ascending std, with a real spread.
    assert stds == sorted(stds)
    assert stds[-1] > 4 * stds[0]
