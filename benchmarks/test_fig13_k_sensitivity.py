"""Fig. 13 — throughput vs feature dimension K on Flickr."""

from repro.bench import run_fig13, write_report

from conftest import bench_max_edges


def test_fig13_k_sensitivity(run_once):
    res = run_once(run_fig13, graph="flickr", max_edges=bench_max_edges())
    report = res.render()
    print("\n" + report)
    write_report("fig13", report)

    ours = res.gflops["hp-spmm"]
    ge = res.gflops["ge-spmm"]
    cu = res.gflops["cusparse-csr-alg2"]

    # Ours: basically flat across K (paper wording), always ahead.
    assert max(ours) / min(ours) < 3.0
    # Baselines improve as K grows (per-nonzero overheads amortize).
    assert ge[-1] > 2 * ge[0]
    assert cu[-1] > cu[0]
    # Therefore relative speedups shrink with K.
    s_ge = res.speedup_series("ge-spmm")
    s_cu = res.speedup_series("cusparse-csr-alg2")
    assert s_ge[0] > s_ge[-1] > 1.0
    assert s_cu[0] > s_cu[-1] > 1.0
