"""Deterministic GPU execution-model simulator.

This package substitutes for the paper's physical GPUs (Tesla V100 / A30,
RTX 3090): device resource specs with occupancy and wave geometry
(Eqs. 3-4), a transaction-level global-memory model with alignment /
coalescing / vectorization rules, a footprint-based L2 hit-rate model,
and a roofline + critical-path launch timer that reproduces load
imbalance and the tail effect.
"""

from .cache import (
    CacheStats,
    FootprintCacheModel,
    LRUCache,
    previous_positions,
    reuse_times,
    sampled_footprint,
)
from .costmodel import DEFAULT_COST, CostParams, WarpWorkload, warp_critical_cycles
from .device import (
    DEVICES,
    RTX_3090,
    TESLA_A30,
    TESLA_V100,
    WARP_SIZE,
    DeviceSpec,
    get_device,
)
from .launch import KernelStats, LaunchConfig, simulate_launch
from .profile import profile_report, utilization_summary
from .trace import TraceCounts, trace_hp_sddmm, trace_hp_spmm
from .memory import (
    FP32,
    VECTOR_WIDTHS,
    RowAccessProfile,
    dense_row_profile,
    is_aligned,
    max_vector_width,
    sectors_for_access,
    sparse_tile_load_sectors,
    strided_gather_sectors,
    warp_scatter_sectors,
)

__all__ = [
    "CacheStats",
    "FootprintCacheModel",
    "LRUCache",
    "previous_positions",
    "reuse_times",
    "sampled_footprint",
    "DEFAULT_COST",
    "CostParams",
    "WarpWorkload",
    "warp_critical_cycles",
    "DEVICES",
    "RTX_3090",
    "TESLA_A30",
    "TESLA_V100",
    "WARP_SIZE",
    "DeviceSpec",
    "get_device",
    "KernelStats",
    "LaunchConfig",
    "simulate_launch",
    "TraceCounts",
    "trace_hp_sddmm",
    "trace_hp_spmm",
    "profile_report",
    "utilization_summary",
    "FP32",
    "VECTOR_WIDTHS",
    "RowAccessProfile",
    "dense_row_profile",
    "is_aligned",
    "max_vector_width",
    "sectors_for_access",
    "sparse_tile_load_sectors",
    "strided_gather_sectors",
    "warp_scatter_sectors",
]
