"""Table II — the dataset inventory, paper-size vs calibrated scale.

Not a performance experiment: regenerates the paper's dataset table with
the reproduction's calibration columns so every other experiment's
workload provenance is auditable — paper node/edge counts, the scaled
counts actually generated, and the realized degree statistics that drive
kernel behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import DegreeStats, FULL_GRAPH_ORDER, load_graph
from .tables import render_table


@dataclass
class Table2Result:
    """One row per Table-II graph."""

    rows: list[list]

    def render(self) -> str:
        return render_table(
            [
                "graph",
                "source",
                "paper nodes",
                "paper edges",
                "scaled nodes",
                "scaled edges",
                "mean deg",
                "deg std",
                "max deg",
            ],
            self.rows,
            title="Table II — datasets (paper sizes vs calibrated scale)",
        )

    def row(self, name: str) -> list:
        for r in self.rows:
            if r[0] == name:
                return r
        raise KeyError(name)


def run_table2(*, max_edges: int | None = None) -> Table2Result:
    """Generate/load every dataset and tabulate its calibration."""
    rows = []
    for name in FULL_GRAPH_ORDER:
        ds = load_graph(name, max_edges=max_edges)
        st = DegreeStats.of(ds.matrix)
        rows.append(
            [
                ds.name,
                ds.spec.source,
                ds.spec.paper_nodes,
                ds.spec.paper_edges,
                ds.num_nodes,
                ds.num_edges,
                st.mean,
                st.std,
                st.max,
            ]
        )
    return Table2Result(rows=rows)
