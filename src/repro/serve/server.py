"""The estimation server: queue -> micro-batcher -> estimator.

:class:`EstimationServer` accepts :class:`~repro.serve.request
.EstimateRequest` submissions on a thread-safe queue and answers them
from a single batching worker thread:

1. **Collect.**  The worker drains up to ``max_batch`` requests, waiting
   at most ``batch_window_s`` after the first one so lone requests are
   not delayed indefinitely.  Requests submitted *before* :meth:`start`
   simply queue up — the replay workloads use this to form deterministic
   full batches.
2. **Group.**  The batch is grouped by :attr:`EstimateRequest.batch_key`
   (graph name + edge cap): each group loads its matrix once, and every
   request in it shares the same structural fingerprint, so their
   estimate-cache keys differ only in (kernel, K, device).  Requests
   beyond the first in a group count as *coalesced*.
3. **Triage.**  Each request's remaining deadline budget is compared
   against the predicted full-path cost times ``deadline_margin``.  The
   prediction is the engine's *per-graph cost prior*
   (:func:`repro.engine.cost_priors` — a running mean of what this
   graph's evaluations actually cost, estimate-cache hits included);
   graphs with no history yet fall back to the cold-start EWMA.  A
   request that cannot make it degrades to the quick roofline model
   (status ``degraded``) when permitted, else answers ``timeout``.
4. **Evaluate.**  Full-path requests are deduplicated by
   :attr:`EstimateRequest.signature` (duplicates count as *deduped*) and
   the unique signatures become one :mod:`repro.engine` batch executed
   by the server's :class:`~repro.engine.Executor` — the ``REPRO_JOBS``
   pool by default (same fan-out as the bench sweeps), or the sharded
   persistent workers (``--workers``).  Degraded requests are answered
   inline by :func:`repro.serve.estimator.quick_estimate`.

Observability: every response's latency lands in the
``serve.request_latency`` histogram (and batch queue-waits in
``serve.queue_wait``), ``serve.*`` counters in :data:`repro.obs.METRICS`
track requests/batches/coalescing/degradation, and with ``REPRO_TRACE``
on each batch is a ``serve.batch`` host span with one ``serve.request``
span per answered request spanning submit -> response.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..engine import (
    Engine,
    EngineConfig,
    EstimateRequest as EngineRequest,
    Executor,
    PoolExecutor,
    cost_priors,
)
from ..gpusim import get_device
from ..graphs import load_graph
from ..obs import METRICS, get_tracer, observe_latency
from ..obs.tracer import HOST_TRACK
from ..perf.fingerprint import structural_features
from ..select.policy import active_policy
from .estimator import quick_estimate
from .request import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    EstimateRequest,
    EstimateResponse,
)


class _Pending:
    """One in-flight request: the ticket :meth:`EstimationServer.submit`
    returns, resolved by the batching worker."""

    __slots__ = (
        "request", "submit_mono", "collect_mono", "trace_ts_us",
        "event", "response", "_callbacks", "_cb_lock",
    )

    def __init__(
        self, request: EstimateRequest, submit_mono: float, trace_ts_us: float
    ) -> None:
        self.request = request
        self.submit_mono = submit_mono
        self.collect_mono = submit_mono  # updated when the batch forms
        self.trace_ts_us = trace_ts_us
        self.event = threading.Event()
        self.response: EstimateResponse | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def result(self, timeout: float | None = None) -> EstimateResponse:
        """Block until the server answers; raises ``TimeoutError`` if the
        caller-side wait (not the request's deadline) expires first."""
        if not self.event.wait(timeout):
            raise TimeoutError(
                f"no response within {timeout}s for {self.request}"
            )
        assert self.response is not None
        return self.response

    def on_done(self, fn) -> None:
        """Register ``fn(pending)`` to run once the server answers.

        Runs immediately when the ticket is already resolved.  Callbacks
        fire on the batching worker thread, one micro-batch at a time —
        the socket front end uses them to stream responses out as each
        batch resolves; keep them non-blocking (enqueue, don't send).
        """
        with self._cb_lock:
            if self.response is None:
                self._callbacks.append(fn)
                return
        fn(self)

    def _finish(self, response: EstimateResponse) -> list:
        """Install the answer; returns the callbacks to fire (once)."""
        with self._cb_lock:
            self.response = response
            callbacks, self._callbacks = self._callbacks, []
        self.event.set()
        return callbacks

    @property
    def done(self) -> bool:
        return self.event.is_set()


class EstimationServer:
    """Micro-batching front end over the kernel cost models.

    Parameters
    ----------
    max_batch:
        Largest micro-batch the worker will assemble.
    batch_window_s:
        How long the worker holds an under-full batch open after its
        first request before processing anyway.
    deadline_margin:
        Safety factor on the predicted full-path cost used for deadline
        triage; larger values degrade earlier.
    initial_full_cost_s:
        Seed for the cold-start EWMA, used only for graphs the engine
        has no cost prior for yet.
    executor:
        Engine execution strategy for full-path batches.  Default:
        :class:`~repro.engine.PoolExecutor` honoring ``jobs`` /
        ``REPRO_JOBS``.  Pass a started
        :class:`~repro.engine.ShardedExecutor` for persistent
        multi-worker serving.
    """

    def __init__(
        self,
        *,
        max_batch: int = 16,
        batch_window_s: float = 0.01,
        deadline_margin: float = 2.0,
        initial_full_cost_s: float = 0.05,
        jobs: int | None = None,
        executor: Executor | None = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.deadline_margin = deadline_margin
        self.jobs = jobs
        self._engine = Engine(
            EngineConfig(
                check_plans=False,
                capture_errors=True,
                span="serve.estimate",
                cat="serve",
                observe_priors=True,
            ),
            executor=(
                executor if executor is not None else PoolExecutor(jobs=jobs)
            ),
        )
        self._queue: deque[_Pending] = deque()
        self._cond = threading.Condition()
        self._worker: threading.Thread | None = None
        self._stopping = False
        #: Serializes start()/stop() transitions end to end.  Without it
        #: a stop() racing a start() could join a *new* worker that was
        #: never told to stop (hanging forever), or leave two workers
        #: alive; always acquired before _cond, never after.
        self._lifecycle = threading.Lock()
        self._ewma_full_s = float(initial_full_cost_s)
        #: (graph, max_edges) -> selection-policy cost scale (or None
        #: when the policy declines).  Computed once per graph by the
        #: batching worker; the lock only guards dict get/put (feature
        #: extraction happens outside it) and is never held together
        #: with any other lock.
        self._cost_scales: dict[tuple, float | None] = {}
        self._scale_lock = threading.Lock()
        self._batch_seq = 0
        self._stats_lock = threading.Lock()
        self._stats: dict[str, int] = {
            "requests": 0, "completed": 0,
            STATUS_OK: 0, STATUS_DEGRADED: 0,
            STATUS_TIMEOUT: 0, STATUS_SHED: 0, STATUS_ERROR: 0,
            "batches": 0, "coalesced": 0, "deduped": 0,
            "queue_depth_max": 0, "batch_size_max": 0,
            "worker_crashes": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "EstimationServer":
        """Spawn the batching worker (idempotent).

        ``_stopping`` is written under ``_cond``: a bare write raced
        concurrent ``stop()``/``submit()`` readers, which could observe
        the flag flip between their check and their wait/append.
        """
        with self._lifecycle:
            if self._worker is not None and self._worker.is_alive():
                return self
            with self._cond:
                self._stopping = False
            self._worker = threading.Thread(
                target=self._run, name="repro-serve", daemon=True
            )
            self._worker.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) queued requests are
        answered first, otherwise they resolve as errors."""
        dropped: list[_Pending] = []
        with self._lifecycle:
            with self._cond:
                self._stopping = True
                if not drain:
                    while self._queue:
                        dropped.append(self._queue.popleft())
                self._cond.notify_all()
            if self._worker is not None:
                self._worker.join()
                self._worker = None
        # Resolution takes _stats_lock and fires metrics/tracer hooks;
        # doing that while _cond (or the lifecycle lock) is held nests
        # locks invisibly, so the dropped requests are answered only
        # after both are released.
        for p in dropped:
            self._resolve(
                p, EstimateResponse(
                    request=p.request, status=STATUS_ERROR,
                    error="server stopped before processing",
                ),
            )

    def __enter__(self) -> "EstimationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- warmup ---------------------------------------------------------
    def warm(self, requests) -> int:
        """Pre-evaluate the unique signatures in ``requests`` through the
        engine, bypassing the queue entirely.

        Populates the estimate cache (on this executor's workers, for
        sharded serving) and the per-graph cost priors without touching
        the ``serve.request_latency`` histogram or the serve counters —
        a warmed soak then measures steady-state latency instead of
        first-touch graph loads.  Returns the signature count evaluated.
        """
        seen: set = set()
        engine_requests = []
        for r in requests:
            if r.signature in seen:
                continue
            seen.add(r.signature)
            engine_requests.append(
                EngineRequest(
                    op=r.op, kernel=r.kernel, graph=r.graph, k=r.k,
                    device=r.device, max_edges=r.max_edges,
                )
            )
        if engine_requests:
            self._engine.estimate_batch(engine_requests)
        return len(engine_requests)

    # -- submission -----------------------------------------------------
    def submit(self, request: EstimateRequest) -> _Pending:
        """Enqueue one request; returns its ticket immediately.

        Legal before :meth:`start` — early submissions batch together
        once the worker comes up, which replay workloads rely on for
        deterministic coalescing.
        """
        tracer = get_tracer()
        pending = _Pending(
            request,
            submit_mono=time.monotonic(),  # lint: allow(wallclock) serving latency is a measured surface
            trace_ts_us=tracer.now_us() if tracer is not None else 0.0,
        )
        with self._cond:
            if self._stopping:
                raise RuntimeError("server is stopped")
            self._queue.append(pending)
            depth = len(self._queue)
            self._cond.notify()
        METRICS.inc("serve.requests")
        METRICS.record_max("serve.queue_depth_max", depth)
        with self._stats_lock:
            self._stats["requests"] += 1
            self._stats["queue_depth_max"] = max(
                self._stats["queue_depth_max"], depth
            )
        return pending

    def submit_many(self, requests) -> list[_Pending]:
        return [self.submit(r) for r in requests]

    def submit_atomic(self, requests) -> list[_Pending]:
        """Enqueue all ``requests`` under one queue acquisition.

        The worker cannot start collecting a batch until the whole group
        is appended, so a multi-request frame from the socket front end
        micro-batches exactly like the same list replayed in-process —
        the golden socket-vs-in-process report equality depends on this.
        """
        tracer = get_tracer()
        now = time.monotonic()  # lint: allow(wallclock) serving latency is a measured surface
        ts_us = tracer.now_us() if tracer is not None else 0.0
        pendings = [_Pending(r, submit_mono=now, trace_ts_us=ts_us)
                    for r in requests]
        with self._cond:
            if self._stopping:
                raise RuntimeError("server is stopped")
            self._queue.extend(pendings)
            depth = len(self._queue)
            self._cond.notify()
        n = len(pendings)
        METRICS.inc("serve.requests", n)
        METRICS.record_max("serve.queue_depth_max", depth)
        with self._stats_lock:
            self._stats["requests"] += n
            self._stats["queue_depth_max"] = max(
                self._stats["queue_depth_max"], depth
            )
        return pendings

    def estimate(
        self, request: EstimateRequest, timeout: float | None = None
    ) -> EstimateResponse:
        """Submit and block for the answer (closed-loop clients)."""
        return self.submit(request).result(timeout)

    # -- worker ---------------------------------------------------------
    def _run(self) -> None:
        """Batching loop with a crash guard.

        ``_process_batch`` catches per-group engine failures, but a
        failure *outside* that try (triage arithmetic, priors lookup,
        metrics/histogram hooks) used to kill this daemon thread
        silently — every queued and in-flight ``result()`` then blocked
        forever.  Any escaped exception now resolves all outstanding
        pendings as ``STATUS_ERROR`` so callers always get an answer.
        """
        batch: list[_Pending] | None = None
        try:
            while True:
                batch = self._collect_batch()
                if batch is None:
                    return
                self._process_batch(batch)
                batch = None
        except BaseException as exc:
            self._fail_after_crash(batch, exc)

    def _fail_after_crash(
        self, batch: list[_Pending] | None, exc: BaseException
    ) -> None:
        """Resolve every outstanding pending after a worker crash.

        Runs on the dying worker thread, so it must not take
        ``_lifecycle`` — a concurrent ``stop()`` holds that lock while
        joining this very thread.
        """
        METRICS.inc("serve.worker_crashes")
        with self._stats_lock:
            self._stats["worker_crashes"] += 1
        stranded: list[_Pending] = []
        with self._cond:
            # The worker is gone: refuse new submissions and wake any
            # stop() drain-waiters.
            self._stopping = True
            while self._queue:
                stranded.append(self._queue.popleft())
            self._cond.notify_all()
        detail = f"serve worker crashed: {type(exc).__name__}: {exc}"
        for p in [*(batch or []), *stranded]:
            if p.done:
                continue
            resp = EstimateResponse(
                request=p.request, status=STATUS_ERROR, error=detail
            )
            try:
                self._resolve(p, resp)
            except Exception:
                # Even if observability hooks are the thing that is
                # broken, the caller still gets an answer.
                for fn in p._finish(resp):
                    try:
                        fn(p)
                    except Exception:
                        pass

    def _collect_batch(self) -> list[_Pending] | None:
        """Assemble the next micro-batch (None = stopped and drained)."""
        with self._cond:
            while not self._queue:
                if self._stopping:
                    return None
                self._cond.wait()
            batch = [self._queue.popleft()]
            deadline = time.monotonic() + self.batch_window_s  # lint: allow(wallclock) batching window is a serving-policy timer
            while len(batch) < self.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                if self._stopping:
                    break
                remaining = deadline - time.monotonic()  # lint: allow(wallclock) batching window is a serving-policy timer
                if remaining <= 0 or not self._cond.wait(remaining):
                    break
        collected = time.monotonic()  # lint: allow(wallclock) queue-wait measurement point
        for p in batch:
            p.collect_mono = collected
        return batch

    def _process_batch(self, batch: list[_Pending]) -> None:
        self._batch_seq += 1
        batch_id = self._batch_seq
        tracer = get_tracer()
        batch_start_us = tracer.now_us() if tracer is not None else 0.0
        METRICS.inc("serve.batches")
        METRICS.inc("serve.batched_requests", len(batch))
        METRICS.record_max("serve.batch_size_max", len(batch))
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["batch_size_max"] = max(
                self._stats["batch_size_max"], len(batch)
            )

        groups: dict[tuple, list[_Pending]] = {}
        for p in batch:
            groups.setdefault(p.request.batch_key, []).append(p)
        for key in groups:
            self._process_group(key, groups[key], batch_id, len(batch))

        if tracer is not None:
            tracer.emit(
                "serve.batch",
                ts_us=batch_start_us,
                dur_us=tracer.now_us() - batch_start_us,
                cat="serve",
                track=HOST_TRACK,
                batch=batch_id,
                size=len(batch),
                groups=len(groups),
            )

    def _process_group(
        self, key: tuple, group: list[_Pending], batch_id: int, batch_size: int
    ) -> None:
        graph_name, max_edges = key
        coalesced = len(group) - 1
        if coalesced:
            METRICS.inc("serve.coalesced", coalesced)
            with self._stats_lock:
                self._stats["coalesced"] += coalesced
        try:
            S = load_graph(graph_name, max_edges=max_edges).matrix
        except Exception as exc:  # unknown graph: fail the whole group
            for p in group:
                self._resolve(
                    p, self._response(
                        p, STATUS_ERROR, batch_id, batch_size,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
            return

        # Predicted per-request full-path cost: the engine's per-graph
        # prior when this graph has history (cache hits included);
        # otherwise the cold-start EWMA, scaled by the selection
        # policy's relative-cost prediction for this graph's structure
        # when a model covers it.  With selection off (REPRO_NO_SELECT,
        # or no loadable model) the scale is None and this is exactly
        # the historical EWMA value — bit-for-bit identical triage.
        prior_s = cost_priors().predict(graph_name)
        if prior_s is not None:
            predicted_s = prior_s
        else:
            scale = self._selector_scale(key, S)
            predicted_s = (
                self._ewma_full_s
                if scale is None
                else self._ewma_full_s * scale
            )

        full: dict[tuple, list[_Pending]] = {}  # signature -> requests
        quick: list[_Pending] = []
        for p in group:
            now = time.monotonic()  # lint: allow(wallclock) deadline triage needs elapsed queue time
            req = p.request
            if req.deadline_s is not None:
                remaining = req.deadline_s - (now - p.submit_mono)
                needed = predicted_s * self.deadline_margin
                if remaining < needed:
                    if req.allow_degraded:
                        quick.append(p)
                    else:
                        METRICS.inc("serve.timeouts")
                        self._resolve(
                            p, self._response(
                                p, STATUS_TIMEOUT, batch_id, batch_size,
                                error=(
                                    "deadline budget "
                                    f"{max(0.0, remaining):.4f}s < required "
                                    f"{needed:.4f}s"
                                ),
                            ),
                        )
                    continue
            full.setdefault(req.signature, []).append(p)

        for p in quick:
            req = p.request
            try:
                time_s, bound = quick_estimate(
                    req.op, S, req.k, get_device(req.device)
                )
                METRICS.inc("serve.quick_estimates")
                METRICS.inc("serve.degraded")
                self._resolve(
                    p, self._response(
                        p, STATUS_DEGRADED, batch_id, batch_size,
                        time_s=time_s, bound=bound,
                    ),
                )
            except Exception as exc:
                self._resolve(
                    p, self._response(
                        p, STATUS_ERROR, batch_id, batch_size,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )

        if not full:
            return
        signatures = list(full)
        deduped = sum(len(ps) - 1 for ps in full.values())
        if deduped:
            METRICS.inc("serve.deduped", deduped)
            with self._stats_lock:
                self._stats["deduped"] += deduped
        engine_requests = [
            EngineRequest(
                op=sig[0], kernel=sig[1], graph=graph_name, k=sig[3],
                device=sig[4], max_edges=max_edges,
            )
            for sig in signatures
        ]
        # One engine batch per group: the engine evaluates through the
        # estimate cache, records per-point spans, captures per-request
        # errors as data, and observes this graph's cost prior.
        result = self._engine.estimate_batch(
            engine_requests, matrices={graph_name: S}
        )
        # Cold-start EWMA (alpha=0.3) of measured per-signature cost,
        # used only until a graph has its own prior.
        per_sig_s = result.elapsed_s / len(signatures)
        self._ewma_full_s += 0.3 * (per_sig_s - self._ewma_full_s)
        METRICS.inc("serve.full_estimates", len(signatures))

        for sig, res in zip(signatures, result.results):
            for p in full[sig]:
                if res.ok:
                    resp = self._response(
                        p, STATUS_OK, batch_id, batch_size,
                        time_s=res.time_s,
                        preprocessing_s=res.preprocessing_s,
                        bound=res.bound,
                    )
                else:
                    resp = self._response(
                        p, STATUS_ERROR, batch_id, batch_size,
                        error=res.error,
                    )
                self._resolve(p, resp)

    def _selector_scale(self, key: tuple, S) -> float | None:
        """Selection-policy cost scale for one loaded graph, memoized.

        ``None`` means the policy declined (disabled, no model) and the
        caller must use the plain EWMA — the degrade contract.  The
        answer is computed at most once per ``(graph, max_edges)``:
        feature extraction is pure CPU but not free, and a graph's
        structure never changes under the server.  Coverage counters
        (``select.cost_hits`` / ``select.cost_misses``) tick once per
        graph, not per request.
        """
        with self._scale_lock:
            if key in self._cost_scales:
                return self._cost_scales[key]
        scale = active_policy().cost_scale(structural_features(S))
        METRICS.inc(
            "select.cost_hits" if scale is not None else "select.cost_misses"
        )
        with self._scale_lock:
            self._cost_scales[key] = scale
        return scale

    # -- resolution -----------------------------------------------------
    def _response(
        self,
        p: _Pending,
        status: str,
        batch_id: int,
        batch_size: int,
        *,
        time_s: float | None = None,
        preprocessing_s: float = 0.0,
        bound: str | None = None,
        error: str | None = None,
    ) -> EstimateResponse:
        now = time.monotonic()  # lint: allow(wallclock) serving latency is a measured surface
        return EstimateResponse(
            request=p.request,
            status=status,
            time_s=time_s,
            preprocessing_s=preprocessing_s,
            bound=bound,
            error=error,
            latency_s=now - p.submit_mono,
            queue_wait_s=p.collect_mono - p.submit_mono,
            batch_id=batch_id,
            batch_size=batch_size,
        )

    def _resolve(self, p: _Pending, response: EstimateResponse) -> None:
        callbacks = p._finish(response)
        observe_latency("serve.request_latency", response.latency_s)
        observe_latency("serve.queue_wait", response.queue_wait_s)
        METRICS.inc("serve.completed")
        if response.status == STATUS_ERROR:
            METRICS.inc("serve.errors")
        with self._stats_lock:
            self._stats["completed"] += 1
            self._stats[response.status] += 1
        tracer = get_tracer()
        if tracer is not None:
            tracer.emit(
                "serve.request",
                ts_us=p.trace_ts_us,
                dur_us=response.latency_s * 1e6,
                cat="serve",
                track=HOST_TRACK,
                status=response.status,
                graph=p.request.graph,
                kernel=p.request.kernel,
                op=p.request.op,
                k=p.request.k,
            )
        for fn in callbacks:
            try:
                fn(p)
            except Exception:
                # A broken streaming hook (e.g. a connection torn down
                # mid-batch) must not take the batching worker with it.
                METRICS.inc("serve.callback_errors")

    # -- admission / introspection --------------------------------------
    def note_shed(self, n: int = 1) -> None:
        """Account ``n`` requests load-shed by a front end before they
        ever reached the queue (they never become pendings)."""
        METRICS.inc("serve.shed", n)
        with self._stats_lock:
            self._stats[STATUS_SHED] += n

    def predicted_cost_s(self, graph: str | None = None) -> float:
        """Predicted full-path seconds per request — the per-graph cost
        prior when ``graph`` has history, else the cold-start EWMA
        (scaled by the selection policy's prediction when the batching
        worker has already sized this graph).  Front ends scale this
        into a Retry-After-style shed hint."""
        if graph is not None:
            prior_s = cost_priors().predict(graph)
            if prior_s is not None:
                return prior_s
            with self._scale_lock:
                scales = [
                    s
                    for (g, _), s in self._cost_scales.items()
                    if g == graph and s is not None
                ]
            if scales:
                return self._ewma_full_s * scales[0]
        return self._ewma_full_s

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        """This server instance's run-scoped counters (plain dict)."""
        with self._stats_lock:
            return dict(self._stats)
