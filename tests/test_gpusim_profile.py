"""Profiler reports: metrics and hint heuristics."""

import numpy as np

from repro.gpusim import (
    LaunchConfig,
    TESLA_V100,
    WarpWorkload,
    profile_report,
    simulate_launch,
    utilization_summary,
)
from repro.kernels import make_spmm

from tests.conftest import random_hybrid


def _uniform(num_warps, **kw):
    base = dict(issue=100.0, l2=10.0, dram=10.0, fma=50.0)
    base.update(kw)
    full = lambda v: np.full(num_warps, v, dtype=np.float64)  # noqa: E731
    return WarpWorkload(
        issue=full(base["issue"]),
        l2_sectors=full(base["l2"]),
        dram_sectors=full(base["dram"]),
        fma=full(base["fma"]),
    )


CFG = LaunchConfig(warps_per_block=8)


def test_utilization_summary_fields():
    stats = simulate_launch(TESLA_V100, _uniform(20_000), CFG)
    u = utilization_summary(stats, TESLA_V100)
    assert 0 <= u["dram_bandwidth_pct"] <= 110
    assert 0 <= u["occupancy_pct"] <= 100
    assert u["blocks"] == stats.num_blocks
    assert 0 < u["imbalance_ratio"] <= 1.0


def test_dram_bound_kernel_reports_high_bandwidth():
    stats = simulate_launch(
        TESLA_V100, _uniform(50_000, issue=1, l2=0, dram=500, fma=0), CFG
    )
    u = utilization_summary(stats, TESLA_V100)
    assert stats.bound == "dram"
    assert u["dram_bandwidth_pct"] > 60


def test_report_contains_key_sections():
    S = random_hybrid(1000, 1000, 10_000, seed=50)
    stats = make_spmm("hp-spmm").estimate(S, 64).stats
    text = profile_report(stats, TESLA_V100, kernel_name="hp-spmm",
                          flops=2.0 * S.nnz * 64)
    for needle in ("profile: hp-spmm", "dominant bound", "occupancy",
                   "DRAM traffic", "GFLOP/s"):
        assert needle in text


def test_tail_effect_hint():
    # A launch with very few blocks triggers the DTP hint.
    stats = simulate_launch(TESLA_V100, _uniform(32), CFG)
    text = profile_report(stats, TESLA_V100)
    assert "tail effect" in text


def test_imbalance_hint():
    work = _uniform(8000)
    work.issue[0] *= 50_000
    stats = simulate_launch(TESLA_V100, work, CFG)
    text = profile_report(stats, TESLA_V100)
    assert "load imbalance dominates" in text
