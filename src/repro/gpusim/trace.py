"""Exact trace simulation of HP-SpMM / HP-SDDMM for model validation.

The analytic cost models in ``repro.kernels.hp_spmm`` and
``repro.kernels.hp_sddmm`` price warps with closed-form expressions.
This module independently *replays* Algorithms 3 and 4 warp by warp and
element by element — real byte addresses, real sector counting, an exact
LRU cache — so the test-suite can check that the closed forms agree with
a literal execution of the paper's pseudo-code.  It is intentionally
slow (pure Python) and meant for tiny matrices only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..formats import HybridMatrix
from ..obs import METRICS, traced
from .cache import LRUCache
from .device import DeviceSpec, TESLA_V100
from .memory import FP32, sectors_for_access


@dataclass
class TraceCounts:
    """Instruction / transaction totals from an exact replay."""

    warps: int = 0
    instructions: float = 0.0
    sparse_sectors: int = 0
    dense_accesses: int = 0
    dense_sectors: int = 0
    dense_hits: int = 0       #: dense sectors served by the traced L2
    row_switches: int = 0     #: row-switch stores (incl. final flush)
    write_sectors: int = 0
    fma_instructions: float = 0.0
    per_warp_nnz: list = field(default_factory=list)

    @property
    def dense_hit_rate(self) -> float:
        return (
            self.dense_hits / self.dense_sectors if self.dense_sectors else 0.0
        )


@traced("trace_hp_spmm", cat="gpusim")
def trace_hp_spmm(
    S: HybridMatrix,
    k: int,
    *,
    nnz_per_warp: int,
    vector_width: int = 1,
    device: DeviceSpec = TESLA_V100,
    max_nnz: int = 20_000,
) -> TraceCounts:
    """Replay Algorithm 3 exactly and return its operation counts.

    One feature group only (``k`` must be coverable by one warp sweep per
    element — the counts for additional groups are exact replicas).
    Raises for matrices above ``max_nnz`` to avoid accidental long runs.
    """
    if S.nnz > max_nnz:
        raise ValueError(f"trace simulation is for tiny matrices (nnz <= {max_nnz})")
    if nnz_per_warp <= 0:
        raise ValueError("nnz_per_warp must be positive")
    METRICS.inc("gpusim.trace_replays")
    sector = device.l2_sector_bytes
    counts = TraceCounts()
    nnz = S.nnz
    if nnz == 0:
        return counts

    # Exact L2 at sector granularity over the dense operand.
    l2_sectors_capacity = max(1, device.l2_cache_bytes // sector // 2)
    cache = LRUCache(l2_sectors_capacity)

    feats_per_sweep = 32 * vector_width
    sweeps_per_row = -(-k // feats_per_sweep)
    row_bytes = k * FP32

    num_warps = -(-nnz // nnz_per_warp)
    counts.warps = num_warps
    for w in range(num_warps):
        start = w * nnz_per_warp
        end = min(start + nnz_per_warp, nnz)
        counts.per_warp_nnz.append(end - start)
        current_row = None
        for tile_start in range(start, end, 32):
            tile_end = min(tile_start + 32, end)
            tile_elems = tile_end - tile_start
            # Cooperative tile load: 3 arrays, contiguous, real addresses.
            for _array in range(3):
                byte0 = tile_start * FP32
                counts.sparse_sectors += int(
                    sectors_for_access(byte0, tile_elems * FP32, sector)
                )
                counts.instructions += 1.0 / vector_width
            for j in range(tile_start, tile_end):
                col = int(S.col[j])
                row = int(S.row[j])
                counts.instructions += 1.0  # shared-memory broadcast read
                # Row-switch procedure.
                if current_row is not None and row != current_row:
                    counts.row_switches += 1
                    counts.write_sectors += int(
                        sectors_for_access(current_row * row_bytes, row_bytes, sector)
                    )
                    counts.instructions += sweeps_per_row  # atomic stores
                current_row = row
                # Dense row load: warp-wide, vectorized sweeps.
                base = col * row_bytes
                for s in range(sweeps_per_row):
                    lo = base + s * feats_per_sweep * FP32
                    nbytes = min(feats_per_sweep * FP32, base + row_bytes - lo)
                    if nbytes <= 0:
                        continue
                    first = lo // sector
                    last = (lo + nbytes - 1) // sector
                    for sec in range(first, last + 1):
                        counts.dense_sectors += 1
                        if cache.access(sec):
                            counts.dense_hits += 1
                    counts.instructions += 1.0
                counts.dense_accesses += 1
                counts.fma_instructions += sweeps_per_row * vector_width
                counts.instructions += sweeps_per_row * vector_width
        # Final flush of the last accumulated row.
        if current_row is not None:
            counts.row_switches += 1
            counts.write_sectors += int(
                sectors_for_access(current_row * row_bytes, row_bytes, sector)
            )
            counts.instructions += sweeps_per_row
    return counts


@traced("trace_hp_sddmm", cat="gpusim")
def trace_hp_sddmm(
    S: HybridMatrix,
    k: int,
    *,
    nnz_per_warp: int,
    vector_width: int = 1,
    device: DeviceSpec = TESLA_V100,
    max_nnz: int = 20_000,
) -> TraceCounts:
    """Replay Algorithm 4 (HP-SDDMM) exactly and return operation counts.

    ``row_switches`` counts A1-row *loads* here (the algorithm reloads
    A1 only when the slice's row changes); ``write_sectors`` counts the
    nnz-value output stores; dense accesses cover both A1 and A2 reads.
    """
    if S.nnz > max_nnz:
        raise ValueError(
            f"trace simulation is for tiny matrices (nnz <= {max_nnz})"
        )
    if nnz_per_warp <= 0:
        raise ValueError("nnz_per_warp must be positive")
    METRICS.inc("gpusim.trace_replays")
    sector = device.l2_sector_bytes
    counts = TraceCounts()
    nnz = S.nnz
    if nnz == 0:
        return counts

    l2_sectors_capacity = max(1, device.l2_cache_bytes // sector // 2)
    cache = LRUCache(l2_sectors_capacity)

    feats_per_sweep = 32 * vector_width
    sweeps_per_row = -(-k // feats_per_sweep)
    row_bytes = k * FP32

    def read_row(base: int) -> None:
        """Warp-wide vectorized read of one operand row through the L2."""
        for s in range(sweeps_per_row):
            lo = base + s * feats_per_sweep * FP32
            nbytes = min(feats_per_sweep * FP32, base + row_bytes - lo)
            if nbytes <= 0:
                continue
            first = lo // sector
            last = (lo + nbytes - 1) // sector
            for sec in range(first, last + 1):
                counts.dense_sectors += 1
                if cache.access(sec):
                    counts.dense_hits += 1
            counts.instructions += 1.0

    # Offset A1 rows into a disjoint address region so A1 and A2 never
    # alias in the traced cache.
    a1_base = (S.shape[1] + 1) * row_bytes

    num_warps = -(-nnz // nnz_per_warp)
    counts.warps = num_warps
    for w in range(num_warps):
        start = w * nnz_per_warp
        end = min(start + nnz_per_warp, nnz)
        counts.per_warp_nnz.append(end - start)
        current_row = None
        for tile_start in range(start, end, 32):
            tile_end = min(tile_start + 32, end)
            tile_elems = tile_end - tile_start
            for _array in range(3):
                byte0 = tile_start * FP32
                counts.sparse_sectors += int(
                    sectors_for_access(byte0, tile_elems * FP32, sector)
                )
                counts.instructions += 1.0 / vector_width
            for j in range(tile_start, tile_end):
                col = int(S.col[j])
                row = int(S.row[j])
                counts.instructions += 1.0  # shared-memory broadcast read
                # A2 row: loaded for every nonzero.
                read_row(col * row_bytes)
                counts.dense_accesses += 1
                # A1 row: loaded only on a row switch (register reuse).
                if row != current_row:
                    counts.row_switches += 1
                    read_row(a1_base + row * row_bytes)
                    counts.dense_accesses += 1
                    current_row = row
                # Multiply + warp reduction + lane-0 store.
                counts.fma_instructions += sweeps_per_row * vector_width
                counts.instructions += sweeps_per_row * vector_width + 5 + 1
                counts.write_sectors += 1 if (j % 8 == 0) else 0
    return counts
