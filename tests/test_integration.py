"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro import HPSpMM, HybridMatrix, TESLA_A30, TESLA_V100
from repro.gnn import GraphOperand, SyntheticTask, train_full_graph
from repro.graphs import load_graph, saint_node_sampler
from repro.kernels import HPSDDMM, make_spmm, spmm_reference
from repro.reorder import GCRReorderer


def test_generate_reorder_kernel_pipeline():
    """Calibrated graph -> GCR -> HP-SpMM: numerics are permutation-
    equivariant and the reordered run is no slower."""
    ds = load_graph("corafull", max_edges=40_000)
    S = ds.matrix
    rng = np.random.default_rng(0)
    A = rng.standard_normal((S.shape[1], 32)).astype(np.float32)

    res = GCRReorderer(seed=1).apply(S)
    perm = res.permutation
    S2 = res.matrix
    out1 = HPSpMM().run(S, A).output
    out2 = HPSpMM().run(S2, A[perm]).output
    # Row i of the reordered output is row perm[i] of the original.
    np.testing.assert_allclose(out2, out1[perm], rtol=1e-4, atol=1e-4)


def test_sampling_then_kernels_then_training():
    """Sample a subgraph, run both kernels on it, then train on it."""
    ds = load_graph("arxiv", max_edges=40_000)
    sub = saint_node_sampler(ds.matrix, 800, seed=7)
    S = sub.matrix
    assert S.nnz > 0

    rng = np.random.default_rng(1)
    k = 16
    A = rng.standard_normal((S.shape[1], k)).astype(np.float32)
    spmm_out = HPSpMM().run(S, A)
    np.testing.assert_allclose(
        spmm_out.output, spmm_reference(S, A), rtol=1e-4, atol=1e-4
    )
    A1 = rng.standard_normal((S.shape[0], k)).astype(np.float32)
    A2T = rng.standard_normal((S.shape[1], k)).astype(np.float32)
    sddmm_out = HPSDDMM().run(S, A1, A2T)
    assert sddmm_out.values.shape == (S.nnz,)

    task = SyntheticTask.for_graph(S, in_features=16, num_classes=4, seed=2)
    rep = train_full_graph(S, task, hidden=16, num_layers=2, epochs=4)
    assert np.isfinite(rep.losses).all()


def test_device_consistency_across_stack():
    """The same workload on A30 vs V100 produces different but finite
    times, and HP still beats row-split on both."""
    ds = load_graph("mutag", max_edges=40_000)
    S = ds.matrix
    for device in (TESLA_V100, TESLA_A30):
        hp = make_spmm("hp-spmm").estimate(S, 64, device)
        rs = make_spmm("row-split").estimate(S, 64, device)
        assert 0 < hp.stats.time_s < rs.stats.time_s


def test_gcn_normalization_composes_with_kernels():
    ds = load_graph("aifb", max_edges=30_000)
    graph = GraphOperand.gcn_normalized(ds.matrix)
    # Normalized adjacency keeps propagation bounded (no blow-up): for a
    # directed graph the row sums of D_out^-1/2 A D_in^-1/2 are bounded
    # by sqrt(max degree), far below the raw adjacency's growth.
    x = np.ones((graph.num_nodes, 4), dtype=np.float32)
    y = graph.csr @ x
    raw = ds.matrix.to_scipy() @ x
    assert np.abs(y).max() <= np.sqrt(ds.matrix.row_degrees().max()) + 1
    assert np.abs(y).max() < np.abs(raw).max()


def test_public_api_exports():
    import repro

    assert repro.__version__
    for name in ("HPSpMM", "HPSDDMM", "HybridMatrix", "TESLA_V100",
                 "spmm_reference", "make_spmm"):
        assert hasattr(repro, name)
