"""Wall-clock benchmark harness for the experiment pipelines.

Times the heavy report pipelines (fig9, fig12, table3 by default) and
writes a machine-readable ``BENCH_harness.json`` so the performance
trajectory of the harness itself is measurable across PRs::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --pipelines fig9,table3 --max-edges 60000 --output /tmp/bench.json

Each pipeline entry records wall-clock seconds plus the estimate-cache
counters observed across the run (table3 re-runs the fig9/fig10 kernel ×
graph combinations, so its cache hit count shows the memo layer doing
its job).  Results are deterministic; the timings are the only
machine-dependent values in the file.

A ``frontier`` section (skippable with ``--no-frontier``) times the
full-field SpMM sweep against the model-predicted frontier (the
``repro.select`` policy narrowing each graph to its top-k candidate
kernels), so the wall-clock reduction the selection layer buys is a
committed, diffable number.

A ``dispatch`` section (skippable with ``--no-dispatch``) additionally
records batched engine-dispatch throughput — requests/sec through the
inline, pool, and sharded executors, with the sharded path measured
both over the legacy pickle transport (``REPRO_NO_SHARED_STORE=1``) and
over ``repro.store`` fingerprint handles, so the zero-copy store's
per-request win is a committed, diffable number.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_PIPELINES = ("fig9", "fig12", "table3")


def run_pipelines(
    pipelines: tuple[str, ...],
    *,
    max_edges: int | None = None,
    subgraphs: int | None = None,
    fig12_nodes: int | None = None,
) -> dict:
    """Run each pipeline once; returns the report payload."""
    from repro.bench import EXPERIMENTS
    from repro.obs import METRICS, snapshot
    from repro.perf import estimate_cache_stats, get_estimate_cache

    get_estimate_cache().clear()
    METRICS.reset()
    report: dict = {"pipelines": {}}
    for name in pipelines:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown pipeline {name!r}; choose from {sorted(EXPERIMENTS)}"
            )
        kwargs = {}
        if max_edges is not None and name != "fig12":
            kwargs["max_edges"] = max_edges
        if subgraphs is not None and name in ("fig10", "table3"):
            kwargs["num_subgraphs"] = subgraphs
        if fig12_nodes is not None and name == "fig12":
            kwargs["num_nodes"] = fig12_nodes
        before = estimate_cache_stats()
        t0 = time.perf_counter()
        EXPERIMENTS[name](**kwargs)
        elapsed = time.perf_counter() - t0
        after = estimate_cache_stats()
        report["pipelines"][name] = {
            "seconds": round(elapsed, 4),
            "estimate_cache_hits": after.hits - before.hits,
            "estimate_cache_misses": after.misses - before.misses,
        }
    cs = estimate_cache_stats()
    report["estimate_cache"] = {
        "hits": cs.hits,
        "misses": cs.misses,
        "hit_rate": round(cs.hit_rate, 4),
        "entries": cs.entries,
        "stored_bytes": cs.stored_bytes,
    }
    report["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "repro_jobs": os.environ.get("REPRO_JOBS", "1"),
        "max_edges": max_edges,
        "subgraphs": subgraphs,
        "fig12_nodes": fig12_nodes,
    }
    # Unified observability snapshot (plan-check totals, pool fan-out
    # accounting, ...).  Informational in `repro.obs diff` — only the
    # timing keys above are regression-gated.
    report["metrics"] = snapshot()
    return report


def run_frontier_bench(*, max_edges: int | None = None) -> dict:
    """Full-field sweep vs model-predicted frontier, wall clock.

    Both arms start from a cold estimate cache so the predicted arm's
    advantage is genuinely fewer (graph, kernel) configs swept, not memo
    hits left behind by the full arm.  Key names stay outside the
    ``repro.obs diff`` timing-gated set (``seconds``/``*_seconds``/...):
    the speedup is workload structure, not a gated regression surface.
    """
    from repro.bench import run_frontier
    from repro.perf import get_estimate_cache
    from repro.select import default_topk

    top_k = default_topk()
    section: dict = {"top_k": top_k}
    for label, arm_top_k in (("full", None), ("predicted", top_k)):
        get_estimate_cache().clear()
        t0 = time.perf_counter()
        result = run_frontier(max_edges=max_edges, top_k=arm_top_k)
        elapsed = time.perf_counter() - t0
        section[label] = {
            "elapsed_s": round(elapsed, 4),
            "swept_configs": sum(
                len(kernels) for kernels in result.frontier.values()
            ),
            "graphs": len(result.graphs),
        }
    full, pred = section["full"], section["predicted"]
    section["config_reduction"] = round(
        1.0 - pred["swept_configs"] / full["swept_configs"], 3
    )
    section["speedup"] = round(
        full["elapsed_s"] / pred["elapsed_s"], 2
    ) if pred["elapsed_s"] else None
    return section


#: Batched-dispatch workload: every (graph, kernel, k) combination below
#: becomes one request per batch; four graphs -> four work units per
#: batch, so pool/sharded executors genuinely fan out.
DISPATCH_GRAPHS = ("corafull", "aifb", "mutag", "bgs")
DISPATCH_KERNELS = ("hp-spmm", "ge-spmm", "row-split")
DISPATCH_KS = (32, 64)
DISPATCH_BATCHES = 8


def _dispatch_requests(max_edges: int | None) -> list:
    from repro.engine import EstimateRequest

    return [
        EstimateRequest(
            op="spmm", kernel=kernel, graph=graph, k=k, max_edges=max_edges
        )
        for graph in DISPATCH_GRAPHS
        for kernel in DISPATCH_KERNELS
        for k in DISPATCH_KS
    ]


def _time_dispatch(engine, requests, batches: int) -> dict:
    """Dispatch ``batches`` identical batches; per-request overhead stats.

    One untimed warmup batch first: it forks/spins up executor workers,
    publishes store segments, and warms worker-side estimate caches, so
    the timed window measures steady-state dispatch overhead — the
    serialization + queue tax the shared store exists to remove — rather
    than one-time setup.  Key names are deliberately outside the
    ``repro.obs diff`` timing-gated set (``seconds``/``*_seconds``/...):
    throughput here is machine- and load-dependent context, not a gated
    regression surface.
    """
    engine.estimate_batch(requests)  # warmup (untimed)
    t0 = time.perf_counter()
    for _ in range(batches):
        result = engine.estimate_batch(requests)
        assert all(r.ok for r in result)
    elapsed = time.perf_counter() - t0
    n = batches * len(requests)
    return {
        "requests": n,
        "batches": batches,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(n / elapsed, 1),
        "per_request_us": round(elapsed / n * 1e6, 1),
    }


def run_dispatch(
    *,
    max_edges: int | None = None,
    batches: int = DISPATCH_BATCHES,
) -> dict:
    """Batched engine-dispatch throughput: inline vs pool vs sharded.

    The sharded executor is measured twice — once shipping matrices over
    the worker queues (``REPRO_NO_SHARED_STORE=1``, the pre-store pickle
    path) and once shipping store fingerprints — so the report carries
    the store's per-request win as a single ratio.
    """
    from repro.engine import Engine, PoolExecutor, ShardedExecutor
    from repro.store import store_counters

    requests = _dispatch_requests(max_edges)
    report: dict = {
        "workload": {
            "graphs": list(DISPATCH_GRAPHS),
            "kernels": list(DISPATCH_KERNELS),
            "ks": list(DISPATCH_KS),
            "requests_per_batch": len(requests),
        }
    }

    report["inline"] = _time_dispatch(Engine(), requests, batches)
    report["pool"] = _time_dispatch(
        Engine(executor=PoolExecutor(jobs=2)), requests, batches
    )

    prior = os.environ.get("REPRO_NO_SHARED_STORE")
    os.environ["REPRO_NO_SHARED_STORE"] = "1"
    try:
        with ShardedExecutor(workers=2) as executor:
            report["sharded_pickle"] = _time_dispatch(
                Engine(executor=executor), requests, batches
            )
    finally:
        if prior is None:
            os.environ.pop("REPRO_NO_SHARED_STORE", None)
        else:
            os.environ["REPRO_NO_SHARED_STORE"] = prior

    before = store_counters()
    with ShardedExecutor(workers=2) as executor:
        report["sharded_store"] = _time_dispatch(
            Engine(executor=executor), requests, batches
        )
    after = store_counters()
    report["store_delta"] = {
        key: after[key] - before[key] for key in sorted(after)
    }
    report["sharded_store_speedup_vs_pickle"] = round(
        report["sharded_pickle"]["per_request_us"]
        / report["sharded_store"]["per_request_us"],
        3,
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipelines",
        default=",".join(DEFAULT_PIPELINES),
        help="comma-separated experiment ids (default: fig9,fig12,table3)",
    )
    parser.add_argument(
        "--max-edges", type=int, default=None, help="edge cap for scaled graphs"
    )
    parser.add_argument(
        "--subgraphs", type=int, default=None, help="sampling-dataset size"
    )
    parser.add_argument(
        "--fig12-nodes", type=int, default=None, help="fig12 suite graph size"
    )
    parser.add_argument(
        "--no-frontier", action="store_true",
        help="skip the full-vs-predicted frontier section",
    )
    parser.add_argument(
        "--no-dispatch", action="store_true",
        help="skip the batched-dispatch throughput section",
    )
    parser.add_argument(
        "--dispatch-only", action="store_true",
        help="run only the batched-dispatch throughput section",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_harness.json"),
        help="report path (default: <repo>/BENCH_harness.json)",
    )
    args = parser.parse_args(argv)
    pipelines = tuple(p.strip() for p in args.pipelines.split(",") if p.strip())
    if args.dispatch_only:
        from repro.obs import snapshot

        report = {"meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "max_edges": args.max_edges,
        }}
    else:
        report = run_pipelines(
            pipelines,
            max_edges=args.max_edges,
            subgraphs=args.subgraphs,
            fig12_nodes=args.fig12_nodes,
        )
    if not args.dispatch_only and not args.no_frontier:
        report["frontier"] = run_frontier_bench(max_edges=args.max_edges)
    if not args.no_dispatch:
        from repro.obs import snapshot

        report["dispatch"] = run_dispatch(max_edges=args.max_edges)
        # Refresh the unified snapshot so the committed report's
        # ``store.*`` / ``engine.shard_*`` counters include the
        # dispatch section's activity.
        report["metrics"] = snapshot()
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    for name, row in report.get("pipelines", {}).items():
        print(
            f"{name:>8}: {row['seconds']:8.2f}s  "
            f"(cache {row['estimate_cache_hits']} hits / "
            f"{row['estimate_cache_misses']} misses)"
        )
    if "frontier" in report:
        fr = report["frontier"]
        print(
            f"frontier: full {fr['full']['elapsed_s']:.2f}s "
            f"({fr['full']['swept_configs']} configs) vs predicted "
            f"{fr['predicted']['elapsed_s']:.2f}s "
            f"({fr['predicted']['swept_configs']} configs, "
            f"top-{fr['top_k']}) -> {fr['speedup']}x"
        )
    if "dispatch" in report:
        d = report["dispatch"]
        for variant in ("inline", "pool", "sharded_pickle", "sharded_store"):
            row = d[variant]
            print(
                f"{variant:>16}: {row['requests_per_s']:9.1f} req/s  "
                f"({row['per_request_us']:.1f} us/req)"
            )
        print(
            f"{'store speedup':>16}: "
            f"{d['sharded_store_speedup_vs_pickle']:.2f}x vs pickle path"
        )
    print(f"-> {args.output}")
    from repro.obs import export_trace, tracing_enabled

    if tracing_enabled():
        print(f"[trace -> {export_trace()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
