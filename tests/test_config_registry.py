"""The REPRO_* env-var registry: declarations, readers, README sync."""

import os
import subprocess
import sys

import pytest

from repro.config import (
    ENV_VARS,
    SUBSYSTEMS,
    EnvVar,
    declared,
    env_flag,
    env_int,
    env_str,
    readme_block_in_sync,
    render_markdown_table,
    render_readme_block,
    update_readme,
)
from repro.config.registry import TABLE_BEGIN, TABLE_END

pytestmark = pytest.mark.analysis

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_README = os.path.join(_ROOT, "README.md")


# -- declarations ---------------------------------------------------------

def test_every_declaration_is_well_formed():
    assert len(ENV_VARS) >= 14
    for name, var in ENV_VARS.items():
        assert name == var.name
        assert name.startswith("REPRO_")
        assert var.subsystem in SUBSYSTEMS
        assert var.description


def test_invalid_declarations_rejected():
    with pytest.raises(ValueError):
        EnvVar("NOT_REPRO", "int", "1", "perf", "x")
    with pytest.raises(ValueError):
        EnvVar("REPRO_X", "float", "1", "perf", "x")
    with pytest.raises(ValueError):
        EnvVar("REPRO_X", "int", "1", "nope", "x")


def test_declared():
    assert declared("REPRO_JOBS")
    assert not declared("REPRO_BOGUS_KNOB")


# -- checked readers ------------------------------------------------------

def test_env_str_reads_and_strips(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "  /tmp/t.json ")
    assert env_str("REPRO_TRACE") == "/tmp/t.json"
    monkeypatch.delenv("REPRO_TRACE")
    assert env_str("REPRO_TRACE") == ""
    assert env_str("REPRO_TRACE", "fallback") == "fallback"


def test_env_int_parses_and_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EDGES", "123")
    assert env_int("REPRO_MAX_EDGES", 7) == 123
    monkeypatch.setenv("REPRO_MAX_EDGES", "")
    assert env_int("REPRO_MAX_EDGES", 7) == 7
    monkeypatch.setenv("REPRO_MAX_EDGES", "many")
    with pytest.raises(ValueError, match="REPRO_MAX_EDGES"):
        env_int("REPRO_MAX_EDGES", 7)


def test_env_flag_convention(monkeypatch):
    for off in (None, "", "0", " 0 "):
        if off is None:
            monkeypatch.delenv("REPRO_NO_PLAN_CHECK", raising=False)
        else:
            monkeypatch.setenv("REPRO_NO_PLAN_CHECK", off)
        assert env_flag("REPRO_NO_PLAN_CHECK") is False
    monkeypatch.setenv("REPRO_NO_PLAN_CHECK", "1")
    assert env_flag("REPRO_NO_PLAN_CHECK") is True


def test_undeclared_name_refused_by_every_reader():
    for reader in (
        lambda: env_str("REPRO_BOGUS_KNOB"),
        lambda: env_int("REPRO_BOGUS_KNOB", 1),
        lambda: env_flag("REPRO_BOGUS_KNOB"),
    ):
        with pytest.raises(KeyError, match="REPRO_BOGUS_KNOB"):
            reader()


# -- README table generation ----------------------------------------------

def test_table_lists_every_variable_once():
    rows = render_markdown_table().splitlines()
    for name in ENV_VARS:
        assert sum(r.startswith(f"| `{name}` |") for r in rows) == 1


def test_update_readme_requires_markers():
    with pytest.raises(ValueError):
        update_readme("no markers here\n")


def test_update_readme_roundtrip():
    doc = f"intro\n\n{TABLE_BEGIN}\nstale\n{TABLE_END}\n\noutro\n"
    fresh = update_readme(doc)
    assert readme_block_in_sync(fresh)
    assert fresh.startswith("intro")
    assert fresh.endswith("outro\n")
    assert "stale" not in fresh
    assert render_readme_block() in fresh
    # Updating an in-sync document is the identity.
    assert update_readme(fresh) == fresh


def test_committed_readme_is_in_sync():
    """The CI invariant: the README table matches the registry."""
    with open(_README, encoding="utf-8") as f:
        assert readme_block_in_sync(f.read())


# -- CLI exit codes -------------------------------------------------------

def _run_config(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.config", *args],
        capture_output=True, text=True, env=env,
    )


def test_cli_prints_table():
    proc = _run_config()
    assert proc.returncode == 0
    assert "`REPRO_JOBS`" in proc.stdout


def test_cli_check_exit_codes(tmp_path):
    assert _run_config("--check", _README).returncode == 0

    stale = tmp_path / "stale.md"
    stale.write_text(f"{TABLE_BEGIN}\nold\n{TABLE_END}\n")
    assert _run_config("--check", str(stale)).returncode == 1

    assert _run_config("--check", str(tmp_path / "absent.md")).returncode == 2


def test_cli_update_exit_codes(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(f"{TABLE_BEGIN}\nold\n{TABLE_END}\n")
    assert _run_config("--update", str(doc)).returncode == 0
    assert readme_block_in_sync(doc.read_text())

    no_markers = tmp_path / "plain.md"
    no_markers.write_text("nothing\n")
    assert _run_config("--update", str(no_markers)).returncode == 2
