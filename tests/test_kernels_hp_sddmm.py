"""HP-SDDMM: numerics and cost-model behavior."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.gpusim import TESLA_V100
from repro.kernels import HPSDDMM, make_sddmm, sddmm_reference


def test_numerics_match_reference(medium_matrix, features):
    k = 64
    A1 = features(medium_matrix.shape[0], k, seed=0)
    A2T = features(medium_matrix.shape[1], k, seed=1)
    result = HPSDDMM().run(medium_matrix, A1, A2T)
    np.testing.assert_allclose(
        result.values,
        sddmm_reference(medium_matrix, A1, A2T),
        rtol=1e-4,
        atol=1e-4,
    )


def test_operand_validation(medium_matrix):
    m, n = medium_matrix.shape
    good1 = np.ones((m, 8), np.float32)
    good2 = np.ones((n, 8), np.float32)
    with pytest.raises(ValueError):
        HPSDDMM().run(medium_matrix, good1[:-1], good2)
    with pytest.raises(ValueError):
        HPSDDMM().run(medium_matrix, good1, good2[:-1])
    with pytest.raises(ValueError):
        HPSDDMM().run(medium_matrix, good1, np.ones((n, 9), np.float32))


def test_estimate_is_timing_only(medium_matrix):
    res = HPSDDMM().estimate(medium_matrix, 64)
    assert res.values is None
    assert res.stats.num_warps > 0


def test_row_reuse_beats_edge_parallel(medium_matrix):
    # HP-SDDMM reloads A1 only on row switches; DGL's edge-parallel
    # kernel reloads per edge.  On a row-sorted matrix HP must move
    # fewer bytes and be at least as fast.
    hp = HPSDDMM().estimate(medium_matrix, 64, TESLA_V100)
    dgl = make_sddmm("dgl-sddmm").estimate(medium_matrix, 64, TESLA_V100)
    hp_bytes = hp.stats.dram_bytes + hp.stats.l2_bytes
    dgl_bytes = dgl.stats.dram_bytes + dgl.stats.l2_bytes
    assert hp_bytes < dgl_bytes
    assert hp.stats.time_s <= dgl.stats.time_s


def test_empty_matrix():
    S = HybridMatrix.from_arrays([], [], shape=(5, 5))
    res = HPSDDMM().run(
        S, np.ones((5, 4), np.float32), np.ones((5, 4), np.float32)
    )
    assert res.values.size == 0


def test_registered():
    k = make_sddmm("hp-sddmm")
    assert isinstance(k, HPSDDMM)


def test_launch_plan_passes_static_checker(medium_matrix, check_plan):
    # SDDMM outputs are per-nnz (slice-private by construction); the
    # checker verifies coverage, occupancy and HVMA preconditions.
    for k in (64, 48):
        check_plan(HPSDDMM(), medium_matrix, k=k)
