"""The unified counters registry and its subsystem integrations."""

import pytest

from repro.obs import METRICS, MetricsRegistry, snapshot
from repro.perf import get_estimate_cache, parallel_map

from tests.conftest import random_hybrid

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def fresh_metrics(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    METRICS.reset()
    get_estimate_cache().clear()
    yield
    METRICS.reset()


# ----------------------------------------------------------------------
# Registry basics
# ----------------------------------------------------------------------

def test_registry_inc_get_reset():
    reg = MetricsRegistry()
    assert reg.get("a") == 0
    reg.inc("a")
    reg.inc("a", 4)
    reg.inc("b", 2.5)
    assert reg.get("a") == 5
    assert reg.counters() == {"a": 5, "b": 2.5}
    reg.reset()
    assert reg.counters() == {}


def test_snapshot_merges_estimate_cache_counters(small_matrix):
    from repro.kernels import make_spmm

    kern = make_spmm("hp-spmm")
    kern.estimate(small_matrix, 64)
    kern.estimate(small_matrix, 64)
    snap = snapshot()
    assert snap["estimate_cache.misses"] == 1
    assert snap["estimate_cache.hits"] == 1
    assert snap["estimate_cache.entries"] == 1
    assert snap["trace.spans"] == 0  # tracing off


# ----------------------------------------------------------------------
# Subsystem integrations
# ----------------------------------------------------------------------

def test_parallel_map_counts_pool_and_fallback_runs():
    parallel_map(abs, [1, -2, 3], jobs=1)
    assert METRICS.get("parallel.serial_runs") == 1
    assert METRICS.get("parallel.items") == 3
    # A lambda cannot cross the process boundary: counted as a fallback.
    parallel_map(lambda x: x, [1, 2], jobs=2)
    assert METRICS.get("parallel.pool_fallbacks") == 1
    assert METRICS.get("parallel.serial_runs") == 2
    parallel_map(abs, [1, -2], jobs=2)
    assert METRICS.get("parallel.pool_runs") == 1


def test_sweep_counts_plan_checks():
    from repro.bench.runner import sweep_spmm

    graphs = [("g", random_hybrid(200, 200, 1500, seed=31))]
    sweep_spmm(graphs, ("hp-spmm", "ge-spmm"), k=32)
    assert METRICS.get("plan_check.checked") == 2
    assert METRICS.get("bench.sweeps") == 1


def test_timing_context_counts_ops(small_matrix):
    from repro.gnn.timing import TimingContext

    ctx = TimingContext()
    ctx.record_spmm(small_matrix, 32)
    ctx.record_spmm(small_matrix, 32)
    ctx.record_gemm(64, 64, 64)
    assert METRICS.get("gnn.spmm_ops") == 2
    assert METRICS.get("gnn.gemm_ops") == 1


def test_trace_replay_and_profile_report_counted(paper_fig2_matrix):
    from repro.gpusim import TESLA_V100
    from repro.gpusim.profile import profile_report
    from repro.gpusim.trace import trace_hp_spmm
    from repro.kernels import make_spmm

    trace_hp_spmm(paper_fig2_matrix, 32, nnz_per_warp=4)
    assert METRICS.get("gpusim.trace_replays") == 1
    res = make_spmm("hp-spmm").estimate(paper_fig2_matrix, 32)
    profile_report(res.stats, TESLA_V100, kernel_name="hp-spmm")
    assert METRICS.get("gpusim.profile_reports") == 1
