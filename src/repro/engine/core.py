"""The estimation pipeline: request -> plan -> execute -> result.

Every evaluation path in the repo — bench sweeps, the per-figure
scripts, the serve layer's full-path micro-batches, GNN training-epoch
timing, and ``python -m repro.bench`` — used to carry its own copy of
the same pipeline: look up a kernel factory, load a graph, optionally
plan-check, evaluate through the estimate cache, trace a span.  This
module is the single copy.

The pipeline has two stages:

* **Plan** (:meth:`Engine._plan`): resolve each request's graph (via
  :mod:`repro.graphs.registry`, a caller-supplied matrix map, or a
  default matrix), resolve its device spec, and group requests sharing
  a matrix into :class:`_WorkUnit` items — one graph load per unit, so
  every request in it shares one structural fingerprint and their
  estimate-cache keys differ only in (kernel, K, device, config).
* **Execute**: an :class:`~repro.engine.executors.Executor` maps the
  module-level (picklable) :func:`_execute_unit` over the units.  Each
  unit evaluates its points serially *in request order*, so serial and
  fanned-out batches produce identical results and identical
  estimate-cache traffic.  Per-point spans, the optional
  :mod:`repro.analysis` plan check, and the estimate cache (inside
  :meth:`kernel.estimate`) all live in the unit body — every path gets
  them for free and none can drift.

Environment handling (``REPRO_NO_PLAN_CHECK``,
``REPRO_NO_ESTIMATE_CACHE``) is consolidated in
:class:`EngineConfig`; the variables keep their historical meaning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis import ERROR, check_plan, plan_for_kernel
from ..config import env_flag
from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, KernelStats, get_device
from ..graphs import load_graph
from ..obs import METRICS, trace_span
from ..obs.tracer import get_tracer
from ..perf.estimate_cache import cache_enabled
from ..perf.fingerprint import structural_features
from ..select.policy import Candidate, active_policy, default_topk
from ..store import StoreError, StoreHandle, get_store, store_enabled
from .bounds import VALID_BOUNDS
from .executors import Executor, InlineExecutor
from .priors import cost_priors
from .registry import VALID_OPS, make_kernel, valid_kernels

#: Result statuses.  ``error`` only appears under ``capture_errors``.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class PlanCheckError(RuntimeError):
    """A request's kernel plan failed the static schedule checker."""


def plan_checking_enabled() -> bool:
    """Env default for plan checking: on unless ``REPRO_NO_PLAN_CHECK=1``."""
    return not env_flag("REPRO_NO_PLAN_CHECK")


def estimate_caching_enabled() -> bool:
    """Env default for the estimate cache (``REPRO_NO_ESTIMATE_CACHE``)."""
    return cache_enabled()


@dataclass(frozen=True)
class EstimateRequest:
    """One kernel-estimate query against the engine.

    ``graph`` names a registry dataset; callers that already hold a
    matrix pass it through ``estimate(..., matrix=...)`` /
    ``estimate_batch(..., matrices=...)`` instead and may leave
    ``graph`` as a label (or ``None``).  ``device`` accepts a
    :class:`~repro.gpusim.DeviceSpec` or a registry short name.
    ``kernel_kwargs`` is a tuple of ``(key, value)`` pairs so requests
    stay hashable and picklable.
    """

    op: str                                 #: "spmm" | "sddmm"
    kernel: str                             #: kernel registry name
    graph: str | None = None                #: graph-registry name (or label)
    k: int = 64                             #: feature width
    device: str | DeviceSpec = "v100"       #: device spec or short name
    max_edges: int | None = None            #: registry edge cap
    kernel_kwargs: tuple = ()               #: extra kernel-config pairs

    def __post_init__(self) -> None:
        if self.op not in VALID_OPS:
            raise ValueError(
                f"op must be one of {list(VALID_OPS)}, got {self.op!r}"
            )
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def group_key(self) -> tuple:
        """Matrix-identity key: same key -> same loaded graph."""
        return (self.graph, self.max_edges)


@dataclass(frozen=True)
class EstimateResult:
    """The engine's answer to one :class:`EstimateRequest`."""

    request: EstimateRequest
    status: str                      #: "ok" | "error"
    time_s: float | None = None      #: simulated kernel seconds
    preprocessing_s: float = 0.0     #: modeled host preprocessing seconds
    bound: str | None = None         #: dominant bound (VALID_BOUNDS)
    gflops: float = 0.0              #: achieved GFLOP/s at this point
    stats: KernelStats | None = None  #: full simulator stats
    error: str | None = None         #: failure detail for "error"

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def total_time_s(self) -> float | None:
        """Kernel + preprocessing, mirroring the kernel-API results."""
        if self.time_s is None:
            return None
        return self.time_s + self.preprocessing_s


@dataclass
class BatchResult:
    """All of one batch's results, in request order, plus check tallies."""

    results: list[EstimateResult]
    plans_checked: int = 0
    plan_diagnostics: dict = field(default_factory=dict)
    elapsed_s: float = 0.0   #: parent-side wall seconds spent executing

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def by_graph(self) -> dict:
        """Results grouped by request graph label, in request order.

        The world sweep (and any caller issuing one batch spanning many
        matrices) fans hundreds of ``(graph, kernel)`` points through a
        single :meth:`Engine.estimate_batch` call; this view re-folds
        the flat, request-ordered result list back into per-graph
        groups without re-deriving the planner's grouping.
        """
        grouped: dict = {}
        for res in self.results:
            grouped.setdefault(res.request.graph, []).append(res)
        return grouped


@dataclass(frozen=True)
class Selection:
    """What the selection layer decided to run for one matrix.

    ``requests`` are ready-made plan-stage requests: the predicted
    top-k on a policy hit, or the full kernel field on a miss — so a
    caller can hand them straight to :meth:`Engine.estimate_batch`
    either way.  ``candidates`` always carries the *complete* ranked
    field (not just top-k) for reporting and regret accounting;
    predicted schedules (NnzPerWarp / vector width of the matched
    region) ride on each candidate and deliberately do **not** become
    ``kernel_kwargs``: requests keep default kernel configs so
    predicted-frontier results stay byte-comparable with full sweeps.
    """

    op: str
    graph: str | None
    k: int
    device: DeviceSpec
    predicted: bool                       #: policy covered this query
    policy: str                           #: policy name ("model"/"null")
    candidates: tuple[Candidate, ...]     #: full ranked field
    requests: tuple[EstimateRequest, ...]  #: what to actually run

    @property
    def kernels(self) -> tuple[str, ...]:
        """Kernel names of :attr:`requests`, in rank order."""
        return tuple(r.kernel for r in self.requests)


@dataclass(frozen=True)
class EngineConfig:
    """Per-call-site policy for the shared pipeline.

    ``check_plans=None`` defers to the environment
    (:func:`plan_checking_enabled`) — the bench sweeps use this so
    ``REPRO_NO_PLAN_CHECK=1`` keeps its historical bypass meaning;
    paths that never checked plans (serve, GNN timing, the per-figure
    scripts) pass ``False`` explicitly.  The estimate cache is engaged
    inside ``kernel.estimate`` and honors ``REPRO_NO_ESTIMATE_CACHE``;
    :meth:`resolved` reports both effective settings.
    """

    check_plans: bool | None = False  #: None = honor REPRO_NO_PLAN_CHECK
    capture_errors: bool = False      #: per-request errors as data
    span: str = "engine.estimate"     #: per-point span name ({op} legal)
    cat: str = "engine"               #: trace category for point spans
    observe_priors: bool = False      #: feed per-graph cost priors

    def plan_checking(self) -> bool:
        """The effective plan-check switch for this config."""
        if self.check_plans is None:
            return plan_checking_enabled()
        return bool(self.check_plans)

    def resolved(self) -> dict:
        """Effective settings after env resolution (for manifests/tests)."""
        return {
            "plan_check": self.plan_checking(),
            "estimate_cache": estimate_caching_enabled(),
            "capture_errors": self.capture_errors,
        }


# ----------------------------------------------------------------------
# Work units — the picklable payloads executors ship to workers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Point:
    """One planned request: everything a worker needs to evaluate it."""

    index: int                 #: position in the batch's request order
    op: str
    kernel: str
    kwargs: tuple              #: kernel-config (key, value) pairs
    k: int
    device: DeviceSpec


@dataclass(frozen=True)
class _Outcome:
    """One point's evaluation, shipped back from the worker."""

    index: int
    status: str
    time_s: float | None = None
    preprocessing_s: float = 0.0
    bound: str | None = None
    gflops: float = 0.0
    stats: KernelStats | None = None
    error: str | None = None


@dataclass
class _WorkUnit:
    """One graph's worth of points — the unit of executor fan-out.

    When the planner published the unit's matrix to the shared store,
    ``store_ref`` carries the segment handle and pickling drops ``S``:
    executors ship a few hundred bytes of fingerprint metadata instead
    of the CSR arrays, and the worker re-attaches a zero-copy view in
    :func:`_materialize`.  The parent's own copy always keeps ``S``, so
    inline execution and attach-failure fallbacks never touch the store.
    """

    graph: str | None
    S: HybridMatrix | None
    points: list[_Point]
    check_plans: bool
    capture_errors: bool
    span: str
    cat: str
    store_ref: StoreHandle | None = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if state.get("store_ref") is not None:
            state["S"] = None  # consumers re-attach from the store
        return state


def _materialize(unit: _WorkUnit) -> HybridMatrix:
    """The unit's matrix, attaching from the shared store if shipped.

    Raises :class:`~repro.store.StoreAttachError` when the referenced
    segment is gone or corrupted — executors catch exactly that and
    re-evaluate the item from the parent's full copy.
    """
    if unit.S is None:
        if unit.store_ref is None:
            raise StoreError(
                "work unit has neither a matrix nor a store reference"
            )
        unit.S = get_store().attach(unit.store_ref)
    return unit.S


@dataclass
class _UnitOutput:
    outcomes: list[_Outcome]
    plans_checked: int
    diag_counts: dict
    seconds: float            #: measured unit wall time (feeds priors)


#: (op, kernel name, kwargs) -> kernel instance.  Kernel objects are
#: immutable after construction (no method assigns attributes), so one
#: instance can serve every request naming the same configuration —
#: construction plus the per-instance fingerprint hashing used to be
#: paid per request.
_KERNEL_MEMO: dict[tuple, object] = {}
_KERNEL_MEMO_MAX = 256


def _get_kernel(op: str, name: str, kwargs: tuple):
    key = (op, name, kwargs)
    kernel = _KERNEL_MEMO.get(key)
    if kernel is None:
        kernel = make_kernel(op, name, **dict(kwargs))
        if len(_KERNEL_MEMO) >= _KERNEL_MEMO_MAX:
            _KERNEL_MEMO.clear()
        _KERNEL_MEMO[key] = kernel
    return kernel


def _evaluate_point(unit: _WorkUnit, pt: _Point) -> tuple[_Outcome, tuple]:
    """One point through the full pipeline body: span, check, estimate."""
    if get_tracer() is None:
        # Untraced fast path: skip span-name formatting and span-kwarg
        # assembly — pure per-request overhead when no tracer is live
        # (trace_span itself would no-op, but only after both were built).
        return _point_body(unit, pt)
    with trace_span(
        unit.span.format(op=pt.op), cat=unit.cat,
        op=pt.op, graph=unit.graph, kernel=pt.kernel, k=pt.k,
        device=pt.device.name,
    ):
        return _point_body(unit, pt)


def _point_body(unit: _WorkUnit, pt: _Point) -> tuple[_Outcome, tuple]:
    kernel = _get_kernel(pt.op, pt.kernel, pt.kwargs)
    diags = ()
    if unit.check_plans:
        diags = check_plan(
            plan_for_kernel(kernel, unit.S, pt.k, pt.device)
        )
        errors = [d for d in diags if d.severity == ERROR]
        if errors:
            detail = "\n".join(d.render() for d in errors)
            raise PlanCheckError(
                f"kernel {pt.kernel!r} on graph {unit.graph!r} "
                f"(k={pt.k}, {pt.device.name}) has an illegal "
                f"schedule; refusing to simulate a silently-wrong "
                f"sweep point:\n{detail}"
            )
    res = kernel.estimate(unit.S, pt.k, pt.device)
    flops = 2.0 * unit.S.nnz * pt.k
    return _Outcome(
        index=pt.index,
        status=STATUS_OK,
        time_s=res.stats.time_s,
        preprocessing_s=res.preprocessing_s,
        bound=res.stats.bound,
        gflops=res.stats.throughput_gflops(flops),
        stats=res.stats,
    ), diags


def _execute_unit(unit: _WorkUnit) -> _UnitOutput:
    """All points of one unit, serially, in request order.

    Module-level (picklable) so every executor — inline loop, the
    ``REPRO_JOBS`` process pool, the sharded worker servers — ships the
    same work body.  Deterministic estimates make the executor choice
    invisible in the results.
    """
    _materialize(unit)
    t0 = time.monotonic()  # lint: allow(wallclock) measured evaluation cost feeds admission-control priors
    outcomes: list[_Outcome] = []
    checked = 0
    counts: dict[str, int] = {}
    for pt in unit.points:
        try:
            outcome, diags = _evaluate_point(unit, pt)
        except Exception as exc:  # noqa: BLE001 - per-request error capture
            if not unit.capture_errors:
                raise
            outcomes.append(
                _Outcome(
                    index=pt.index, status=STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        if unit.check_plans:
            checked += 1
            for d in diags:
                counts[d.severity] = counts.get(d.severity, 0) + 1
        outcomes.append(outcome)
    return _UnitOutput(
        outcomes=outcomes,
        plans_checked=checked,
        diag_counts=counts,
        seconds=time.monotonic() - t0,  # lint: allow(wallclock) measured evaluation cost feeds admission-control priors
    )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class Engine:
    """One configured instance of the shared estimation pipeline.

    Parameters
    ----------
    config:
        Pipeline policy (plan checking, error capture, span naming).
    executor:
        How planned work units run: :class:`InlineExecutor` (default,
        serial), :class:`~repro.engine.executors.PoolExecutor`
        (``REPRO_JOBS`` process pool, worker spans spliced back) or
        :class:`~repro.engine.executors.ShardedExecutor` (persistent
        worker servers).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        executor: Executor | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.executor = executor if executor is not None else InlineExecutor()

    # -- public API -----------------------------------------------------
    def estimate(
        self,
        request: EstimateRequest,
        *,
        matrix: HybridMatrix | None = None,
    ) -> EstimateResult:
        """One request, inline; raises on failure unless capturing."""
        batch = self.estimate_batch([request], matrix=matrix)
        return batch.results[0]

    def estimate_batch(
        self,
        requests,
        *,
        matrices: dict[str, HybridMatrix] | None = None,
        matrix: HybridMatrix | None = None,
    ) -> BatchResult:
        """Evaluate a batch of requests; results come back in order.

        ``matrices`` maps graph names to already-loaded matrices
        (bypassing the registry); ``matrix`` is the default for
        requests whose ``graph`` is ``None`` or unmapped.  Requests
        naming registry graphs resolve through
        :func:`repro.graphs.load_graph`, one load per group.
        """
        requests = list(requests)
        out = BatchResult(results=[None] * len(requests))  # type: ignore[list-item]
        if not requests:
            return out
        units, failures = self._plan(requests, matrices, matrix)
        for idx, message in failures:
            out.results[idx] = EstimateResult(
                request=requests[idx], status=STATUS_ERROR, error=message
            )
        METRICS.inc("engine.batches")
        METRICS.inc("engine.requests", len(requests))
        t0 = time.monotonic()  # lint: allow(wallclock) batch evaluation cost feeds the serve EWMA fallback
        try:
            mapped = self.executor.map(_execute_unit, units)
        except PlanCheckError:
            METRICS.inc("plan_check.failed")
            raise
        out.elapsed_s = time.monotonic() - t0  # lint: allow(wallclock) batch evaluation cost feeds the serve EWMA fallback
        for unit, unit_out in zip(units, mapped):
            out.plans_checked += unit_out.plans_checked
            for sev, n in unit_out.diag_counts.items():
                out.plan_diagnostics[sev] = (
                    out.plan_diagnostics.get(sev, 0) + n
                )
            for oc in unit_out.outcomes:
                req = requests[oc.index]
                out.results[oc.index] = EstimateResult(
                    request=req,
                    status=oc.status,
                    time_s=oc.time_s,
                    preprocessing_s=oc.preprocessing_s,
                    bound=oc.bound,
                    gflops=oc.gflops,
                    stats=oc.stats,
                    error=oc.error,
                )
            if self.config.observe_priors and unit.points:
                cost_priors().observe(
                    unit.graph,
                    unit_out.seconds / len(unit.points),
                    count=len(unit.points),
                )
        if self.config.check_plans is not False:
            # Mirror the historical bench-runner accounting: the counter
            # is written (possibly with 0) whenever checking was in play,
            # so a bypassed run is visible as `plan_check.checked: 0`.
            METRICS.inc("plan_check.checked", out.plans_checked)
            for sev, n in out.plan_diagnostics.items():
                METRICS.inc(f"plan_check.diag_{sev}", n)
        return out

    def select(
        self,
        op: str,
        *,
        graph: str | None = None,
        matrix: HybridMatrix | None = None,
        k: int = 64,
        device: str | DeviceSpec = "v100",
        kernels=None,
        top_k: int | None = None,
        max_edges: int | None = None,
    ) -> Selection:
        """Resolve the active selection policy into runnable requests.

        The one entry point for "what should run on this matrix?": the
        matrix resolves exactly as in :meth:`estimate_batch` (registry
        name or caller-supplied), its structural features go to
        :func:`repro.select.active_policy`, and the answer comes back
        as plan-stage :class:`EstimateRequest` objects.  On a policy
        hit the requests are the top ``top_k`` (default
        ``REPRO_SELECT_TOPK``) predicted candidates, counted as
        ``select.hits``; when the policy declines — no model, wrong
        op, ``REPRO_NO_SELECT=1`` — the requests are the full kernel
        field in registry order, counted as ``select.misses``, which
        is precisely the historical full sweep.
        """
        device_spec = (
            device if isinstance(device, DeviceSpec) else get_device(device)
        )
        names = list(kernels) if kernels else valid_kernels(op)
        S = self._resolve_matrix(graph, max_edges, None, matrix)
        ranked = active_policy().rank(
            op, structural_features(S), kernels=names
        )
        METRICS.inc("select.requests")
        if ranked is None:
            METRICS.inc("select.misses")
            candidates = tuple(
                Candidate(
                    kernel=name, nnz_per_warp=None, vector_width=None,
                    score=0.0,
                )
                for name in names
            )
            chosen = candidates
            predicted, policy = False, "null"
        else:
            METRICS.inc("select.hits")
            candidates = tuple(ranked)
            keep = default_topk() if top_k is None else top_k
            chosen = candidates[: max(1, keep)]
            predicted, policy = True, "model"
        return Selection(
            op=op,
            graph=graph,
            k=k,
            device=device_spec,
            predicted=predicted,
            policy=policy,
            candidates=candidates,
            requests=tuple(
                EstimateRequest(
                    op=op, kernel=c.kernel, graph=graph, k=k,
                    device=device_spec, max_edges=max_edges,
                )
                for c in chosen
            ),
        )

    # -- plan stage -----------------------------------------------------
    def _plan(
        self,
        requests: list[EstimateRequest],
        matrices: dict[str, HybridMatrix] | None,
        matrix: HybridMatrix | None,
    ) -> tuple[list[_WorkUnit], list[tuple[int, str]]]:
        """Group requests by matrix identity and resolve their inputs.

        Returns ``(units, failures)`` where failures are per-request
        ``(index, message)`` pairs for requests whose graph or device
        could not be resolved.  Without ``capture_errors`` the first
        failure raises instead.
        """
        check = self.config.plan_checking()
        capture = self.config.capture_errors
        # Publish matrices only for executors that actually cross a
        # process boundary — inline batches never pay pickling, so the
        # store would be pure overhead there.
        publish = store_enabled() and getattr(
            self.executor, "ships_work", False
        )
        groups: dict[tuple, list[tuple[int, EstimateRequest]]] = {}
        for i, req in enumerate(requests):
            groups.setdefault(req.group_key, []).append((i, req))

        units: list[_WorkUnit] = []
        failures: list[tuple[int, str]] = []
        device_memo: dict[str, DeviceSpec] = {}
        for (gname, max_edges), members in groups.items():
            try:
                S = self._resolve_matrix(gname, max_edges, matrices, matrix)
            except Exception as exc:  # unknown graph fails the group
                if not capture:
                    raise
                message = f"{type(exc).__name__}: {exc}"
                failures.extend((i, message) for i, _ in members)
                continue
            points: list[_Point] = []
            for i, req in members:
                try:
                    if isinstance(req.device, DeviceSpec):
                        device = req.device
                    else:
                        # A batch reuses a handful of short names across
                        # hundreds of requests — resolve each name once.
                        device = device_memo.get(req.device)
                        if device is None:
                            device = get_device(req.device)
                            device_memo[req.device] = device
                except Exception as exc:
                    if not capture:
                        raise
                    failures.append((i, f"{type(exc).__name__}: {exc}"))
                    continue
                points.append(
                    _Point(
                        index=i, op=req.op, kernel=req.kernel,
                        kwargs=tuple(req.kernel_kwargs), k=int(req.k),
                        device=device,
                    )
                )
            if points:
                store_ref = None
                if publish:
                    try:
                        store_ref = get_store().publish(S)
                    except StoreError:
                        # Degrade to shipping the pickled matrix.
                        get_store().record_fallback()
                units.append(
                    _WorkUnit(
                        graph=gname, S=S, points=points,
                        check_plans=check, capture_errors=capture,
                        span=self.config.span, cat=self.config.cat,
                        store_ref=store_ref,
                    )
                )
        return units, failures

    @staticmethod
    def _resolve_matrix(
        gname: str | None,
        max_edges: int | None,
        matrices: dict[str, HybridMatrix] | None,
        matrix: HybridMatrix | None,
    ) -> HybridMatrix:
        if matrices and gname in matrices:
            return matrices[gname]
        if gname is None:
            if matrix is None:
                raise ValueError(
                    "request has no graph name and no matrix was supplied"
                )
            return matrix
        if matrix is not None and not matrices:
            # A single shared matrix serves named requests too (the
            # serve layer resolves its group's graph once, up front).
            return matrix
        return load_graph(gname, max_edges=max_edges).matrix


#: Process-wide default engine: inline, no plan checks — the drop-in
#: replacement for a bare ``make_spmm(name).estimate(...)`` call.
_DEFAULT: Engine | None = None


def default_engine() -> Engine:
    """The shared inline engine (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Engine()
    return _DEFAULT


# Re-exported so report consumers can validate bound labels alongside
# the engine types that carry them.
__all__ = [
    "VALID_BOUNDS",
    "BatchResult",
    "Engine",
    "EngineConfig",
    "EstimateRequest",
    "EstimateResult",
    "PlanCheckError",
    "STATUS_ERROR",
    "STATUS_OK",
    "Selection",
    "default_engine",
    "estimate_caching_enabled",
    "plan_checking_enabled",
]
