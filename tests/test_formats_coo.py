"""Unit tests for the COO format."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import COOMatrix, SparseFormatError


def test_from_arrays_basic():
    m = COOMatrix.from_arrays([0, 1, 2], [2, 1, 0], [1.0, 2.0, 3.0])
    assert m.shape == (3, 3)
    assert m.nnz == 3
    assert m.val.dtype == np.float32
    assert m.row.dtype == np.int32


def test_from_arrays_default_values_are_ones():
    m = COOMatrix.from_arrays([0, 0], [0, 1])
    assert np.all(m.val == 1.0)


def test_from_arrays_infers_shape():
    m = COOMatrix.from_arrays([5], [7])
    assert m.shape == (6, 8)


def test_from_arrays_explicit_shape_validates_bounds():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([0, 4], [0, 0], shape=(3, 3))


def test_from_arrays_rejects_negative_indices():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([-1], [0], shape=(2, 2))


def test_from_arrays_rejects_length_mismatch():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([0, 1], [0])
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([0, 1], [0, 1], [1.0])


def test_from_arrays_rejects_2d_input():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([[0, 1]], [[0, 1]])


def test_from_arrays_rejects_non_integer_indices():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([0.5], [0], shape=(2, 2))


def test_empty_matrix():
    m = COOMatrix.from_arrays([], [], shape=(4, 5))
    assert m.nnz == 0
    assert m.shape == (4, 5)
    assert m.to_dense().shape == (4, 5)
    assert m.is_row_sorted()


def test_memory_elements_matches_paper_formula():
    # Paper Section II: COO needs 3 * NNZ elements.
    m = COOMatrix.from_arrays([0, 1, 2, 2], [1, 2, 0, 3])
    assert m.memory_elements() == 3 * 4


def test_sorted_by_row_orders_row_major():
    m = COOMatrix.from_arrays([2, 0, 1, 0], [1, 3, 0, 1])
    s = m.sorted_by_row()
    assert s.is_row_sorted()
    assert list(s.row) == [0, 0, 1, 2]
    # Stable on column within a row.
    assert list(s.col[:2]) == [1, 3]


def test_sorted_by_row_preserves_values():
    m = COOMatrix.from_arrays([1, 0], [0, 0], [5.0, 7.0])
    s = m.sorted_by_row()
    assert s.to_dense()[0, 0] == 7.0
    assert s.to_dense()[1, 0] == 5.0


def test_transpose_roundtrip():
    m = COOMatrix.from_arrays([0, 2], [1, 3], [1.0, 2.0], shape=(3, 4))
    t = m.transpose()
    assert t.shape == (4, 3)
    np.testing.assert_array_equal(t.to_dense(), m.to_dense().T)
    np.testing.assert_array_equal(
        t.transpose().to_dense(), m.to_dense()
    )


def test_scipy_roundtrip(small_matrix):
    coo = small_matrix.to_coo()
    back = COOMatrix.from_scipy(coo.to_scipy())
    np.testing.assert_allclose(back.to_dense(), coo.to_dense())


def test_to_dense_sums_duplicates():
    m = COOMatrix.from_arrays([0, 0], [0, 0], [1.0, 2.0], shape=(1, 1))
    assert m.to_dense()[0, 0] == 3.0


def test_row_degrees():
    m = COOMatrix.from_arrays([0, 0, 2], [1, 2, 0], shape=(4, 3))
    np.testing.assert_array_equal(m.row_degrees(), [2, 0, 1, 0])


def test_index_overflow_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_arrays([2**40], [0])
