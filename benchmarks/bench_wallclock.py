"""Wall-clock benchmark harness for the experiment pipelines.

Times the heavy report pipelines (fig9, fig12, table3 by default) and
writes a machine-readable ``BENCH_harness.json`` so the performance
trajectory of the harness itself is measurable across PRs::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --pipelines fig9,table3 --max-edges 60000 --output /tmp/bench.json

Each pipeline entry records wall-clock seconds plus the estimate-cache
counters observed across the run (table3 re-runs the fig9/fig10 kernel ×
graph combinations, so its cache hit count shows the memo layer doing
its job).  Results are deterministic; the timings are the only
machine-dependent values in the file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_PIPELINES = ("fig9", "fig12", "table3")


def run_pipelines(
    pipelines: tuple[str, ...],
    *,
    max_edges: int | None = None,
    subgraphs: int | None = None,
    fig12_nodes: int | None = None,
) -> dict:
    """Run each pipeline once; returns the report payload."""
    from repro.bench import EXPERIMENTS
    from repro.obs import METRICS, snapshot
    from repro.perf import estimate_cache_stats, get_estimate_cache

    get_estimate_cache().clear()
    METRICS.reset()
    report: dict = {"pipelines": {}}
    for name in pipelines:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown pipeline {name!r}; choose from {sorted(EXPERIMENTS)}"
            )
        kwargs = {}
        if max_edges is not None and name != "fig12":
            kwargs["max_edges"] = max_edges
        if subgraphs is not None and name in ("fig10", "table3"):
            kwargs["num_subgraphs"] = subgraphs
        if fig12_nodes is not None and name == "fig12":
            kwargs["num_nodes"] = fig12_nodes
        before = estimate_cache_stats()
        t0 = time.perf_counter()
        EXPERIMENTS[name](**kwargs)
        elapsed = time.perf_counter() - t0
        after = estimate_cache_stats()
        report["pipelines"][name] = {
            "seconds": round(elapsed, 4),
            "estimate_cache_hits": after.hits - before.hits,
            "estimate_cache_misses": after.misses - before.misses,
        }
    cs = estimate_cache_stats()
    report["estimate_cache"] = {
        "hits": cs.hits,
        "misses": cs.misses,
        "hit_rate": round(cs.hit_rate, 4),
        "entries": cs.entries,
        "stored_bytes": cs.stored_bytes,
    }
    report["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "repro_jobs": os.environ.get("REPRO_JOBS", "1"),
        "max_edges": max_edges,
        "subgraphs": subgraphs,
        "fig12_nodes": fig12_nodes,
    }
    # Unified observability snapshot (plan-check totals, pool fan-out
    # accounting, ...).  Informational in `repro.obs diff` — only the
    # timing keys above are regression-gated.
    report["metrics"] = snapshot()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pipelines",
        default=",".join(DEFAULT_PIPELINES),
        help="comma-separated experiment ids (default: fig9,fig12,table3)",
    )
    parser.add_argument(
        "--max-edges", type=int, default=None, help="edge cap for scaled graphs"
    )
    parser.add_argument(
        "--subgraphs", type=int, default=None, help="sampling-dataset size"
    )
    parser.add_argument(
        "--fig12-nodes", type=int, default=None, help="fig12 suite graph size"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_harness.json"),
        help="report path (default: <repo>/BENCH_harness.json)",
    )
    args = parser.parse_args(argv)
    pipelines = tuple(p.strip() for p in args.pipelines.split(",") if p.strip())
    report = run_pipelines(
        pipelines,
        max_edges=args.max_edges,
        subgraphs=args.subgraphs,
        fig12_nodes=args.fig12_nodes,
    )
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    for name, row in report["pipelines"].items():
        print(
            f"{name:>8}: {row['seconds']:8.2f}s  "
            f"(cache {row['estimate_cache_hits']} hits / "
            f"{row['estimate_cache_misses']} misses)"
        )
    print(f"-> {args.output}")
    from repro.obs import export_trace, tracing_enabled

    if tracing_enabled():
        print(f"[trace -> {export_trace()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
