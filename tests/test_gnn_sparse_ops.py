"""Sparse autograd ops: spmm forward/backward, GCN normalization."""

import numpy as np
import pytest

from repro.gnn import GraphOperand, Tensor, TimingContext, sddmm_values, spmm
from repro.kernels import sddmm_reference, spmm_reference


def test_spmm_forward_matches_reference(medium_matrix, features):
    graph = GraphOperand(medium_matrix)
    x = Tensor(features(medium_matrix.shape[1], 16, seed=0))
    out = spmm(graph, x)
    np.testing.assert_allclose(
        out.data, spmm_reference(medium_matrix, x.data), rtol=1e-4, atol=1e-4
    )


def test_spmm_backward_is_transpose_product(small_matrix, features):
    graph = GraphOperand(small_matrix)
    x = Tensor(features(small_matrix.shape[1], 8, seed=1), requires_grad=True)
    out = spmm(graph, x)
    seed = features(small_matrix.shape[0], 8, seed=2)
    out.backward(seed)
    expected = small_matrix.to_scipy().T @ seed
    np.testing.assert_allclose(x.grad, expected, rtol=1e-4, atol=1e-4)


def test_spmm_records_timing_forward_and_backward(small_matrix, features):
    graph = GraphOperand(small_matrix)
    timing = TimingContext()
    x = Tensor(features(small_matrix.shape[1], 8, seed=3), requires_grad=True)
    out = spmm(graph, x, timing)
    assert timing.num_sparse_ops == 1
    out.backward(np.ones_like(out.data))
    assert timing.num_sparse_ops == 2
    assert timing.sparse_s > 0


def test_spmm_no_backward_timing_for_constant_input(small_matrix, features):
    graph = GraphOperand(small_matrix)
    timing = TimingContext()
    x = Tensor(features(small_matrix.shape[1], 8, seed=4), requires_grad=False)
    out = spmm(graph, x, timing)
    out.backward(np.ones_like(out.data))
    assert timing.num_sparse_ops == 1  # layer-1 backward SpMM skipped


def test_gcn_normalization_row_col_scaling(paper_fig2_matrix):
    graph = GraphOperand.gcn_normalized(paper_fig2_matrix)
    S = paper_fig2_matrix
    csr = S.to_scipy()
    dout = np.asarray(csr.sum(axis=1)).ravel()
    din = np.asarray(csr.sum(axis=0)).ravel()
    expected = S.val / np.sqrt(np.maximum(dout[S.row], 1.0)) / np.sqrt(
        np.maximum(din[S.col], 1.0)
    )
    np.testing.assert_allclose(graph.matrix.val, expected, rtol=1e-5)


def test_graph_operand_transpose_consistency(small_matrix):
    graph = GraphOperand(small_matrix)
    np.testing.assert_allclose(
        graph.matrix_t.to_dense(), small_matrix.to_dense().T
    )


def test_sddmm_values_matches_reference(small_matrix, features):
    graph = GraphOperand(small_matrix)
    a1 = features(small_matrix.shape[0], 8, seed=5)
    a2t = features(small_matrix.shape[1], 8, seed=6)
    np.testing.assert_allclose(
        sddmm_values(graph, a1, a2t),
        sddmm_reference(small_matrix, a1, a2t),
        rtol=1e-4,
        atol=1e-4,
    )
