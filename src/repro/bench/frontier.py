"""Selection frontier — the sweep surface the selection layer decides.

The experiment behind ``--predicted-frontier``: rank the SpMM kernel
field per Table-II graph, either exhaustively (the default — this is
the *oracle* the nightly accuracy gate scores against) or restricted to
the top-k candidates of the active :mod:`repro.select` policy.

The report format is deliberately restriction-stable: rows depend only
on which ``(graph, kernel)`` points were swept and on their (pure,
deterministic) estimates — never on the frontier's width or on how it
was chosen.  That makes the golden-equivalence contract testable as
plain bytes: ``run_frontier(top_k=n).render()`` equals
``restrict_result(run_frontier(), frontier).render()`` for the same
per-graph frontier, because a kernel's estimate does not change with
the company it was swept in.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Engine
from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import FULL_GRAPH_ORDER, load_graph
from .runner import SPMM_BASELINES, SweepResult, sweep_spmm
from .tables import render_table

#: The frontier's kernel field: HP plus every standard baseline —
#: the same vocabulary the Fig. 9 comparison sweeps.
FRONTIER_KERNELS: tuple[str, ...] = ("hp-spmm",) + SPMM_BASELINES


@dataclass
class FrontierResult:
    """Per-graph kernel ranking over a (possibly restricted) frontier."""

    sweep: SweepResult
    graphs: list[str]
    k: int
    device: str
    top_k: int | None                     #: None = full sweep (oracle)
    frontier: dict                        #: graph -> swept kernel tuple
    predicted: dict                       #: graph -> policy hit?

    def render(self) -> str:
        times = {
            (r.graph, r.kernel): r for r in self.sweep.runs
        }
        rows = []
        for g in self.graphs:
            ranked = sorted(
                (times[(g, kern)].time_s, kern)
                for kern in self.frontier[g]
                if (g, kern) in times
            )
            for rank, (t, kern) in enumerate(ranked, start=1):
                run = times[(g, kern)]
                rows.append([g, rank, kern, t * 1e6, run.gflops])
        return render_table(
            ["graph", "rank", "kernel", "time (us)", "gflops"],
            rows,
            title=(
                f"Selection frontier — SpMM kernel field "
                f"({self.device}, K={self.k})"
            ),
        )


def restrict_result(
    full: FrontierResult, frontier: dict
) -> FrontierResult:
    """The full-sweep result cut down to a per-graph frontier.

    The byte-equivalence half of the oracle-vs-predictor contract:
    restricting the oracle to the kernels a predicted run swept must
    render identically to that predicted run.
    """
    keep = {
        (g, kern) for g, kernels in frontier.items() for kern in kernels
    }
    sweep = SweepResult(
        device=full.sweep.device,
        k=full.sweep.k,
        runs=[r for r in full.sweep.runs if (r.graph, r.kernel) in keep],
        plans_checked=full.sweep.plans_checked,
        plan_diagnostics=dict(full.sweep.plan_diagnostics),
    )
    return FrontierResult(
        sweep=sweep,
        graphs=list(full.graphs),
        k=full.k,
        device=full.device,
        top_k=full.top_k,
        frontier={g: tuple(kernels) for g, kernels in frontier.items()},
        predicted=dict(full.predicted),
    )


def run_frontier(
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    graphs: tuple[str, ...] = FULL_GRAPH_ORDER,
    max_edges: int | None = None,
    top_k: int | None = None,
) -> FrontierResult:
    """Rank the kernel field per graph; ``top_k`` engages prediction.

    ``top_k=None`` sweeps the whole field (the oracle).  With ``top_k``
    set, each graph sweeps only its predicted top-k candidates; graphs
    the policy declines (no model, ``REPRO_NO_SELECT=1``) fall back to
    the full field — the sweep never silently shrinks below what the
    policy actually promised.
    """
    named = [
        (name, load_graph(name, max_edges=max_edges).matrix)
        for name in graphs
    ]
    frontier: dict = {}
    predicted: dict = {}
    if top_k is None:
        for gname, _ in named:
            frontier[gname] = FRONTIER_KERNELS
            predicted[gname] = False
    else:
        engine = Engine()
        for gname, S in named:
            sel = engine.select(
                "spmm", graph=gname, matrix=S, k=k, device=device,
                kernels=FRONTIER_KERNELS, top_k=top_k,
            )
            frontier[gname] = sel.kernels
            predicted[gname] = sel.predicted
    sweep = sweep_spmm(
        named, FRONTIER_KERNELS, k=k, device=device,
        kernels_by_graph=frontier,
    )
    return FrontierResult(
        sweep=sweep,
        graphs=[name for name, _ in named],
        k=k,
        device=device.name,
        top_k=top_k,
        frontier=frontier,
        predicted=predicted,
    )
