"""Adversarial fixture: ``procsafety/blocking-under-lock``.

File-system calls made while holding the registry lock — every other
thread stalls for the duration of the I/O.  Never imported; analyzed
statically by the CI negative-control loop.
"""

import os
import threading


class SegmentRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self.paths = {}

    def evict(self, name):
        with self._lock:
            path = self.paths.pop(name, None)
            if path is not None:
                os.remove(path)
