"""Adversarial fixture: ``procsafety/lock-order-cycle``.

Two locks acquired in both orders on different paths — thread one in
``push`` and thread two in ``snapshot`` deadlock ABBA-style.  Never
imported; analyzed statically by the CI negative-control loop.
"""

import threading


class DualCounter:
    def __init__(self):
        self._queue_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.items = []
        self.stats = {}

    def push(self, item):
        with self._queue_lock:
            self.items.append(item)
            with self._stats_lock:
                self.stats["pushed"] = self.stats.get("pushed", 0) + 1

    def snapshot(self):
        with self._stats_lock:
            stats = dict(self.stats)
            with self._queue_lock:
                return stats, list(self.items)
