"""Adversarial fixture: ``procsafety/write-readonly-view``.

The view is marked read-only *before* it is filled — the assignment
raises ``ValueError`` at runtime (exactly what a consumer writing into
an attached segment view would hit).  Never imported; analyzed
statically by the CI negative-control loop.
"""

import numpy as np


def build_view(buf, count):
    view = np.frombuffer(buf, dtype=np.float32, count=count)
    view.setflags(write=False)
    view[:] = 0.0
    return view
