"""Shard routing: partition graphs across serve workers by structure.

A multi-worker serving tier wants each graph's work landing on the same
shard every time — that shard's process then owns the graph's
estimate-cache entries and cost-prior history, so repeat requests hit a
warm cache instead of re-deriving estimates on whichever worker
round-robin happened to pick (the same reason DGL's distributed graph
store partitions node/edge data by graph partition).

:class:`ShardRouter` maps *structural fingerprints*
(:func:`repro.perf.fingerprint.matrix_fingerprint`) onto ``shards``
buckets with a stable blake2b hash.  Routing on the fingerprint rather
than the registry name means two names for the same structure share a
shard, and the placement is reproducible across processes and runs —
no coordination, no routing table to synchronize.

:meth:`shard_of_unit` is shaped as a
:class:`~repro.engine.ShardedExecutor` affinity hook: it takes one
engine work unit and returns the shard bucket, or ``None`` (fall back
to round-robin) for units with no resolvable matrix.
"""

from __future__ import annotations

import hashlib
import threading

from ..perf.fingerprint import matrix_fingerprint


class ShardRouter:
    """Stable fingerprint -> shard-bucket placement for ``shards`` workers."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        #: fingerprint -> bucket memo; also the observed routing table.
        self._table: dict[str, int] = {}
        self._lock = threading.Lock()

    def shard_of_fingerprint(self, fingerprint: str) -> int:
        """The bucket in ``[0, shards)`` this structure belongs to."""
        with self._lock:
            bucket = self._table.get(fingerprint)
        if bucket is not None:
            return bucket
        digest = hashlib.blake2b(
            fingerprint.encode(), digest_size=8
        ).digest()
        bucket = int.from_bytes(digest, "big") % self.shards
        with self._lock:
            self._table[fingerprint] = bucket
        return bucket

    def shard_of_matrix(self, S) -> int:
        """Bucket for a loaded matrix (fingerprinted structurally)."""
        return self.shard_of_fingerprint(matrix_fingerprint(S))

    def shard_of_graph(self, graph: str, max_edges: int | None = None) -> int:
        """Bucket for a registry graph, loading it to fingerprint it."""
        from ..graphs import load_graph

        return self.shard_of_matrix(
            load_graph(graph, max_edges=max_edges).matrix
        )

    def shard_of_unit(self, unit) -> int | None:
        """Affinity hook for :class:`~repro.engine.ShardedExecutor`.

        Routes on the unit's matrix when the parent still holds it (it
        always does — executors only drop ``S`` when *pickling* a
        store-shipped unit), else on the store handle's recorded
        fingerprint; ``None`` when neither is available.
        """
        S = getattr(unit, "S", None)
        if S is not None:
            return self.shard_of_matrix(S)
        ref = getattr(unit, "store_ref", None)
        fp = getattr(ref, "fingerprint", None)
        if fp is not None:
            return self.shard_of_fingerprint(fp)
        return None

    def table(self) -> dict[str, int]:
        """Snapshot of every placement this router has made."""
        with self._lock:
            return dict(self._table)
