"""The SelectionPolicy interface: one answer to "what should run?".

Every call path that used to decide for itself — bench sweeping every
kernel, serve triaging on a cold-start EWMA — now asks the active
policy first.  A policy either *covers* a query (it has a trained model
for the op) and returns a ranked candidate list, or it doesn't and the
caller degrades to exactly its historical behavior: full sweep, plain
EWMA.  That degrade contract is the load-bearing guarantee — with
``REPRO_NO_SELECT=1``, or with no loadable model, every caller is
bit-for-bit the pre-selection code path.

Resolution order for the model file: ``REPRO_SELECT_MODEL`` if set,
else the packaged ``default_model.json`` trained from the seed-0
240-config world universe.  Load failures are counted
(``select.model_errors``) and cached as the null policy, so a corrupt
file costs one failed parse per process, not one per request.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import env_flag, env_int, env_str
from ..obs import METRICS
from .model import SelectionModel, load_model

#: The in-repo model fit from the nightly universe (seed 0, 240 configs).
DEFAULT_MODEL_PATH = os.path.join(
    os.path.dirname(__file__), "default_model.json"
)

#: Cost-scale clamp: a leaf's nnz ratio outside this band says the
#: query is far off the training distribution — cap the extrapolation.
_COST_SCALE_MIN = 0.125
_COST_SCALE_MAX = 8.0


def select_enabled() -> bool:
    """Selection kill switch: off when ``REPRO_NO_SELECT=1``."""
    return not env_flag("REPRO_NO_SELECT")


def model_path() -> str:
    """The model file the active policy loads (``REPRO_SELECT_MODEL``)."""
    return env_str("REPRO_SELECT_MODEL") or DEFAULT_MODEL_PATH


def default_topk() -> int:
    """Env default for predicted-frontier width (``REPRO_SELECT_TOPK``)."""
    return env_int("REPRO_SELECT_TOPK", 3)


@dataclass(frozen=True)
class Candidate:
    """One ranked thing-to-run: kernel plus its region's schedule."""

    kernel: str
    nnz_per_warp: int | None  #: modal DTP slice size in the leaf region
    vector_width: int | None  #: modal HVMA width in the leaf region
    score: float              #: leaf win share (0.0 for backfilled names)


class SelectionPolicy:
    """Interface: rank candidates for a feature vector, or decline."""

    name = "null"

    def covers(self, op: str) -> bool:
        """Whether :meth:`rank` can answer for this op at all."""
        return False

    def rank(
        self, op: str, features: dict, *, kernels=None
    ) -> list[Candidate] | None:
        """Ranked candidates for one matrix, or ``None`` when uncovered.

        ``kernels`` restricts (and backfills) the candidate universe:
        every requested kernel appears exactly once in the result, with
        names the model never saw appended alphabetically at score 0 —
        a top-k cut of the result is then always a valid frontier over
        the caller's kernel set.
        """
        return None

    def cost_scale(self, features: dict) -> float | None:
        """Relative batch-cost factor vs the training mean, or ``None``.

        Serve admission multiplies its cold-start EWMA by this: the
        EWMA tracks mean per-signature seconds *at the training
        distribution's mean nnz*, and simulated estimate cost is close
        to linear in traversed nonzeros.
        """
        return None


class NullPolicy(SelectionPolicy):
    """Selection disabled or no model: every caller uses its old path."""


class ModelPolicy(SelectionPolicy):
    """A loaded :class:`~repro.select.model.SelectionModel` as a policy."""

    name = "model"

    def __init__(self, model: SelectionModel) -> None:
        self.model = model

    def covers(self, op: str) -> bool:
        return op == self.model.op

    def rank(
        self, op: str, features: dict, *, kernels=None
    ) -> list[Candidate] | None:
        if op != self.model.op:
            return None
        leaf = self.model.leaf_for(features)
        wanted = None if kernels is None else set(kernels)
        out = [
            Candidate(
                kernel=entry["kernel"],
                nnz_per_warp=leaf["nnz_per_warp"],
                vector_width=leaf["vector_width"],
                score=entry["share"],
            )
            for entry in leaf["ranking"]
            if wanted is None or entry["kernel"] in wanted
        ]
        if wanted is not None:
            ranked = {c.kernel for c in out}
            out.extend(
                Candidate(
                    kernel=name,
                    nnz_per_warp=leaf["nnz_per_warp"],
                    vector_width=leaf["vector_width"],
                    score=0.0,
                )
                for name in sorted(wanted - ranked)
            )
        return out

    def cost_scale(self, features: dict) -> float | None:
        mean_nnz = self.model.mean_nnz
        if mean_nnz <= 0:
            return None
        scale = self.model.leaf_for(features)["mean_nnz"] / mean_nnz
        return min(max(scale, _COST_SCALE_MIN), _COST_SCALE_MAX)


_NULL = NullPolicy()

#: path -> loaded policy (or the null policy after a failed load).
_POLICY_CACHE: dict[str, SelectionPolicy] = {}


def active_policy() -> SelectionPolicy:
    """The process-wide policy under the current environment.

    Re-reads the environment on every call (the reads are two dict
    lookups), so tests and long-lived servers pick up changes to
    ``REPRO_NO_SELECT`` / ``REPRO_SELECT_MODEL`` without restarts;
    only the parsed model file is cached.
    """
    if not select_enabled():
        return _NULL
    path = model_path()
    policy = _POLICY_CACHE.get(path)
    if policy is None:
        try:
            policy = ModelPolicy(load_model(path))
        except Exception:  # noqa: BLE001 - absent/corrupt model degrades
            METRICS.inc("select.model_errors")
            policy = _NULL
        _POLICY_CACHE[path] = policy
    return policy


def reset_policy() -> None:
    """Drop cached models (tests that swap ``REPRO_SELECT_MODEL`` files)."""
    _POLICY_CACHE.clear()
