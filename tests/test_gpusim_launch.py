"""Tests for the launch simulator: rooflines, imbalance, tail effect."""

import numpy as np
import pytest

from repro.gpusim import (
    DEFAULT_COST,
    CostParams,
    LaunchConfig,
    TESLA_V100,
    WarpWorkload,
    simulate_launch,
    warp_critical_cycles,
)


def uniform_work(num_warps, issue=100.0, l2=10.0, dram=10.0, fma=50.0):
    full = lambda v: np.full(num_warps, v, dtype=np.float64)  # noqa: E731
    return WarpWorkload(
        issue=full(issue), l2_sectors=full(l2), dram_sectors=full(dram),
        fma=full(fma),
    )


CFG = LaunchConfig(warps_per_block=8, registers_per_thread=32)


def test_empty_launch_costs_only_overhead():
    stats = simulate_launch(TESLA_V100, WarpWorkload.zeros(0), CFG)
    assert stats.time_s == TESLA_V100.kernel_launch_overhead_s
    assert stats.num_blocks == 0
    assert stats.bound == "launch"


def test_workload_validation():
    with pytest.raises(ValueError):
        WarpWorkload(
            issue=np.ones(4),
            l2_sectors=np.ones(3),  # wrong length
            dram_sectors=np.ones(4),
            fma=np.ones(4),
        )
    with pytest.raises(ValueError):
        WarpWorkload(
            issue=-np.ones(4),
            l2_sectors=np.ones(4),
            dram_sectors=np.ones(4),
            fma=np.ones(4),
        )


def test_unfittable_config_raises():
    work = uniform_work(8)
    bad = LaunchConfig(warps_per_block=8, shared_mem_per_block=10**9)
    with pytest.raises(ValueError):
        simulate_launch(TESLA_V100, work, bad)


def test_warp_critical_cycles_formula():
    work = uniform_work(1, issue=10, l2=16, dram=16, fma=0)
    c = DEFAULT_COST
    expected = (
        10 * c.cycles_per_instruction
        + (16 * c.l2_latency + 16 * c.dram_latency) / c.mlp
    )
    assert warp_critical_cycles(work, c)[0] == pytest.approx(expected)


def test_more_work_takes_longer():
    small = simulate_launch(TESLA_V100, uniform_work(10_000), CFG)
    big = simulate_launch(TESLA_V100, uniform_work(10_000).scaled(4.0), CFG)
    assert big.time_s > small.time_s


def test_load_imbalance_dominates():
    # One warp carries 1000x the work: the launch is balance-bound and
    # slower than the same total work spread evenly.
    n = 8000
    skew = uniform_work(n)
    skew.issue[0] *= 20_000
    even_total = uniform_work(n, issue=100.0 + 100.0 * 20_000 / n)
    t_skew = simulate_launch(TESLA_V100, skew, CFG)
    t_even = simulate_launch(TESLA_V100, even_total, CFG)
    assert t_skew.bound == "balance"
    assert t_skew.time_s > t_even.time_s
    assert t_skew.longest_block_cycles > 100 * t_even.longest_block_cycles


def test_tail_effect_few_blocks_cannot_saturate():
    # Identical total DRAM traffic, split over few vs many warps: the
    # few-warp launch cannot saturate bandwidth (paper Fig. 6).
    total_dram = 4_000_000.0
    few = uniform_work(64, issue=10, l2=0, dram=total_dram / 64, fma=0)
    many = uniform_work(64_000, issue=10, l2=0, dram=total_dram / 64_000, fma=0)
    t_few = simulate_launch(TESLA_V100, few, CFG)
    t_many = simulate_launch(TESLA_V100, many, CFG)
    assert t_few.time_s > t_many.time_s
    assert t_few.tail_utilization < 1.0


def test_wave_accounting():
    wave = TESLA_V100.full_wave_size(8, 32, 0)
    stats = simulate_launch(TESLA_V100, uniform_work(8 * (wave + 1)), CFG)
    assert stats.full_wave_size == wave
    assert stats.num_waves == 2
    assert stats.tail_utilization == pytest.approx(1.0 / wave)


def test_dram_bound_classification():
    work = uniform_work(50_000, issue=1, l2=0, dram=500, fma=0)
    stats = simulate_launch(TESLA_V100, work, CFG)
    assert stats.bound == "dram"
    assert stats.dram_bytes == pytest.approx(50_000 * 500 * 32)


def test_issue_bound_classification():
    work = uniform_work(50_000, issue=5000, l2=0, dram=0, fma=0)
    stats = simulate_launch(TESLA_V100, work, CFG)
    assert stats.bound in ("issue", "balance")
    assert stats.issue_cycles > stats.dram_cycles


def test_atomic_roofline():
    n = 50_000
    work = WarpWorkload(
        issue=np.full(n, 1.0),
        l2_sectors=np.zeros(n),
        dram_sectors=np.zeros(n),
        fma=np.zeros(n),
        atomics=np.full(n, 2000.0),
    )
    stats = simulate_launch(TESLA_V100, work, CFG)
    assert stats.bound == "atomic"


def test_time_scales_with_clock():
    work = uniform_work(20_000)
    fast = TESLA_V100.with_(clock_hz=TESLA_V100.clock_hz * 2)
    t1 = simulate_launch(TESLA_V100, work, CFG)
    t2 = simulate_launch(fast, work, CFG)
    assert t2.time_s < t1.time_s


def test_throughput_gflops():
    work = uniform_work(20_000)
    stats = simulate_launch(TESLA_V100, work, CFG)
    assert stats.throughput_gflops(1e9) == pytest.approx(
        1.0 / stats.time_s, rel=1e-6
    )


def test_launch_config_validation():
    with pytest.raises(ValueError):
        LaunchConfig(warps_per_block=0)
    with pytest.raises(ValueError):
        LaunchConfig(warps_per_block=4, registers_per_thread=-1)
    assert LaunchConfig(warps_per_block=4).threads_per_block == 128


# ----------------------------------------------------------------------
# Per-wave trace detail
# ----------------------------------------------------------------------

def _traced_launch(num_warps):
    from repro.obs import Tracer, set_tracer

    tracer = Tracer()
    set_tracer(tracer)
    try:
        stats = simulate_launch(TESLA_V100, uniform_work(num_warps), CFG)
    finally:
        set_tracer(None)
    return stats, tracer.spans


def test_traced_launch_emits_one_span_per_wave():
    stats, spans = _traced_launch(80_000)
    launches = [s for s in spans if s.name.startswith("launch[")]
    waves = [s for s in spans if s.name.startswith("wave[")]
    assert len(launches) == 1
    assert launches[0].name == f"launch[{stats.bound}]"
    assert launches[0].args["waves"] == stats.num_waves
    assert len(waves) == stats.num_waves
    # Wave spans tile the launch span exactly, back to back.
    assert sum(w.dur_us for w in waves) == pytest.approx(launches[0].dur_us)
    cursor = launches[0].ts_us
    for w in waves:
        assert w.ts_us == pytest.approx(cursor)
        cursor += w.dur_us
    # Full waves run at occupancy 1; a partial tail reports less.
    assert waves[0].args["occupancy"] == 1.0
    assert waves[-1].args["occupancy"] == pytest.approx(
        stats.tail_utilization, abs=1e-4
    )


def test_traced_launches_advance_the_sim_cursor():
    _, first = _traced_launch(20_000)
    _, second = _traced_launch(20_000)
    end_first = first[0].ts_us + first[0].dur_us
    assert second[0].ts_us >= end_first


def test_wave_spans_aggregate_past_the_cap():
    from repro.gpusim.launch import _MAX_WAVE_SPANS

    # 70 waves of 640 blocks (8 warps each) exceeds the 64-span cap.
    stats, spans = _traced_launch(70 * 640 * 8)
    assert stats.num_waves == 70
    waves = [s for s in spans if s.name.startswith("wave[")]
    assert len(waves) == _MAX_WAVE_SPANS
    assert waves[-1].name == f"wave[{_MAX_WAVE_SPANS}..70/70]"
    launch = [s for s in spans if s.name.startswith("launch[")][0]
    assert sum(w.dur_us for w in waves) == pytest.approx(launch.dur_us)


def test_untraced_launch_emits_nothing():
    from repro.obs import get_tracer

    assert get_tracer() is None
    simulate_launch(TESLA_V100, uniform_work(10_000), CFG)  # no error
