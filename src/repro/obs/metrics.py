"""Process-wide counters registry and the unified metrics snapshot.

Before this module, run statistics lived in scattered places: the
estimate cache kept hit/miss/eviction/disk-error counts on its own
instance, the bench runner printed plan-check totals to stderr, and the
process-pool fan-out had no accounting at all.  :data:`METRICS` is the
single registry those subsystems increment, and :func:`snapshot` merges
it with the live estimate-cache stats into one plain dict — the payload
embedded in every run manifest (:mod:`repro.obs.manifest`).

Counter names are dotted, ``subsystem.event``:

* ``parallel.pool_runs`` / ``parallel.pool_fallbacks`` /
  ``parallel.serial_runs`` / ``parallel.items`` — fan-out accounting;
* ``plan_check.checked`` / ``plan_check.failed`` and
  ``plan_check.diag_<severity>`` — static schedule checker totals;
* ``bench.sweeps`` / ``bench.reports`` — harness activity;
* ``gnn.spmm_ops`` / ``gnn.sddmm_ops`` / ``gnn.gemm_ops`` — training
  accrual (see :mod:`repro.gnn.timing`);
* ``gpusim.trace_replays`` / ``gpusim.profile_reports`` — validation
  tooling usage;
* ``estimate_cache.*`` — merged in at snapshot time from
  :func:`repro.perf.estimate_cache.estimate_cache_stats`.

Everything is deterministic given the same inputs, so manifests diff
cleanly across runs; only host timings (which never enter the registry)
vary by machine.
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """A named-counter registry; thread-safe, insertion-ordered."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> dict[str, float]:
        """A sorted copy of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def reset(self) -> None:
        """Drop all counters (tests and fresh harness runs)."""
        with self._lock:
            self._counters.clear()


#: The process-wide registry all subsystems increment.
METRICS = MetricsRegistry()


def snapshot() -> dict:
    """Unified metrics snapshot: registry counters + live subsystem stats.

    The estimate cache keeps its counters on the cache object (they
    survive env-driven reconfiguration — see
    :func:`repro.perf.estimate_cache.get_estimate_cache`), so they are
    merged here at read time rather than double-counted on every hit.
    """
    # Imported lazily: repro.perf.parallel imports this module, so a
    # top-level import would be circular.
    from ..perf.estimate_cache import estimate_cache_stats
    from .tracer import get_tracer

    out = METRICS.counters()
    cache = estimate_cache_stats()
    out.update(
        {
            "estimate_cache.hits": cache.hits,
            "estimate_cache.misses": cache.misses,
            "estimate_cache.disk_hits": cache.disk_hits,
            "estimate_cache.disk_errors": cache.disk_errors,
            "estimate_cache.evictions": cache.evictions,
            "estimate_cache.entries": cache.entries,
            "estimate_cache.stored_bytes": cache.stored_bytes,
        }
    )
    tracer = get_tracer()
    out["trace.spans"] = len(tracer.spans) if tracer is not None else 0
    return dict(sorted(out.items()))
