"""Quickstart: run HP-SpMM and HP-SDDMM on a calibrated GNN graph.

Usage::

    python examples/quickstart.py [graph-name]

Loads one of the paper's calibrated datasets (default: flickr), runs the
paper's two kernels plus a baseline on the simulated Tesla V100, checks
the numerics against the reference algorithm, and prints the simulated
execution profile.
"""

import sys

import numpy as np

from repro import HPSDDMM, HPSpMM, TESLA_V100
from repro.graphs import DegreeStats, load_graph
from repro.kernels import make_sddmm, make_spmm, sddmm_reference, spmm_reference


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "flickr"
    ds = load_graph(name)
    S = ds.matrix
    stats = DegreeStats.of(S)
    print(f"dataset {ds.name}: {ds.num_nodes} nodes, {ds.num_edges} edges, "
          f"mean degree {stats.mean:.1f} (std {stats.std:.1f}, max {stats.max})")

    k = 64
    rng = np.random.default_rng(0)
    A = rng.standard_normal((S.shape[1], k)).astype(np.float32)

    # --- SpMM ----------------------------------------------------------
    hp = HPSpMM().run(S, A, device=TESLA_V100)
    err = np.abs(hp.output - spmm_reference(S, A)).max()
    ge = make_spmm("ge-spmm").estimate(S, k, TESLA_V100)
    print(f"\nHP-SpMM   (K={k}): {hp.stats.time_us:9.1f} us  "
          f"bound={hp.stats.bound}  max-error={err:.2e}")
    print(f"GE-SpMM   (K={k}): {ge.stats.time_us:9.1f} us  "
          f"bound={ge.stats.bound}  -> HP speedup "
          f"{ge.stats.time_s / hp.stats.time_s:.2f}x")
    print(f"  launch: {hp.stats.num_blocks} blocks, "
          f"{hp.stats.num_waves} waves of {hp.stats.full_wave_size}, "
          f"occupancy {hp.stats.active_blocks_per_sm} blocks/SM, "
          f"DRAM {hp.stats.dram_bytes / 1e6:.1f} MB")

    # --- SDDMM ---------------------------------------------------------
    A1 = rng.standard_normal((S.shape[0], k)).astype(np.float32)
    A2T = rng.standard_normal((S.shape[1], k)).astype(np.float32)
    hps = HPSDDMM().run(S, A1, A2T, device=TESLA_V100)
    err = np.abs(hps.values - sddmm_reference(S, A1, A2T)).max()
    dgl = make_sddmm("dgl-sddmm").estimate(S, k, TESLA_V100)
    print(f"\nHP-SDDMM  (K={k}): {hps.stats.time_us:9.1f} us  "
          f"bound={hps.stats.bound}  max-error={err:.2e}")
    print(f"DGL-SDDMM (K={k}): {dgl.stats.time_us:9.1f} us  "
          f"-> HP speedup {dgl.stats.time_s / hps.stats.time_s:.2f}x")


if __name__ == "__main__":
    main()
