"""The sweep-level estimate memo cache (repro.perf)."""

import json
import os

import numpy as np
import pytest

from repro.gpusim import DEFAULT_COST, TESLA_A30, TESLA_V100
from repro.kernels import make_sddmm, make_spmm
from repro.perf import (
    EstimateCache,
    get_estimate_cache,
    kernel_config_fingerprint,
    matrix_fingerprint,
)
from repro.perf.estimate_cache import cache_enabled

from tests.conftest import random_hybrid


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    """Each test starts with a cold in-process cache and no disk layer."""
    monkeypatch.delenv("REPRO_NO_ESTIMATE_CACHE", raising=False)
    monkeypatch.delenv("REPRO_ESTIMATE_CACHE_DIR", raising=False)
    cache = get_estimate_cache()
    cache.clear()
    yield
    get_estimate_cache().clear()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def test_matrix_fingerprint_is_structural():
    a = random_hybrid(64, 64, 300, seed=5)
    b = random_hybrid(64, 64, 300, seed=5)
    c = random_hybrid(64, 64, 300, seed=6)
    assert a is not b
    assert matrix_fingerprint(a) == matrix_fingerprint(b)
    assert matrix_fingerprint(a) != matrix_fingerprint(c)
    # Memoized on the live object: repeated calls are consistent.
    assert matrix_fingerprint(a) == matrix_fingerprint(a)


def test_kernel_config_fingerprint_separates_variants():
    dtp = make_spmm("hp-spmm")
    no_dtp = make_spmm("hp-spmm", use_dtp=False)
    assert kernel_config_fingerprint(dtp) != kernel_config_fingerprint(no_dtp)


# ----------------------------------------------------------------------
# Hit / miss accounting + invalidation
# ----------------------------------------------------------------------

def test_hit_and_miss_accounting(small_matrix):
    kern = make_spmm("hp-spmm")
    cache = get_estimate_cache()
    r1 = kern.estimate(small_matrix, 64)
    assert cache.stats().misses == 1 and cache.stats().hits == 0
    r2 = kern.estimate(small_matrix, 64)
    assert cache.stats().hits == 1
    assert r1.stats == r2.stats
    assert r1.preprocessing_s == r2.preprocessing_s
    assert cache.stats().entries == 1
    assert cache.stats().stored_bytes > 0


def test_key_varies_with_k_device_cost_and_config(small_matrix):
    kern = make_spmm("hp-spmm")
    cache = get_estimate_cache()
    kern.estimate(small_matrix, 64, TESLA_V100)
    kern.estimate(small_matrix, 32, TESLA_V100)          # new K
    kern.estimate(small_matrix, 64, TESLA_A30)           # new device
    from dataclasses import replace

    warm_cost = replace(DEFAULT_COST, l2_latency=100.0)
    kern.estimate(small_matrix, 64, TESLA_V100, warm_cost)  # new cost params
    make_spmm("hp-spmm", use_hvma=False).estimate(small_matrix, 64)  # config
    assert cache.stats().hits == 0
    assert cache.stats().misses == 5
    # And every one of them is now warm.
    kern.estimate(small_matrix, 64, TESLA_V100)
    kern.estimate(small_matrix, 64, TESLA_A30)
    assert cache.stats().hits == 2


def test_spmm_and_sddmm_do_not_collide(small_matrix):
    """Same matrix/K/device but different op must be separate entries."""
    cache = get_estimate_cache()
    make_spmm("hp-spmm").estimate(small_matrix, 64)
    make_sddmm("hp-sddmm").estimate(small_matrix, 64)
    assert cache.stats().misses == 2
    assert cache.stats().entries == 2


def test_run_reuses_estimate_entry(small_matrix, features):
    kern = make_spmm("hp-spmm")
    cache = get_estimate_cache()
    est = kern.estimate(small_matrix, 16)
    A = features(small_matrix.shape[1], 16)
    res = kern.run(small_matrix, A)
    assert cache.stats().hits == 1
    assert res.stats == est.stats
    assert res.output is not None


def test_bypass_env_var(small_matrix, monkeypatch):
    monkeypatch.setenv("REPRO_NO_ESTIMATE_CACHE", "1")
    assert not cache_enabled()
    kern = make_spmm("hp-spmm")
    cache = get_estimate_cache()
    r1 = kern.estimate(small_matrix, 64)
    r2 = kern.estimate(small_matrix, 64)
    # No lookups, no stores — and results still deterministic.
    assert cache.stats().lookups == 0
    assert cache.stats().entries == 0
    assert r1.stats == r2.stats


def test_cache_size_env_validation(monkeypatch):
    """Regression: a bad REPRO_ESTIMATE_CACHE_SIZE used to crash with a
    bare int() ValueError that never named the env var."""
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_SIZE", "many")
    with pytest.raises(ValueError, match="REPRO_ESTIMATE_CACHE_SIZE"):
        get_estimate_cache()
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_SIZE", "-8")
    with pytest.raises(ValueError, match="REPRO_ESTIMATE_CACHE_SIZE"):
        get_estimate_cache()
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_SIZE", "0")
    with pytest.raises(ValueError, match="REPRO_ESTIMATE_CACHE_SIZE"):
        get_estimate_cache()
    # Empty string falls back to the default instead of erroring.
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_SIZE", "")
    assert get_estimate_cache().max_entries == 4096


def test_counters_survive_env_reconfiguration(small_matrix, monkeypatch):
    """Regression: reconfiguring the singleton used to zero all counters
    mid-run, so observability snapshots lost the run's history."""
    kern = make_spmm("hp-spmm")
    kern.estimate(small_matrix, 64)
    kern.estimate(small_matrix, 64)
    before = get_estimate_cache().stats()
    assert (before.hits, before.misses) == (1, 1)
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_SIZE", "128")
    cache = get_estimate_cache()
    assert cache.max_entries == 128          # reconfigured...
    after = cache.stats()
    assert (after.hits, after.misses) == (1, 1)  # ...counters carried
    assert after.entries == 0                # entries are rebuilt
    # And the run keeps accounting on the new instance.
    kern.estimate(small_matrix, 64)
    assert get_estimate_cache().stats().misses == 2


def test_lru_eviction(small_matrix, medium_matrix, monkeypatch):
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_SIZE", "1")
    cache = get_estimate_cache()
    kern = make_spmm("ge-spmm")
    kern.estimate(small_matrix, 64)
    kern.estimate(medium_matrix, 64)   # evicts the first entry
    assert cache.stats().evictions == 1
    assert cache.stats().entries == 1
    kern.estimate(small_matrix, 64)    # cold again
    assert cache.stats().hits == 0


# ----------------------------------------------------------------------
# Disk layer
# ----------------------------------------------------------------------

def _disk_files(d):
    return [f for f in os.listdir(d) if f.endswith(".json")]


def test_disk_store_round_trip(small_matrix, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_DIR", str(tmp_path))
    kern = make_spmm("hp-spmm")
    r1 = kern.estimate(small_matrix, 64)
    assert len(_disk_files(tmp_path)) == 1
    # A fresh in-process cache (new process simulation) hits on disk.
    get_estimate_cache().clear()
    cache = get_estimate_cache()
    r2 = kern.estimate(small_matrix, 64)
    assert cache.stats().disk_hits == 1
    assert cache.stats().hits == 1
    assert r2.stats == r1.stats  # byte-identical through JSON round-trip


def test_corrupt_disk_entry_regenerates(small_matrix, tmp_path, monkeypatch):
    """Same recovery path as graphs.registry._load_cached: delete + redo."""
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_DIR", str(tmp_path))
    kern = make_spmm("hp-spmm")
    r1 = kern.estimate(small_matrix, 64)
    (path,) = _disk_files(tmp_path)
    with open(tmp_path / path, "w") as f:
        f.write("{ not json")
    get_estimate_cache().clear()
    cache = get_estimate_cache()
    r2 = kern.estimate(small_matrix, 64)
    assert cache.stats().disk_errors == 1
    assert cache.stats().misses == 1
    assert r2.stats == r1.stats
    # The corrupt file was replaced with a fresh, loadable entry.
    (path,) = _disk_files(tmp_path)
    with open(tmp_path / path) as f:
        payload = json.load(f)
    assert payload["stats"]["time_s"] == r1.stats.time_s


def test_mismatched_key_in_disk_entry_is_a_miss(
    small_matrix, tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_ESTIMATE_CACHE_DIR", str(tmp_path))
    kern = make_spmm("hp-spmm")
    kern.estimate(small_matrix, 64)
    (path,) = _disk_files(tmp_path)
    with open(tmp_path / path) as f:
        payload = json.load(f)
    payload["key"] = "something-else"
    with open(tmp_path / path, "w") as f:
        json.dump(payload, f)
    get_estimate_cache().clear()
    cache = get_estimate_cache()
    kern.estimate(small_matrix, 64)
    assert cache.stats().disk_hits == 0
    assert cache.stats().misses == 1


# ----------------------------------------------------------------------
# Sweep-level behaviour: the acceptance scenario
# ----------------------------------------------------------------------

def test_repeated_sweep_hits_and_is_identical():
    """A re-run sweep (the table3-after-fig9 pattern) is all cache hits
    and renders byte-identical report text."""
    from repro.bench.runner import SPMM_BASELINES, sweep_spmm
    from repro.bench.tables import render_table

    graphs = [
        ("g1", random_hybrid(300, 300, 3000, seed=11)),
        ("g2", random_hybrid(400, 400, 5000, seed=12)),
    ]
    kernels = ("hp-spmm",) + SPMM_BASELINES
    cache = get_estimate_cache()

    def render(sweep):
        rows = [[r.graph, r.kernel, r.time_s, r.gflops] for r in sweep.runs]
        return render_table(["graph", "kernel", "time", "gflops"], rows)

    first = sweep_spmm(graphs, kernels, k=64)
    misses_after_first = cache.stats().misses
    assert cache.stats().hits == 0
    second = sweep_spmm(graphs, kernels, k=64)
    assert cache.stats().hits == len(graphs) * len(kernels)
    assert cache.stats().misses == misses_after_first
    assert render(first) == render(second)
    assert [r.time_s for r in first.runs] == [r.time_s for r in second.runs]
