"""Adversarial fixture: ``procsafety/env-drift``.

Reads a ``REPRO_*`` variable that is not declared in
``repro.config.registry.ENV_VARS`` — exactly the scattered-knob drift
the registry exists to prevent.  Never imported; analyzed statically by
the CI negative-control loop.
"""

import os


def scratch_dir():
    return os.environ.get("REPRO_SCRATCH_DIR", "/tmp/repro-scratch")
