"""Property-based tests (hypothesis) for the sparse formats."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, HybridMatrix


@st.composite
def coo_matrices(draw, max_dim=24, max_nnz=60):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, width=32),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix.from_arrays(rows, cols, vals, shape=(m, n))


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_sort_preserves_dense(coo):
    np.testing.assert_allclose(
        coo.sorted_by_row().to_dense(), coo.to_dense(), rtol=1e-5, atol=1e-5
    )


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_hybrid_roundtrip_csr(coo):
    h = HybridMatrix.from_coo(coo)
    back = HybridMatrix.from_csr(h.to_csr())
    np.testing.assert_array_equal(back.row, h.row)
    np.testing.assert_array_equal(back.col, h.col)
    np.testing.assert_allclose(back.val, h.val)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(coo):
    np.testing.assert_allclose(
        coo.transpose().transpose().to_dense(), coo.to_dense()
    )


@given(coo_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_symmetric_permutation_preserves_spectrum_trace(coo, seed):
    # Use a square matrix; trace and Frobenius norm are invariant under
    # symmetric permutation.
    n = max(coo.shape)
    h = HybridMatrix.from_coo(
        COOMatrix.from_arrays(coo.row, coo.col, coo.val, shape=(n, n))
    )
    perm = np.random.default_rng(seed).permutation(n)
    out = h.permute_symmetric(perm)
    a = h.to_dense()
    b = out.to_dense()
    np.testing.assert_allclose(np.trace(a), np.trace(b), rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(
        np.linalg.norm(a), np.linalg.norm(b), rtol=1e-4, atol=1e-4
    )


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_degrees_sum_to_nnz(coo):
    h = HybridMatrix.from_coo(coo)
    assert int(h.row_degrees().sum()) == h.nnz
