"""Fig. 11 — ablation study of DTP, HVMA and GCR.

Four representative graphs (Yelp, AM, DDI, PPA), five configurations:

* ``base``          — hybrid parallel only (naive NnzPerWarp, scalar)
* ``+dtp``          — Dynamic Task Partition
* ``+hvma``         — vectorized/aligned accesses (naive granularity)
* ``+dtp+hvma``     — both
* ``+dtp+hvma+gcr`` — plus Graph Clustering based Reordering

Expected shape (paper Fig. 11): DTP and HVMA are robust on all graphs;
GCR alone gains little; combined, GCR adds ~40% on Yelp/PPA but <10% on
AM/DDI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import load_graph
from ..kernels import HPSpMM
from ..reorder import GCRReorderer
from .tables import render_table

#: The four representative graphs of paper Fig. 11.
ABLATION_GRAPHS: tuple[str, ...] = ("yelp", "am", "ddi", "ppa")

CONFIGS: tuple[str, ...] = ("base", "+dtp", "+hvma", "+dtp+hvma", "+dtp+hvma+gcr")


@dataclass
class Fig11Result:
    """Normalized throughput (base = 1.0) per configuration per graph."""

    graphs: list[str]
    times_ms: dict[str, dict[str, float]]  #: graph -> config -> ms

    def speedup(self, graph: str, config: str) -> float:
        return self.times_ms[graph]["base"] / self.times_ms[graph][config]

    def gcr_gain(self, graph: str) -> float:
        """Relative improvement of adding GCR on top of DTP+HVMA."""
        return (
            self.times_ms[graph]["+dtp+hvma"]
            / self.times_ms[graph]["+dtp+hvma+gcr"]
            - 1.0
        )

    def render(self) -> str:
        rows = []
        for g in self.graphs:
            rows.append(
                [g]
                + [self.speedup(g, c) for c in CONFIGS]
                + [100.0 * self.gcr_gain(g)]
            )
        return render_table(
            ["graph"] + [f"{c} (x)" for c in CONFIGS] + ["GCR gain %"],
            rows,
            title="Fig. 11 — ablation of DTP / HVMA / GCR (speedup over base)",
        )


def run_fig11(
    *,
    k: int = 128,
    device: DeviceSpec = TESLA_V100,
    graphs: tuple[str, ...] = ABLATION_GRAPHS,
    max_edges: int | None = None,
) -> Fig11Result:
    """Run the ablation experiment."""
    kernels = {
        "base": HPSpMM(use_dtp=False, use_hvma=False),
        "+dtp": HPSpMM(use_dtp=True, use_hvma=False),
        "+hvma": HPSpMM(use_dtp=False, use_hvma=True),
        "+dtp+hvma": HPSpMM(use_dtp=True, use_hvma=True),
    }
    times: dict[str, dict[str, float]] = {}
    for gname in graphs:
        S = load_graph(gname, max_edges=max_edges).matrix
        row: dict[str, float] = {}
        for cname, kern in kernels.items():
            row[cname] = kern.estimate(S, k, device).stats.time_ms
        reordered = GCRReorderer().apply(S).matrix
        row["+dtp+hvma+gcr"] = (
            kernels["+dtp+hvma"].estimate(reordered, k, device).stats.time_ms
        )
        times[gname] = row
    return Fig11Result(graphs=list(graphs), times_ms=times)
