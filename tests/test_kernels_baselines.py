"""Baseline kernels: numerics, characteristic behaviors, preprocessing."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.gpusim import RTX_3090, TESLA_A30, TESLA_V100
from repro.kernels import (
    SPMM_REGISTRY,
    GESpMM,
    HuangNGSpMM,
    MergePathSpMM,
    RowSplitSpMM,
    SputnikSpMM,
    TCGNNSpMM,
    make_spmm,
    spmm_reference,
)
from repro.kernels.baselines import dense_fraction, neighbor_group_degrees
from repro.kernels.baselines.tcgnn import condensed_fragments, nonempty_tiles


ALL_SPMM = sorted(SPMM_REGISTRY)


@pytest.mark.parametrize("name", ALL_SPMM)
def test_numerics_match_reference(name, medium_matrix, features):
    A = features(medium_matrix.shape[1], 32, seed=7)
    kern = make_spmm(name)
    device = RTX_3090 if name == "tc-gnn" else TESLA_V100
    result = kern.run(medium_matrix, A, device=device)
    np.testing.assert_allclose(
        result.output, spmm_reference(medium_matrix, A), rtol=1e-4, atol=1e-4
    )
    assert result.stats.time_s > 0


@pytest.mark.parametrize("name", ALL_SPMM)
def test_estimate_agrees_with_run(name, small_matrix, features):
    A = features(small_matrix.shape[1], 32, seed=8)
    kern = make_spmm(name)
    device = RTX_3090 if name == "tc-gnn" else TESLA_A30
    run = kern.run(small_matrix, A, device=device)
    est = kern.estimate(small_matrix, 32, device=device)
    assert est.stats.time_s == run.stats.time_s
    assert est.preprocessing_s == run.preprocessing_s


def test_node_parallel_suffers_on_skew(skewed_matrix, medium_matrix):
    # GE-SpMM and row-split pay for the giant row; HP does not (the
    # central claim behind Fig. 12).
    hp = make_spmm("hp-spmm")
    for baseline in (GESpMM(), RowSplitSpMM()):
        t_base = baseline.estimate(skewed_matrix, 64).stats
        t_hp = hp.estimate(skewed_matrix, 64).stats
        assert t_base.longest_block_cycles > 3 * t_hp.longest_block_cycles
        assert t_base.time_s > t_hp.time_s


def test_sputnik_sorting_reduces_imbalance(skewed_matrix):
    # Sorted rows group similar sizes into blocks: Sputnik's makespan on
    # a skewed graph beats unsorted row-split's.
    spk = SputnikSpMM().estimate(skewed_matrix, 64).stats
    rs = RowSplitSpMM().estimate(skewed_matrix, 64).stats
    assert spk.balance_cycles < rs.balance_cycles


def test_preprocessing_costs_ordering(medium_matrix):
    # Paper Table IV shape: merge-path's pre-pass is the cheapest;
    # Huang's neighbor grouping is the most expensive.
    mp = MergePathSpMM().estimate(medium_matrix, 64).preprocessing_s
    spk = SputnikSpMM().estimate(medium_matrix, 64).preprocessing_s
    hng = HuangNGSpMM().estimate(medium_matrix, 64).preprocessing_s
    aspt = make_spmm("aspt").estimate(medium_matrix, 64).preprocessing_s
    assert mp < spk
    assert mp < aspt
    assert hng > aspt
    assert make_spmm("hp-spmm").estimate(medium_matrix, 64).preprocessing_s == 0


def test_preprocessing_scales_with_size(small_matrix, medium_matrix):
    small = HuangNGSpMM().estimate(small_matrix, 64).preprocessing_s
    big = HuangNGSpMM().estimate(medium_matrix, 64).preprocessing_s
    assert big > small


def test_total_time_includes_preprocessing(medium_matrix):
    res = SputnikSpMM().estimate(medium_matrix, 64)
    assert res.total_time_s == pytest.approx(
        res.stats.time_s + res.preprocessing_s
    )


def test_neighbor_group_degrees():
    tiles = neighbor_group_degrees(np.array([700, 10, 0, 256]), tile=256)
    assert tiles.sum() == 966
    assert tiles.max() <= 256
    # 700 -> 2 full + 188; 10 -> 10; 0 -> none; 256 -> 1 full.
    assert sorted(tiles.tolist()) == [10, 188, 256, 256, 256]


def test_neighbor_group_validates():
    with pytest.raises(ValueError):
        neighbor_group_degrees(np.array([1]), tile=0)


def test_dense_fraction_bounds(medium_matrix):
    f = dense_fraction(medium_matrix)
    assert 0.0 <= f <= 1.0
    assert dense_fraction(HybridMatrix.from_arrays([], [], shape=(4, 4))) == 0.0


def test_dense_fraction_detects_dense_columns():
    # Every nonzero in one column within one panel: fully dense part.
    rows = np.arange(32)
    cols = np.zeros(32, dtype=np.int64)
    S = HybridMatrix.from_arrays(rows, cols, None, shape=(64, 64))
    assert dense_fraction(S, panel_rows=64, threshold=4) == 1.0


def test_tcgnn_tile_counting():
    S = HybridMatrix.from_arrays([0, 0, 17], [0, 1, 40], None, shape=(32, 64))
    # nnz at tiles (0,0), (0,0) and (1,2) -> 2 nonempty tiles.
    assert nonempty_tiles(S) == 2
    frags, stream = condensed_fragments(S)
    assert frags.sum() == 2  # 2 unique cols in panel 0, 1 in panel 1
    assert stream.size == 3


def test_tcgnn_requires_tensor_cores(medium_matrix):
    with pytest.raises(ValueError):
        TCGNNSpMM().estimate(medium_matrix, 64, device=TESLA_V100)


def test_tcgnn_runs_on_ampere(medium_matrix):
    res = TCGNNSpMM().estimate(medium_matrix, 64, device=TESLA_A30)
    assert res.stats.time_s > 0


def test_registry_instantiates_everything():
    for name in ALL_SPMM:
        assert make_spmm(name).name == name
    with pytest.raises(KeyError):
        make_spmm("nonexistent")


@pytest.mark.parametrize("name", ALL_SPMM)
def test_baseline_launch_plans_pass_static_checker(
    name, medium_matrix, check_plan
):
    device = RTX_3090 if name == "tc-gnn" else TESLA_V100
    check_plan(make_spmm(name), medium_matrix, 64, device=device)
