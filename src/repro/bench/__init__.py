"""Benchmark harness: one runner per table/figure of the paper's
evaluation (Section IV).  See DESIGN.md's experiment index."""

from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .fig11 import ABLATION_GRAPHS, Fig11Result, run_fig11
from .fig12 import Fig12Result, run_fig12
from .fig13 import Fig13Result, run_fig13
from .frontier import (
    FRONTIER_KERNELS,
    FrontierResult,
    restrict_result,
    run_frontier,
)
from .reorder_eff import ReorderEffResult, run_reorder_efficiency
from .runner import (
    SDDMM_BASELINES,
    SPMM_BASELINES,
    KernelRun,
    SweepResult,
    results_dir,
    sweep_sddmm,
    sweep_spmm,
    write_report,
)
from .ablations import AblationResult, run_design_ablations
from .table2 import Table2Result, run_table2
from .table3 import PAPER_TABLE3, Table3Result, run_table3
from .table4 import TABLE4_GRAPHS, TABLE4_KERNELS, Table4Result, run_table4
from .table5 import PAPER_TABLE5, TABLE5_CASES, Table5Result, run_table5
from .tables import format_speedup, render_table
from .tcgnn import TCGNNResult, run_tcgnn

#: Experiment registry for the CLI: id -> (runner, default kwargs).
EXPERIMENTS = {
    "table2": run_table2,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "tcgnn": run_tcgnn,
    "reorder": run_reorder_efficiency,
    "ablations": run_design_ablations,
    "frontier": run_frontier,
}

__all__ = [
    "AblationResult",
    "run_design_ablations",
    "Table2Result",
    "run_table2",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "ABLATION_GRAPHS",
    "Fig11Result",
    "run_fig11",
    "Fig12Result",
    "run_fig12",
    "Fig13Result",
    "run_fig13",
    "FRONTIER_KERNELS",
    "FrontierResult",
    "restrict_result",
    "run_frontier",
    "ReorderEffResult",
    "run_reorder_efficiency",
    "SDDMM_BASELINES",
    "SPMM_BASELINES",
    "KernelRun",
    "SweepResult",
    "results_dir",
    "sweep_sddmm",
    "sweep_spmm",
    "write_report",
    "PAPER_TABLE3",
    "Table3Result",
    "run_table3",
    "TABLE4_GRAPHS",
    "TABLE4_KERNELS",
    "Table4Result",
    "run_table4",
    "PAPER_TABLE5",
    "TABLE5_CASES",
    "Table5Result",
    "run_table5",
    "format_speedup",
    "render_table",
    "TCGNNResult",
    "run_tcgnn",
    "EXPERIMENTS",
]
