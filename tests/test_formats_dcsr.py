"""DCSR format: compression, validation, round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, DCSRMatrix, HybridMatrix, SparseFormatError


def sparse_rows_matrix():
    # 100 rows, only rows 3, 50, 99 populated.
    return HybridMatrix.from_arrays(
        [3, 3, 50, 99], [0, 5, 2, 9], [1.0, 2.0, 3.0, 4.0], shape=(100, 10)
    )


def test_from_hybrid_stores_only_nonempty_rows():
    d = DCSRMatrix.from_hybrid(sparse_rows_matrix())
    np.testing.assert_array_equal(d.row_ids, [3, 50, 99])
    np.testing.assert_array_equal(d.indptr, [0, 2, 3, 4])
    assert d.nnz == 4


def test_roundtrip_dense():
    h = sparse_rows_matrix()
    d = DCSRMatrix.from_hybrid(h)
    np.testing.assert_allclose(d.to_dense(), h.to_dense())
    back = d.to_hybrid()
    np.testing.assert_array_equal(back.row, h.row)
    np.testing.assert_array_equal(back.col, h.col)


def test_compression_gain():
    d = DCSRMatrix.from_hybrid(sparse_rows_matrix())
    # CSR: 101 pointer elements; DCSR: 2*3 + 1 = 7.
    assert d.compression_gain_vs_csr() == 101 - 7
    assert d.memory_elements() == 7 + 2 * 4


def test_empty_matrix():
    d = DCSRMatrix.from_hybrid(HybridMatrix.from_arrays([], [], shape=(9, 9)))
    assert d.nnz == 0
    assert d.num_stored_rows == 0
    assert d.to_dense().shape == (9, 9)


def test_from_arrays_validation():
    with pytest.raises(SparseFormatError):  # bad indptr length
        DCSRMatrix.from_arrays([0], [0, 1, 2], [0, 1], shape=(4, 4))
    with pytest.raises(SparseFormatError):  # non-increasing row ids
        DCSRMatrix.from_arrays([2, 1], [0, 1, 2], [0, 1], shape=(4, 4))
    with pytest.raises(SparseFormatError):  # empty stored row
        DCSRMatrix.from_arrays([0, 1], [0, 0, 1], [3], shape=(4, 4))
    with pytest.raises(SparseFormatError):  # indptr end != nnz
        DCSRMatrix.from_arrays([0], [0, 2], [1], shape=(4, 4))


def test_from_arrays_valid():
    d = DCSRMatrix.from_arrays(
        [1, 3], [0, 1, 3], [2, 0, 1], [5.0, 6.0, 7.0], shape=(5, 4)
    )
    dense = d.to_dense()
    assert dense[1, 2] == 5.0
    assert dense[3, 0] == 6.0
    assert dense[3, 1] == 7.0


@given(st.integers(0, 40), st.integers(1, 20), st.integers(0, 10**6))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(nnz, dim, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, dim, size=nnz)
    cols = rng.integers(0, dim, size=nnz)
    h = HybridMatrix.from_coo(
        COOMatrix.from_arrays(rows, cols, None, shape=(dim, dim))
    )
    d = DCSRMatrix.from_hybrid(h)
    np.testing.assert_allclose(d.to_dense(), h.to_dense())
    assert d.num_stored_rows == np.unique(h.row).size if h.nnz else True
