"""Layer 3 — concurrency & resource-lifecycle analyzer (``procsafety``).

PRs 5–6 made the reproduction genuinely concurrent: fork-based
:class:`~repro.engine.ShardedExecutor` worker servers, a shared-memory /
mmap graph store with a publish/attach/unlink lifecycle, and a threaded
serve queue.  The plan checker statically proves the *simulated* kernels
race-free; this layer applies the same discipline to the host-side
runtime.  Four rule families (all ERROR severity, all waivable with
``# lint: allow(<rule>) <reason>``):

Fork safety
    * ``procsafety/thread-before-fork`` — a ``threading.Thread`` created
      in a function that later spawns fork-context worker processes: the
      forked children inherit the thread's locks in whatever state the
      fork caught them (CPython forks only the calling thread).
    * ``procsafety/module-lock-with-fork`` — a module-level
      ``Lock``/``RLock``/``Condition`` in a module that creates a
      fork-context: the lock's state is duplicated into every child.
    * ``procsafety/tracer-not-restored`` — ``set_tracer(x)`` called with
      no paired restore: global tracer state mutated across a fork (or a
      helper) without reset leaks spans onto the wrong timeline.

Shared-store lifecycle
    * ``procsafety/leaked-resource-on-error`` — ``f = open(...)`` inside
      a ``try`` body followed by more fallible statements, with no
      handler closing ``f``: the descriptor leaks on every error path.
    * ``procsafety/write-readonly-view`` — a ``np.frombuffer`` view
      written through after ``setflags(write=False)``: raises
      ``ValueError`` at runtime on the attached-segment path.
    * ``procsafety/publish-without-cleanup`` — a module creating
      ``SharedMemory(create=True)`` segments with no ``unlink`` call
      anywhere: segments outlive the run (``/dev/shm`` fills up).
    * ``procsafety/handle-without-gate`` — a ``store.publish(...)`` call
      in a function that never consults ``ships_work``: publishing for
      an inline executor is pure overhead (the handle never crosses a
      process boundary).

Lock discipline
    * ``procsafety/lock-order-cycle`` — two locks of one class acquired
      in both orders on different paths: the classic ABBA deadlock.
    * ``procsafety/nested-lock-call`` — calling a sibling method that
      acquires lock B while holding lock A: invisible nesting, the way
      lock-order cycles are born.
    * ``procsafety/blocking-under-lock`` — file I/O, ``unlink``/
      ``remove``, ``sleep`` or pool fan-out while holding a lock: every
      other thread stalls for the duration.

Config drift
    * ``procsafety/env-drift`` — a literal ``REPRO_*`` environment name
      (via ``os.environ``/``os.getenv`` or the ``repro.config`` helpers)
      that is not declared in :data:`repro.config.registry.ENV_VARS`.

The analysis is intraprocedural AST matching plus one level of
same-class method resolution — deliberately simple, deterministic and
fast; the adversarial fixtures under ``analysis/fixtures/procsafety/``
are the negative controls CI runs against every rule.
"""

from __future__ import annotations

import ast

from ..config.registry import declared
from .diagnostics import ERROR, Diagnostic
from .lint import iter_python_files
from .waivers import PROCSAFETY_RULES, WaiverSet, collect_waivers

#: threading constructors whose instances the lock rules track.
_LOCK_CTORS = {"Lock", "RLock", "Condition"}

#: Call attribute names treated as blocking while a lock is held.
#: Attribute calls blocking on *any* receiver (segment/Path/shm unlink).
_BLOCKING_ANY_ATTRS = {"unlink"}

#: Attribute calls blocking only as os/shutil/time module functions —
#: requiring the module receiver keeps ``list.remove``/``str.replace``
#: (same attribute names, pure CPU) out of the rule.
_BLOCKING_MODULE_ATTRS = {
    "remove", "makedirs", "rmtree", "replace", "rename", "sleep",
}
_BLOCKING_MODULES = {"os", "shutil", "time"}

#: Bare-name calls treated as blocking while a lock is held.
_BLOCKING_NAMES = {"open", "parallel_map"}

#: repro.config reader helpers whose first argument is an env-var name.
_ENV_HELPERS = {"env_str", "env_int", "env_flag"}


def _attr_chain(node: ast.AST) -> list[str]:
    """``os.environ.get`` -> ["os", "environ", "get"] (empty if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _walk_shallow(node: ast.AST):
    """Every descendant of ``node`` without entering nested scopes."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        yield from _walk_shallow(child)


def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    chain = _attr_chain(value.func)
    return bool(chain) and chain[-1] in _LOCK_CTORS and (
        len(chain) == 1 or chain[0] == "threading"
    )


def _is_fork_spawn(call: ast.Call) -> bool:
    """``get_context("fork")`` or a ``ctx.Process(...)`` construction."""
    chain = _attr_chain(call.func)
    if not chain:
        return False
    if chain[-1] == "get_context" and call.args:
        return _const_str(call.args[0]) == "fork"
    return chain[-1] == "Process" and len(chain) >= 2


class _Analyzer:
    """One module's procsafety pass."""

    def __init__(self, tree: ast.Module, path: str, waivers: WaiverSet):
        self.tree = tree
        self.path = path
        self.waivers = waivers
        self.diags: list[Diagnostic] = []

    def _report(self, line: int, rule: str, message: str, hint: str) -> None:
        short = rule.split("/", 1)[1]
        if self.waivers.suppresses(line, short):
            return
        self.diags.append(
            Diagnostic(
                rule, ERROR, self.path, message,
                location=f"line {line}", hint=hint,
            )
        )

    # -- driver ---------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        self._module_rules()
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function_rules(node)
            elif isinstance(node, ast.ClassDef):
                self._lock_rules(node)
            elif isinstance(node, ast.Try):
                self._leak_rule(node)
        self._env_rule()
        self.diags.sort(key=lambda d: int(d.location.split()[-1]))
        return self.diags

    # -- module-scope rules ---------------------------------------------
    def _module_rules(self) -> None:
        forks = [
            n for n in ast.walk(self.tree)
            if isinstance(n, ast.Call)
            and _attr_chain(n.func)[-1:] == ["get_context"]
            and n.args and _const_str(n.args[0]) == "fork"
        ]
        if forks:
            for stmt in self.tree.body:
                if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
                    self._report(
                        stmt.lineno,
                        "procsafety/module-lock-with-fork",
                        "module-level lock in a module that forks worker "
                        "processes: children inherit its state as of the "
                        "fork",
                        "move the lock into the object that owns the fork, "
                        "or re-create it in the child after fork",
                    )

        shm_creates = [
            n for n in ast.walk(self.tree)
            if isinstance(n, ast.Call)
            and _attr_chain(n.func)[-1:] == ["SharedMemory"]
            and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in n.keywords
            )
        ]
        if shm_creates:
            has_unlink = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "unlink"
                for n in ast.walk(self.tree)
            )
            if not has_unlink:
                for call in shm_creates:
                    self._report(
                        call.lineno,
                        "procsafety/publish-without-cleanup",
                        "SharedMemory(create=True) with no unlink anywhere "
                        "in the module: segments outlive the process",
                        "unlink every published segment on shutdown (and "
                        "register an atexit net)",
                    )

    # -- function-scope rules -------------------------------------------
    def _function_rules(self, fn: ast.AST) -> None:
        thread_lines: list[int] = []
        set_tracer_calls: list[ast.Call] = []
        frombuffer_names: set[str] = set()
        readonly_since: dict[str, int] = {}
        publish_calls: list[ast.Call] = []
        has_gate = False

        for node in _walk_shallow(fn):
            if isinstance(node, ast.Attribute) and node.attr == "ships_work":
                has_gate = True
            if isinstance(node, ast.Constant) and node.value == "ships_work":
                has_gate = True
            if isinstance(node, ast.Assign):
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and _attr_chain(node.value.func)[-1:] == ["frombuffer"]
                ):
                    frombuffer_names.add(node.targets[0].id)
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in readonly_since
                        and node.lineno > readonly_since[target.value.id]
                    ):
                        self._report(
                            node.lineno,
                            "procsafety/write-readonly-view",
                            f"write into {target.value.id!r} after "
                            "setflags(write=False): raises ValueError at "
                            "runtime",
                            "fill the view first, then mark it read-only",
                        )
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain[-2:] == ["threading", "Thread"] or chain == ["Thread"]:
                thread_lines.append(node.lineno)
            elif thread_lines and _is_fork_spawn(node):
                if min(thread_lines) < node.lineno:
                    self._report(
                        node.lineno,
                        "procsafety/thread-before-fork",
                        f"fork-context worker spawn after a thread was "
                        f"created at line {min(thread_lines)}: the child "
                        "inherits any lock that thread holds at fork time",
                        "fork the workers first, then start threads "
                        "(pre-start executors before spawning threads)",
                    )
            if chain[-1:] == ["set_tracer"]:
                set_tracer_calls.append(node)
            if (
                chain[-1:] == ["setflags"]
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in frombuffer_names
            ):
                frozen = any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                ) or (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is False
                )
                if frozen:
                    readonly_since[node.func.value.id] = node.lineno
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "publish"
                and not (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                )
            ):
                publish_calls.append(node)

        non_none_sets = [
            c for c in set_tracer_calls
            if c.args and not (
                isinstance(c.args[0], ast.Constant) and c.args[0].value is None
            )
        ]
        if len(set_tracer_calls) == 1 and non_none_sets:
            self._report(
                non_none_sets[0].lineno,
                "procsafety/tracer-not-restored",
                "set_tracer(...) installs global tracer state with no "
                "paired restore in this function",
                "save get_tracer() first and restore it in a finally block",
            )

        if not has_gate:
            for call in publish_calls:
                self._report(
                    call.lineno,
                    "procsafety/handle-without-gate",
                    "store publish without consulting the executor's "
                    "ships_work gate: handles shipped to an inline "
                    "executor are pure overhead",
                    "gate publishing on getattr(executor, 'ships_work', "
                    "False)",
                )

    # -- resource-leak rule ---------------------------------------------
    def _leak_rule(self, node: ast.Try) -> None:
        for i, stmt in enumerate(node.body):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == "open"
            ):
                continue
            if i == len(node.body) - 1:
                continue  # nothing fallible follows inside the try
            name = stmt.targets[0].id
            closed = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "close"
                and isinstance(n.func.value, ast.Name)
                and n.func.value.id == name
                for handler in node.handlers
                for n in ast.walk(handler)
            )
            if not closed:
                self._report(
                    stmt.lineno,
                    "procsafety/leaked-resource-on-error",
                    f"{name!r} opened inside a try whose later statements "
                    "can raise, and no handler closes it: the descriptor "
                    "leaks on every error path",
                    f"close {name!r} in the handler before re-raising "
                    "(or split the open into its own try)",
                )

    # -- lock rules (class scope) ---------------------------------------
    def _lock_rules(self, cls: ast.ClassDef) -> None:
        methods = {
            m.name: m
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        lock_attrs: set[str] = set()
        for m in methods.values():
            for node in ast.walk(m):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                    and _is_lock_ctor(node.value)
                ):
                    lock_attrs.add(node.targets[0].attr)
        if not lock_attrs:
            return

        def acquired_locks(withitem: ast.withitem) -> list[str]:
            expr = withitem.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in lock_attrs
            ):
                return [expr.attr]
            return []

        method_locks: dict[str, set[str]] = {}
        for name, m in methods.items():
            held: set[str] = set()
            for node in ast.walk(m):
                if isinstance(node, ast.With):
                    for item in node.items:
                        held.update(acquired_locks(item))
            method_locks[name] = held

        #: (outer, inner) -> first line it was seen at.
        pairs: dict[tuple[str, str], int] = {}

        def scan(node: ast.AST, held: list[str]) -> None:
            if isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Lambda,
                ),
            ):
                return
            if isinstance(node, ast.With):
                acquired = [
                    a for item in node.items for a in acquired_locks(item)
                ]
                for outer in held:
                    for inner in acquired:
                        pairs.setdefault((outer, inner), node.lineno)
                for stmt in node.body:
                    scan(stmt, held + acquired)
                return
            if held and isinstance(node, ast.Call):
                self._call_under_lock(node, held, methods, method_locks,
                                      pairs)
            for child in ast.iter_child_nodes(node):
                scan(child, held)

        for m in methods.values():
            for stmt in m.body:
                scan(stmt, [])

        flagged: set[frozenset] = set()
        for (a, b), line in sorted(pairs.items(), key=lambda kv: kv[1]):
            if a != b and (b, a) in pairs:
                key = frozenset((a, b))
                if key in flagged:
                    continue
                flagged.add(key)
                other = pairs[(b, a)]
                self._report(
                    max(line, other),
                    "procsafety/lock-order-cycle",
                    f"locks {a!r} and {b!r} are acquired in both orders "
                    f"(lines {min(line, other)} and {max(line, other)}): "
                    "ABBA deadlock",
                    "pick one acquisition order and hold to it everywhere",
                )

    def _call_under_lock(
        self,
        call: ast.Call,
        held: list[str],
        methods: dict,
        method_locks: dict[str, set[str]],
        pairs: dict[tuple[str, str], int],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
            self._report(
                call.lineno,
                "procsafety/blocking-under-lock",
                f"{func.id}(...) called while holding lock "
                f"{held[-1]!r}: every other thread stalls for the "
                "duration",
                "move the blocking call outside the locked region",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        # Calls on the held lock object itself (notify/wait/...) are the
        # point of holding it.
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and func.value.attr in held
        ):
            return
        chain = _attr_chain(func)
        if func.attr in _BLOCKING_ANY_ATTRS or (
            func.attr in _BLOCKING_MODULE_ATTRS
            and chain[:1]
            and chain[0] in _BLOCKING_MODULES
        ):
            self._report(
                call.lineno,
                "procsafety/blocking-under-lock",
                f".{func.attr}(...) called while holding lock "
                f"{held[-1]!r}: blocking I/O stalls every other thread",
                "move the blocking call outside the locked region",
            )
            return
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in method_locks
        ):
            inner = method_locks[func.attr] - set(held)
            if inner:
                for outer in held:
                    for b in sorted(inner):
                        pairs.setdefault((outer, b), call.lineno)
                self._report(
                    call.lineno,
                    "procsafety/nested-lock-call",
                    f"self.{func.attr}(...) acquires lock "
                    f"{sorted(inner)[0]!r} while {held[-1]!r} is held: "
                    "invisible lock nesting",
                    f"collect work under {held[-1]!r} and call "
                    f"self.{func.attr} after releasing it",
                )

    # -- env-drift rule --------------------------------------------------
    def _env_rule(self) -> None:
        for node in ast.walk(self.tree):
            name: str | None = None
            if isinstance(node, ast.Subscript):
                if _attr_chain(node.value) == ["os", "environ"]:
                    name = _const_str(node.slice)
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    chain == ["os", "environ", "get"]
                    or chain == ["os", "getenv"]
                    or chain[-1:] and chain[-1] in _ENV_HELPERS
                ) and node.args:
                    name = _const_str(node.args[0])
            if name is None or not name.startswith("REPRO_"):
                continue
            if not declared(name):
                self._report(
                    node.lineno,
                    "procsafety/env-drift",
                    f"environment variable {name!r} is not declared in "
                    "repro.config.registry.ENV_VARS",
                    "declare it once in the registry (name, type, default, "
                    "subsystem) — the README table is generated from there",
                )


def procsafety_source(
    source: str, path: str = "<string>", *, audit_unknown: bool = True
) -> list[Diagnostic]:
    """Analyze one module's source text; returns its diagnostics.

    ``audit_unknown`` gates the malformed-waiver audit — ``False`` when
    the lint layer already reported bad waivers for the same files.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                "procsafety/syntax", ERROR, path,
                f"cannot parse: {exc.msg}",
                location=f"line {exc.lineno}",
            )
        ]
    waivers = collect_waivers(source, path)
    diags = _Analyzer(tree, path, waivers).run()
    diags.extend(
        waivers.audit(PROCSAFETY_RULES, audit_unknown=audit_unknown)
    )
    diags.sort(key=lambda d: int(d.location.split()[-1]))
    return diags


def procsafety_paths(
    paths: list[str], *, audit_unknown: bool = True
) -> tuple[list[Diagnostic], int]:
    """Analyze every .py file under ``paths``; returns (diags, files)."""
    diags: list[Diagnostic] = []
    files = iter_python_files(paths)
    for f in files:
        with open(f, encoding="utf-8") as fh:
            diags.extend(
                procsafety_source(
                    fh.read(), path=f, audit_unknown=audit_unknown
                )
            )
    return diags, len(files)
