"""Pytest integration: the ``check_plan`` fixture for kernel tests.

Loaded via ``pytest_plugins`` in ``tests/conftest.py``.  A kernel test
asserts its launch plan is race-free and legal with one line::

    def test_plan(small_matrix, check_plan):
        check_plan(HPSpMM(), small_matrix, k=64)

The fixture builds the kernel's plan (``plan_for_kernel``), runs every
plan rule, and fails the test with the rendered diagnostics if any
error-severity finding survives.  It returns the full diagnostic list so
tests can additionally assert on warnings or wave geometry.
"""

from __future__ import annotations

import pytest

from ..gpusim import TESLA_V100
from .diagnostics import ERROR
from .schedule import check_plan as _check_plan_rules
from .schedule import plan_for_kernel


@pytest.fixture
def check_plan():
    """Assert a kernel's plan has no error-severity diagnostics."""

    def _check(kernel, S, k, device=TESLA_V100, *, allow=()):
        plan = plan_for_kernel(kernel, S, k, device)
        diags = _check_plan_rules(plan)
        errors = [
            d for d in diags if d.severity == ERROR and d.rule not in allow
        ]
        if errors:
            rendered = "\n".join(d.render() for d in errors)
            pytest.fail(
                f"plan check failed for {plan.kernel} (k={k}, "
                f"{device.name}):\n{rendered}"
            )
        return diags

    return _check
