"""Minimal reverse-mode autograd over NumPy arrays.

This is the neural-network substrate replacing PyTorch underneath the
DGL / PyG integrations of paper Section IV-G.  It implements exactly the
operator set GCN / GraphSAINT training needs: dense matmul, sparse-dense
matmul (dispatching to the library's SpMM kernels for *timing* while
computing numerics exactly), elementwise ops, dropout and softmax
cross-entropy.

Every operation optionally records its simulated GPU cost into a
:class:`~repro.gnn.timing.TimingContext`, so end-to-end training time is
a deterministic composition of kernel-model times — which is what Table V
compares.
"""

from __future__ import annotations

import numpy as np


class Tensor:
    """A NumPy array with gradient tracking.

    Gradients accumulate in ``grad`` after :meth:`backward`.  The graph
    is built eagerly: each Tensor keeps its parents and a backward
    closure.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents: tuple = ()
        self._backward = None
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing data, outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, g: np.ndarray) -> None:
        if self.grad is None:
            self.grad = g.astype(np.float32, copy=True)
        else:
            self.grad += g

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this tensor.

        ``grad`` defaults to ones (for scalar losses, the usual seed).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(t: "Tensor") -> None:
            if id(t) in seen:
                return
            seen.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for t in reversed(topo):
            if t._backward is not None and t.grad is not None:
                t._backward(t.grad)

    # ------------------------------------------------------------------
    # Operator sugar
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor") -> "Tensor":
        return add(self, other)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def _make(
    data: np.ndarray, parents: tuple, backward, requires_grad: bool
) -> Tensor:
    out = Tensor(data, requires_grad=requires_grad)
    if requires_grad:
        out._parents = parents
        out._backward = backward
    return out


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise (broadcast) addition."""
    req = a.requires_grad or b.requires_grad

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(g, a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(g, b.data.shape))

    return _make(a.data + b.data, (a, b), backward, req)


def _unbroadcast(g: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce a broadcast gradient back to ``shape``."""
    while g.ndim > len(shape):
        g = g.sum(axis=0)
    for i, s in enumerate(shape):
        if s == 1 and g.shape[i] != 1:
            g = g.sum(axis=i, keepdims=True)
    return g


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Dense matrix product with gradient."""
    req = a.requires_grad or b.requires_grad

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(g @ b.data.T)
        if b.requires_grad:
            b._accumulate(a.data.T @ g)

    return _make(a.data @ b.data, (a, b), backward, req)


def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = a.data > 0

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(g * mask)

    return _make(a.data * mask, (a,), backward, a.requires_grad)


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return a
    keep = (rng.random(a.data.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(g * keep)

    return _make(a.data * keep, (a,), backward, a.requires_grad)


def log_softmax(a: Tensor) -> Tensor:
    """Row-wise log-softmax (numerically stable)."""
    z = a.data - a.data.max(axis=1, keepdims=True)
    logsum = np.log(np.exp(z).sum(axis=1, keepdims=True))
    out_data = z - logsum

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            softmax = np.exp(out_data)
            a._accumulate(g - softmax * g.sum(axis=1, keepdims=True))

    return _make(out_data, (a,), backward, a.requires_grad)


def nll_loss(logp: Tensor, labels: np.ndarray, weights: np.ndarray | None = None) -> Tensor:
    """Mean negative log-likelihood; optional per-sample weights
    (GraphSAINT's normalization coefficients)."""
    n = logp.data.shape[0]
    idx = (np.arange(n), np.asarray(labels))
    w = np.ones(n, dtype=np.float32) if weights is None else np.asarray(
        weights, dtype=np.float32
    )
    denom = float(w.sum()) or 1.0
    loss_val = -(logp.data[idx] * w).sum() / denom

    def backward(g: np.ndarray) -> None:
        if logp.requires_grad:
            grad = np.zeros_like(logp.data)
            grad[idx] = -w / denom
            logp._accumulate(grad * g)

    return _make(np.float32(loss_val), (logp,), backward, logp.requires_grad)


def cross_entropy(logits: Tensor, labels: np.ndarray, weights=None) -> Tensor:
    """Softmax cross-entropy = log_softmax + NLL."""
    return nll_loss(log_softmax(logits), labels, weights)
