"""World reports: ``results/world_<name>.json`` + run manifest.

The report is the deliverable the ROADMAP's input-aware auto-selection
item consumes: per-config structural features and per-kernel times
(training rows), plus the aggregated crossover map and global ranking
(the figure axis the paper never had).  Serialization is
``sort_keys=True`` JSON of deterministic values only — no wall clock,
no hostnames — so two runs of the same universe are byte-identical,
which the world smoke CI job asserts with a straight ``cmp``.
"""

from __future__ import annotations

import json
import os

from ..bench.runner import results_dir
from ..obs import METRICS, write_manifest
from ..select.dataset import training_block
from .crossover import (
    DEFAULT_DEGREE_BUCKETS,
    DEFAULT_SKEW_BUCKETS,
    crossover_map,
    kernel_ranking,
)
from .sweep import WorldSweepResult

SCHEMA = "repro.world/v1"


def build_report(
    result: WorldSweepResult,
    *,
    mode: str = "sampled",
    seed: int | None = None,
    degree_buckets: int = DEFAULT_DEGREE_BUCKETS,
    skew_buckets: int = DEFAULT_SKEW_BUCKETS,
) -> dict:
    """Assemble the full report payload from one sweep."""
    # Widen the bucket span marginally so min/max configs land strictly
    # inside the outer buckets whatever the float rounding did.
    deg_lo, deg_hi = result.degree_range
    span = (max(deg_lo * 0.999, 1e-9), max(deg_hi * 1.001, 2e-9))
    crossover = crossover_map(
        result.rows,
        degree_range=span,
        degree_buckets=degree_buckets,
        skew_buckets=skew_buckets,
    )
    METRICS.inc("world.regions", len(crossover["regions"]))
    points = [p.to_dict() for p in result.points]
    return {
        "schema": SCHEMA,
        "world": {
            "mode": mode,
            "seed": seed,
            "samples": result.configs,
            "kernels": result.kernels,
            "k": result.k,
            "device": result.device,
            # Executor topology (workers) is deliberately absent: the
            # report must be byte-identical whether the sweep ran
            # inline or sharded; the manifest's config block records it.
            "skipped_kernels": dict(sorted(result.skipped_kernels.items())),
        },
        "points": points,
        # The selection layer's training matrix, first-class: feature
        # vectors in canonical order, oracle winner + margin, schedule,
        # and per-kernel totals (regret pricing) per config.  Derived
        # deterministically from the points above, so the report's
        # byte-determinism gate covers it too.
        "training": training_block(points),
        "ranking": kernel_ranking(result.rows, result.kernels),
        "crossover": crossover,
        "errors": result.errors,
    }


def write_world_report(
    report: dict, name: str = "sweep", *, config: dict | None = None
) -> str:
    """Write ``results/world_<name>.json`` plus its manifest; returns the
    report path.  The same atomic-replace discipline as every other
    results/ writer, so a crashed run never leaves a torn report.
    """
    base = results_dir()
    path = os.path.join(base, f"world_{name}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    METRICS.inc("world.reports")
    write_manifest(f"world_{name}", base, config)
    return path


def render_ranking_table(report: dict) -> str:
    """The global ranking as a markdown table (CLI stdout + CI summary)."""
    lines = [
        "| rank | kernel | wins | win share | geomean rel. time |",
        "|---|---|---|---|---|",
    ]
    for i, row in enumerate(report["ranking"], start=1):
        rel = (
            f"{row['geomean_rel']:.3f}x"
            if row["geomean_rel"] is not None
            else "-"
        )
        lines.append(
            f"| {i} | {row['kernel']} | {row['wins']} "
            f"| {100.0 * row['win_share']:.1f}% | {rel} |"
        )
    return "\n".join(lines)


def render_crossover_table(report: dict) -> str:
    """The region map as a degree x skew markdown grid of top winners."""
    cx = report["crossover"]
    nd, ns = cx["degree_buckets"], cx["skew_buckets"]
    by_id = {r["id"]: r for r in cx["regions"]}
    header = ["| mean degree \\ skew |"]
    for si in range(ns):
        header.append(
            f" {cx['skew_edges'][si]:.2f}-{cx['skew_edges'][si + 1]:.2f} |"
        )
    lines = ["".join(header), "|---|" + "---|" * ns]
    for di in range(nd):
        cells = [
            f"| {cx['degree_edges'][di]:.1f}-{cx['degree_edges'][di + 1]:.1f} |"
        ]
        for si in range(ns):
            region = by_id[f"d{di}s{si}"]
            if region["top"] is None:
                cells.append(" - |")
            else:
                cells.append(
                    f" {region['top']} ({region['configs']}) |"
                )
        lines.append("".join(cells))
    return "\n".join(lines)
