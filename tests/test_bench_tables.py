"""Table rendering and sweep aggregation machinery."""

import numpy as np
import pytest

from repro.bench import (
    KernelRun,
    SweepResult,
    format_speedup,
    render_table,
    sweep_sddmm,
    sweep_spmm,
    write_report,
)
from repro.gpusim import TESLA_V100

from tests.conftest import random_hybrid


def test_render_table_basic():
    text = render_table(
        ["name", "value"],
        [["a", 1.234], ["bb", 5.6]],
        title="Example",
    )
    lines = text.splitlines()
    assert lines[0] == "Example"
    assert "1.23" in text
    assert "5.60" in text
    assert "name" in lines[2]


def test_render_table_empty_rows():
    text = render_table(["x"], [])
    assert "x" in text


def test_format_speedup():
    assert format_speedup(1.7234) == "1.72x"


def test_sweep_result_speedups():
    sweep = SweepResult(device="d", k=64)
    sweep.runs = [
        KernelRun("g1", "ours", 1.0, 0.0, 0.0),
        KernelRun("g1", "base", 2.0, 0.0, 0.0),
        KernelRun("g2", "ours", 1.0, 0.0, 0.0),
        KernelRun("g2", "base", 0.5, 0.0, 0.0),
    ]
    s = sweep.speedups_vs("ours", "base")
    np.testing.assert_allclose(sorted(s), [0.5, 2.0])
    avg, pct = sweep.summary_vs("ours", "base")
    assert avg == pytest.approx(1.25)
    assert pct == pytest.approx(50.0)


def test_sweep_result_empty_summary():
    sweep = SweepResult(device="d", k=64)
    avg, pct = sweep.summary_vs("a", "b")
    assert np.isnan(avg)


def test_sweep_spmm_runs_all_kernels():
    S = random_hybrid(300, 300, 3000, seed=30)
    sweep = sweep_spmm(
        [("g", S)], ("hp-spmm", "ge-spmm"), k=32, device=TESLA_V100
    )
    assert len(sweep.runs) == 2
    assert set(r.kernel for r in sweep.runs) == {"hp-spmm", "ge-spmm"}
    assert all(r.time_s > 0 for r in sweep.runs)


def test_sweep_sddmm_runs():
    S = random_hybrid(300, 300, 3000, seed=31)
    sweep = sweep_sddmm(
        [("g", S)], ("hp-sddmm", "dgl-sddmm"), k=32, device=TESLA_V100
    )
    assert len(sweep.runs) == 2


def test_write_report(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = write_report("unit-test", "hello")
    with open(path) as f:
        assert f.read().strip() == "hello"
