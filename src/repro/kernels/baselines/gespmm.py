"""GE-SpMM baseline (Huang et al., SC'20) — node-parallel with shared-
memory sparse staging and coarsening factor 2.

GE-SpMM assigns one warp per CSR row per 64-feature chunk (Coarsening
factor 2: each thread keeps two accumulators so a warp covers 64
features).  Sparse column/value data is staged through shared memory in
coalesced 32-element tiles, which is its main advantage over plain
row-split.  It remains node-parallel, so skewed degree distributions
produce load imbalance — the paper's Fig. 12 sensitivity study measures
HP-SpMM's speedup over GE-SpMM as a function of degree variance.
"""

from __future__ import annotations


from ...gpusim import CostParams, DeviceSpec, simulate_launch
from ...formats import HybridMatrix
from ..api import SpMMKernel, register_spmm
from .node_parallel import NodeParallelProfile, build_node_parallel_workload

#: GE-SpMM stages col/val tiles via shared memory: 2 coalesced arrays,
#: 8 bytes per nonzero => 0.25 sectors, ~2 instructions per 32 elements.
GESPMM_PROFILE = NodeParallelProfile(
    features_per_warp=64,          # coarsening factor 2 (CF=2)
    vector_width=1,                # scalar loads (no float2/float4)
    sparse_instr_per_nnz=0.5,      # amortized cooperative tile loads
    sparse_sectors_per_nnz=0.25,   # coalesced col+val
    misaligned_dense=False,
    row_overhead_instr=12.0,
    warps_per_block=8,
    registers_per_thread=32,
    shared_mem_per_block=8 * 32 * 8,  # one 32-elem col+val tile per warp
)


@register_spmm
class GESpMM(SpMMKernel):
    """GE-SpMM as published: CSR, warp-per-row, smem staging, CF=2."""

    name = "ge-spmm"

    def __init__(self, profile: NodeParallelProfile = GESPMM_PROFILE) -> None:
        self.profile = profile

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        work, config = build_node_parallel_workload(S, k, self.profile, device)
        return simulate_launch(device, work, config, cost), 0.0
