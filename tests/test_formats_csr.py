"""Unit tests for the CSR format."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import CSRMatrix, SparseFormatError


def test_from_arrays_basic():
    m = CSRMatrix.from_arrays([0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0], shape=(2, 3))
    assert m.shape == (2, 3)
    assert m.nnz == 3
    np.testing.assert_array_equal(
        m.to_dense(), [[1, 0, 2], [0, 3, 0]]
    )


def test_from_arrays_validates_indptr_length():
    with pytest.raises(SparseFormatError):
        CSRMatrix.from_arrays([0, 1], [0], None, shape=(2, 2))


def test_from_arrays_validates_indptr_monotone():
    with pytest.raises(SparseFormatError):
        CSRMatrix.from_arrays([0, 2, 1, 3], [0, 1, 0], None, shape=(3, 2))


def test_from_arrays_validates_indptr_endpoints():
    with pytest.raises(SparseFormatError):
        CSRMatrix.from_arrays([1, 2, 3], [0, 1], None, shape=(2, 2))
    with pytest.raises(SparseFormatError):
        CSRMatrix.from_arrays([0, 1, 5], [0, 1], None, shape=(2, 2))


def test_from_arrays_validates_column_bounds():
    with pytest.raises(SparseFormatError):
        CSRMatrix.from_arrays([0, 1], [9], None, shape=(1, 3))


def test_memory_elements_matches_paper_formula():
    # Paper Section II: CSR needs M + 1 + 2 * NNZ elements.
    m = CSRMatrix.from_arrays([0, 1, 3], [0, 0, 1], None, shape=(2, 2))
    assert m.memory_elements() == 2 + 1 + 2 * 3


def test_row_degrees_and_slices():
    m = CSRMatrix.from_arrays(
        [0, 2, 2, 3], [1, 2, 0], [1.0, 2.0, 3.0], shape=(3, 3)
    )
    np.testing.assert_array_equal(m.row_degrees(), [2, 0, 1])
    cols, vals = m.row_slice(0)
    np.testing.assert_array_equal(cols, [1, 2])
    np.testing.assert_array_equal(vals, [1.0, 2.0])
    cols, vals = m.row_slice(1)
    assert cols.size == 0


def test_decode_row_indices_matches_fig2d():
    # Paper Fig. 2(d): CSR decode produces the complete row-index array.
    m = CSRMatrix.from_arrays(
        [0, 2, 3, 6, 7], [0, 2, 2, 0, 1, 3, 2], None, shape=(4, 4)
    )
    np.testing.assert_array_equal(
        m.decode_row_indices(), [0, 0, 1, 2, 2, 2, 3]
    )


def test_scipy_roundtrip(medium_matrix):
    csr = medium_matrix.to_csr()
    back = CSRMatrix.from_scipy(csr.to_scipy())
    np.testing.assert_allclose(back.to_dense(), csr.to_dense())


def test_empty_rows_and_empty_matrix():
    m = CSRMatrix.from_arrays([0, 0, 0], [], None, shape=(2, 7))
    assert m.nnz == 0
    assert m.decode_row_indices().size == 0
    np.testing.assert_array_equal(m.row_degrees(), [0, 0])
