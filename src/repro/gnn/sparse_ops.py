"""Autograd-aware sparse operations bridging graphs and Tensors.

``spmm(S, X)`` aggregates node features over the adjacency matrix; its
backward pass is an SpMM against ``S``'s transpose (so GNN training
executes *two* sparse products per layer per step, both of which the
timing context prices with the configured kernel — exactly how the
paper's kernels enter end-to-end training time).

Numerics run through SciPy's CSR product (our C-speed stand-in for the
GPU's arithmetic; the reduction order is equivalent), and are verified in
the test-suite against :func:`repro.kernels.spmm_reference`.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from .autograd import Tensor, _make
from .timing import TimingContext


class GraphOperand:
    """A graph prepared for training: adjacency, transpose and scipy views.

    Built once per graph (or per sampled subgraph); caches the transposed
    hybrid matrix needed by backward SpMM and the scipy CSR forms used
    for numerics.
    """

    def __init__(self, S: HybridMatrix):
        self.matrix = S
        self.csr = S.to_scipy()
        self.csr_t = self.csr.T.tocsr()
        self.matrix_t = HybridMatrix.from_scipy(self.csr_t)

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]

    @classmethod
    def gcn_normalized(cls, S: HybridMatrix) -> "GraphOperand":
        """Symmetrically-normalized adjacency D^-1/2 (A) D^-1/2.

        ``S`` is assumed self-looped (the paper's convention); this is the
        propagation matrix of the GCN layer.
        """
        deg_out = np.asarray(S.to_scipy().sum(axis=1)).ravel()
        deg_in = np.asarray(S.to_scipy().sum(axis=0)).ravel()
        d_out = 1.0 / np.sqrt(np.maximum(deg_out, 1.0))
        d_in = 1.0 / np.sqrt(np.maximum(deg_in, 1.0))
        new_val = (
            S.val * d_out[S.row].astype(np.float32) * d_in[S.col].astype(np.float32)
        )
        return cls(
            HybridMatrix(row=S.row, col=S.col, val=new_val, shape=S.shape)
        )


def spmm(graph: GraphOperand, x: Tensor, timing: TimingContext | None = None) -> Tensor:
    """Sparse-dense product ``S @ X`` with autograd and simulated timing."""
    k = x.data.shape[1]
    out_data = graph.csr @ x.data
    if timing is not None:
        timing.record_spmm(graph.matrix, k)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            if timing is not None:
                timing.record_spmm(graph.matrix_t, k)
            x._accumulate(graph.csr_t @ g)

    return _make(
        out_data.astype(np.float32), (x,), backward, x.requires_grad
    )


def sddmm_values(
    graph: GraphOperand, a1: np.ndarray, a2t: np.ndarray
) -> np.ndarray:
    """Edge scores ``(A1 @ A2) ⊙ S`` as an nnz-array (attention-style)."""
    S = graph.matrix
    return np.einsum(
        "ij,ij->i", a1[S.row], a2t[S.col], dtype=np.float32
    ) * S.val
