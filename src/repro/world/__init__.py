"""GraphWorld-style scenario universe: sample a parametric space of
synthetic graphs, run every registered kernel over it through the
engine, and emit crossover/ranking maps showing *where* each kernel
wins (``python -m repro.world``)."""

from .crossover import (
    DEFAULT_DEGREE_BUCKETS,
    DEFAULT_SKEW_BUCKETS,
    crossover_map,
    kernel_ranking,
)
from .features import structural_features
from .report import (
    SCHEMA,
    build_report,
    render_crossover_table,
    render_ranking_table,
    write_world_report,
)
from .sweep import (
    WorldPoint,
    WorldSweepResult,
    default_k,
    default_workers,
    run_world_sweep,
)
from .universe import (
    DEFAULT_DEGREE_RANGE,
    DEFAULT_MIN_NODES,
    WorldConfig,
    build_world_graph,
    default_max_nodes,
    default_samples,
    default_seed,
    grid_universe,
    sample_universe,
)

__all__ = [
    "DEFAULT_DEGREE_BUCKETS",
    "DEFAULT_DEGREE_RANGE",
    "DEFAULT_MIN_NODES",
    "DEFAULT_SKEW_BUCKETS",
    "SCHEMA",
    "WorldConfig",
    "WorldPoint",
    "WorldSweepResult",
    "build_report",
    "build_world_graph",
    "crossover_map",
    "default_k",
    "default_max_nodes",
    "default_samples",
    "default_seed",
    "default_workers",
    "grid_universe",
    "kernel_ranking",
    "render_crossover_table",
    "render_ranking_table",
    "run_world_sweep",
    "sample_universe",
    "structural_features",
    "write_world_report",
]
