"""Layer 2 — AST-based determinism & numerics linter for ``src/repro``.

The simulator's central promise is that every reported "GPU" number is a
pure function of (matrix, kernel config, device spec); see DESIGN.md.
This linter enforces the repo-specific rules that protect that promise:

* ``lint/unseeded-rng`` — no unseeded NumPy randomness: legacy
  ``np.random.*`` module-level calls are banned outright (they mutate
  hidden global state), and ``np.random.default_rng()`` /
  ``np.random.RandomState()`` must receive an explicit seed.  Thread a
  seeded ``Generator`` instead.
* ``lint/set-iteration`` — no iteration over ``set()`` results in
  result-producing code: Python set order is hash/salt-dependent, so
  ``for x in set(...)`` or ``list(set(...))`` leaks nondeterministic
  order into reports.  ``sorted(set(...))`` is the deterministic spelling
  and is allowed.
* ``lint/wallclock`` — no wall-clock reads (``time.time``,
  ``time.perf_counter``, ``datetime.now``...) outside the designated
  wall-clock surfaces.  Host-measured passes (the reorderer comparison,
  the bench harness) waive the rule inline with a justification.
* ``lint/float32-accum`` — reductions (``sum``/``mean``/``cumsum``/
  ``dot``) forced to ``dtype=np.float32`` accumulate error linearly in
  the reduction length; cost-model reductions must widen to float64
  (NumPy's default) and narrow at the edges instead.

A line can waive one rule with a trailing justification comment::

    t0 = time.perf_counter()  # lint: allow(wallclock) measured host pass

Waiver parsing and auditing live in :mod:`repro.analysis.waivers`: a
waiver must name a known rule and carry a reason, and a waiver that
suppresses nothing is itself a ``waiver/stale`` error.
"""

from __future__ import annotations

import ast
import os

from .diagnostics import ERROR, Diagnostic
from .waivers import LINT_RULES, WaiverSet, collect_waivers

#: Legacy np.random functions that read/mutate the hidden global state.
_LEGACY_RNG = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
    "get_state", "set_state",
}

#: Constructors that are fine *with* a seed, banned bare.
_SEEDED_CTORS = {"default_rng", "RandomState", "Generator", "SeedSequence"}

#: Wall-clock sources (module attr -> attribute names), including the
#: integer-nanosecond variants (the stale-waiver audit caught waivers on
#: ``perf_counter_ns`` lines this table used to miss).
_WALLCLOCK_ATTRS = {
    "time": {
        "time", "perf_counter", "monotonic", "process_time", "clock",
        "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
}

#: NumPy/ndarray reductions where a float32 accumulator loses precision.
_REDUCTIONS = {"sum", "mean", "cumsum", "nansum", "nanmean", "dot", "trace"}

#: Iteration sinks that materialize set order.
_ORDER_SINKS = {"list", "tuple", "enumerate", "iter", "reversed"}


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


def _is_np_random(chain: list[str]) -> bool:
    return len(chain) >= 2 and chain[0] in ("np", "numpy") and chain[1] == "random"


def _is_set_expr(node: ast.AST) -> bool:
    """A ``set(...)``/``frozenset(...)`` call, set display, or set comp."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b) stays a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_float32(node: ast.AST) -> bool:
    chain = _attr_chain(node)
    return chain[-1:] == ["float32"] or (
        isinstance(node, ast.Constant) and node.value == "float32"
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, waivers: WaiverSet):
        self.path = path
        self.waivers = waivers
        self.diags: list[Diagnostic] = []

    def _report(self, node: ast.AST, rule: str, message: str, hint: str) -> None:
        line = getattr(node, "lineno", 0)
        short = rule.split("/", 1)[1]
        if self.waivers.suppresses(line, short):
            return
        self.diags.append(
            Diagnostic(
                rule,
                ERROR,
                self.path,
                message,
                location=f"line {line}",
                hint=hint,
            )
        )

    # -- rng ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if _is_np_random(chain) and len(chain) == 3:
            fn = chain[2]
            if fn in _LEGACY_RNG:
                self._report(
                    node,
                    "lint/unseeded-rng",
                    f"legacy global-state RNG call np.random.{fn}(...)",
                    "thread a seeded np.random.default_rng(seed) Generator",
                )
            elif fn in _SEEDED_CTORS and not node.args and not node.keywords:
                self._report(
                    node,
                    "lint/unseeded-rng",
                    f"np.random.{fn}() constructed without a seed",
                    "pass an explicit integer seed",
                )

        # -- wallclock ---------------------------------------------------
        if len(chain) >= 2:
            mod, attr = chain[-2], chain[-1]
            if attr in _WALLCLOCK_ATTRS.get(mod, ()):  # time.time() etc.
                self._report(
                    node,
                    "lint/wallclock",
                    f"wall-clock read {mod}.{attr}() in simulator-adjacent "
                    "code",
                    "simulated numbers must be pure functions of their "
                    "inputs; measured host passes waive with "
                    "`# lint: allow(wallclock) <why>`",
                )

        # -- float32 accumulation ----------------------------------------
        is_reduction = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _REDUCTIONS
        )
        if is_reduction:
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_float32(kw.value):
                    self._report(
                        node,
                        "lint/float32-accum",
                        f"reduction .{node.func.attr}(dtype=float32) "
                        "accumulates rounding error linearly",
                        "accumulate in float64 (NumPy's default) and cast "
                        "the result at the edge",
                    )
            # x.astype(np.float32).sum(): the accumulator dtype follows
            # the array dtype, so the widening was thrown away early.
            recv = node.func.value
            if (
                isinstance(recv, ast.Call)
                and isinstance(recv.func, ast.Attribute)
                and recv.func.attr == "astype"
                and recv.args
                and _is_float32(recv.args[0])
            ):
                self._report(
                    node,
                    "lint/float32-accum",
                    f"narrowing .astype(float32) immediately before "
                    f".{node.func.attr}() forces a float32 accumulator",
                    "reduce first, then narrow the scalar result",
                )

        # -- set-order sinks ---------------------------------------------
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SINKS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._report(
                node,
                "lint/set-iteration",
                f"{node.func.id}(set(...)) materializes hash-dependent "
                "set order",
                "use sorted(set(...)) for a deterministic order",
            )
        self.generic_visit(node)

    def _check_iter(self, node: ast.AST, it: ast.AST) -> None:
        if _is_set_expr(it):
            self._report(
                node,
                "lint/set-iteration",
                "iteration over a set has hash-dependent order",
                "iterate sorted(set(...)) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", *, audit_waivers: bool = True
) -> list[Diagnostic]:
    """Lint one module's source text; returns its diagnostics.

    ``audit_waivers`` additionally reports malformed (``waiver/bad``)
    and no-longer-suppressing (``waiver/stale``) waivers of the lint
    rule family.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                "lint/syntax",
                ERROR,
                path,
                f"cannot parse: {exc.msg}",
                location=f"line {exc.lineno}",
            )
        ]
    waivers = collect_waivers(source, path)
    visitor = _Visitor(path, waivers)
    visitor.visit(tree)
    diags = visitor.diags
    if audit_waivers:
        diags.extend(waivers.audit(LINT_RULES, audit_unknown=True))
    diags.sort(key=lambda d: int(d.location.split()[-1] or 0))
    return diags


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files.

    Directory walks skip ``__pycache__`` and the analyzer's own
    adversarial-fixture corpus (``analysis/fixtures``) — fixture files
    violate the rules *by construction* and are only analyzed when
    passed explicitly (the CI negative-control loop does exactly that).
    """
    out: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__"
                    and not (
                        d == "fixtures"
                        and os.path.basename(root) == "analysis"
                    )
                )
                out.extend(
                    os.path.join(root, f)
                    for f in sorted(files)
                    if f.endswith(".py")
                )
        elif p.endswith(".py"):
            out.append(p)
    return sorted(set(out))


def lint_paths(paths: list[str]) -> tuple[list[Diagnostic], int]:
    """Lint every .py file under ``paths``; returns (diags, files seen)."""
    diags: list[Diagnostic] = []
    files = iter_python_files(paths)
    for f in files:
        with open(f, encoding="utf-8") as fh:
            diags.extend(lint_source(fh.read(), path=f))
    return diags, len(files)


def default_lint_root() -> str:
    """The ``src/repro`` tree this module was loaded from."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
