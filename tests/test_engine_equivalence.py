"""Golden equivalence: engine-routed paths reproduce the legacy ones.

The refactor's contract is behavioral invisibility: routing the bench
sweeps, fig/table scripts and serve batches through ``repro.engine``
must produce results byte-identical to the pre-refactor direct
``make_spmm``/``make_sddmm`` dispatch — including identical
estimate-cache traffic (same keys, same hit/miss counts).  These tests
re-implement the legacy evaluation loops inline (direct kernel-API
dispatch, graphs-outer/kernels-inner) and compare exactly.
"""

import json

import pytest

from repro.bench.runner import sweep_sddmm, sweep_spmm
from repro.engine import ShardedExecutor, cost_priors
from repro.gpusim import TESLA_V100, get_device
from repro.kernels import make_sddmm, make_spmm
from repro.obs import METRICS, reset_histograms
from repro.perf import get_estimate_cache

from tests.conftest import random_hybrid

_LEGACY_MAKERS = {"spmm": make_spmm, "sddmm": make_sddmm}


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    get_estimate_cache().clear()
    cost_priors().reset()
    yield
    cost_priors().reset()


def _toy_graphs():
    return [
        ("a", random_hybrid(200, 200, 1500, seed=21)),
        ("b", random_hybrid(300, 300, 2500, seed=22)),
    ]


def _legacy_sweep(op, graphs, kernels, k, device):
    """The pre-refactor sweep body: direct dispatch, no engine."""
    make = _LEGACY_MAKERS[op]
    rows = []
    for gname, S in graphs:
        flops = 2.0 * S.nnz * k
        for kname in kernels:
            res = make(kname).estimate(S, k, device)
            rows.append(
                (gname, kname, res.stats.time_s, res.preprocessing_s,
                 res.stats.throughput_gflops(flops))
            )
    return rows


@pytest.mark.parametrize("op", ["spmm", "sddmm"])
def test_engine_sweep_reproduces_legacy_dispatch(op):
    graphs = _toy_graphs()
    if op == "spmm":
        sweep, kernels = sweep_spmm, ("hp-spmm", "ge-spmm", "row-split")
    else:
        sweep, kernels = sweep_sddmm, ("hp-sddmm", "dgl-sddmm")
    legacy = _legacy_sweep(op, graphs, kernels, 32, TESLA_V100)
    get_estimate_cache().clear()  # engine run must not ride on memo hits
    result = sweep(graphs, kernels, k=32)
    assert [
        (r.graph, r.kernel, r.time_s, r.preprocessing_s, r.gflops)
        for r in result.runs
    ] == legacy


def test_engine_sweep_cache_traffic_matches_legacy():
    """Same cache keys, same hit/miss counts as direct dispatch."""
    graphs = _toy_graphs()
    kernels = ("hp-spmm", "ge-spmm")
    cache = get_estimate_cache()

    _legacy_sweep("spmm", graphs, kernels, 32, TESLA_V100)
    _legacy_sweep("spmm", graphs, kernels, 32, TESLA_V100)
    legacy_stats = cache.stats()

    cache.clear()
    sweep_spmm(graphs, kernels, k=32)
    sweep_spmm(graphs, kernels, k=32)
    engine_stats = cache.stats()

    assert engine_stats.hits == legacy_stats.hits
    assert engine_stats.misses == legacy_stats.misses
    # And cross-path: a legacy-warmed cache serves engine sweeps fully.
    sweep_spmm(graphs, kernels, k=32)
    assert cache.stats().misses == engine_stats.misses


def test_fig13_reproduces_legacy_series():
    from repro.bench.fig13 import run_fig13

    result = run_fig13(
        graph="aifb", ks=(16, 32), max_edges=20_000,
        kernels=("hp-spmm", "ge-spmm"),
    )
    from repro.graphs import load_graph

    S = load_graph("aifb", max_edges=20_000).matrix
    for i, k in enumerate((16, 32)):
        flops = 2.0 * S.nnz * k
        for name in ("hp-spmm", "ge-spmm"):
            stats = make_spmm(name).estimate(S, k, TESLA_V100).stats
            assert result.gflops[name][i] == stats.throughput_gflops(flops)


def test_table4_reproduces_legacy_rows():
    from repro.bench.table4 import TABLE4_KERNELS, run_table4
    from repro.graphs import load_graph

    result = run_table4(graphs=("corafull",), max_edges=20_000)
    S = load_graph("corafull", max_edges=20_000).matrix
    legacy_row = ["corafull"]
    for kname in TABLE4_KERNELS:
        res = make_spmm(kname).estimate(S, 64, result_device())
        if kname != "hp-spmm":
            legacy_row.append(res.preprocessing_s * 1e3)
        legacy_row.append(res.stats.time_s * 1e3)
    assert result.rows == [legacy_row]


def result_device():
    from repro.gpusim import TESLA_A30

    return TESLA_A30


# ----------------------------------------------------------------------
# Serve: engine-routed batches, identical across executors
# ----------------------------------------------------------------------

def _deterministic_report_fields(report):
    """The byte-stable subset of a serve report (latencies excluded)."""
    return json.dumps(
        {"responses": report["responses"], "summary": report["summary"]},
        sort_keys=True,
    )


@pytest.mark.serve
def test_serve_replay_identical_across_executors():
    from repro.serve.workload import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        name="equiv", num_requests=16, max_edges=20_000,
        graphs=("aifb",), forced_deadline_every=5,
    )

    METRICS.reset()
    reset_histograms()
    get_estimate_cache().clear()
    cost_priors().reset()
    inline_report = run_workload(spec)

    METRICS.reset()
    reset_histograms()
    get_estimate_cache().clear()
    cost_priors().reset()
    with ShardedExecutor(workers=2) as executor:
        sharded_report = run_workload(spec, executor=executor)

    assert _deterministic_report_fields(
        inline_report
    ) == _deterministic_report_fields(sharded_report)
    for resp in inline_report["responses"]:
        assert resp["status"] in ("ok", "degraded")


@pytest.mark.serve
@pytest.mark.store
def test_store_backed_reports_byte_identical_to_pickle_backed(monkeypatch):
    """Golden equivalence: the shared store changes transport, nothing else.

    The same sharded workload runs once over store fingerprints and once
    over the legacy pickle path (``REPRO_NO_SHARED_STORE=1``); the
    deterministic report fields must be byte-identical and the
    parent-side estimate-cache traffic (hit/miss deltas) must match
    exactly.
    """
    from repro.serve.workload import WorkloadSpec, run_workload
    from repro.store import reset_store, store_counters

    spec = WorkloadSpec(
        name="equiv-store", num_requests=16, max_edges=20_000,
        graphs=("aifb",), forced_deadline_every=5,
    )

    def run(no_store: bool):
        if no_store:
            monkeypatch.setenv("REPRO_NO_SHARED_STORE", "1")
        else:
            monkeypatch.delenv("REPRO_NO_SHARED_STORE", raising=False)
        METRICS.reset()
        reset_histograms()
        get_estimate_cache().clear()
        cost_priors().reset()
        with ShardedExecutor(workers=2) as executor:
            report = run_workload(spec, executor=executor)
        stats = get_estimate_cache().stats()
        return report, (stats.hits, stats.misses)

    reset_store()
    store_report, store_cache = run(no_store=False)
    assert store_counters()["bytes_shared"] > 0  # the store was in play
    pickle_report, pickle_cache = run(no_store=True)

    assert _deterministic_report_fields(
        store_report
    ) == _deterministic_report_fields(pickle_report)
    assert store_cache == pickle_cache
    reset_store()


@pytest.mark.serve
def test_serve_full_answers_match_direct_estimates():
    from repro.graphs import load_graph
    from repro.serve import EstimateRequest as ServeRequest
    from repro.serve import EstimationServer

    with EstimationServer() as server:
        resp = server.estimate(
            ServeRequest(op="sddmm", kernel="hp-sddmm", graph="aifb",
                         k=32, max_edges=20_000),
            timeout=60.0,
        )
    S = load_graph("aifb", max_edges=20_000).matrix
    direct = make_sddmm("hp-sddmm").estimate(S, 32, get_device("v100"))
    assert resp.time_s == direct.stats.time_s
    assert resp.bound == direct.stats.bound
