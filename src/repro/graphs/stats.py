"""Degree statistics and the Fig. 12 variance-controlled graph suite."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import HybridMatrix
from .generators import lognormal_degree_graph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's (out-)degree distribution."""

    mean: float
    std: float
    max: int
    min: int
    cv: float  #: coefficient of variation (std / mean) — imbalance proxy

    @classmethod
    def of(cls, S: HybridMatrix) -> "DegreeStats":
        deg = S.row_degrees()
        if deg.size == 0:
            return cls(0.0, 0.0, 0, 0, 0.0)
        mean = float(deg.mean())
        std = float(deg.std())
        return cls(
            mean=mean,
            std=std,
            max=int(deg.max()),
            min=int(deg.min()),
            cv=std / mean if mean else 0.0,
        )


def variance_suite_specs(
    *,
    num_graphs: int = 10,
    num_nodes: int = 24_000,
    mean_degree: float = 23.0,
    sigma_range: tuple[float, float] = (0.1, 2.1),
    seed: int = 7,
) -> list[tuple[int, float, float, int]]:
    """Generator parameters ``(nodes, mean_degree, sigma, seed)`` of the
    Fig. 12 suite — one tuple per graph, so harnesses can build (and
    evaluate) each graph independently, e.g. in worker processes.
    """
    sigmas = np.linspace(sigma_range[0], sigma_range[1], num_graphs)
    return [
        (num_nodes, mean_degree, float(sigma), seed + i)
        for i, sigma in enumerate(sigmas)
    ]


def variance_graph(spec: tuple[int, float, float, int]) -> HybridMatrix:
    """Materialize one :func:`variance_suite_specs` entry."""
    num_nodes, mean_degree, sigma, seed = spec
    return lognormal_degree_graph(num_nodes, mean_degree, sigma, seed=seed)


def variance_suite(
    *,
    num_graphs: int = 10,
    num_nodes: int = 24_000,
    mean_degree: float = 23.0,
    sigma_range: tuple[float, float] = (0.1, 2.1),
    seed: int = 7,
) -> list[tuple[HybridMatrix, DegreeStats]]:
    """The Fig. 12 suite: equal mean degree, increasing degree std-dev.

    The paper selects 10 graphs with average degree between 21 and 25 and
    ascending degree standard deviation; we synthesize the analogue with
    log-normal expected degrees swept over ``sigma_range``.
    """
    specs = variance_suite_specs(
        num_graphs=num_graphs,
        num_nodes=num_nodes,
        mean_degree=mean_degree,
        sigma_range=sigma_range,
        seed=seed,
    )
    out = []
    for spec in specs:
        g = variance_graph(spec)
        out.append((g, DegreeStats.of(g)))
    # Ascending std-dev order, as in the paper's figure.
    out.sort(key=lambda t: t[1].std)
    return out


def pearson_r(x, y) -> float:
    """Pearson correlation coefficient (the paper reports r = 0.90)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0:
        return 0.0
    return float((xc * yc).sum() / denom)
