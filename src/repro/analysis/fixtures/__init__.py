"""Adversarial fixtures — known-bad inputs every analysis layer must flag.

Two corpora live here:

* **plans** — hand-built :class:`~repro.analysis.schedule.KernelPlan`
  objects, each exhibiting exactly one scheduling bug
  (:data:`ADVERSARIAL_PLANS`, exercised via ``--fixture <name>``);
* **source files** — modules under ``procsafety/`` each statically
  violating one concurrency/lifecycle rule family, exercised via
  ``python -m repro.analysis --procsafety <file>``
  (:func:`procsafety_fixture_files`).

Both serve the same two purposes: regression tests assert the analyzers
raise the *right* rule id for each, and CI requires a nonzero exit on
every one of them (the gate's negative control — a checker that passes
everything is worthless).  Directory walks of the analyzers skip this
package, so the corpus never pollutes a clean-tree run.
"""

from __future__ import annotations

import numpy as np

from ...gpusim import LaunchConfig, TESLA_V100
from ..schedule import MERGE_ATOMIC, MERGE_NONE, KernelPlan

#: Deterministic row stream: 48 nnz over rows 0..11, row-sorted, with
#: row boundaries that do NOT align with 8-element slices.
_ROW = np.repeat(np.arange(12, dtype=np.int64), 4)
_NNZ = int(_ROW.size)
_CFG = LaunchConfig(warps_per_block=8, registers_per_thread=32)


def _base(**kw) -> KernelPlan:
    defaults = dict(
        kernel="fixture",
        op="spmm",
        nnz=_NNZ,
        k=64,
        row=_ROW,
        merge=MERGE_ATOMIC,
        config=_CFG,
        device=TESLA_V100,
    )
    defaults.update(kw)
    return KernelPlan(**defaults)


def gap_plan() -> KernelPlan:
    """Slices drop nnz [16, 24): silently missing work → plan/coverage-gap."""
    return _base(
        kernel="fixture-gap",
        starts=np.array([0, 8, 24, 32, 40]),
        ends=np.array([8, 16, 32, 40, 48]),
    )


def overlap_plan() -> KernelPlan:
    """Slices 1 and 2 both cover [12, 16): double accumulation →
    plan/coverage-overlap."""
    return _base(
        kernel="fixture-overlap",
        starts=np.array([0, 8, 12, 24, 32, 40]),
        ends=np.array([8, 16, 24, 32, 40, 48]),
    )


def race_plan() -> KernelPlan:
    """6-element slices split rows mid-stream with plain stores: rows 1,
    2, 4, ... are written by two warps each → plan/row-race."""
    starts = np.arange(0, _NNZ, 6, dtype=np.int64)
    return _base(
        kernel="fixture-race",
        starts=starts,
        ends=np.minimum(starts + 6, _NNZ),
        merge=MERGE_NONE,
    )


def occupancy_plan() -> KernelPlan:
    """A launch config exceeding every V100 block-level limit →
    plan/threads-per-block, plan/registers, plan/smem."""
    cfg = LaunchConfig(
        warps_per_block=64,                # 2048 threads > 1024 limit
        registers_per_thread=256,          # > 255 limit
        shared_mem_per_block=128 * 1024,   # > 96 KiB limit
    )
    starts = np.arange(0, _NNZ, 8, dtype=np.int64)
    return _base(
        kernel="fixture-occupancy",
        starts=starts,
        ends=np.minimum(starts + 8, _NNZ),
        config=cfg,
    )


#: Registry: fixture name -> builder; all must fail check_plan.
ADVERSARIAL_PLANS = {
    "gap": gap_plan,
    "overlap": overlap_plan,
    "race": race_plan,
    "occupancy": occupancy_plan,
}


# ----------------------------------------------------------------------
# Procsafety source-code fixtures (negative controls for layer 3)
# ----------------------------------------------------------------------

def procsafety_fixture_dir() -> str:
    """Directory of the adversarial source-code fixtures."""
    import os

    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "procsafety")


def procsafety_fixture_files() -> list[str]:
    """Sorted paths of the procsafety bad-code corpus.

    Each file statically violates exactly one rule family and MUST make
    ``python -m repro.analysis --procsafety <file>`` exit nonzero — the
    CI negative-control loop and ``tests/test_procsafety.py`` both
    iterate this list.
    """
    import os

    d = procsafety_fixture_dir()
    return sorted(
        os.path.join(d, f) for f in os.listdir(d) if f.endswith(".py")
    )
