"""Simulated-GPU timing for GNN training (paper Table V substrate).

Training time on a real GPU is the sum of kernel times: sparse ops (SpMM
for GCN aggregation, forward and backward) plus dense ops (GEMM for the
weight transforms, elementwise activations, softmax).  This module
accrues that sum deterministically:

* sparse ops are priced by the library's kernel cost models (HP-SpMM vs
  the framework's default kernel is exactly the w/ vs w/o comparison of
  Table V);
* dense ops use a roofline price: ``max(flops / peak, bytes / bandwidth)
  + launch overhead``.

Kernel-model evaluations are cached per (matrix *structure*, K, kernel,
device) so multi-epoch training does not recompute them.  The cache key
is the structural fingerprint from :mod:`repro.perf.fingerprint` — an
earlier version keyed on ``id(S)``, which CPython reuses after garbage
collection, so long sampling-mode loops that create and drop a subgraph
matrix per iteration could silently read a stale time for a *different*
matrix (regression-tested in ``tests/test_gnn_timing_cache.py``).

With tracing enabled (``REPRO_TRACE``), every recorded op also lands on
the ``sim-gpu`` trace track at its simulated offset, so a whole Table-V
training run opens in Perfetto as the modeled kernel timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..engine import EstimateRequest, EstimateResult, default_engine
from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, TESLA_V100
from ..obs import METRICS, trace_emit, tracing_enabled
from ..perf.fingerprint import matrix_fingerprint


@dataclass
class TimingContext:
    """Accumulates simulated GPU seconds, split by op category."""

    device: DeviceSpec = TESLA_V100
    spmm_kernel: str = "hp-spmm"
    sddmm_kernel: str = "hp-sddmm"
    spmm_kwargs: dict = field(default_factory=dict)
    sparse_s: float = 0.0
    dense_s: float = 0.0
    elementwise_s: float = 0.0
    num_sparse_ops: int = 0
    num_dense_ops: int = 0
    _spmm_cache: dict = field(default_factory=dict)
    _sddmm_cache: dict = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.sparse_s + self.dense_s + self.elementwise_s

    def _estimate(self, op: str, name: str, kwargs: dict,
                  S: HybridMatrix, k: int) -> EstimateResult:
        """One timing-only evaluation through the shared engine.

        The cost model reads shapes and the sparsity pattern, never the
        operand values; the engine's inline executor keeps this a plain
        in-process call (no plan check — training loops evaluate the
        same two kernels thousands of times).
        """
        req = EstimateRequest(
            op=op, kernel=name, k=k, device=self.device,
            kernel_kwargs=tuple(sorted(kwargs.items())),
        )
        return default_engine().estimate(req, matrix=S)

    # ------------------------------------------------------------------
    def spmm_time(self, S: HybridMatrix, k: int) -> float:
        """Simulated time of one SpMM of ``S`` against a K-column operand."""
        # Structural key: id(S) is unsafe here — CPython reuses object
        # ids after GC, and sampling-mode training drops one subgraph
        # matrix per iteration.  matrix_fingerprint memoizes on the live
        # object (weakref-guarded), so repeat lookups stay cheap.
        key = (matrix_fingerprint(S), k)
        if key not in self._spmm_cache:
            result = self._estimate(
                "spmm", self.spmm_kernel, self.spmm_kwargs, S, k
            )
            self._spmm_cache[key] = result.total_time_s
        return self._spmm_cache[key]

    def sddmm_time(self, S: HybridMatrix, k: int) -> float:
        """Simulated time of one SDDMM over ``S`` with K-wide operands."""
        key = (matrix_fingerprint(S), k)
        if key not in self._sddmm_cache:
            result = self._estimate("sddmm", self.sddmm_kernel, {}, S, k)
            self._sddmm_cache[key] = result.total_time_s
        return self._sddmm_cache[key]

    def _emit_sim_span(self, name: str, dur_s: float, **args) -> None:
        """Place one op on the simulated-GPU trace track at its offset."""
        trace_emit(
            name,
            ts_us=(self.total_s - dur_s) * 1e6,
            dur_us=dur_s * 1e6,
            cat="gnn",
            **args,
        )

    def record_spmm(self, S: HybridMatrix, k: int) -> None:
        t = self.spmm_time(S, k)
        self.sparse_s += t
        self.num_sparse_ops += 1
        METRICS.inc("gnn.spmm_ops")
        if tracing_enabled():
            self._emit_sim_span(
                f"spmm[{self.spmm_kernel}]", t, nnz=S.nnz, k=k
            )

    def record_sddmm(self, S: HybridMatrix, k: int) -> None:
        t = self.sddmm_time(S, k)
        self.sparse_s += t
        self.num_sparse_ops += 1
        METRICS.inc("gnn.sddmm_ops")
        if tracing_enabled():
            self._emit_sim_span(
                f"sddmm[{self.sddmm_kernel}]", t, nnz=S.nnz, k=k
            )

    def record_gemm(self, m: int, n: int, k: int) -> None:
        """Dense GEMM (m x k) @ (k x n): roofline price."""
        flops = 2.0 * m * n * k
        bytes_moved = 4.0 * (m * k + k * n + m * n)
        t = max(
            flops / self.device.peak_fp32_flops,
            bytes_moved / self.device.dram_bandwidth,
        ) + self.device.kernel_launch_overhead_s
        self.dense_s += t
        self.num_dense_ops += 1
        METRICS.inc("gnn.gemm_ops")
        if tracing_enabled():
            self._emit_sim_span("gemm", t, m=m, n=n, k=k)

    def record_elementwise(self, num_elems: int, num_arrays: int = 2) -> None:
        """Elementwise kernel over ``num_elems`` elements (relu, dropout...)."""
        bytes_moved = 4.0 * num_elems * num_arrays
        t = (
            bytes_moved / self.device.dram_bandwidth
            + self.device.kernel_launch_overhead_s
        )
        self.elementwise_s += t
        if tracing_enabled():
            self._emit_sim_span("elementwise", t, elems=num_elems)

    def summary(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "total_s": self.total_s,
            "sparse_s": self.sparse_s,
            "dense_s": self.dense_s,
            "elementwise_s": self.elementwise_s,
            "num_sparse_ops": self.num_sparse_ops,
            "num_dense_ops": self.num_dense_ops,
            "spmm_kernel": self.spmm_kernel,
            "sddmm_kernel": self.sddmm_kernel,
            "device": self.device.name,
        }
