"""Run every registered kernel over a sampled universe via the engine.

One :class:`~repro.engine.Engine` batch spans the whole universe —
``configs x kernels`` requests sharing one plan/execute pass — so the
sweep reuses everything the engine already provides: the zero-copy
shared store (matrices publish once and shard workers attach views),
the structural-fingerprint estimate cache, per-point spans, and
per-request error capture.  With ``workers >= 2`` the units fan out
over a :class:`~repro.engine.ShardedExecutor`; results are identical
to inline dispatch either way, so the smoke CI can assert byte
determinism regardless of topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import env_int
from ..engine import (
    Engine,
    EngineConfig,
    EstimateRequest,
    InlineExecutor,
    ShardedExecutor,
    make_kernel,
    valid_kernels,
)
from ..gpusim import DeviceSpec, get_device
from ..graphs import generate_graph
from ..obs import METRICS, trace_span
from ..tuning import select_partition
from .features import structural_features
from .universe import WorldConfig, build_world_graph


def default_k() -> int:
    """Env default for the sweep's feature width (``REPRO_WORLD_K``)."""
    return env_int("REPRO_WORLD_K", 32)


def default_workers() -> int:
    """Env default for shard fan-out (``REPRO_WORLD_WORKERS``)."""
    return env_int("REPRO_WORLD_WORKERS", 0)


def supported_kernels(
    k: int, device: DeviceSpec, *, op: str = "spmm"
) -> tuple[list[str], dict[str, str]]:
    """Registered kernels that can estimate on ``device``, plus skips.

    Some kernels have hard device requirements — TC-GNN refuses any
    device without TF32 tensor cores — so "every registered kernel"
    means every kernel *eligible on the sweep's device*.  The probe is
    one estimate on a tiny fixed graph per kernel; ineligible kernels
    come back as ``{name: reason}`` so the report can say what was
    dropped rather than silently shrinking the field.
    """
    probe = generate_graph("chung-lu", 64, 256, seed=0)
    kept: list[str] = []
    skipped: dict[str, str] = {}
    for name in valid_kernels(op):
        try:
            make_kernel(op, name).estimate(probe, k, device)
        except Exception as exc:  # noqa: BLE001 - eligibility, not failure
            skipped[name] = f"{type(exc).__name__}: {exc}"
            continue
        kept.append(name)
    return kept, skipped


@dataclass
class WorldPoint:
    """One config's full evaluation: features, per-kernel times, winner."""

    config: WorldConfig
    features: dict
    kernels: dict            #: kernel name -> result record (status, times)
    winner: str | None       #: fastest kernel by total time (ok results)
    margin: float | None     #: runner-up total / winner total (>= 1.0)
    partition: dict          #: DTP/HVMA schedule chosen at this point

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "features": self.features,
            "kernels": self.kernels,
            "winner": self.winner,
            "margin": self.margin,
            "partition": self.partition,
        }


@dataclass
class WorldSweepResult:
    """Everything one universe sweep produced, pre-aggregation."""

    points: list[WorldPoint]
    kernels: list[str]
    k: int
    device: str
    errors: int = 0
    workers: int = 0
    degree_range: tuple[float, float] = (0.0, 0.0)
    rows: list = field(default_factory=list)  #: crossover-map input rows
    skipped_kernels: dict = field(default_factory=dict)  #: name -> reason

    @property
    def configs(self) -> int:
        return len(self.points)


def _result_record(res) -> dict:
    """One engine result as a JSON-ready kernel record."""
    if res.ok:
        return {
            "status": res.status,
            "time_s": res.time_s,
            "preprocessing_s": res.preprocessing_s,
            "total_time_s": res.total_time_s,
            "bound": res.bound,
            "gflops": res.gflops,
        }
    return {"status": res.status, "error": res.error}


def run_world_sweep(
    configs: list[WorldConfig],
    *,
    kernels: list[str] | None = None,
    k: int | None = None,
    device: str | DeviceSpec = "v100",
    workers: int | None = None,
) -> WorldSweepResult:
    """Evaluate ``kernels`` (default: every registered SpMM kernel) over
    every config; returns per-config winners plus crossover-map rows.
    """
    k = default_k() if k is None else k
    workers = default_workers() if workers is None else workers
    device_spec = get_device(device) if isinstance(device, str) else device
    skipped: dict[str, str] = {}
    if kernels:
        kernels = sorted(kernels)
    else:
        kernels, skipped = supported_kernels(k, device_spec)

    with trace_span(
        "world.sweep", cat="world", configs=len(configs), kernels=len(kernels)
    ):
        matrices, features = {}, {}
        for cfg in configs:
            with trace_span("world.generate", cat="world", config=cfg.name):
                S = build_world_graph(cfg)
            matrices[cfg.name] = S
            features[cfg.name] = structural_features(S)
        METRICS.inc("world.configs", len(configs))

        requests = [
            EstimateRequest(
                op="spmm", kernel=kernel, graph=cfg.name, k=k,
                device=device_spec,
            )
            for cfg in configs
            for kernel in kernels
        ]
        executor = (
            ShardedExecutor(workers) if workers >= 2 else InlineExecutor()
        )
        engine = Engine(
            EngineConfig(
                check_plans=False, capture_errors=True,
                span="world.estimate", cat="world",
            ),
            executor=executor,
        )
        try:
            batch = engine.estimate_batch(requests, matrices=matrices)
        finally:
            if isinstance(executor, ShardedExecutor):
                executor.stop()

        by_graph = batch.by_graph()
        points: list[WorldPoint] = []
        rows: list[dict] = []
        errors = 0
        for cfg in configs:
            records: dict = {}
            for res in by_graph.get(cfg.name, ()):
                records[res.request.kernel] = _result_record(res)
                if not res.ok:
                    errors += 1
            # (total time, name) sort: name breaks exact ties so the
            # winner label is deterministic across executors.
            ordering = sorted(
                (rec["total_time_s"], name)
                for name, rec in records.items()
                if rec["status"] == "ok"
            )
            winner = ordering[0][1] if ordering else None
            margin = None
            if len(ordering) > 1 and ordering[0][0] > 0:
                margin = ordering[1][0] / ordering[0][0]
            part = select_partition(matrices[cfg.name].nnz, k, device_spec)
            points.append(
                WorldPoint(
                    config=cfg,
                    features=features[cfg.name],
                    kernels=records,
                    winner=winner,
                    margin=margin,
                    partition=part.schedule_dict(),
                )
            )
            rows.append(
                {
                    "mean_degree": cfg.mean_degree,
                    "skew": cfg.skew,
                    "winner": winner,
                    "margin": margin,
                    "kernels": records,
                }
            )
        METRICS.inc("world.evaluations", len(requests) - errors)
        if errors:
            METRICS.inc("world.errors", errors)

    degree_values = [cfg.mean_degree for cfg in configs] or [1.0]
    return WorldSweepResult(
        points=points,
        kernels=kernels,
        k=k,
        device=device_spec.name,
        errors=errors,
        workers=workers,
        degree_range=(min(degree_values), max(degree_values)),
        rows=rows,
        skipped_kernels=skipped,
    )
