"""DTP + HVMA: vector widths, candidate alignment, Ineq. 5 selection."""

import pytest

from repro.gpusim import TESLA_V100
from repro.tuning import (
    CANDIDATE_NNZ_PER_WARP,
    TaskPartition,
    feature_groups,
    fixed_partition,
    hvma_vector_width,
    is_candidate_aligned,
    naive_nnz_per_warp,
    select_partition,
    sparse_vector_width,
)


def test_hvma_width_rule():
    # Paper: npw >= 128 -> float4, >= 64 -> float2, else scalar.
    assert hvma_vector_width(128, 128) == 4
    assert hvma_vector_width(256, 256) == 4
    assert hvma_vector_width(64, 64) == 2
    assert hvma_vector_width(32, 64) == 1
    assert hvma_vector_width(8, 128) == 1


def test_hvma_width_downgrades_on_indivisible_k():
    assert hvma_vector_width(128, 64) == 2    # 64 % 128 != 0
    assert hvma_vector_width(128, 96) == 1    # 96 % 128 and % 64 != 0
    assert hvma_vector_width(64, 32) == 1


def test_feature_groups():
    assert feature_groups(32, 1) == 1
    assert feature_groups(64, 1) == 2
    assert feature_groups(64, 2) == 1
    assert feature_groups(256, 4) == 2
    with pytest.raises(ValueError):
        feature_groups(0, 1)


def test_candidates_are_all_aligned():
    # Every candidate guarantees sector-aligned warp slice starts.
    for cand in CANDIDATE_NNZ_PER_WARP:
        assert is_candidate_aligned(cand)
    assert not is_candidate_aligned(5)


def test_sparse_vector_width():
    assert sparse_vector_width(512) == 4
    assert sparse_vector_width(64) == 2
    assert sparse_vector_width(8) == 1
    assert sparse_vector_width(100) == 1  # not aligned: int4 illegal


def test_naive_nnz_per_warp():
    assert naive_nnz_per_warp(100, 10) == 10
    assert naive_nnz_per_warp(101, 10) == 11
    assert naive_nnz_per_warp(5, 0) == 5
    assert naive_nnz_per_warp(0, 10) == 1


def test_select_partition_large_graph_prefers_large_candidate():
    # 100M nnz: even npw=512 yields thousands of waves; DTP takes the max.
    part = select_partition(100_000_000, 64, TESLA_V100)
    assert part.nnz_per_warp == max(CANDIDATE_NNZ_PER_WARP)
    assert part.satisfies_constraint
    assert part.waves >= 4


def test_select_partition_small_graph_exposes_parallelism():
    # 10k nnz on an 80-SM device: no candidate reaches alpha waves; DTP
    # falls back to the smallest granularity (maximal parallelism).
    part = select_partition(10_000, 64, TESLA_V100)
    assert part.nnz_per_warp == min(CANDIDATE_NNZ_PER_WARP)
    assert not part.satisfies_constraint


def test_select_partition_monotone_in_nnz():
    sizes = [10_000, 300_000, 3_000_000, 100_000_000]
    picks = [select_partition(n, 64, TESLA_V100).nnz_per_warp for n in sizes]
    assert all(b >= a for a, b in zip(picks, picks[1:]))


def test_select_partition_counts_feature_groups():
    # Ineq. 5's K term: wider K multiplies the block count, so a wider K
    # permits an equal or larger NnzPerWarp.
    narrow = select_partition(500_000, 32, TESLA_V100)
    wide = select_partition(500_000, 512, TESLA_V100)
    assert wide.nnz_per_warp >= narrow.nnz_per_warp


def test_select_partition_validates():
    with pytest.raises(ValueError):
        select_partition(-1, 64, TESLA_V100)
    with pytest.raises(ValueError):
        select_partition(100, 0, TESLA_V100)


def test_fixed_partition():
    part = fixed_partition(1000, 64, 128, device=TESLA_V100)
    assert part.nnz_per_warp == 128
    assert part.num_slices == 8  # ceil(1000/128)
    assert part.num_warps == part.num_slices * part.num_feature_groups
    with pytest.raises(ValueError):
        fixed_partition(1000, 64, 0)


def test_fixed_partition_scalar_override():
    part = fixed_partition(1000, 64, 128, vector_width=1)
    assert part.vector_width == 1
    assert part.num_feature_groups == 2


def test_partition_block_count():
    part = TaskPartition(
        nnz_per_warp=32,
        vector_width=1,
        warps_per_block=8,
        num_slices=100,
        num_feature_groups=2,
        waves=1.0,
        satisfies_constraint=True,
    )
    assert part.num_warps == 200
    assert part.num_blocks == 25
