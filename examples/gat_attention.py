"""Attention GNN training: both HP kernels in one model.

Usage::

    python examples/gat_attention.py [graph-name]

Trains a dot-product-attention GNN (GAT-style).  Each layer runs an
SDDMM (edge scores) and an SpMM (attention-weighted aggregation), and
their backward passes run the *other* kernel — so swapping the HP
kernels in accelerates four sparse products per layer per step.  This is
the workload mix that motivates unifying SpMM and SDDMM under one hybrid
parallel strategy (paper Sections I-II).
"""

import sys

import numpy as np

from repro.bench import render_table
from repro.gnn import GAT, Adam, GraphOperand, SyntheticTask, Tensor, TimingContext
from repro.graphs import load_graph


def train(graph, task, *, spmm_kernel, sddmm_kernel, epochs=6, seed=0):
    model = GAT(task.features.shape[1], 32, task.num_classes, num_layers=2,
                seed=seed)
    opt = Adam(model.parameters(), lr=0.01)
    timing = TimingContext(spmm_kernel=spmm_kernel, sddmm_kernel=sddmm_kernel)
    x = Tensor(task.features)
    losses = []
    for _ in range(epochs):
        model.zero_grad()
        loss = model.loss(graph, x, task.labels, timing)
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    return losses, timing


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "corafull"
    ds = load_graph(name, max_edges=300_000)
    graph = GraphOperand(ds.matrix)
    task = SyntheticTask.for_graph(ds.matrix, in_features=32, seed=0)
    print(f"attention GNN on {ds.name}: {ds.num_nodes} nodes, "
          f"{ds.num_edges} edges\n")

    configs = {
        "stock kernels": ("cusparse-csr-alg2", "cusparse-csr-sddmm"),
        "HP kernels": ("hp-spmm", "hp-sddmm"),
    }
    rows, results = [], {}
    for label, (spmm_k, sddmm_k) in configs.items():
        losses, timing = train(
            graph, task, spmm_kernel=spmm_k, sddmm_kernel=sddmm_k
        )
        results[label] = timing
        rows.append([
            label, losses[0], losses[-1],
            timing.total_s * 1e3, timing.sparse_s * 1e3,
            timing.num_sparse_ops,
        ])
    print(render_table(
        ["configuration", "loss[0]", "loss[-1]", "GPU (ms)", "sparse (ms)",
         "#sparse ops"],
        rows,
        title="2-layer dot-product attention GNN (simulated Tesla V100)",
        floatfmt=".3f",
    ))
    base = results["stock kernels"].total_s
    ours = results["HP kernels"].total_s
    print(f"\nend-to-end speedup from both HP kernels: {base / ours:.2f}x")


if __name__ == "__main__":
    main()
