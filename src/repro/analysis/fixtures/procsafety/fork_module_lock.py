"""Adversarial fixture: ``procsafety/module-lock-with-fork``.

A module-level lock in a module that forks workers: every child gets a
copy of the lock in whatever state the fork caught it.  Never imported;
analyzed statically by the CI negative-control loop.
"""

import multiprocessing
import threading

_REGISTRY_LOCK = threading.Lock()
_REGISTRY: dict = {}


def register(name, value):
    with _REGISTRY_LOCK:
        _REGISTRY[name] = value


def spawn_worker(target):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=target, daemon=True)
    proc.start()
    return proc
