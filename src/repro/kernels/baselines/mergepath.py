"""Merge-path baseline (Yang et al., Euro-Par'18; Merrill & Garland).

Merge-path balances load exactly by treating SpMM as a 2-D merge of the
row-pointer array and the nonzero sequence: every warp receives the same
number of merge items.  The partition points are found with binary
searches in a *preprocessing* pass, and an auxiliary array stores each
partition's starting row.  The kernel itself is balanced but scalar
(no vectorized loads) and pays per-item path bookkeeping.
"""

from __future__ import annotations

import numpy as np

from ...gpusim import (
    CostParams,
    DeviceSpec,
    LaunchConfig,
    WarpWorkload,
    simulate_launch,
)
from ...formats import HybridMatrix
from ..api import SpMMKernel, register_spmm
from ..common import (
    estimate_hit_rate,
    per_warp_nnz,
    row_segments_per_slice,
    split_by_hit_rate,
    warp_slice_starts,
)
from ..preproc import DEFAULT_HOST, HostCostParams, mergepath_preprocess_s


@register_spmm
class MergePathSpMM(SpMMKernel):
    """Merge-path SpMM: exact nnz+row balance, scalar loads, cheap pre-pass."""

    name = "merge-path"

    def __init__(
        self,
        *,
        items_per_warp: int = 256,
        warps_per_block: int = 8,
        host: HostCostParams = DEFAULT_HOST,
    ) -> None:
        if items_per_warp <= 0:
            raise ValueError("items_per_warp must be positive")
        self.items_per_warp = items_per_warp
        self.warps_per_block = warps_per_block
        self.host = host

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        nnz = S.nnz
        npw = self.items_per_warp
        starts = warp_slice_starts(nnz, npw)
        slice_nnz = per_warp_nnz(nnz, npw).astype(np.float64)
        segments = row_segments_per_slice(S.row, starts, npw).astype(np.float64)

        feats = float(k)
        sector = device.l2_sector_bytes
        dense_sectors_per_nnz = feats * 4 / sector
        if (k * 4) % sector != 0:
            dense_sectors_per_nnz += 1.0

        # Scalar loads: col + val + merge-path row tracking per item.
        issue = slice_nnz * (
            3.0                       # col, val, path-decision
            + np.ceil(feats / 32.0)   # dense loads (scalar, coalesced)
            + np.ceil(feats / 32.0)   # FMA
        ) + segments * np.ceil(feats / 32.0) + np.log2(max(2, S.shape[0]))
        fma = slice_nnz * np.ceil(feats / 32.0)

        sparse_sectors = slice_nnz * (8.0 / sector) * 2.0  # coalesced col+val
        dense_sectors = slice_nnz * dense_sectors_per_nnz
        hit = estimate_hit_rate(
            S.col, bytes_per_item=k * 4.0, device=device,
            concurrent_warps=starts.size,
        )
        dense_l2, dense_dram = split_by_hit_rate(dense_sectors, hit)
        write_sectors = segments * (feats * 4 / sector)
        atomics = segments * np.ceil(feats / 32.0)

        work = WarpWorkload(
            issue=issue,
            l2_sectors=dense_l2,
            dram_sectors=sparse_sectors + dense_dram + write_sectors,
            fma=fma,
            atomics=atomics,
        )
        config = LaunchConfig(
            warps_per_block=self.warps_per_block,
            registers_per_thread=40,
            shared_mem_per_block=0,
        )
        stats = simulate_launch(device, work, config, cost)
        return stats, mergepath_preprocess_s(S, host=self.host)
