"""CLI: run paper experiments and write reports.

Usage::

    python -m repro.bench fig9 [--k 64] [--max-edges 1500000]
    python -m repro.bench all --jobs 4
    python -m repro.bench list

Reports are printed and written under ``results/`` (override with
REPRO_RESULTS_DIR), each with a ``<id>.manifest.json`` run manifest
beside it.  ``--jobs N`` (or ``REPRO_JOBS``) fans sweep work over N
worker processes; ``--timing`` appends a wall-clock + estimate cache
summary line per experiment.  ``REPRO_TRACE=<path>`` records a
Chrome-trace/Perfetto span timeline of the whole run and exports it on
exit (run without ``--jobs`` for a complete single-process trace).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..obs import export_trace, tracing_enabled
from ..perf import estimate_cache_stats
from . import EXPERIMENTS, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig9 fig10 fig11 fig12 fig13 table3 table4 "
        "table5 tcgnn reorder frontier), 'all', or 'list'",
    )
    parser.add_argument("--k", type=int, default=None, help="feature dimension")
    parser.add_argument(
        "--max-edges", type=int, default=None, help="edge cap for scaled graphs"
    )
    parser.add_argument(
        "--subgraphs", type=int, default=None, help="sampling-dataset size (fig10/table3)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweeps (sets REPRO_JOBS; 0 = all cores)",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-experiment wall-clock and estimate-cache stats",
    )
    parser.add_argument(
        "--predicted-frontier",
        action="store_true",
        help="frontier experiment only: sweep each graph's top-k "
        "predicted kernels instead of the full field (report goes to "
        "results/frontier_predicted.txt; full sweep stays the oracle)",
    )
    parser.add_argument(
        "--topk",
        type=int,
        default=None,
        help="predicted-frontier width (default REPRO_SELECT_TOPK)",
    )
    args = parser.parse_args(argv)
    if args.predicted_frontier and args.experiment != "frontier":
        parser.error("--predicted-frontier only applies to 'frontier'")
    if args.topk is not None and not args.predicted_frontier:
        parser.error("--topk requires --predicted-frontier")
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; try 'list' for options"
            )
        runner = EXPERIMENTS[name]
        kwargs = {}
        if args.k is not None and name not in ("reorder", "table2"):
            kwargs["k"] = args.k
        if args.max_edges is not None and name != "fig12":
            kwargs["max_edges"] = args.max_edges
        if args.subgraphs is not None and name in ("fig10", "table3"):
            kwargs["num_subgraphs"] = args.subgraphs
        report_id = name
        if name == "frontier" and args.predicted_frontier:
            from ..select import default_topk

            kwargs["top_k"] = (
                args.topk if args.topk is not None else default_topk()
            )
            report_id = "frontier_predicted"
        t0 = time.time()  # lint: allow(wallclock) CLI progress display only; never enters reports
        result = runner(**kwargs)
        if hasattr(result, "render"):
            text = result.render()
        else:
            text = "\n\n".join(r.render() for r in result)
        print(text)
        path = write_report(report_id, text, config=kwargs)
        print(f"[{name} done in {time.time() - t0:.1f}s -> {path}]\n")  # lint: allow(wallclock) progress display
        if args.timing:
            cs = estimate_cache_stats()
            print(
                f"[timing {name}: {time.time() - t0:.2f}s | estimate cache "  # lint: allow(wallclock) --timing display
                f"{cs.hits} hits / {cs.misses} misses "
                f"({100.0 * cs.hit_rate:.0f}%), {cs.entries} entries]\n"
            )
    if tracing_enabled():
        trace_path = export_trace()
        print(f"[trace -> {trace_path}] (load in chrome://tracing or ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
