"""DCSR (doubly compressed sparse row) — ASpT's sparse-part format.

ASpT (Hong et al., PPoPP'19 — a paper baseline) splits matrices into a
dense CSR part and a *doubly compressed* remainder: DCSR stores row
pointers only for rows that actually contain nonzeros, which saves the
``M + 1`` pointer array when most rows are empty (exactly the situation
for ASpT's leftover part and for sampled subgraphs of huge graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SparseFormatError, as_index_array, as_value_array, check_bounds, check_shape
from .hybrid import HybridMatrix


@dataclass(frozen=True)
class DCSRMatrix:
    """An ``M x N`` matrix storing only nonempty rows.

    Attributes
    ----------
    row_ids : int32 array, length ``nrows``
        Sorted ids of the nonempty rows.
    indptr : int32 array, length ``nrows + 1``
        Offsets into ``indices``/``data`` per *stored* row.
    indices, data : nnz-length arrays
        Column indices and values, grouped by stored row.
    shape : (int, int)
    """

    row_ids: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def num_stored_rows(self) -> int:
        return int(self.row_ids.size)

    def memory_elements(self) -> int:
        """Storage cost: ``2*nrows + 1 + 2*NNZ`` elements."""
        return 2 * self.num_stored_rows + 1 + 2 * self.nnz

    def compression_gain_vs_csr(self) -> int:
        """Pointer-array elements saved relative to plain CSR."""
        csr_ptr = self.shape[0] + 1
        dcsr_ptr = 2 * self.num_stored_rows + 1
        return csr_ptr - dcsr_ptr

    @classmethod
    def from_hybrid(cls, S: HybridMatrix) -> "DCSRMatrix":
        """Compress a hybrid CSR/COO matrix (already row-grouped)."""
        m, n = check_shape(S.shape)
        if S.nnz == 0:
            return cls(
                row_ids=np.zeros(0, dtype=np.int32),
                indptr=np.zeros(1, dtype=np.int32),
                indices=np.zeros(0, dtype=np.int32),
                data=np.zeros(0, dtype=np.float32),
                shape=(m, n),
            )
        change = np.empty(S.nnz, dtype=bool)
        change[0] = True
        change[1:] = S.row[1:] != S.row[:-1]
        starts = np.nonzero(change)[0]
        row_ids = S.row[starts]
        indptr = np.append(starts, S.nnz)
        return cls(
            row_ids=row_ids.astype(np.int32),
            indptr=indptr.astype(np.int32),
            indices=S.col.copy(),
            data=S.val.copy(),
            shape=(m, n),
        )

    @classmethod
    def from_arrays(
        cls, row_ids, indptr, indices, data=None, *, shape
    ) -> "DCSRMatrix":
        """Build from raw arrays with full validation."""
        m, n = check_shape(shape)
        rid = as_index_array(row_ids, "row_ids")
        ptr = as_index_array(indptr, "indptr")
        idx = as_index_array(indices, "indices")
        if ptr.size != rid.size + 1:
            raise SparseFormatError(
                f"indptr length {ptr.size} != num rows {rid.size} + 1"
            )
        if rid.size and np.any(np.diff(rid) <= 0):
            raise SparseFormatError("row_ids must be strictly increasing")
        if ptr.size and (ptr[0] != 0 or ptr[-1] != idx.size):
            raise SparseFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(ptr) <= 0):
            raise SparseFormatError(
                "every stored row must be nonempty (that is DCSR's point)"
            )
        check_bounds(rid, m, "row_ids")
        check_bounds(idx, n, "indices")
        val = as_value_array(data, "data", idx.size)
        return cls(row_ids=rid, indptr=ptr, indices=idx, data=val, shape=(m, n))

    def to_hybrid(self) -> HybridMatrix:
        """Decompress back to hybrid CSR/COO."""
        lengths = np.diff(self.indptr)
        rows = np.repeat(self.row_ids.astype(np.int64), lengths)
        return HybridMatrix.from_arrays(
            rows, self.indices, self.data, shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Densify (test-sized matrices only)."""
        return self.to_hybrid().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DCSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"stored_rows={self.num_stored_rows})"
        )
