"""``repro.analysis`` — schedule checking, determinism linting, procsafety.

Three layers, one entry point (``python -m repro.analysis``):

* :mod:`~repro.analysis.schedule` statically verifies kernel task
  decompositions (coverage, races, occupancy, HVMA preconditions)
  without running the simulator;
* :mod:`~repro.analysis.lint` walks the source tree enforcing the
  repo's determinism and numerics rules;
* :mod:`~repro.analysis.procsafety` walks the same tree enforcing the
  host-side concurrency and resource-lifecycle rules (fork safety,
  shared-store lifecycle, lock discipline, env-var config drift).

:func:`run_all` drives all three and returns a single
:class:`~repro.analysis.diagnostics.Report` whose ``exit_code`` is the
CI gate.  Kernel tests get the same checks through the ``check_plan``
pytest fixture (:mod:`repro.analysis.pytest_plugin`), and the bench
runner checks every sweep point's plan before simulating it.
"""

from __future__ import annotations

from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, RTX_3090, TESLA_A30, TESLA_V100
from .diagnostics import ERROR, INFO, SEVERITIES, WARNING, Diagnostic, Report
from .fixtures import ADVERSARIAL_PLANS, procsafety_fixture_files
from .lint import default_lint_root, iter_python_files, lint_paths, lint_source
from .procsafety import procsafety_paths, procsafety_source
from .schedule import (
    MERGE_ATOMIC,
    MERGE_NONE,
    MERGE_PRIVATE,
    KernelPlan,
    check_plan,
    plan_errors,
    plan_for_kernel,
)

__all__ = [
    "ADVERSARIAL_PLANS",
    "Diagnostic",
    "ERROR",
    "INFO",
    "KernelPlan",
    "MERGE_ATOMIC",
    "MERGE_NONE",
    "MERGE_PRIVATE",
    "Report",
    "SEVERITIES",
    "WARNING",
    "check_plan",
    "check_shipped_kernels",
    "default_check_matrix",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "plan_errors",
    "plan_for_kernel",
    "procsafety_fixture_files",
    "procsafety_paths",
    "procsafety_source",
    "run_all",
]

#: Feature widths the shipped-config check exercises: one HVMA-aligned
#: (vector loads engaged) and one that defeats alignment (K % 32 != 0).
CHECK_KS = (64, 48)


def default_check_matrix() -> HybridMatrix:
    """Small deterministic community graph for shipped-config checking."""
    from ..graphs.generators import community_graph

    return community_graph(
        1024, 8192, gamma=2.1, num_communities=16, p_in=0.7, seed=7
    )


def check_shipped_kernels(
    S: HybridMatrix | None = None,
    *,
    ks: tuple[int, ...] = CHECK_KS,
    devices: tuple[DeviceSpec, ...] = (TESLA_V100, TESLA_A30, RTX_3090),
) -> Report:
    """Plan-check every registered kernel config on every device preset."""
    from ..kernels.api import SDDMM_REGISTRY, SPMM_REGISTRY

    if S is None:
        S = default_check_matrix()
    report = Report()
    for registry in (SPMM_REGISTRY, SDDMM_REGISTRY):
        for name in sorted(registry):
            kernel = registry[name]()
            for device in devices:
                for k in ks:
                    plan = plan_for_kernel(kernel, S, k, device)
                    report.extend(check_plan(plan))
                    report.plans_checked += 1
    return report


def run_all(
    paths: list[str] | None = None,
    *,
    plans: bool = True,
    lint: bool = True,
    procsafety: bool = True,
) -> Report:
    """Run the enabled analysis layers; the combined report gates CI.

    When both source layers run over the same files, the lint layer
    owns the malformed-waiver audit so each bad waiver is reported
    exactly once.
    """
    report = Report()
    if plans:
        plan_report = check_shipped_kernels()
        report.extend(plan_report.diagnostics)
        report.plans_checked = plan_report.plans_checked
    roots = paths or [default_lint_root()]
    if lint:
        diags, nfiles = lint_paths(roots)
        report.extend(diags)
        report.files_linted = nfiles
    if procsafety:
        diags, nfiles = procsafety_paths(roots, audit_unknown=not lint)
        report.extend(diags)
        report.files_scanned = nfiles
    return report
