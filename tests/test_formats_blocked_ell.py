"""Blocked-Ellpack format and its SpMM model."""

import numpy as np
import pytest

from repro.formats import (
    BlockedEllMatrix,
    HybridMatrix,
    SparseFormatError,
    blocked_ell_stats,
)
from repro.kernels import make_spmm, spmm_reference
from repro.kernels.baselines import BlockedEllSpMM

from tests.conftest import random_hybrid


def test_conversion_roundtrips_dense(small_matrix):
    bell = BlockedEllMatrix.from_hybrid(small_matrix, block_size=8)
    np.testing.assert_allclose(bell.to_dense(), small_matrix.to_dense())


def test_conversion_block_indices():
    # nnz at (0,0), (0,17), (20,3): blocks (0,0), (0,1), (1,0) for bs=16.
    S = HybridMatrix.from_arrays([0, 0, 20], [0, 17, 3], None, shape=(32, 32))
    bell = BlockedEllMatrix.from_hybrid(S, block_size=16)
    assert bell.num_block_rows == 2
    assert bell.ell_width == 2
    assert bell.stored_blocks == 3
    assert bell.padding_ratio() == pytest.approx(0.25)
    # Values land in the right intra-block offsets.
    assert bell.to_dense()[0, 17] == 1.0
    assert bell.to_dense()[20, 3] == 1.0


def test_stats_agree_with_full_conversion(small_matrix):
    bell = BlockedEllMatrix.from_hybrid(small_matrix, block_size=16)
    stats = blocked_ell_stats(small_matrix, block_size=16)
    assert stats.num_block_rows == bell.num_block_rows
    assert stats.ell_width == bell.ell_width
    assert stats.stored_blocks == bell.stored_blocks
    assert stats.padding_ratio() == pytest.approx(bell.padding_ratio())


def test_stats_cheap_on_skewed_graph(skewed_matrix):
    # Must not allocate dense blocks: the hub row forces a huge width.
    stats = blocked_ell_stats(skewed_matrix, block_size=16)
    assert stats.ell_width > 10
    assert stats.padding_ratio() > 0.5


def test_occupancy_low_on_gnn_sparsity(medium_matrix):
    stats = blocked_ell_stats(medium_matrix, block_size=16)
    # ~13 nnz per 256-slot block region -> tiny occupancy.
    assert stats.occupancy() < 0.2


def test_empty_matrix():
    S = HybridMatrix.from_arrays([], [], shape=(20, 20))
    stats = blocked_ell_stats(S, 16)
    assert stats.stored_blocks == 0
    assert stats.padding_ratio() == 0.0
    bell = BlockedEllMatrix.from_hybrid(S, 16)
    assert bell.stored_blocks == 0


def test_validates_block_size():
    S = HybridMatrix.from_arrays([0], [0], None, shape=(4, 4))
    with pytest.raises(SparseFormatError):
        blocked_ell_stats(S, 0)
    with pytest.raises(SparseFormatError):
        BlockedEllMatrix.from_hybrid(S, -1)


def test_memory_elements():
    S = HybridMatrix.from_arrays([0, 0, 20], [0, 17, 3], None, shape=(32, 32))
    bell = BlockedEllMatrix.from_hybrid(S, block_size=16)
    # 4 padded slots x (1 index + 256 dense values).
    assert bell.memory_elements() == 4 * 257


# ---------------------------------------------------------------------
# Kernel model
# ---------------------------------------------------------------------
def test_blocked_ell_kernel_numerics(medium_matrix, features):
    A = features(medium_matrix.shape[1], 32, seed=42)
    res = make_spmm("cusparse-blocked-ell").run(medium_matrix, A)
    np.testing.assert_allclose(
        res.output, spmm_reference(medium_matrix, A), rtol=1e-4, atol=1e-4
    )
    assert res.preprocessing_s > 0  # conversion charged


def test_blocked_ell_loses_to_hp_on_sparse_graphs(medium_matrix):
    # GNN sparsity -> massive padding -> HP-SpMM wins comfortably.
    bell = make_spmm("cusparse-blocked-ell").estimate(medium_matrix, 64)
    hp = make_spmm("hp-spmm").estimate(medium_matrix, 64)
    assert bell.stats.time_s > hp.stats.time_s


def test_blocked_ell_padding_hurts_skew(skewed_matrix):
    t_skew = BlockedEllSpMM().estimate(skewed_matrix, 64).stats
    # Dense work scales with padded slots, far above nnz-proportional.
    stats = blocked_ell_stats(skewed_matrix, 16)
    assert stats.padded_blocks > 2 * stats.stored_blocks
    assert t_skew.time_s > 0
