"""LSH / Jaccard-similarity reordering — the [35]-style competitor.

Section III-C and IV-D of the paper compare GCR against reordering by
Locality-Sensitive Hashing with Jaccard similarity (the approach of
GNNAdvisor [35]): rows whose neighbor sets MinHash to the same bucket
are placed adjacently, after an in-bucket verification pass that sorts
bucket members by estimated pairwise similarity.  The verification is
what makes the method slower than Louvain clustering at equal quality.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from .base import Reorderer

#: A large Mersenne prime for universal hashing.
_PRIME = (1 << 31) - 1


def minhash_signatures(
    S: HybridMatrix, num_hashes: int = 8, seed: int = 0
) -> np.ndarray:
    """(M, num_hashes) MinHash signature of each row's neighbor set.

    Vectorized: each hash function permutes column ids with an affine map
    modulo a prime, and ``np.minimum.reduceat`` takes the per-row minimum.
    Rows with no neighbors receive the sentinel ``_PRIME``.
    """
    rng = np.random.default_rng(seed)
    m = S.shape[0]
    sig = np.full((m, num_hashes), _PRIME, dtype=np.int64)
    if S.nnz == 0:
        return sig
    indptr = S.indptr()
    nonempty = np.nonzero(np.diff(indptr) > 0)[0]
    starts = indptr[nonempty].astype(np.int64)
    cols = S.col.astype(np.int64)
    for h in range(num_hashes):
        a = int(rng.integers(1, _PRIME))
        b = int(rng.integers(0, _PRIME))
        hashed = (a * cols + b) % _PRIME
        sig[nonempty, h] = np.minimum.reduceat(hashed, starts)
    return sig


def estimated_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Jaccard similarity estimated from two MinHash signatures."""
    return float(np.mean(sig_a == sig_b))


def exact_jaccard(neigh_a: np.ndarray, neigh_b: np.ndarray) -> float:
    """Exact Jaccard similarity of two sorted neighbor-id arrays."""
    if neigh_a.size == 0 and neigh_b.size == 0:
        return 0.0
    inter = np.intersect1d(neigh_a, neigh_b, assume_unique=False).size
    union = neigh_a.size + neigh_b.size - inter
    return inter / union if union else 0.0


class LSHReorderer(Reorderer):
    """MinHash-bucket reordering with in-bucket similarity verification."""

    name = "lsh-jaccard"

    def __init__(
        self,
        *,
        num_hashes: int = 8,
        band_size: int = 2,
        verify_limit: int = 512,
        seed: int = 0,
    ) -> None:
        if num_hashes % band_size != 0:
            raise ValueError("band_size must divide num_hashes")
        self.num_hashes = num_hashes
        self.band_size = band_size
        self.verify_limit = verify_limit
        self.seed = seed

    def permutation(self, S: HybridMatrix) -> np.ndarray:
        m = S.shape[0]
        sig = minhash_signatures(S, self.num_hashes, self.seed)
        # Primary bucket: the first band's combined hash.
        band = sig[:, : self.band_size]
        bucket = (band * np.array([31, 131071][: self.band_size])).sum(axis=1)
        bucket %= _PRIME
        order = np.argsort(bucket, kind="stable").astype(np.int64)

        indptr = S.indptr()

        def neighbors(u: int) -> np.ndarray:
            return S.col[indptr[u] : indptr[u + 1]]

        # Verification: within each bucket, greedily chain members by
        # *exact* Jaccard similarity over their neighbor sets.  This
        # quadratic verification is what makes LSH-based reordering slow
        # on large graphs (paper Sections III-C and IV-D); it is capped
        # per bucket so pathological inputs stay bounded.
        sorted_buckets = bucket[order]
        change = np.empty(m, dtype=bool)
        if m:
            change[0] = True
            change[1:] = sorted_buckets[1:] != sorted_buckets[:-1]
        starts = np.nonzero(change)[0]
        ends = np.append(starts[1:], m)
        for lo, hi in zip(starts, ends):
            size = hi - lo
            if size < 3:
                continue
            cap = min(size, self.verify_limit)
            probe = list(order[lo : lo + cap])
            chained = [probe.pop(0)]
            while probe:
                tail = chained[-1]
                tail_n = neighbors(int(tail))
                sims = [exact_jaccard(tail_n, neighbors(int(v))) for v in probe]
                best = int(np.argmax(sims))
                chained.append(probe.pop(best))
            order[lo : lo + cap] = np.asarray(chained, dtype=np.int64)
        return order
