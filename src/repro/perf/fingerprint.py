"""Content fingerprints for estimate-cache keys.

A simulated kernel estimate is a pure function of ``(matrix structure,
kernel name + configuration, K, device, cost params)`` (DESIGN.md §1,
"Determinism").  This module turns each of those inputs into a short,
stable string so the tuple can address a memo entry — in process or on
disk — without holding a reference to the original objects.

Matrix fingerprints hash the *structure* (shape, nnz, row/col index
bytes); stored values never enter a cost model, so two matrices with the
same sparsity pattern share every estimate.  Hashing a few MB of index
arrays costs milliseconds, and a weak id-keyed memo makes repeat
fingerprints of the same live object free — the common case in sweeps,
where one graph is estimated by many kernels.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import fields, is_dataclass
from functools import lru_cache

import numpy as np

#: id(matrix) -> (weakref to the matrix, fingerprint).  The weakref both
#: detects id reuse after garbage collection and lets entries be pruned.
_MATRIX_MEMO: dict[int, tuple[weakref.ref, str]] = {}
_MATRIX_MEMO_MAX = 256


def _hash_arrays(*arrays: np.ndarray) -> str:
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def matrix_fingerprint(S) -> str:
    """Structure fingerprint of a :class:`~repro.formats.HybridMatrix`.

    ``(shape, nnz, blake2b(row bytes, col bytes))`` — value arrays are
    deliberately excluded: cost models depend only on sparsity structure.
    """
    key = id(S)
    entry = _MATRIX_MEMO.get(key)
    if entry is not None:
        ref, fp = entry
        if ref() is S:
            return fp
    fp = (
        f"m{S.shape[0]}x{S.shape[1]}-nnz{S.nnz}-"
        f"{_hash_arrays(S.row, S.col)}"
    )
    if len(_MATRIX_MEMO) >= _MATRIX_MEMO_MAX:
        dead = [k for k, (r, _) in _MATRIX_MEMO.items() if r() is None]
        for k in dead:
            del _MATRIX_MEMO[k]
        if len(_MATRIX_MEMO) >= _MATRIX_MEMO_MAX:
            _MATRIX_MEMO.clear()
    try:
        _MATRIX_MEMO[key] = (weakref.ref(S), fp)
    except TypeError:  # non-weakrefable matrix stand-in: skip the memo
        pass
    return fp


def register_fingerprint(S, fp: str) -> None:
    """Pre-seed the matrix memo with a known fingerprint.

    The shared store records each segment's fingerprint in its header,
    so a process attaching a matrix already knows the answer — seeding
    the memo means the first estimate in that process skips re-hashing
    the index arrays entirely.
    """
    try:
        _MATRIX_MEMO[id(S)] = (weakref.ref(S), fp)
    except TypeError:
        pass


@lru_cache(maxsize=256)
def _frozen_dataclass_fingerprint(obj) -> str:
    parts = [type(obj).__name__]
    for f in fields(obj):
        parts.append(f"{f.name}={getattr(obj, f.name)!r}")
    return "|".join(parts)


def dataclass_fingerprint(obj) -> str:
    """Stable fingerprint of a flat dataclass (DeviceSpec, CostParams).

    Field names and reprs are concatenated in declaration order; every
    simulator parameter dataclass holds only scalars/strings/tuples, so
    ``repr`` is exact (floats round-trip via ``repr`` since Python 3.1).
    """
    if not is_dataclass(obj):
        return repr(obj)
    try:
        # DeviceSpec/CostParams are frozen (hashable) dataclasses, and a
        # batch reuses a handful of them thousands of times — an LRU on
        # the instance beats rebuilding the repr string per request.
        return _frozen_dataclass_fingerprint(obj)
    except TypeError:  # unhashable (mutable) dataclass: compute directly
        parts = [type(obj).__name__]
        for f in fields(obj):
            parts.append(f"{f.name}={getattr(obj, f.name)!r}")
        return "|".join(parts)


#: Canonical feature order for selection models and world training rows.
#: Appending is safe (models record the names they were trained with);
#: reordering or renaming breaks every serialized model, so don't.
FEATURE_NAMES = (
    "nodes",
    "nnz",
    "density",
    "degree_mean",
    "degree_std",
    "degree_cv",
    "degree_max",
    "degree_p99",
    "frac_heavy_rows",
    "frac_empty_rows",
)


def structural_features(S) -> dict:
    """Structure-only feature row for one matrix, JSON-ready.

    Degree dispersion (cv), tail mass (p99 / heavy-row fraction) and
    density are the axes the paper's own sensitivity study (Fig. 12)
    shows drive kernel crossovers; empty-row fraction separates the
    row-parallel baselines, which pay for rows they skip.  Everything is
    a deterministic function of the sparsity structure — the same
    quantities the estimate-cache fingerprint keys on — so rows are
    byte-stable across runs and processes, and a selection model trained
    on one sweep's rows applies to any matrix with those statistics.

    Duck-typed on ``shape`` / ``nnz`` / ``row_degrees()`` so the perf
    layer stays import-free of :mod:`repro.graphs`.
    """
    n = int(S.shape[0])
    deg = S.row_degrees()
    if deg.size:
        mean = float(deg.mean())
        std = float(deg.std())
        cv = std / mean if mean else 0.0
        dmax = int(deg.max())
        p99 = float(np.quantile(deg, 0.99))
        heavy = float(np.mean(deg > 4.0 * mean)) if mean else 0.0
        empty = float(np.mean(deg == 0))
    else:
        mean = std = cv = 0.0
        dmax = 0
        p99, heavy, empty = 0.0, 0.0, 0.0
    return {
        "nodes": n,
        "nnz": int(S.nnz),
        "density": float(S.nnz / (n * n)) if n else 0.0,
        "degree_mean": mean,
        "degree_std": std,
        "degree_cv": cv,
        "degree_max": dmax,
        "degree_p99": p99,
        "frac_heavy_rows": heavy,
        "frac_empty_rows": empty,
    }


def feature_vector(features: dict) -> list[float]:
    """Flatten a :func:`structural_features` dict into FEATURE_NAMES order.

    The float list is what selection models consume and what world
    reports store per training row; keeping the flattening here (next to
    the order it encodes) means no caller hand-rolls its own ordering.
    """
    return [float(features[name]) for name in FEATURE_NAMES]


#: id(kernel) -> (weakref, fingerprint); same shape as _MATRIX_MEMO.
#: Kernel instances are immutable after __init__ (no method assigns
#: attributes), so memoizing per live object is safe.
_KERNEL_FP_MEMO: dict[int, tuple[weakref.ref, str]] = {}
_KERNEL_FP_MEMO_MAX = 256


def kernel_config_fingerprint(kernel) -> str:
    """Fingerprint of a kernel instance's constructor configuration.

    Kernel objects store their (scalar) constructor parameters as
    instance attributes, so the sorted ``__dict__`` captures everything
    that can change an estimate besides the registered name.
    """
    key = id(kernel)
    entry = _KERNEL_FP_MEMO.get(key)
    if entry is not None:
        ref, fp = entry
        if ref() is kernel:
            return fp
    attrs = getattr(kernel, "__dict__", {})
    body = ",".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
    fp = f"{kernel.name}({body})"
    if len(_KERNEL_FP_MEMO) >= _KERNEL_FP_MEMO_MAX:
        dead = [k for k, (r, _) in _KERNEL_FP_MEMO.items() if r() is None]
        for k in dead:
            del _KERNEL_FP_MEMO[k]
        if len(_KERNEL_FP_MEMO) >= _KERNEL_FP_MEMO_MAX:
            _KERNEL_FP_MEMO.clear()
    try:
        _KERNEL_FP_MEMO[key] = (weakref.ref(kernel), fp)
    except TypeError:
        pass
    return fp
