"""Zero-copy shared graph/matrix store (see :mod:`repro.store.core`)."""

from .core import (
    SharedGraphStore,
    StoreAttachError,
    StoreError,
    StoreHandle,
    get_store,
    reset_store,
    shared_matrix,
    store_counters,
    store_enabled,
)

__all__ = [
    "SharedGraphStore",
    "StoreAttachError",
    "StoreError",
    "StoreHandle",
    "get_store",
    "reset_store",
    "shared_matrix",
    "store_counters",
    "store_enabled",
]
