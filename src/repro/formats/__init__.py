"""Sparse-matrix storage formats used by GNN frameworks (paper Fig. 2).

Three formats are provided:

* :class:`COOMatrix` — coordinate triples, unsorted.
* :class:`CSRMatrix` — compressed sparse row.
* :class:`HybridMatrix` — the hybrid CSR/COO format (row-sorted COO) that
  GNN frameworks use for sampled subgraphs and that HP-SpMM / HP-SDDMM
  consume without preprocessing.
"""

from .base import INDEX_DTYPE, VALUE_DTYPE, SparseFormatError
from .blocked_ell import BlockedEllMatrix, BlockedEllStats, blocked_ell_stats
from .coo import COOMatrix
from .csr import CSRMatrix
from .dcsr import DCSRMatrix
from .hybrid import HybridMatrix

__all__ = [
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "SparseFormatError",
    "BlockedEllMatrix",
    "BlockedEllStats",
    "blocked_ell_stats",
    "COOMatrix",
    "CSRMatrix",
    "DCSRMatrix",
    "HybridMatrix",
]
