"""Batched estimation-serving layer over the kernel cost models.

``repro.serve`` turns the library's pure estimate functions into a
request/response service: callers submit ``(op, kernel, graph, K,
device)`` queries with optional deadlines, and a micro-batching worker
answers them — sharing one graph load and one structural fingerprint
per batch group, deduplicating identical queries, fanning distinct ones
over the ``REPRO_JOBS`` pool, and degrading to a quick roofline model
when a deadline cannot survive the full cost-model simulation.

Entry points:

* :class:`EstimationServer` — the queue + batcher + estimator engine;
* :class:`EstimateRequest` / :class:`EstimateResponse` — the protocol;
* :func:`run_workload` / :data:`WORKLOADS` — reproducible synthetic
  request streams (``python -m repro.serve --workload smoke``);
* :class:`SocketFrontEnd` / :class:`ServeClient` /
  :func:`run_workload_remote` — the TCP front end
  (length-prefixed JSON frames, streamed per micro-batch, load
  shedding above a queue watermark; ``python -m repro.serve --serve``);
* :class:`ShardRouter` — structural-fingerprint graph partitioning
  across sharded serve workers.

Serving-path observability lives in :mod:`repro.obs`: the
``serve.request_latency`` / ``serve.queue_wait`` histograms, ``serve.*``
counters, and per-request/per-batch spans under ``REPRO_TRACE``.
"""

from .estimator import full_estimate, quick_estimate
from .net import (
    ProtocolError,
    ServeClient,
    SocketFrontEnd,
    run_workload_remote,
)
from .request import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    STATUSES,
    VALID_OPS,
    EstimateRequest,
    EstimateResponse,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from .router import ShardRouter
from .server import EstimationServer
from .workload import WORKLOADS, WorkloadSpec, generate_requests, run_workload

__all__ = [
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "STATUSES",
    "VALID_OPS",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationServer",
    "ProtocolError",
    "ServeClient",
    "ShardRouter",
    "SocketFrontEnd",
    "WORKLOADS",
    "WorkloadSpec",
    "full_estimate",
    "generate_requests",
    "quick_estimate",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "run_workload",
    "run_workload_remote",
]
