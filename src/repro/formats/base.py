"""Common machinery for sparse-matrix storage formats.

The paper (Section II, Fig. 2) works with three storage formats for the
graph adjacency matrix: CSR, COO and the *hybrid CSR/COO* format used by
GNN frameworks (CSR's compressed row pointer decoded into a full row-index
array, with column indices still sorted in row-major order).  This module
holds the shared dtype conventions and validation helpers used by all
format classes.
"""

from __future__ import annotations

import numpy as np

#: Index dtype used across the library.  The paper uses 32-bit indices on
#: the GPU; int32 also halves index-traffic in the memory model.
INDEX_DTYPE = np.int32

#: Value dtype.  All paper experiments run in FP32.
VALUE_DTYPE = np.float32


class SparseFormatError(ValueError):
    """Raised when arrays passed to a sparse format constructor are invalid."""


def as_index_array(a, name: str) -> np.ndarray:
    """Coerce ``a`` to a 1-D contiguous :data:`INDEX_DTYPE` array.

    Raises :class:`SparseFormatError` if the input is not 1-D or contains
    values that cannot be represented losslessly.
    """
    arr = np.ascontiguousarray(a)
    if arr.ndim != 1:
        raise SparseFormatError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == np.trunc(arr)):
            raise SparseFormatError(f"{name} must contain integers")
    out = arr.astype(INDEX_DTYPE, copy=False)
    if arr.size and np.any(out.astype(np.int64) != np.asarray(arr, dtype=np.int64)):
        raise SparseFormatError(f"{name} overflows {INDEX_DTYPE}")
    return out


def as_value_array(a, name: str, n: int) -> np.ndarray:
    """Coerce ``a`` to a 1-D contiguous FP32 array of length ``n``.

    ``None`` yields an all-ones array (unweighted adjacency matrix).
    """
    if a is None:
        return np.ones(n, dtype=VALUE_DTYPE)
    arr = np.ascontiguousarray(a, dtype=VALUE_DTYPE)
    if arr.ndim != 1:
        raise SparseFormatError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size != n:
        raise SparseFormatError(f"{name} has {arr.size} entries, expected {n}")
    return arr


def check_bounds(ind: np.ndarray, upper: int, name: str) -> None:
    """Validate that every index in ``ind`` lies in ``[0, upper)``."""
    if ind.size == 0:
        return
    lo = int(ind.min())
    hi = int(ind.max())
    if lo < 0 or hi >= upper:
        raise SparseFormatError(
            f"{name} out of bounds: range [{lo}, {hi}] not within [0, {upper})"
        )


def check_shape(shape) -> tuple[int, int]:
    """Validate and normalize a 2-D matrix ``shape`` tuple."""
    try:
        m, n = shape
    except (TypeError, ValueError) as exc:
        raise SparseFormatError(f"shape must be a pair, got {shape!r}") from exc
    m, n = int(m), int(n)
    if m < 0 or n < 0:
        raise SparseFormatError(f"shape must be non-negative, got {shape!r}")
    return m, n
