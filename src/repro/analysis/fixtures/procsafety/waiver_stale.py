"""Adversarial fixture: ``waiver/stale``.

A well-formed waiver for a rule that no longer fires on its line — the
excuse outlived the code it excused and must be deleted.  Never
imported; analyzed statically by the CI negative-control loop.
"""


def identity(x):
    return x  # lint: allow(env-drift) nothing here reads the environment
