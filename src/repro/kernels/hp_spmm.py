"""HP-SpMM: Hybrid-Parallel SpMM (paper Section III-A1, Algorithm 3).

The kernel assigns exactly ``NnzPerWarp`` nonzeros of the hybrid CSR/COO
matrix to each CUDA warp.  A warp cooperatively stages 32-element sparse
tiles (RowInd / ColInd / Value) into shared memory, then for each staged
element loads the corresponding row of the dense operand with a
(possibly vectorized) warp-wide load and accumulates into registers; a
*row-switch procedure* flushes the accumulator to the output row with an
atomic store whenever the staged row index changes.

Feature dimensions wider than ``WarpSize * VectorWidth`` are covered by
replicating slices across feature-group warps (the K term of Ineq. 5).

The numerical result is computed exactly (identical reduction to the
reference algorithm); the :class:`~repro.gpusim.KernelStats` comes from
replaying the algorithm's warp-level schedule through the simulator.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import (
    CostParams,
    DeviceSpec,
    WarpWorkload,
    LaunchConfig,
    simulate_launch,
)
from ..tuning import (
    HP_REGISTERS_PER_THREAD,
    HP_SMEM_PER_WARP,
    TaskPartition,
    fixed_partition,
    naive_nnz_per_warp,
    select_partition,
    sparse_vector_width,
    is_candidate_aligned,
)
from .api import SpMMKernel, register_spmm
from .common import (
    dense_row_alignment,
    estimate_hit_rate,
    per_warp_nnz,
    row_segments_per_slice,
    split_by_hit_rate,
    warp_slice_starts,
)


def _hp_spmm_workload(
    S: HybridMatrix,
    k: int,
    part: TaskPartition,
    device: DeviceSpec,
    *,
    hit_rate: float | None = None,
    hvma: bool = True,
) -> tuple[WarpWorkload, LaunchConfig]:
    """Build the per-warp workload of Algorithm 3 for partition ``part``."""
    nnz = S.nnz
    npw = part.nnz_per_warp
    vw = part.vector_width
    groups = part.num_feature_groups
    starts = warp_slice_starts(nnz, npw)
    slice_nnz = per_warp_nnz(nnz, npw).astype(np.float64)
    segments = row_segments_per_slice(S.row, starts, npw).astype(np.float64)
    tiles = np.ceil(slice_nnz / 32.0)

    # Feature coverage of one warp: 32*vw features; the last group of a
    # non-divisible K covers fewer, averaged here.
    feats_per_group = k / groups
    dense_sectors_per_elem = feats_per_group * 4 / device.l2_sector_bytes
    dense_aligned = hvma and dense_row_alignment(k, device.l2_sector_bytes)
    if not dense_aligned:
        dense_sectors_per_elem += 1.0  # extra sector per misaligned access

    # --- instruction stream (per slice-warp) ---------------------------
    svw = sparse_vector_width(npw) if hvma else 1
    sparse_load_instr = tiles * 3.0 / svw     # cooperative tile loads
    smem_read_instr = slice_nnz                # per-element broadcast read
    dense_load_instr = slice_nnz * np.ceil(feats_per_group / (32 * vw))
    fma_instr = slice_nnz * np.ceil(feats_per_group / 32.0)
    store_instr = segments * np.ceil(feats_per_group / 32.0)
    loop_overhead = slice_nnz * 1.0 + tiles * 2.0
    issue = (
        sparse_load_instr
        + smem_read_instr
        + dense_load_instr
        + fma_instr
        + store_instr
        + loop_overhead
    )

    # --- memory transactions -------------------------------------------
    sparse_aligned = hvma and is_candidate_aligned(npw, device.l2_sector_bytes)
    # 3 arrays x 4 bytes per element, coalesced; misaligned tile starts
    # touch one extra sector per array per tile.
    sparse_sectors = slice_nnz * 12.0 / device.l2_sector_bytes
    if not sparse_aligned:
        sparse_sectors = sparse_sectors + tiles * 3.0
    # Feature-group warps of the same slice re-read the same tile: the
    # first group misses to DRAM, the remaining G-1 hit in L2.
    sparse_dram = sparse_sectors / groups
    sparse_l2 = sparse_sectors * (groups - 1) / groups

    dense_sectors = slice_nnz * dense_sectors_per_elem
    if hit_rate is None:
        hit_rate = estimate_hit_rate(
            S.col,
            bytes_per_item=k * 4.0,
            device=device,
            concurrent_warps=part.num_warps,
        )
    dense_l2, dense_dram = split_by_hit_rate(dense_sectors, hit_rate)

    write_sectors = segments * dense_sectors_per_elem
    atomics = segments * np.ceil(feats_per_group / 32.0)

    l2 = sparse_l2 + dense_l2
    dram = sparse_dram + dense_dram + write_sectors

    # Replicate the per-slice workload across feature groups, interleaved
    # so a block holds all groups of consecutive slices.  The common
    # K <= 32*vw case has a single group: no copies needed.
    def rep(a: np.ndarray) -> np.ndarray:
        return a if groups == 1 else np.repeat(a, groups)

    work = WarpWorkload(
        issue=rep(issue),
        l2_sectors=rep(l2),
        dram_sectors=rep(dram),
        fma=rep(fma_instr),
        atomics=rep(atomics),
    )
    config = LaunchConfig(
        warps_per_block=part.warps_per_block,
        registers_per_thread=HP_REGISTERS_PER_THREAD,
        shared_mem_per_block=HP_SMEM_PER_WARP * part.warps_per_block,
    )
    return work, config


@register_spmm
class HPSpMM(SpMMKernel):
    """The paper's HP-SpMM with DTP and HVMA enabled by default.

    Parameters
    ----------
    use_dtp:
        Select NnzPerWarp with Dynamic Task Partition (Ineq. 5).  When
        False, the naive ``NNZ / M`` granularity is used instead.
    use_hvma:
        Use aligned + vectorized accesses.  When False, vector width is
        forced to 1 and alignment guarantees are dropped (the "base"
        configuration of the paper's ablation, Fig. 11).
    nnz_per_warp:
        Explicit override for NnzPerWarp (disables DTP selection).
    """

    name = "hp-spmm"

    def __init__(
        self,
        *,
        use_dtp: bool = True,
        use_hvma: bool = True,
        nnz_per_warp: int | None = None,
        warps_per_block: int = 8,
        alpha: float = 4.0,
    ) -> None:
        self.use_dtp = use_dtp
        self.use_hvma = use_hvma
        self.nnz_per_warp = nnz_per_warp
        self.warps_per_block = warps_per_block
        self.alpha = alpha

    def partition(self, S: HybridMatrix, k: int, device: DeviceSpec) -> TaskPartition:
        """Resolve the task partition this kernel would launch with."""
        if self.nnz_per_warp is not None:
            return fixed_partition(
                S.nnz,
                k,
                self.nnz_per_warp,
                vector_width=None if self.use_hvma else 1,
                warps_per_block=self.warps_per_block,
                device=device,
            )
        if self.use_dtp:
            part = select_partition(
                S.nnz,
                k,
                device,
                warps_per_block=self.warps_per_block,
                alpha=self.alpha,
            )
            if not self.use_hvma:
                part = fixed_partition(
                    S.nnz,
                    k,
                    part.nnz_per_warp,
                    vector_width=1,
                    warps_per_block=self.warps_per_block,
                    device=device,
                )
            return part
        npw = naive_nnz_per_warp(S.nnz, S.shape[0])
        return fixed_partition(
            S.nnz,
            k,
            npw,
            vector_width=None if self.use_hvma else 1,
            warps_per_block=self.warps_per_block,
            device=device,
        )

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        part = self.partition(S, k, device)
        work, config = _hp_spmm_workload(S, k, part, device, hvma=self.use_hvma)
        return simulate_launch(device, work, config, cost), 0.0
