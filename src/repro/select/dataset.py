"""Training rows for selection models, extracted from world reports.

A training row is the selector's entire worldview of one config: the
structural feature vector (in :data:`~repro.perf.FEATURE_NAMES` order),
the oracle winner and its margin from the full sweep, the DTP/HVMA
schedule chosen at that point, and every kernel's total time (so
evaluation can price a wrong pick as *regret*, not just a miss).

The extraction is defined here — not in :mod:`repro.world` — so the
selection layer owns the row schema end to end: the world report embeds
``training_block(...)`` verbatim as its ``"training"`` key, and
``--fit`` reads the same shape back.  Nothing in this module imports
:mod:`repro.world` (the dependency points the other way), so the model
and policy stay loadable in processes that never touch the sweep stack.
"""

from __future__ import annotations

import json
import os

from ..perf.fingerprint import FEATURE_NAMES, feature_vector

#: Training-row schema version, embedded in world reports and models.
ROWS_SCHEMA = "repro.select.rows/v1"


def training_rows(points: list[dict]) -> list[dict]:
    """Rows from serialized world points (``WorldPoint.to_dict`` dicts).

    Points with no winner (every kernel errored) carry no label and are
    dropped; ``times`` keeps only ``ok`` kernels so regret is always
    computed against real totals.
    """
    rows: list[dict] = []
    for point in points:
        winner = point.get("winner")
        if winner is None:
            continue
        times = {
            name: rec["total_time_s"]
            for name, rec in point["kernels"].items()
            if rec.get("status") == "ok"
        }
        partition = point.get("partition", {})
        rows.append(
            {
                "name": point["config"]["name"],
                "x": feature_vector(point["features"]),
                "winner": winner,
                "margin": point.get("margin"),
                "nnz_per_warp": partition.get("nnz_per_warp"),
                "vector_width": partition.get("vector_width"),
                "times": times,
            }
        )
    return rows


def training_block(points: list[dict]) -> dict:
    """The world report's ``"training"`` payload for these points."""
    return {
        "schema": ROWS_SCHEMA,
        "feature_names": list(FEATURE_NAMES),
        "rows": training_rows(points),
    }


def rows_from_report(report: dict) -> list[dict]:
    """Rows from one parsed world report.

    Prefers the first-class ``"training"`` block; falls back to deriving
    rows from ``"points"`` so models can still be fit from reports
    written before the block existed.
    """
    training = report.get("training")
    if training is not None:
        return list(training["rows"])
    return training_rows(report.get("points", []))


def load_training_rows(paths) -> tuple[list[dict], list[str]]:
    """Rows from world-report files, plus sorted source basenames.

    Row order is (sorted input basename, report point order) — a pure
    function of the report *contents*, so fitting from the same sweeps
    in any argument order yields byte-identical models.
    """
    by_base: dict[str, list[dict]] = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        by_base[os.path.basename(path)] = rows_from_report(report)
    rows: list[dict] = []
    for base in sorted(by_base):
        rows.extend(by_base[base])
    return rows, sorted(by_base)
