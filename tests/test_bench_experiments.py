"""Small-scale runs of every experiment, asserting the paper's shapes.

These use aggressively reduced workloads (tiny edge caps, few subgraphs)
so the whole module stays fast; the full-scale regeneration lives in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.bench import (
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_reorder_efficiency,
    run_table4,
    run_table5,
    run_tcgnn,
)

SMALL = 40_000  # edge cap for these tests


def test_fig9_small():
    res = run_fig9(
        k=32, graphs=("corafull", "aifb"), max_edges=SMALL
    )
    text = res.render()
    assert "corafull" in text and "aifb" in text
    # HP wins on average against the weakest baseline.
    avg, pct = res.spmm.summary_vs("hp-spmm", "row-split")
    assert avg > 1.5


def test_fig10_small():
    res = run_fig10(
        k=32, parents=("corafull",), num_subgraphs=4, max_edges=SMALL
    )
    assert res.num_subgraphs >= 3
    rows = res.summary_rows()
    assert len(rows) == 7  # 5 SpMM + 2 SDDMM baselines
    ge_row = [r for r in rows if r[1] == "ge-spmm"][0]
    assert ge_row[2] > 1.0  # average speedup over GE-SpMM
    assert "graph-sampling" in res.render()


def test_fig11_ablation_shape():
    res = run_fig11(k=64, graphs=("corafull",), max_edges=SMALL)
    # Full configuration at least matches base.
    assert res.speedup("corafull", "+dtp+hvma") >= 0.9
    assert res.speedup("corafull", "+dtp+hvma+gcr") >= res.speedup(
        "corafull", "+dtp+hvma"
    ) * 0.98
    assert "GCR gain" in res.render()


def test_fig12_positive_correlation():
    res = run_fig12(num_graphs=6, num_nodes=6000)
    assert res.pearson > 0.5  # paper: 0.90
    assert len(res.speedups) == 6
    assert "Pearson" in res.render()


def test_fig13_speedup_shrinks_with_k():
    res = run_fig13(graph="corafull", ks=(16, 64, 256), max_edges=SMALL)
    s = res.speedup_series("cusparse-csr-alg2")
    assert s[0] > s[-1]  # relative speedup decreases with K
    ours = res.gflops["hp-spmm"]
    # Our throughput stays within a modest band (paper: basically flat).
    assert max(ours) / min(ours) < 4.0


def test_table4_preprocessing_dominates():
    res = run_table4(graphs=("corafull",), max_edges=SMALL)
    pre = res.entry("corafull", "huang-ng", "pre")
    exe = res.entry("corafull", "huang-ng", "exe")
    assert pre > exe  # paper: preprocessing up to 43x execution
    assert res.entry("corafull", "merge-path", "pre") < pre
    assert "hp-spmm" in res.render()


def test_table5_speedups_decrease_with_hidden():
    res = run_table5(
        hiddens=(32, 128), epochs=2, max_edges=SMALL, node_budget=1500
    )
    assert len(res.rows) == 8  # 4 cases x 2 hiddens
    s32 = res.speedup("dgl", "gcn", 32)
    s128 = res.speedup("dgl", "gcn", 128)
    assert s32 > 1.0
    assert s32 >= s128 * 0.9  # shrinking (allow small noise)


def test_tcgnn_slower_than_hp():
    res = run_tcgnn(graph="corafull", max_edges=SMALL)
    assert res.tcgnn_slowdown > 1.0
    assert 0.0 < res.tile_occupancy <= 1.0


def test_reorder_efficiency_ordering():
    res = run_reorder_efficiency(
        graph="corafull", max_edges=20_000, pairmerge_budget_s=3.0
    )
    assert res.gcr_s > 0
    assert res.lsh_s > 0
    assert res.pairmerge_s > 0
    assert "GCR" in res.render()
