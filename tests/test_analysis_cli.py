"""End-to-end CLI gate: ``python -m repro.analysis`` exit codes.

The acceptance criteria the driver enforces: exit 0 on the repo as-is,
nonzero on each seeded adversarial fixture.  These run the real module
in a subprocess so the exit-code plumbing itself is under test.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import ADVERSARIAL_PLANS

pytestmark = pytest.mark.analysis

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _run(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_repo_passes_with_exit_zero():
    proc = _run("--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["exit_code"] == 0
    assert payload["counts"]["error"] == 0
    assert payload["plans_checked"] > 0
    assert payload["files_linted"] > 0


@pytest.mark.parametrize("name", sorted(ADVERSARIAL_PLANS))
def test_each_adversarial_fixture_exits_nonzero(name):
    proc = _run("--fixture", name, "--json")
    assert proc.returncode != 0, f"fixture {name!r} passed: {proc.stdout}"
    payload = json.loads(proc.stdout)
    assert payload["counts"]["error"] > 0
    rules = {d["rule"] for d in payload["diagnostics"]}
    expected = {
        "gap": "plan/coverage-gap",
        "overlap": "plan/coverage-overlap",
        "race": "plan/row-race",
        "occupancy": "plan/threads-per-block",
    }[name]
    assert expected in rules


def test_lint_only_on_one_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
    proc = _run("--no-plans", str(bad))
    assert proc.returncode == 1
    assert "lint/unseeded-rng" in proc.stdout


def test_text_output_ends_with_summary_line():
    proc = _run("--no-lint")
    assert proc.returncode == 0
    last = proc.stdout.strip().splitlines()[-1]
    assert "plans checked" in last and "0 errors" in last
