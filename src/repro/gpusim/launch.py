"""Kernel launch simulation: block scheduling, rooflines, tail effect.

The launch timer combines three bounds, mirroring how a real GPU executes
a grid of thread blocks:

* **List-scheduling makespan.**  The device offers ``P = NumSM *
  ActiveBlocksPerSM`` concurrent block slots (paper Eqs. 3-4); blocks are
  greedily backfilled onto slots, so execution takes at least
  ``max(longest block, total block time / P)``.  A block occupies its
  slot until its *slowest warp* finishes — this is where node-parallel
  load imbalance hurts, and why Sputnik's row sorting (similar rows share
  a block) helps.

* **Throughput rooflines.**  Device-wide instruction-issue, FMA, L2 and
  DRAM bandwidth bounds.  Bandwidth saturates only once enough warps are
  resident; a launch with too few blocks (the *tail effect*, paper
  Fig. 6) cannot reach peak bandwidth, which is exactly what Dynamic Task
  Partition fixes by raising the warp count.

* **Fixed overheads.**  Block dispatch and kernel launch latency.

With tracing on (``REPRO_TRACE``), every simulated launch also lands on
the ``sim-gpu`` trace track as a ``launch[<bound>]`` span containing one
span per scheduling wave, so the tail effect is directly visible in
Perfetto (the final wave's span is shorter and reports its occupancy).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..obs import trace_emit, tracing_enabled
from .costmodel import DEFAULT_COST, CostParams, WarpWorkload, warp_critical_cycles
from .device import DeviceSpec

#: Cap on individually emitted wave spans per launch; launches with more
#: waves aggregate the tail into one span so estimate-heavy sweeps under
#: tracing do not balloon the trace file.
_MAX_WAVE_SPANS = 64

#: Simulated-timeline cursor (µs): successive traced launches are placed
#: back to back on the sim-gpu track so a sweep opens as one readable
#: timeline rather than a pile of overlapping launches at t=0.
_SIM_CURSOR_LOCK = threading.Lock()
_SIM_CURSOR_US = 0.0


def _emit_wave_spans(
    time_s: float,
    bound: str,
    block_cycles: np.ndarray,
    slots: int,
    num_waves: int,
) -> None:
    """Place one traced launch (and its scheduling waves) on the sim track.

    Wave durations split the launch's total time proportionally to each
    wave's summed block cycles — the quantity the list-scheduling bound
    actually balances — so a partial final wave (the tail effect) shows
    up as a visibly shorter span with sub-1.0 ``occupancy``.
    """
    global _SIM_CURSOR_US
    total_us = time_s * 1e6
    with _SIM_CURSOR_LOCK:
        start_us = _SIM_CURSOR_US
        _SIM_CURSOR_US = start_us + total_us
    trace_emit(
        f"launch[{bound}]",
        ts_us=start_us,
        dur_us=total_us,
        cat="gpusim",
        blocks=int(block_cycles.size),
        waves=int(num_waves),
    )
    total_cycles = float(block_cycles.sum())
    detailed = min(num_waves, _MAX_WAVE_SPANS)
    cursor = start_us
    for w in range(detailed):
        last_detailed = w == detailed - 1
        if last_detailed and detailed < num_waves:
            wave = block_cycles[w * slots:]
            name = f"wave[{w + 1}..{num_waves}/{num_waves}]"
        else:
            wave = block_cycles[w * slots:(w + 1) * slots]
            name = f"wave[{w + 1}/{num_waves}]"
        share = (
            float(wave.sum()) / total_cycles
            if total_cycles > 0
            else wave.size / block_cycles.size
        )
        dur_us = total_us * share
        trace_emit(
            name,
            ts_us=cursor,
            dur_us=dur_us,
            cat="gpusim",
            blocks=int(wave.size),
            occupancy=round(min(1.0, wave.size / slots), 4),
            max_block_cycles=float(wave.max()),
        )
        cursor += dur_us


@dataclass(frozen=True)
class LaunchConfig:
    """Per-launch resource configuration (determines occupancy)."""

    warps_per_block: int
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if self.warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        if self.registers_per_thread < 0 or self.shared_mem_per_block < 0:
            raise ValueError("resources must be non-negative")

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * 32


@dataclass(frozen=True)
class KernelStats:
    """Everything the simulator knows about one kernel execution."""

    time_s: float                #: end-to-end time incl. launch overhead
    cycles: float                #: device cycles spent executing
    num_warps: int
    num_blocks: int
    num_waves: int               #: ceil(blocks / FullWaveSize)
    full_wave_size: int          #: blocks per full wave (Eq. 4)
    active_blocks_per_sm: int    #: occupancy term (Eq. 3)
    tail_utilization: float      #: fullness of the last wave, in (0, 1]
    balance_cycles: float        #: list-scheduling makespan bound
    longest_block_cycles: float  #: slowest single block (imbalance signal)
    issue_cycles: float          #: instruction-issue roofline
    fma_cycles: float            #: FMA roofline
    l2_cycles: float             #: L2-bandwidth roofline
    dram_cycles: float           #: DRAM-bandwidth roofline
    atomic_cycles: float         #: atomic-throughput roofline
    dram_bytes: float            #: total bytes moved from/to DRAM
    l2_bytes: float              #: total bytes served by L2
    bound: str                   #: dominant bound for this launch

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6

    def throughput_gflops(self, flops: float) -> float:
        """Achieved GFLOP/s for a caller-supplied FLOP count."""
        return flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


def simulate_launch(
    device: DeviceSpec,
    work: WarpWorkload,
    config: LaunchConfig,
    cost: CostParams = DEFAULT_COST,
) -> KernelStats:
    """Simulate one kernel launch and return its :class:`KernelStats`.

    Warps are assigned to blocks consecutively (warp ``w`` lives in block
    ``w // warps_per_block``), matching how every kernel in this library
    maps its flat warp id.
    """
    sector = device.l2_sector_bytes
    num_warps = work.num_warps
    if num_warps == 0:
        return KernelStats(
            time_s=device.kernel_launch_overhead_s,
            cycles=0.0,
            num_warps=0,
            num_blocks=0,
            num_waves=0,
            full_wave_size=0,
            active_blocks_per_sm=0,
            tail_utilization=1.0,
            balance_cycles=0.0,
            longest_block_cycles=0.0,
            issue_cycles=0.0,
            fma_cycles=0.0,
            l2_cycles=0.0,
            dram_cycles=0.0,
            atomic_cycles=0.0,
            dram_bytes=0.0,
            l2_bytes=0.0,
            bound="launch",
        )

    wpb = config.warps_per_block
    num_blocks = -(-num_warps // wpb)
    active_per_sm = device.active_blocks_per_sm(
        wpb, config.registers_per_thread, config.shared_mem_per_block
    )
    if active_per_sm == 0:
        raise ValueError(
            f"launch config {config} does not fit on {device.name}: "
            "zero resident blocks per SM"
        )
    slots = device.num_sms * active_per_sm

    # --- list-scheduling makespan --------------------------------------
    warp_cycles = warp_critical_cycles(work, cost)
    block_starts = np.arange(num_blocks, dtype=np.int64) * wpb
    block_cycles = np.maximum.reduceat(warp_cycles, block_starts)
    longest_block = float(block_cycles.max())
    balance = max(longest_block, float(block_cycles.sum()) / slots)

    # --- throughput rooflines ------------------------------------------
    busy_sms = min(device.num_sms, num_blocks)
    total_issue = float(work.issue.sum())
    total_fma = float(work.fma.sum())
    total_l2 = float(work.l2_sectors.sum())
    total_dram = float(work.dram_sectors.sum())
    total_atomics = float(work.atomics.sum())

    issue_time = total_issue / (busy_sms * device.issue_slots_per_sm)
    fma_time = total_fma / (busy_sms * device.fma_throughput_per_sm)

    # Little's law: a warp keeps ``mlp`` sectors in flight, so saturating
    # a bandwidth of B with latency L needs B * L / (mlp * sector_bytes)
    # concurrent warps — a property of the memory path, independent of SM
    # count.  Launches with fewer resident warps run latency-limited
    # (this is the tail effect of paper Fig. 6).
    resident_warps = min(num_warps, slots * wpb)
    inflight_bytes = cost.mlp * sector
    warps_to_sat_dram = (
        device.dram_bandwidth
        * (cost.dram_latency / device.clock_hz)
        / inflight_bytes
        * cost.dram_saturation_margin
    )
    warps_to_sat_l2 = (
        device.l2_bandwidth
        * (cost.l2_latency / device.clock_hz)
        / inflight_bytes
        * cost.l2_saturation_margin
    )
    dram_sat = min(1.0, resident_warps / warps_to_sat_dram)
    l2_sat = min(1.0, resident_warps / warps_to_sat_l2)
    dram_time = (
        total_dram * sector * device.clock_hz / device.dram_bandwidth / dram_sat
    )
    l2_time = (
        (total_l2 + total_dram)
        * sector
        * device.clock_hz
        / device.l2_bandwidth
        / l2_sat
    )
    atomic_time = total_atomics / (busy_sms * cost.atomic_throughput_per_sm)

    bounds = {
        "balance": balance,
        "issue": issue_time,
        "fma": fma_time,
        "l2": l2_time,
        "dram": dram_time,
        "atomic": atomic_time,
    }
    bound = max(bounds, key=bounds.get)  # type: ignore[arg-type]
    dispatch = num_blocks * cost.block_dispatch_cycles / slots
    total_cycles = bounds[bound] + dispatch

    num_waves = -(-num_blocks // slots)
    tail_blocks = num_blocks - (num_waves - 1) * slots
    time_s = total_cycles / device.clock_hz + device.kernel_launch_overhead_s
    if tracing_enabled():
        _emit_wave_spans(time_s, bound, block_cycles, slots, num_waves)
    return KernelStats(
        time_s=time_s,
        cycles=float(total_cycles),
        num_warps=num_warps,
        num_blocks=num_blocks,
        num_waves=int(num_waves),
        full_wave_size=int(slots),
        active_blocks_per_sm=int(active_per_sm),
        tail_utilization=float(tail_blocks / slots),
        balance_cycles=float(balance),
        longest_block_cycles=longest_block,
        issue_cycles=float(issue_time),
        fma_cycles=float(fma_time),
        l2_cycles=float(l2_time),
        dram_cycles=float(dram_time),
        atomic_cycles=float(atomic_time),
        dram_bytes=total_dram * sector,
        l2_bytes=total_l2 * sector,
        bound=bound,
    )
