"""Fig. 12 — sensitivity to node-degree variance.

Ten graphs with the same mean degree (21-25 in the paper) and ascending
degree standard deviation; the y-axis is HP-SpMM's speedup over GE-SpMM
(node-parallel, so variance hurts it).  The paper reports Pearson's
r = 0.90 between degree std-dev and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EstimateRequest, default_engine
from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import DegreeStats, pearson_r, variance_graph, variance_suite_specs
from ..perf import parallel_map
from .tables import render_table


@dataclass
class Fig12Result:
    """(degree std-dev, speedup) series plus the correlation."""

    stds: list[float]
    speedups: list[float]
    pearson: float
    mean_degrees: list[float]

    def render(self) -> str:
        rows = [
            [i + 1, self.mean_degrees[i], self.stds[i], self.speedups[i]]
            for i in range(len(self.stds))
        ]
        table = render_table(
            ["graph #", "mean degree", "degree std", "speedup over GE-SpMM (x)"],
            rows,
            title="Fig. 12 — speedup vs node-degree standard deviation",
        )
        return table + f"\nPearson's r = {self.pearson:.3f} (paper: 0.90)"


def _fig12_one_graph(
    item: tuple[tuple[int, float, float, int], int, DeviceSpec],
) -> tuple[float, float, float]:
    """Generate one suite graph and time both kernels on it.

    Module-level so ``parallel_map`` can fan graph construction *and*
    estimation over worker processes (each graph is independent).
    Returns ``(degree std, mean degree, speedup)``.
    """
    spec, k, device = item
    graph = variance_graph(spec)
    st = DegreeStats.of(graph)
    # Inline engine inside the worker: the fan-out is already per-graph
    # here, so each worker evaluates its two kernels serially.
    eng = default_engine()
    t_hp = eng.estimate(
        EstimateRequest(op="spmm", kernel="hp-spmm", k=k, device=device),
        matrix=graph,
    ).time_s
    t_ge = eng.estimate(
        EstimateRequest(op="spmm", kernel="ge-spmm", k=k, device=device),
        matrix=graph,
    ).time_s
    return st.std, st.mean, t_ge / t_hp


def run_fig12(
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    num_graphs: int = 10,
    num_nodes: int = 20_000,
    mean_degree: float = 23.0,
    seed: int = 7,
) -> Fig12Result:
    """Run the degree-variance sensitivity experiment."""
    specs = variance_suite_specs(
        num_graphs=num_graphs,
        num_nodes=num_nodes,
        mean_degree=mean_degree,
        seed=seed,
    )
    rows = parallel_map(
        _fig12_one_graph, [(spec, k, device) for spec in specs]
    )
    # Ascending std-dev order, as in the paper's figure (and as
    # variance_suite orders the graphs).
    rows.sort(key=lambda r: r[0])
    stds = [r[0] for r in rows]
    means = [r[1] for r in rows]
    speedups = [r[2] for r in rows]
    return Fig12Result(
        stds=stds,
        speedups=speedups,
        pearson=pearson_r(stds, speedups),
        mean_degrees=means,
    )
