"""Shared experiment machinery: kernel sweeps and speedup aggregation.

Conventions follow the paper's Section IV-A: times are kernel execution
only (format conversion excluded; hybrid CSR/COO needs none), speedups
are averaged per-graph ratios against HP kernels, and the "percentage"
column is the fraction of graphs on which the HP kernel is faster.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

import numpy as np

from ..engine import (
    Engine,
    EngineConfig,
    EstimateRequest,
    # Re-exported: historically defined here; tests and callers import
    # them from the runner.
    PlanCheckError,  # noqa: F401
    PoolExecutor,
    plan_checking_enabled,  # noqa: F401
)
from ..config import env_str
from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, TESLA_V100
from ..obs import METRICS, trace_span, write_manifest

#: Paper kernel display names for the standard comparison sets.
SPMM_BASELINES: tuple[str, ...] = (
    "cusparse-csr-alg2",
    "cusparse-csr-alg3",
    "cusparse-coo-alg4",
    "ge-spmm",
    "row-split",
)
SDDMM_BASELINES: tuple[str, ...] = ("dgl-sddmm", "cusparse-csr-sddmm")


@dataclass(frozen=True)
class KernelRun:
    """One kernel on one graph."""

    graph: str
    kernel: str
    time_s: float
    preprocessing_s: float
    gflops: float

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6


@dataclass
class SweepResult:
    """All kernels over all graphs of one dataset."""

    device: str
    k: int
    runs: list[KernelRun] = field(default_factory=list)
    #: Plans verified by the static schedule checker before simulation;
    #: 0 means checking was skipped (REPRO_NO_PLAN_CHECK) — visible so a
    #: sweep that bypassed verification cannot masquerade as checked.
    plans_checked: int = 0
    #: Per-severity totals from the checker (error/warning/info).
    plan_diagnostics: dict = field(default_factory=dict)

    def plan_check_summary(self) -> str:
        """One-line checker summary for harness output."""
        if not self.plans_checked:
            return "plan-check: skipped (REPRO_NO_PLAN_CHECK=1)"
        c = self.plan_diagnostics
        return (
            f"plan-check: {self.plans_checked} plans verified "
            f"({c.get('error', 0)} errors, {c.get('warning', 0)} warnings, "
            f"{c.get('info', 0)} info)"
        )

    def times(self, kernel: str) -> dict[str, float]:
        return {r.graph: r.time_s for r in self.runs if r.kernel == kernel}

    def speedups_vs(self, ours: str, baseline: str) -> np.ndarray:
        """Per-graph ratio baseline_time / our_time (aligned by graph)."""
        t_ours = self.times(ours)
        t_base = self.times(baseline)
        graphs = [g for g in t_ours if g in t_base]
        return np.array([t_base[g] / t_ours[g] for g in graphs])

    def summary_vs(self, ours: str, baseline: str) -> tuple[float, float]:
        """(average speedup, win percentage) — the Table III columns."""
        s = self.speedups_vs(ours, baseline)
        if s.size == 0:
            return float("nan"), float("nan")
        return float(s.mean()), float(100.0 * np.mean(s > 1.0))


#: Sweep pipeline policy: plan-check every point (honoring
#: ``REPRO_NO_PLAN_CHECK``), one ``sweep_point[<op>]`` span per
#: kernel x graph evaluation on the bench trace category.
_SWEEP_CONFIG = EngineConfig(
    check_plans=None, span="sweep_point[{op}]", cat="bench"
)


def _sweep(
    op: str,
    graphs: list[tuple[str, HybridMatrix]],
    kernels: tuple[str, ...],
    *,
    k: int,
    device: DeviceSpec,
    jobs: int | None,
    kernels_by_graph: dict | None = None,
) -> SweepResult:
    out = SweepResult(device=device.name, k=k)
    # Graphs-outer / kernels-inner: the engine groups requests per graph
    # (one fan-out unit each, evaluated in request order), reproducing
    # the historical sweep order exactly.  ``kernels_by_graph``
    # restricts individual graphs to a chosen subset — the selection
    # layer's predicted frontier — without perturbing this ordering.
    matrices = {gname: S for gname, S in graphs}
    per_graph = kernels_by_graph or {}
    requests = [
        EstimateRequest(op=op, kernel=kname, graph=gname, k=k, device=device)
        for gname, _ in graphs
        for kname in per_graph.get(gname, kernels)
    ]
    METRICS.inc("bench.sweeps")
    engine = Engine(_SWEEP_CONFIG, executor=PoolExecutor(jobs=jobs))
    # A plan-check failure propagates as PlanCheckError (the engine
    # counts ``plan_check.failed``) instead of returning partial runs.
    with trace_span(
        f"sweep[{op}]", cat="bench",
        k=k, device=device.name, graphs=len(graphs),
        kernels=len(kernels),
    ):
        batch = engine.estimate_batch(requests, matrices=matrices)
    for res in batch:
        out.runs.append(
            KernelRun(
                graph=res.request.graph,
                kernel=res.request.kernel,
                time_s=res.time_s,
                preprocessing_s=res.preprocessing_s,
                gflops=res.gflops,
            )
        )
    out.plans_checked = batch.plans_checked
    out.plan_diagnostics = dict(batch.plan_diagnostics)
    if graphs:
        # Surface to stderr so report files stay byte-identical.
        print(
            f"[{op} sweep k={k} {device.name}] {out.plan_check_summary()}",
            file=sys.stderr,
        )
    return out


def sweep_spmm(
    graphs: list[tuple[str, HybridMatrix]],
    kernels: tuple[str, ...],
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    jobs: int | None = None,
    kernels_by_graph: dict | None = None,
) -> SweepResult:
    """Timing-only SpMM sweep of ``kernels`` over named graphs.

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable) fans
    per-graph work over a process pool; results keep graph order.
    ``kernels_by_graph`` maps graph names to a kernel subset to sweep
    there instead of ``kernels`` (the predicted-frontier path).
    """
    return _sweep(
        "spmm", graphs, kernels, k=k, device=device, jobs=jobs,
        kernels_by_graph=kernels_by_graph,
    )


def sweep_sddmm(
    graphs: list[tuple[str, HybridMatrix]],
    kernels: tuple[str, ...],
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    jobs: int | None = None,
) -> SweepResult:
    """Timing-only SDDMM sweep of ``kernels`` over named graphs."""
    return _sweep("sddmm", graphs, kernels, k=k, device=device, jobs=jobs)


def results_dir() -> str:
    """Directory where experiment reports are written."""
    base = env_str("REPRO_RESULTS_DIR") or os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))),
        "results",
    )
    os.makedirs(base, exist_ok=True)
    return base


def write_report(
    experiment_id: str, text: str, *, config: dict | None = None
) -> str:
    """Persist a rendered experiment report; returns the path.

    A run manifest (``<experiment_id>.manifest.json`` — env flags,
    versions, unified metrics snapshot; see :mod:`repro.obs.manifest`)
    is written next to the report.  The report text itself is untouched,
    so reports stay byte-identical with or without observability on.
    """
    base = results_dir()
    path = os.path.join(base, f"{experiment_id}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    METRICS.inc("bench.reports")
    write_manifest(experiment_id, base, config)
    return path
