"""Structural features of a sampled world graph.

One row per config in the world report: the feature table
:mod:`repro.select` trains on.  The actual extraction lives in
:mod:`repro.perf.fingerprint` (``structural_features`` /
``feature_vector`` / ``FEATURE_NAMES``) next to the other
structure-only derivations, so the selection layer, the serving tier
and the world sweep all read the *same* feature definition; this module
re-exports it for the world report's callers.
"""

from __future__ import annotations

from ..perf.fingerprint import (  # noqa: F401  (re-exports)
    FEATURE_NAMES,
    feature_vector,
    structural_features,
)

__all__ = ["FEATURE_NAMES", "feature_vector", "structural_features"]
