"""The scenario universe: sampler, crossover maps, sweep, CLI."""

import json
import math
import subprocess
import sys

import pytest

from repro.analysis import default_lint_root, iter_python_files, procsafety_source
from repro.config.registry import ENV_VARS, declared
from repro.graphs import GENERATOR_FAMILIES
from repro.obs import METRICS
from repro.world import (
    SCHEMA,
    build_report,
    build_world_graph,
    crossover_map,
    grid_universe,
    kernel_ranking,
    render_crossover_table,
    render_ranking_table,
    run_world_sweep,
    sample_universe,
    write_world_report,
)
from repro.world.__main__ import main as world_main
from repro.world.universe import DEFAULT_DEGREE_RANGE, P_IN_RANGE

pytestmark = pytest.mark.world

#: Small kernel subset for sweep tests — eligibility on v100 is a given
#: and three kernels are enough to exercise winner/margin/ranking paths.
KERNELS = ["ge-spmm", "hp-spmm", "row-split"]


@pytest.fixture(autouse=True)
def fresh_metrics():
    METRICS.reset()
    yield
    METRICS.reset()


# ----------------------------------------------------------------------
# Sampler: determinism
# ----------------------------------------------------------------------


def test_same_seed_same_universe():
    a = sample_universe(12, seed=7)
    b = sample_universe(12, seed=7)
    assert a == b
    assert [c.to_dict() for c in a] == [c.to_dict() for c in b]


def test_different_seed_different_universe():
    assert sample_universe(12, seed=7) != sample_universe(12, seed=8)


def test_same_seed_across_processes():
    # The CI determinism gate in miniature: a fresh interpreter (fresh
    # NumPy, fresh hash randomization) must sample the identical list.
    code = (
        "import json\n"
        "from repro.world import sample_universe\n"
        "cfgs = sample_universe(8, seed=3)\n"
        "print(json.dumps([c.to_dict() for c in cfgs], sort_keys=True))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    here = json.dumps(
        [c.to_dict() for c in sample_universe(8, seed=3)], sort_keys=True
    )
    assert proc.stdout.strip() == here


# ----------------------------------------------------------------------
# Sampler: stratification + bounds
# ----------------------------------------------------------------------


def test_every_stratum_occupied_exactly_once():
    n = 10
    configs = sample_universe(n, seed=1)
    deg_lo, deg_hi = DEFAULT_DEGREE_RANGE
    # Invert the log interpolation: with default ranges the density cap
    # (n/4 >= 48 > 32) never binds, so each config's degree must land in
    # a distinct one of the n equal log-strata.  Same for linear skew.
    deg_strata = sorted(
        int(
            math.log(c.mean_degree / deg_lo)
            / math.log(deg_hi / deg_lo)
            * n
        )
        for c in configs
    )
    skew_strata = sorted(int(c.skew * n) for c in configs)
    assert deg_strata == list(range(n))
    assert skew_strata == list(range(n))


def test_sampled_params_within_bounds():
    configs = sample_universe(32, seed=5, min_nodes=200, max_nodes=800)
    deg_lo, deg_hi = DEFAULT_DEGREE_RANGE
    p_lo, p_hi = P_IN_RANGE
    for c in configs:
        assert 200 <= c.num_nodes <= 800
        assert deg_lo <= c.mean_degree <= deg_hi
        assert 0.0 <= c.skew < 1.0
        assert p_lo <= c.p_in <= p_hi
        assert c.num_edges >= c.num_nodes
        assert c.name == f"world-{c.index:04d}"


def test_families_cycle():
    configs = sample_universe(9, seed=0)
    assert [c.family for c in configs[:4]] == list(GENERATOR_FAMILIES)
    for c in configs:
        assert c.family == GENERATOR_FAMILIES[c.index % 4]


def test_sampler_rejects_bad_args():
    with pytest.raises(ValueError):
        sample_universe(0, seed=0)
    with pytest.raises(ValueError):
        sample_universe(4, seed=0, min_nodes=512, max_nodes=512)


def test_grid_universe_shape_and_determinism():
    a = grid_universe(3, 4, seed=2)
    b = grid_universe(3, 4, seed=2)
    assert a == b
    assert len(a) == 12
    # Skew coordinates sit at stratum midpoints, one family throughout.
    assert sorted({c.skew for c in a}) == [0.125, 0.375, 0.625, 0.875]
    assert {c.family for c in a} == {"community"}


def test_world_graph_materializes():
    cfg = sample_universe(4, seed=0, max_nodes=320)[0]
    S = build_world_graph(cfg)
    assert S.shape[0] == cfg.num_nodes
    assert S.nnz > 0


# ----------------------------------------------------------------------
# Crossover aggregation on a hand-built fixture
# ----------------------------------------------------------------------


def _fixture_row(degree, skew, winner, loser, w_time, l_time):
    return {
        "mean_degree": degree,
        "skew": skew,
        "winner": winner,
        "margin": l_time / w_time,
        "kernels": {
            winner: {"status": "ok", "total_time_s": w_time},
            loser: {"status": "ok", "total_time_s": l_time},
        },
    }


def _flip_fixture():
    # Two kernels with a known winner flip at mean degree 8 — the
    # geometric midpoint of (2, 32), i.e. the 2-bucket log edge.
    rows = []
    for degree, skew in [(3.0, 0.1), (4.0, 0.6), (6.0, 0.9)]:
        rows.append(_fixture_row(degree, skew, "sparse-k", "dense-k", 1.0, 2.0))
    for degree, skew in [(10.0, 0.2), (16.0, 0.7)]:
        rows.append(_fixture_row(degree, skew, "dense-k", "sparse-k", 1.0, 4.0))
    return rows


def test_crossover_map_winner_flip_at_density_threshold():
    rows = _flip_fixture()
    cx = crossover_map(
        rows, degree_range=(2.0, 32.0), degree_buckets=2, skew_buckets=2
    )
    assert cx["degree_edges"][1] == pytest.approx(8.0)
    by_id = {r["id"]: r for r in cx["regions"]}
    assert len(by_id) == 4
    # Low-density regions belong to sparse-k, high-density to dense-k.
    for rid in ("d0s0", "d0s1"):
        if by_id[rid]["configs"]:
            assert by_id[rid]["top"] == "sparse-k"
    for rid in ("d1s0", "d1s1"):
        if by_id[rid]["configs"]:
            assert by_id[rid]["top"] == "dense-k"
    assert sum(r["configs"] for r in cx["regions"]) == len(rows)
    assert by_id["d0s0"]["winners"] == {"sparse-k": 1}
    assert by_id["d0s1"]["winners"] == {"sparse-k": 2}
    assert by_id["d0s1"]["top_share"] == 1.0
    assert by_id["d0s1"]["mean_margin"] == pytest.approx(2.0)


def test_crossover_tie_breaks_lexicographically():
    rows = [
        _fixture_row(3.0, 0.1, "b-kernel", "a-kernel", 1.0, 2.0),
        _fixture_row(4.0, 0.2, "a-kernel", "b-kernel", 1.0, 2.0),
    ]
    cx = crossover_map(
        rows, degree_range=(2.0, 32.0), degree_buckets=1, skew_buckets=1
    )
    region = cx["regions"][0]
    assert region["winners"] == {"a-kernel": 1, "b-kernel": 1}
    assert region["top"] == "a-kernel"
    assert region["top_share"] == 0.5


def test_kernel_ranking_on_fixture():
    rows = _flip_fixture()
    table = kernel_ranking(rows, ["dense-k", "sparse-k"])
    assert [r["kernel"] for r in table] == ["sparse-k", "dense-k"]
    sparse, dense = table[0], table[1]
    assert sparse["wins"] == 3 and dense["wins"] == 2
    assert sparse["win_share"] == pytest.approx(0.6)
    # sparse-k: winner 3x (rel 1.0), 4.0x slower on the other 2 rows.
    assert sparse["geomean_rel"] == pytest.approx(
        math.exp((2 * math.log(4.0)) / 5)
    )
    assert dense["geomean_rel"] == pytest.approx(
        math.exp((3 * math.log(2.0)) / 5)
    )


# ----------------------------------------------------------------------
# Sweep + report
# ----------------------------------------------------------------------


def test_sweep_report_schema_and_determinism(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    configs = sample_universe(4, seed=0, max_nodes=320)

    def one_pass():
        result = run_world_sweep(configs, kernels=KERNELS)
        assert result.errors == 0
        return build_report(result, mode="sampled", seed=0)

    report = one_pass()
    assert report["schema"] == SCHEMA
    assert report["world"]["kernels"] == sorted(KERNELS)
    assert len(report["points"]) == 4
    for point in report["points"]:
        assert point["winner"] in KERNELS
        assert point["margin"] is None or point["margin"] >= 1.0
        assert point["partition"]["nnz_per_warp"] > 0
        assert point["features"]["nnz"] > 0
    assert sum(r["configs"] for r in report["crossover"]["regions"]) == 4
    assert "workers" not in report["world"]

    # Byte determinism: a second sweep of the same universe serializes
    # identically (the CI smoke job asserts this with cmp).
    dump = lambda r: json.dumps(r, sort_keys=True)
    assert dump(one_pass()) == dump(report)

    path = write_world_report(report, "unittest", config={"samples": 4})
    on_disk = json.load(open(path))
    assert on_disk == json.loads(dump(report))
    manifest = json.load(open(tmp_path / "world_unittest.manifest.json"))
    assert manifest["config"] == {"samples": 4}
    assert METRICS.get("world.configs") >= 4
    assert METRICS.get("world.reports") == 1


def test_render_tables_cover_every_kernel_and_region():
    configs = sample_universe(4, seed=0, max_nodes=320)
    report = build_report(run_world_sweep(configs, kernels=KERNELS))
    ranking = render_ranking_table(report)
    for kernel in KERNELS:
        assert kernel in ranking
    grid = render_crossover_table(report)
    assert grid.count("\n") >= report["crossover"]["degree_buckets"] + 1


def test_cli_smoke(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    rc = world_main(
        [
            "--samples", "4", "--seed", "0", "--max-nodes", "320",
            "--kernels", ",".join(KERNELS), "--out", "cli",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "## Kernel ranking" in out
    assert "## Crossover map" in out
    report = json.load(open(tmp_path / "world_cli.json"))
    assert report["schema"] == SCHEMA
    assert report["errors"] == 0
    assert (tmp_path / "world_cli.manifest.json").exists()


def test_cli_rejects_bad_grid():
    with pytest.raises(SystemExit):
        world_main(["--grid", "8by6"])


# ----------------------------------------------------------------------
# Env registry + env-drift rule coverage
# ----------------------------------------------------------------------


def test_world_env_vars_declared():
    for name in (
        "REPRO_WORLD_SAMPLES",
        "REPRO_WORLD_SEED",
        "REPRO_WORLD_MAX_NODES",
        "REPRO_WORLD_K",
        "REPRO_WORLD_WORKERS",
    ):
        assert declared(name), name
        assert ENV_VARS[name].subsystem == "world"


def test_world_cli_covered_by_procsafety_scan():
    # The CI procsafety gate scans src/repro; the world package — CLI
    # included — must be inside that walk so an undeclared
    # REPRO_WORLD_* read anywhere in it fails the gate.
    scanned = {f.replace("\\", "/") for f in iter_python_files([default_lint_root()])}
    for name in ("__main__", "universe", "sweep", "crossover", "report"):
        assert any(f.endswith(f"world/{name}.py") for f in scanned), name


def test_env_drift_rule_flags_undeclared_world_var():
    source = (
        "from repro.config import env_int\n"
        "def f():\n"
        "    return env_int('REPRO_WORLD_BOGUS', 1)\n"
    )
    diags = procsafety_source(source, "world_fixture.py")
    assert any(d.rule == "procsafety/env-drift" for d in diags), diags
