"""Table V — end-to-end GNN training speedups.

Four model/dataset/mode combinations, three hidden sizes each:

* DGL-mode:  8-layer GCN on arxiv (full-graph),
             4-layer GraphSAINT on Amazon (graph-sampling);
* PyG-mode:  4-layer GCN on Flickr (full-graph),
             3-layer GraphSAINT on Yelp (graph-sampling).

"w/o HP-SpMM" uses the framework's stock sparse kernel (DGL ships
cuSPARSE's ALG2; PyG's SparseTensor mode uses torch-sparse's balanced
CSR kernel with an extra index indirection, modeled by the ALG3-class
profile); "w/ HP-SpMM" swaps in ours.  The expected shape: speedups up
to ~1.7x at hidden 32, shrinking as the hidden size grows (Section
IV-F's K-sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import load_graph
from ..gnn import SyntheticTask, train_full_graph, train_graph_sampling
from .tables import render_table

#: (framework, model, dataset, mode, layers, baseline kernel)
TABLE5_CASES: tuple[tuple, ...] = (
    ("dgl", "gcn", "arxiv", "full-graph", 8, "cusparse-csr-alg2"),
    ("dgl", "graphsaint", "amazon", "graph-sampling", 4, "cusparse-csr-alg2"),
    ("pyg", "gcn", "flickr", "full-graph", 4, "cusparse-csr-alg3"),
    ("pyg", "graphsaint", "yelp", "graph-sampling", 3, "cusparse-csr-alg3"),
)

#: Published Table V speedups, keyed by (framework, model, hidden).
PAPER_TABLE5 = {
    ("dgl", "gcn", 32): 1.68,
    ("dgl", "gcn", 128): 1.27,
    ("dgl", "gcn", 256): 1.20,
    ("dgl", "graphsaint", 32): 1.25,
    ("dgl", "graphsaint", 128): 1.12,
    ("dgl", "graphsaint", 256): 1.07,
    ("pyg", "gcn", 32): 1.68,
    ("pyg", "gcn", 128): 1.45,
    ("pyg", "gcn", 256): 1.30,
    ("pyg", "graphsaint", 32): 1.72,
    ("pyg", "graphsaint", 128): 1.49,
    ("pyg", "graphsaint", 256): 1.31,
}


@dataclass
class Table5Result:
    """Measured vs paper end-to-end training speedups."""

    rows: list[list]

    def render(self) -> str:
        return render_table(
            [
                "framework",
                "model/dataset/mode",
                "hidden",
                "w/o HP (ms)",
                "w/ HP (ms)",
                "speedup",
                "paper",
            ],
            self.rows,
            title="Table V — end-to-end GNN training (simulated GPU time)",
        )

    def speedup(self, framework: str, model: str, hidden: int) -> float:
        for row in self.rows:
            if row[0] == framework and row[1].startswith(model) and row[2] == hidden:
                return row[5]
        raise KeyError((framework, model, hidden))


def run_table5(
    *,
    hiddens: tuple[int, ...] = (32, 128, 256),
    epochs: int = 3,
    device: DeviceSpec = TESLA_V100,
    max_edges: int | None = 400_000,
    node_budget: int = 12_000,
    seed: int = 0,
) -> Table5Result:
    """Run the end-to-end training comparison."""
    rows: list[list] = []
    for framework, model, dataset, mode, layers, baseline in TABLE5_CASES:
        ds = load_graph(dataset, max_edges=max_edges)
        task = SyntheticTask.for_graph(ds.matrix, seed=seed)
        for hidden in hiddens:
            times = {}
            for label, kern in (("without", baseline), ("with", "hp-spmm")):
                if mode == "full-graph":
                    rep = train_full_graph(
                        ds.matrix,
                        task,
                        hidden=hidden,
                        num_layers=layers,
                        epochs=epochs,
                        device=device,
                        spmm_kernel=kern,
                        seed=seed,
                    )
                else:
                    rep = train_graph_sampling(
                        ds.matrix,
                        task,
                        hidden=hidden,
                        num_layers=layers,
                        iterations=epochs,
                        node_budget=node_budget,
                        device=device,
                        spmm_kernel=kern,
                        seed=seed,
                    )
                times[label] = rep.simulated_gpu_s
            speedup = times["without"] / times["with"]
            rows.append(
                [
                    framework,
                    f"{model}/{dataset}/{mode}",
                    hidden,
                    times["without"] * 1e3,
                    times["with"] * 1e3,
                    speedup,
                    PAPER_TABLE5.get((framework, model, hidden), "-"),
                ]
            )
    return Table5Result(rows=rows)
