"""Behavioral models of the (closed-source) cuSPARSE kernels.

The paper benchmarks four cuSPARSE kernels (v11.8): CSR SpMM ALG2 and
ALG3, COO SpMM ALG4, and the default CSR SDDMM.  cuSPARSE is not open
source; the paper characterizes these kernels through profiling (Nsight
Compute): the CSR algorithms run an embedded partition kernel for load
balance but issue misaligned/uncoalesced accesses and use fixed task
granularity (no DTP), the COO algorithm is edge-parallel with atomic
accumulation, and the CSR SDDMM is node-parallel.  These models encode
exactly those observed behaviors.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import (
    CostParams,
    DeviceSpec,
    LaunchConfig,
    WarpWorkload,
    simulate_launch,
)
from .api import (
    SDDMMKernel,
    SpMMKernel,
    register_sddmm,
    register_spmm,
)
from .common import (
    estimate_hit_rate,
    per_warp_nnz,
    row_segments_per_slice,
    split_by_hit_rate,
    warp_slice_starts,
)
from .baselines.node_parallel import (
    NodeParallelProfile,
    build_node_parallel_workload,
)


def _balanced_csr_workload(
    S: HybridMatrix,
    k: int,
    device: DeviceSpec,
    *,
    nnz_per_warp: int,
    extra_instr_per_nnz: float,
    extra_sectors_per_nnz: float,
    warps_per_block: int,
    dense_traffic_factor: float = 1.6,
) -> tuple[WarpWorkload, LaunchConfig]:
    """Shared machinery for cuSPARSE's balanced CSR SpMM algorithms.

    Fixed ``nnz_per_warp`` granularity (no DTP), scalar loads, and the
    misaligned / partially-uncoalesced dense accesses the paper observed
    with Nsight Compute (``dense_traffic_factor`` models the redundant
    sectors of the uncoalesced fraction).
    """
    nnz = S.nnz
    starts = warp_slice_starts(nnz, nnz_per_warp)
    slice_nnz = per_warp_nnz(nnz, nnz_per_warp).astype(np.float64)
    segments = row_segments_per_slice(S.row, starts, nnz_per_warp).astype(
        np.float64
    )
    sector = device.l2_sector_bytes
    feats = float(k)
    # Misaligned dense accesses: one extra sector per row access, plus the
    # uncoalesced-fraction redundancy.
    dense_sectors_per_nnz = feats * 4 / sector * dense_traffic_factor + 1.0

    issue = slice_nnz * (
        2.0 + extra_instr_per_nnz          # scalar col/val loads + extras
        + np.ceil(feats / 32.0)            # dense loads (scalar)
        + np.ceil(feats / 32.0)            # FMA
    ) + segments * np.ceil(feats / 32.0)
    fma = slice_nnz * np.ceil(feats / 32.0)

    sparse_sectors = slice_nnz * (0.5 + extra_sectors_per_nnz)
    dense_sectors = slice_nnz * dense_sectors_per_nnz
    hit = estimate_hit_rate(
        S.col, bytes_per_item=k * 4.0, device=device,
        concurrent_warps=starts.size,
    )
    dense_l2, dense_dram = split_by_hit_rate(dense_sectors, hit)
    write_sectors = segments * (feats * 4 / sector)
    atomics = segments * np.ceil(feats / 32.0)

    work = WarpWorkload(
        issue=issue,
        l2_sectors=dense_l2,
        dram_sectors=sparse_sectors + dense_dram + write_sectors,
        fma=fma,
        atomics=atomics,
    )
    config = LaunchConfig(
        warps_per_block=warps_per_block,
        registers_per_thread=40,
        shared_mem_per_block=0,
    )
    return work, config


@register_spmm
class CusparseCsrAlg2(SpMMKernel):
    """cuSPARSE CSR SpMM, CUSPARSE_SPMM_CSR_ALG2.

    Balanced via the built-in partition pass, fixed 128-nnz granularity,
    scalar and misaligned accesses.
    """

    name = "cusparse-csr-alg2"

    def __init__(self, *, nnz_per_warp: int = 128, warps_per_block: int = 4):
        self.nnz_per_warp = nnz_per_warp
        self.warps_per_block = warps_per_block

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        work, config = _balanced_csr_workload(
            S,
            k,
            device,
            nnz_per_warp=self.nnz_per_warp,
            extra_instr_per_nnz=3.0,
            extra_sectors_per_nnz=2.0,
            warps_per_block=self.warps_per_block,
            dense_traffic_factor=1.35,
        )
        return simulate_launch(device, work, config, cost), 0.0


@register_spmm
class CusparseCsrAlg3(SpMMKernel):
    """cuSPARSE CSR SpMM, CUSPARSE_SPMM_CSR_ALG3.

    The profiled partition kernel is an integral part of the API call
    (paper Section IV-A2): its pass over the nonzeros is charged here as
    an extra embedded launch, and the main kernel reads the partition
    array per nonzero.  Granularity is coarser than ALG2, worsening the
    tail on small graphs — the paper indeed measures ALG3 *slower* than
    ALG2 on average.
    """

    name = "cusparse-csr-alg3"

    def __init__(self, *, nnz_per_warp: int = 256, warps_per_block: int = 4):
        self.nnz_per_warp = nnz_per_warp
        self.warps_per_block = warps_per_block

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        work, config = _balanced_csr_workload(
            S,
            k,
            device,
            nnz_per_warp=self.nnz_per_warp,
            extra_instr_per_nnz=4.0,       # partition-array reads
            extra_sectors_per_nnz=1.5,
            warps_per_block=self.warps_per_block,
            dense_traffic_factor=2.0,      # extra indirection per access
        )
        stats = simulate_launch(device, work, config, cost)

        # Embedded partition kernel: one balanced pass over the nonzeros
        # (read row extents, write partition descriptors).
        nnz = max(1, S.nnz)
        part_warps = max(1, nnz // 1024)
        per = np.full(part_warps, nnz / part_warps, dtype=np.float64)
        part_work = WarpWorkload(
            issue=per * 0.2,
            l2_sectors=per * 0.0,
            dram_sectors=per * (8.0 / device.l2_sector_bytes),
            fma=np.zeros(part_warps),
        )
        part_stats = simulate_launch(
            device,
            part_work,
            LaunchConfig(warps_per_block=8, registers_per_thread=32),
            cost,
        )
        combined = stats.time_s + part_stats.time_s
        return KernelStatsWithTime(stats, combined), 0.0


def KernelStatsWithTime(stats, new_time_s: float):
    """Return a copy of ``stats`` with the end-to-end time replaced."""
    from dataclasses import replace

    return replace(stats, time_s=new_time_s)


@register_spmm
class CusparseCooAlg4(SpMMKernel):
    """cuSPARSE COO SpMM, CUSPARSE_SPMM_COO_ALG4 — edge-parallel atomics.

    Perfectly balanced (each warp owns 32 edges) but every nonzero
    atomically accumulates a K-vector into the output row: write traffic
    scales with NNZ instead of M, and atomics contend on hot rows.
    """

    name = "cusparse-coo-alg4"

    def __init__(self, *, warps_per_block: int = 8):
        self.warps_per_block = warps_per_block

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        nnz = S.nnz
        npw = 32
        slice_nnz = per_warp_nnz(nnz, npw).astype(np.float64)
        num_warps = slice_nnz.size
        sector = device.l2_sector_bytes
        feats = float(k)

        issue = slice_nnz * (
            3.0                                # row, col, val scalar loads
            + np.ceil(feats / 32.0)            # dense loads
            + np.ceil(feats / 32.0)            # FMA
            + np.ceil(feats / 32.0)            # atomic adds
        )
        fma = slice_nnz * np.ceil(feats / 32.0)

        sparse_sectors = slice_nnz * (12.0 / sector)  # 3 coalesced arrays
        dense_sectors = slice_nnz * (feats * 4 / sector)
        hit = estimate_hit_rate(
            S.col, bytes_per_item=k * 4.0, device=device,
            concurrent_warps=num_warps,
        )
        dense_l2, dense_dram = split_by_hit_rate(dense_sectors, hit)

        # Atomic accumulation: every nonzero writes K floats through L2;
        # DRAM absorbs the per-row write-back (M rows) plus the spill of
        # rows evicted between touches.
        atomic_l2_sectors = slice_nnz * (feats * 4 / sector)
        m = max(1, S.shape[0])
        row_writeback = (m * feats * 4 / sector) / num_warps
        spill = atomic_l2_sectors * 0.15
        atomics = slice_nnz * np.ceil(feats / 32.0)

        work = WarpWorkload(
            issue=issue,
            l2_sectors=dense_l2 + atomic_l2_sectors,
            dram_sectors=sparse_sectors + dense_dram + row_writeback + spill,
            fma=fma,
            atomics=atomics,
        )
        config = LaunchConfig(
            warps_per_block=self.warps_per_block,
            registers_per_thread=32,
            shared_mem_per_block=0,
        )
        return simulate_launch(device, work, config, cost), 0.0


#: cuSPARSE's CSR SDDMM is node-parallel: one warp per output row.
CUSPARSE_SDDMM_PROFILE = NodeParallelProfile(
    features_per_warp=32,
    vector_width=1,
    sparse_instr_per_nnz=3.0,
    sparse_sectors_per_nnz=2.0,
    misaligned_dense=True,
    row_overhead_instr=16.0,
    warps_per_block=8,
    registers_per_thread=32,
    shared_mem_per_block=0,
    dense_traffic_factor=2.3,  # reads both A1 and A2 rows per nonzero
)


@register_sddmm
class CusparseCsrSDDMM(SDDMMKernel):
    """cuSPARSE CSR SDDMM (default algorithm) — node-parallel."""

    name = "cusparse-csr-sddmm"

    def __init__(self, profile: NodeParallelProfile = CUSPARSE_SDDMM_PROFILE):
        self.profile = profile

    def _estimate(
        self,
        S: HybridMatrix,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> tuple:
        work, config = build_node_parallel_workload(S, k, self.profile, device)
        return simulate_launch(device, work, config, cost), 0.0
