"""Fig. 9 — kernel performance on the full-graph dataset (V100, K=64).

Regenerates the per-graph SpMM and SDDMM comparison over the 19 Table II
graphs: throughput of HP kernels and every baseline, plus per-graph
speedups.  Section IV-B1 also evaluates K = 32 and 128; pass ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim import DeviceSpec, TESLA_V100
from ..graphs import FULL_GRAPH_ORDER, load_graph
from .runner import (
    SDDMM_BASELINES,
    SPMM_BASELINES,
    SweepResult,
    sweep_sddmm,
    sweep_spmm,
)
from .tables import render_table


@dataclass
class Fig9Result:
    """Per-graph kernel comparison on the full-graph dataset."""

    spmm: SweepResult
    sddmm: SweepResult
    graphs: list[str]
    k: int
    device: str

    def render(self) -> str:
        headers = ["graph", "hp-spmm (us)"] + [
            f"{b} (x)" for b in SPMM_BASELINES
        ] + ["hp-sddmm (us)"] + [f"{b} (x)" for b in SDDMM_BASELINES]
        t_hp = self.spmm.times("hp-spmm")
        t_hps = self.sddmm.times("hp-sddmm")
        rows = []
        for g in self.graphs:
            row = [g, t_hp[g] * 1e6]
            for b in SPMM_BASELINES:
                row.append(self.spmm.times(b)[g] / t_hp[g])
            row.append(t_hps[g] * 1e6)
            for b in SDDMM_BASELINES:
                row.append(self.sddmm.times(b)[g] / t_hps[g])
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=(
                f"Fig. 9 — sparse kernels, full-graph dataset "
                f"({self.device}, K={self.k}); columns are speedup of HP "
                f"over each baseline"
            ),
        )


def run_fig9(
    *,
    k: int = 64,
    device: DeviceSpec = TESLA_V100,
    graphs: tuple[str, ...] = FULL_GRAPH_ORDER,
    max_edges: int | None = None,
) -> Fig9Result:
    """Run the Fig. 9 experiment."""
    named = [
        (name, load_graph(name, max_edges=max_edges).matrix) for name in graphs
    ]
    spmm = sweep_spmm(named, ("hp-spmm",) + SPMM_BASELINES, k=k, device=device)
    sddmm = sweep_sddmm(
        named, ("hp-sddmm",) + SDDMM_BASELINES, k=k, device=device
    )
    return Fig9Result(
        spmm=spmm,
        sddmm=sddmm,
        graphs=list(graphs),
        k=k,
        device=device.name,
    )
