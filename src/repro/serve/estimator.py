"""The two evaluation paths behind the estimation server.

* :func:`full_estimate` is the authoritative path: the kernel's cost
  model on the GPU simulator, routed through :mod:`repro.engine` (and
  therefore through the process-wide estimate cache), exactly what the
  bench harness reports.
* :func:`quick_estimate` is the degraded path: a closed-form roofline
  over aggregate matrix statistics (nnz, shape, K) with no warp-workload
  construction, no memory-transaction modeling and no cache-model
  sampling.  It is O(1), answers in microseconds, and is what the server
  falls back to when a request's deadline cannot survive the full path.

Batch fan-out lives in the engine now: the server builds engine
requests per micro-batch group and executes them through its configured
:class:`~repro.engine.Executor` (the ``REPRO_JOBS`` pool by default,
or the sharded worker servers).  Both paths label their answers from
the one bound vocabulary in :mod:`repro.engine.bounds`.
"""

from __future__ import annotations

from ..engine import (
    BOUND_DRAM,
    BOUND_FMA,
    EstimateRequest as EngineRequest,
    default_engine,
)
from ..formats import HybridMatrix
from ..gpusim import DeviceSpec


def full_estimate(
    op: str, kernel: str, S: HybridMatrix, k: int, device: DeviceSpec
) -> tuple[float, float, str]:
    """Authoritative cost-model estimate: (time_s, preprocessing_s, bound)."""
    res = default_engine().estimate(
        EngineRequest(op=op, kernel=kernel, k=k, device=device),
        matrix=S,
    )
    return res.time_s, res.preprocessing_s, res.bound


def quick_estimate(
    op: str, S: HybridMatrix, k: int, device: DeviceSpec
) -> tuple[float, str]:
    """Closed-form roofline approximation: (time_s, bound).

    Byte counts assume the compulsory traffic of each op — sparse
    structure (8 B per nonzero for index+value), the gathered/streamed
    K-wide operand rows, and the output — priced at peak DRAM bandwidth
    against the FP32 FMA roofline.  No occupancy, imbalance, L2 or
    tail-effect modeling: that is exactly the fidelity the degraded
    path trades away for latency.
    """
    m = S.shape[0]
    nnz = S.nnz
    flops = 2.0 * nnz * k
    if op == "spmm":
        # indices+values, one gathered K-row per nonzero, dense output.
        bytes_moved = 8.0 * nnz + 4.0 * k * nnz + 4.0 * k * m
    else:  # sddmm: two K-row reads per nonzero, nnz-length output.
        bytes_moved = 8.0 * nnz + 8.0 * k * nnz + 4.0 * nnz
    t_mem = bytes_moved / device.dram_bandwidth
    t_fma = flops / device.peak_fp32_flops
    time_s = max(t_mem, t_fma) + device.kernel_launch_overhead_s
    return time_s, (BOUND_DRAM if t_mem >= t_fma else BOUND_FMA)
