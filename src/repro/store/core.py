"""Fingerprint-addressed, memory-mapped graph/matrix store.

Every executor beyond :class:`~repro.engine.InlineExecutor` used to pay a
per-request serialization tax: the ``REPRO_JOBS`` pool pickled full
matrices into worker queues, and every ``ShardedExecutor`` worker server
materialized its own copy of every graph it was ever shipped.  The store
removes that tax by writing each matrix's arrays **once** into a
shared-memory segment (or an on-disk mmap file) addressed by its
structural fingerprint; every consumer attaches a zero-copy NumPy view
instead of receiving pickled bytes.

Addressing
----------
A segment is named by :func:`repro.perf.fingerprint.matrix_fingerprint`
— the same structural fingerprint the estimate cache keys on — so two
call sites publishing the same sparsity pattern share one segment, and
an attached matrix's fingerprint is known without re-hashing its index
arrays (:func:`repro.perf.fingerprint.register_fingerprint` pre-seeds
the memo at attach time, which is what kills the per-process
fingerprint recompute the sharded workers used to pay).

Segment layout
--------------
``magic (8 bytes) | header length (8 ASCII digits) | JSON header |
padding to 1024 | arrays``, each array 64-byte aligned.  The header
repeats the fingerprint, dtypes, shapes, and offsets; an attach
validates magic, fingerprint, and size before building views, so a
corrupted or recycled segment raises :class:`StoreAttachError` instead
of returning garbage — executors treat that error as "fall back to the
pickled/inline path for this item".

Backends
--------
``shm``
    ``multiprocessing.shared_memory`` segments (default).  Attaching
    processes unregister from the resource tracker so a transient pool
    worker's exit cannot unlink a segment the parent still serves.
``mmap``
    Plain files under ``REPRO_STORE_DIR`` (default: a per-process
    directory in the system temp dir) mapped with ``mmap``.  Selected
    via ``REPRO_STORE_BACKEND=mmap`` or automatically when shared
    memory cannot be created.

Lifecycle
---------
Segments persist for the publishing process's lifetime; consumers keep
their mappings open for as long as the process lives, so attached views
never dangle.  :meth:`SharedGraphStore.shutdown` unlinks every segment
name (subsequent attaches fail; existing views stay valid because the
mapping is retained), and an ``atexit`` hook performs the same unlink so
no segment outlives the run.  ``REPRO_NO_SHARED_STORE=1`` disables the
store entirely — executors transparently revert to pickling matrices.
"""

from __future__ import annotations

import atexit
import json
import mmap
import os
import tempfile
import threading
from dataclasses import dataclass

import numpy as np

from ..config import env_flag, env_str
from ..formats import HybridMatrix
from ..obs import trace_span
from ..perf.fingerprint import matrix_fingerprint, register_fingerprint

MAGIC = b"RPRSTOR1"
HEADER_SIZE = 1024
_ALIGN = 64

BACKEND_SHM = "shm"
BACKEND_MMAP = "mmap"
_VALID_BACKENDS = (BACKEND_SHM, BACKEND_MMAP)


class StoreError(RuntimeError):
    """The store could not publish a matrix (creation/write failure)."""


class StoreAttachError(StoreError):
    """A consumer could not attach a published segment.

    Raised for missing segments (unlinked names), size mismatches, and
    corrupted headers.  Executors catch exactly this type and fall back
    to evaluating the item from its in-process (pickled) payload.
    """


def store_enabled() -> bool:
    """False when ``REPRO_NO_SHARED_STORE`` opts out (read per call)."""
    return not env_flag("REPRO_NO_SHARED_STORE")


def _resolve_backend() -> str:
    raw = env_str("REPRO_STORE_BACKEND").lower()
    if not raw:
        return BACKEND_SHM
    if raw not in _VALID_BACKENDS:
        raise ValueError(
            f"REPRO_STORE_BACKEND must be one of {list(_VALID_BACKENDS)}; "
            f"got {raw!r}"
        )
    return raw


def _resolve_store_dir() -> str:
    """Directory for mmap-backend files (shared by forked workers)."""
    return env_str("REPRO_STORE_DIR") or os.path.join(
        tempfile.gettempdir(), f"repro-store-{os.getpid()}"
    )


@dataclass(frozen=True)
class StoreHandle:
    """Everything a consumer needs to attach one published matrix.

    Handles are tiny (a few hundred bytes) and picklable — this is what
    executors ship over the wire instead of the matrix itself.
    """

    fingerprint: str
    backend: str                 #: BACKEND_SHM | BACKEND_MMAP
    name: str                    #: shm segment name or absolute file path
    total_bytes: int             #: full segment size including header
    shape: tuple[int, int]
    arrays: tuple                #: ((field, dtype_str, length, offset), ...)


def _layout(S: HybridMatrix) -> tuple[tuple, int]:
    """Aligned (field, dtype, length, offset) entries + total size."""
    entries = []
    offset = HEADER_SIZE
    for field in ("row", "col", "val"):
        arr = getattr(S, field)
        offset = ((offset + _ALIGN - 1) // _ALIGN) * _ALIGN
        entries.append((field, str(arr.dtype), int(arr.size), offset))
        offset += arr.nbytes
    return tuple(entries), offset


def _unregister_shm(shm) -> None:
    """Drop a segment from the resource tracker.

    ``SharedMemory`` registers segments with the resource tracker even
    when merely attaching (CPython gh-82300), so a short-lived pool
    worker's exit could unlink a segment the publisher still serves.
    Only the publisher keeps its registration — its ``unlink()`` (the
    shutdown/atexit path) clears it, and it is the crash-recovery net
    until then.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _neuter_shm(shm) -> None:
    """Disarm ``SharedMemory.__del__``'s close of the mapping.

    The store keeps mappings open for the process lifetime because
    attached matrices are zero-copy views into them; the default
    finalizer would try to close the mmap under those live exports and
    raise ``BufferError`` at interpreter teardown.  The mapping stays
    reachable through the ``view -> memoryview -> mmap`` chain, so
    dropping the object's own references only silences the finalizer
    (the file descriptor is still closed by it).
    """
    try:
        shm._buf = None
        shm._mmap = None
    except AttributeError:
        pass


class _Segment:
    """One live mapping: keeps the buffer's owner object alive."""

    __slots__ = ("handle", "owner", "buf", "matrix", "payload_bytes")

    def __init__(self, handle, owner, buf, matrix, payload_bytes):
        self.handle = handle
        self.owner = owner          # SharedMemory | (file, mmap)
        self.buf = buf              # writable memoryview/mmap
        self.matrix = matrix        # zero-copy HybridMatrix over buf
        self.payload_bytes = payload_bytes

    def unlink(self) -> None:
        """Remove the segment's name; the mapping itself stays valid."""
        try:
            if isinstance(self.owner, tuple):  # mmap backend: (file, mm)
                os.remove(self.handle.name)
            else:
                self.owner.unlink()
        except (OSError, FileNotFoundError):
            pass


class SharedGraphStore:
    """The fingerprint-addressed segment registry for one process tree.

    The publishing process holds :attr:`_segments` (fingerprint →
    mapping); forked workers inherit both the dict and the mappings, so
    an attach for an inherited fingerprint is a dictionary lookup — the
    arrays are already shared pages.  Workers attaching segments
    published *after* the fork map them by name and memoize in
    :attr:`_attached`.
    """

    def __init__(self, backend: str | None = None) -> None:
        self.backend = backend or _resolve_backend()
        self._lock = threading.Lock()
        self._segments: dict[str, _Segment] = {}
        self._attached: dict[str, _Segment] = {}
        self._seq = 0
        # Counters, merged into obs snapshots as ``store.*`` (the same
        # instance-owned pattern as the estimate cache).
        self.publishes = 0
        self.publish_hits = 0
        self.attaches = 0
        self.attach_hits = 0
        self.fallbacks = 0
        self.bytes_shared = 0

    # -- publishing -----------------------------------------------------
    def publish(self, S: HybridMatrix) -> StoreHandle:
        """Write ``S`` into a shared segment (idempotent by fingerprint)."""
        fp = matrix_fingerprint(S)
        with self._lock:
            seg = self._segments.get(fp)
            if seg is not None:
                self.publish_hits += 1
                return seg.handle
        arrays, total = _layout(S)
        header = json.dumps(
            {
                "fingerprint": fp,
                "shape": list(S.shape),
                "arrays": [list(e) for e in arrays],
                "total_bytes": total,
            }
        ).encode()
        if len(MAGIC) + 8 + len(header) > HEADER_SIZE:
            raise StoreError(
                f"store header too large ({len(header)} bytes) for "
                f"fingerprint {fp!r}"
            )
        with trace_span("store.publish", cat="store", bytes=total):
            with self._lock:
                self._seq += 1
                seq = self._seq
            try:
                owner, buf, name = self._create(total, seq)
            except OSError as exc:
                raise StoreError(
                    f"cannot create {self.backend} segment "
                    f"({total} bytes): {exc}"
                ) from exc
            buf[: len(MAGIC)] = MAGIC
            buf[len(MAGIC): len(MAGIC) + 8] = f"{len(header):08d}".encode()
            buf[len(MAGIC) + 8: len(MAGIC) + 8 + len(header)] = header
            handle = StoreHandle(
                fingerprint=fp,
                backend=self.backend,
                name=name,
                total_bytes=total,
                shape=(int(S.shape[0]), int(S.shape[1])),
                arrays=arrays,
            )
            views = {}
            for field, dtype, length, offset in arrays:
                view = np.frombuffer(
                    buf, dtype=np.dtype(dtype), count=length, offset=offset
                )
                view[:] = getattr(S, field)
                view.setflags(write=False)
                views[field] = view
            matrix = HybridMatrix(
                row=views["row"], col=views["col"], val=views["val"],
                shape=handle.shape,
            )
            register_fingerprint(matrix, fp)
            payload = total - HEADER_SIZE
            seg = _Segment(handle, owner, buf, matrix, payload)
        with self._lock:
            raced = self._segments.get(fp)
            if raced is None:
                self._segments[fp] = seg
                self.publishes += 1
                self.bytes_shared += payload
                return handle
            self.publish_hits += 1
        # Concurrent publish: keep the first copy.  The loser's unlink
        # touches /dev/shm or the filesystem, so it runs after the lock
        # is released rather than stalling every other store caller.
        seg.unlink()
        return raced.handle

    def shared_matrix(self, S: HybridMatrix) -> HybridMatrix:
        """``S`` re-backed by its shared segment (published on demand).

        The returned matrix's arrays are read-only views into the
        segment, so the publisher and every attached process reference
        one physical copy.  Falls back to ``S`` itself when the store
        is disabled or publication fails.
        """
        if not store_enabled():
            return S
        try:
            handle = self.publish(S)
        except StoreError:
            with self._lock:
                self.fallbacks += 1
            return S
        with self._lock:
            return self._segments[handle.fingerprint].matrix

    def _create(self, total: int, seq: int):
        """(owner, writable buffer, name) for a fresh segment."""
        if self.backend == BACKEND_SHM:
            from multiprocessing import shared_memory

            name = f"rstore_{os.getpid()}_{seq}"
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=total, name=name
                )
            except (OSError, ValueError, FileExistsError):
                # /dev/shm unavailable or name taken: degrade to mmap
                # files for this and every later segment.
                self.backend = BACKEND_MMAP
                return self._create(total, seq)
            buf = shm.buf
            # Keep the publisher's resource-tracker registration:
            # ``SharedMemory.unlink()`` (our shutdown path) clears it,
            # and it is the crash-recovery net until then.
            _neuter_shm(shm)
            return shm, buf, name
        directory = _resolve_store_dir()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"rstore_{os.getpid()}_{seq}.bin")
        f = open(path, "w+b")
        try:
            f.truncate(total)
            mm = mmap.mmap(f.fileno(), total)
        except OSError:
            f.close()
            raise
        return (f, mm), mm, path

    # -- attaching ------------------------------------------------------
    def attach(self, handle: StoreHandle) -> HybridMatrix:
        """Zero-copy view of a published matrix; validates the segment."""
        with self._lock:
            seg = self._segments.get(handle.fingerprint)
            if seg is None:
                seg = self._attached.get(handle.fingerprint)
            if seg is not None:
                self.attach_hits += 1
                return seg.matrix
        with trace_span("store.attach", cat="store", bytes=handle.total_bytes):
            owner, buf = self._open(handle)
            try:
                self._validate(handle, buf)
            except StoreAttachError:
                self._close(owner)
                raise
            views = {}
            for field, dtype, length, offset in handle.arrays:
                view = np.frombuffer(
                    buf, dtype=np.dtype(dtype), count=length, offset=offset
                )
                view.setflags(write=False)
                views[field] = view
            matrix = HybridMatrix(
                row=views["row"], col=views["col"], val=views["val"],
                shape=tuple(handle.shape),
            )
            register_fingerprint(matrix, handle.fingerprint)
            seg = _Segment(
                handle, owner, buf, matrix,
                handle.total_bytes - HEADER_SIZE,
            )
        with self._lock:
            self._attached[handle.fingerprint] = seg
            self.attaches += 1
        return matrix

    def _open(self, handle: StoreHandle):
        if handle.backend == BACKEND_SHM:
            from multiprocessing import shared_memory

            try:
                shm = shared_memory.SharedMemory(name=handle.name)
            except (OSError, ValueError) as exc:
                raise StoreAttachError(
                    f"cannot attach shm segment {handle.name!r}: {exc}"
                ) from exc
            buf = shm.buf
            _unregister_shm(shm)
            _neuter_shm(shm)
            return shm, buf
        try:
            f = open(handle.name, "rb")
        except OSError as exc:
            raise StoreAttachError(
                f"cannot attach mmap segment {handle.name!r}: {exc}"
            ) from exc
        try:
            # ValueError covers a zero-length backing file (truncated by
            # a crashed publisher): mmap refuses an empty map.
            mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            f.close()
            raise StoreAttachError(
                f"cannot attach mmap segment {handle.name!r}: {exc}"
            ) from exc
        return (f, mm), mm

    @staticmethod
    def _close(owner) -> None:
        try:
            if isinstance(owner, tuple):
                owner[1].close()
                owner[0].close()
            else:
                owner.close()
        except (OSError, BufferError):
            pass

    @staticmethod
    def _validate(handle: StoreHandle, buf) -> None:
        """Corruption check: magic, fingerprint, and size must match."""
        if len(buf) < handle.total_bytes:
            raise StoreAttachError(
                f"segment {handle.name!r} truncated: {len(buf)} < "
                f"{handle.total_bytes} bytes"
            )
        if bytes(buf[: len(MAGIC)]) != MAGIC:
            raise StoreAttachError(
                f"segment {handle.name!r} has a corrupted header "
                f"(bad magic)"
            )
        try:
            hlen = int(bytes(buf[len(MAGIC): len(MAGIC) + 8]))
            header = json.loads(
                bytes(buf[len(MAGIC) + 8: len(MAGIC) + 8 + hlen])
            )
        except (ValueError, UnicodeDecodeError) as exc:
            raise StoreAttachError(
                f"segment {handle.name!r} has an unreadable header: {exc}"
            ) from exc
        if header.get("fingerprint") != handle.fingerprint:
            raise StoreAttachError(
                f"segment {handle.name!r} holds fingerprint "
                f"{header.get('fingerprint')!r}, expected "
                f"{handle.fingerprint!r} (recycled or corrupted segment)"
            )

    # -- accounting -----------------------------------------------------
    def record_fallback(self, count: int = 1) -> None:
        """Count a consumer degrading to the pickle/inline path."""
        with self._lock:
            self.fallbacks += count

    def absorb(self, delta: dict) -> None:
        """Fold a worker process's counter deltas into this instance.

        Sharded worker servers attach segments in their own process;
        their replies carry ``{counter: delta}`` dicts so the parent's
        snapshot (and run manifests) see the sharing actually happening.
        """
        if not delta:
            return
        with self._lock:
            for key in ("attaches", "attach_hits", "fallbacks"):
                if delta.get(key):
                    setattr(self, key, getattr(self, key) + int(delta[key]))

    def counters(self) -> dict:
        """Plain-dict counter snapshot (``store.*`` in obs snapshots)."""
        with self._lock:
            return {
                "publishes": self.publishes,
                "publish_hits": self.publish_hits,
                "attaches": self.attaches,
                "attach_hits": self.attach_hits,
                "fallbacks": self.fallbacks,
                "segments": len(self._segments),
                "bytes_shared": self.bytes_shared,
            }

    # -- lifecycle ------------------------------------------------------
    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    def shutdown(self) -> None:
        """Unlink every published segment name (idempotent).

        Mappings stay open, so matrices already attached anywhere remain
        valid; only *new* attaches fail.  Counters are preserved —
        shutdown mid-run must not zero the run's accounting.
        """
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._attached.clear()
            self.bytes_shared = 0
        for seg in segments:
            seg.unlink()


_STORE: SharedGraphStore | None = None
_STORE_LOCK = threading.Lock()


def get_store() -> SharedGraphStore:
    """The process-wide store (created on first use)."""
    global _STORE
    with _STORE_LOCK:
        if _STORE is None:
            _STORE = SharedGraphStore()
        return _STORE


def reset_store() -> None:
    """Shut down and drop the process-wide store (tests)."""
    global _STORE
    with _STORE_LOCK:
        store, _STORE = _STORE, None
    if store is not None:
        store.shutdown()


def shared_matrix(S: HybridMatrix) -> HybridMatrix:
    """Module-level convenience for :meth:`SharedGraphStore.shared_matrix`.

    Returns ``S`` unchanged when the store is disabled
    (``REPRO_NO_SHARED_STORE``) — the transparent-integration hook
    :mod:`repro.graphs.registry` calls on every loaded dataset.
    """
    if not store_enabled():
        return S
    return get_store().shared_matrix(S)


def store_counters() -> dict:
    """Counter snapshot of the process-wide store (zeros when unused)."""
    with _STORE_LOCK:
        store = _STORE
    if store is None:
        return {
            "publishes": 0, "publish_hits": 0, "attaches": 0,
            "attach_hits": 0, "fallbacks": 0, "segments": 0,
            "bytes_shared": 0,
        }
    return store.counters()


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    with _STORE_LOCK:
        store = _STORE
    if store is not None:
        try:
            store.shutdown()
        except Exception:
            pass
