"""LSH/Jaccard, pair-merging and RCM reorderers."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.graphs import community_graph
from repro.reorder import (
    LSHReorderer,
    PairMergeReorderer,
    RCMReorderer,
    validate_permutation,
)
from repro.reorder.lsh import estimated_jaccard, exact_jaccard, minhash_signatures


def small_graph(seed=0):
    return community_graph(300, 2400, num_communities=6, p_in=0.9, seed=seed)


def test_minhash_signature_shape():
    g = small_graph()
    sig = minhash_signatures(g, num_hashes=6)
    assert sig.shape == (300, 6)


def test_minhash_identical_rows_identical_signatures():
    # Two rows with identical neighbor sets get identical signatures.
    S = HybridMatrix.from_arrays(
        [0, 0, 1, 1], [3, 7, 3, 7], None, shape=(4, 8)
    )
    sig = minhash_signatures(S, num_hashes=8)
    np.testing.assert_array_equal(sig[0], sig[1])


def test_minhash_empty_rows_get_sentinel():
    S = HybridMatrix.from_arrays([0], [1], None, shape=(3, 3))
    sig = minhash_signatures(S, num_hashes=4)
    assert np.all(sig[1] == sig[2])  # both empty


def test_exact_jaccard():
    a = np.array([1, 2, 3])
    b = np.array([2, 3, 4])
    assert exact_jaccard(a, b) == pytest.approx(0.5)
    assert exact_jaccard(a, a) == 1.0
    assert exact_jaccard(np.array([]), np.array([])) == 0.0
    assert exact_jaccard(a, np.array([9])) == 0.0


def test_estimated_jaccard_tracks_exact():
    # Similar neighbor sets -> high estimated similarity.
    S = HybridMatrix.from_arrays(
        [0] * 10 + [1] * 10 + [2] * 10,
        list(range(10)) + list(range(10)) + list(range(50, 60)),
        None,
        shape=(3, 64),
    )
    sig = minhash_signatures(S, num_hashes=16)
    sim01 = estimated_jaccard(sig[0], sig[1])
    sim02 = estimated_jaccard(sig[0], sig[2])
    assert sim01 > sim02


def test_lsh_produces_valid_permutation():
    g = small_graph(1)
    perm = LSHReorderer().permutation(g)
    validate_permutation(perm, g.shape[0])


def test_lsh_band_size_validation():
    with pytest.raises(ValueError):
        LSHReorderer(num_hashes=8, band_size=3)


def test_pairmerge_valid_permutation_small():
    g = community_graph(60, 400, num_communities=4, p_in=0.9, seed=2)
    perm = PairMergeReorderer().permutation(g)
    validate_permutation(perm, g.shape[0])


def test_pairmerge_tiny():
    g = HybridMatrix.from_arrays([0, 1], [1, 0], None, shape=(2, 2))
    np.testing.assert_array_equal(
        PairMergeReorderer().permutation(g), [0, 1]
    )


def test_pairmerge_chains_similar_rows_adjacently():
    # Rows 0/1 share neighbors; row 2 is disjoint: 0 and 1 are adjacent.
    S = HybridMatrix.from_arrays(
        [0, 0, 0, 1, 1, 1, 2, 2, 2],
        [3, 4, 5, 3, 4, 5, 10, 11, 12],
        None,
        shape=(3, 16),
    )
    perm = PairMergeReorderer().permutation(S)
    pos = {int(v): i for i, v in enumerate(perm)}
    assert abs(pos[0] - pos[1]) == 1


def test_rcm_valid_permutation():
    g = small_graph(3)
    perm = RCMReorderer().permutation(g)
    validate_permutation(perm, g.shape[0])


def test_rcm_reduces_bandwidth_on_path_graph():
    # A shuffled path graph: RCM should recover a near-linear ordering
    # with far smaller bandwidth than the shuffled one.
    n = 200
    rng = np.random.default_rng(0)
    relabel = rng.permutation(n)
    src = relabel[np.arange(n - 1)]
    dst = relabel[np.arange(1, n)]
    from repro.formats import COOMatrix

    g = HybridMatrix.from_coo(
        COOMatrix.from_arrays(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            None,
            shape=(n, n),
        )
    )
    res = RCMReorderer().apply(g)

    def bandwidth(h):
        return int(np.max(np.abs(h.row.astype(int) - h.col.astype(int))))

    assert bandwidth(res.matrix) < bandwidth(g) / 4


def test_rcm_handles_disconnected_components():
    S = HybridMatrix.from_arrays(
        [0, 1, 3, 4], [1, 0, 4, 3], None, shape=(6, 6)
    )
    perm = RCMReorderer().permutation(S)
    validate_permutation(perm, 6)
