"""Fig. 9 — kernel performance over the full-graph dataset (V100)."""

from repro.bench import run_fig9, write_report

from conftest import bench_max_edges


def test_fig9_full_graph_dataset(run_once):
    res = run_once(run_fig9, k=64, max_edges=bench_max_edges())
    report = res.render()
    print("\n" + report)
    write_report("fig9", report)

    # Paper shape: HP-SpMM beats every baseline on average; row-split is
    # the weakest baseline, cuSPARSE ALG2 the strongest.
    averages = {
        b: res.spmm.summary_vs("hp-spmm", b)[0]
        for b in (
            "cusparse-csr-alg2",
            "cusparse-csr-alg3",
            "cusparse-coo-alg4",
            "ge-spmm",
            "row-split",
        )
    }
    assert all(v > 1.0 for v in averages.values())
    assert averages["row-split"] > averages["ge-spmm"] > averages["cusparse-csr-alg2"]
    assert averages["cusparse-csr-alg3"] > averages["cusparse-csr-alg2"]

    # SDDMM: node-parallel cuSPARSE far behind; DGL close but behind.
    dgl_avg = res.sddmm.summary_vs("hp-sddmm", "dgl-sddmm")[0]
    cus_avg = res.sddmm.summary_vs("hp-sddmm", "cusparse-csr-sddmm")[0]
    assert 1.0 < dgl_avg < cus_avg


def test_fig9_k_sweep_32_128(run_once):
    """Section IV-B1 also reports K = 32 and 128."""

    def both():
        small = run_fig9(k=32, graphs=("flickr", "corafull"),
                         max_edges=bench_max_edges())
        large = run_fig9(k=128, graphs=("flickr", "corafull"),
                         max_edges=bench_max_edges())
        return small, large

    small, large = run_once(both)
    for res in (small, large):
        avg, _ = res.spmm.summary_vs("hp-spmm", "ge-spmm")
        assert avg > 1.0
    # Relative speedup shrinks as K grows (Section IV-F).
    s32 = small.spmm.summary_vs("hp-spmm", "ge-spmm")[0]
    s128 = large.spmm.summary_vs("hp-spmm", "ge-spmm")[0]
    assert s32 > s128
