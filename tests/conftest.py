"""Shared fixtures: small deterministic matrices and graphs.

Tests force a small edge cap for registry graphs (REPRO_MAX_EDGES) so
the calibrated datasets generate in well under a second each.
"""

import os

os.environ.setdefault("REPRO_MAX_EDGES", "60000")

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import COOMatrix, CSRMatrix, HybridMatrix


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


def random_hybrid(m, n, nnz, seed=0, values=True) -> HybridMatrix:
    """A random hybrid CSR/COO matrix with exactly-ish nnz entries."""
    r = np.random.default_rng(seed)
    density = min(1.0, nnz / max(1, m * n))
    mat = sp.random(
        m, n, density=density, random_state=np.random.RandomState(seed),
        format="csr", dtype=np.float32,
        data_rvs=(None if values else (lambda k: np.ones(k, dtype=np.float32))),
    )
    return HybridMatrix.from_scipy(mat)


@pytest.fixture(scope="session")
def small_matrix() -> HybridMatrix:
    """A 200x200 sparse matrix with ~2000 nonzeros."""
    return random_hybrid(200, 200, 2000, seed=1)


@pytest.fixture(scope="session")
def medium_matrix() -> HybridMatrix:
    """A 3000x3000 sparse matrix with ~40k nonzeros."""
    return random_hybrid(3000, 3000, 40_000, seed=2)


@pytest.fixture(scope="session")
def skewed_matrix() -> HybridMatrix:
    """A matrix with one enormous row (load-imbalance stressor)."""
    r = np.random.default_rng(3)
    n = 2000
    # 1500 nnz spread thin + 1200 nnz in row 0.
    rows = np.concatenate([
        np.zeros(1200, dtype=np.int64),
        r.integers(1, n, size=1500),
    ])
    cols = r.integers(0, n, size=rows.size)
    coo = COOMatrix.from_arrays(rows, cols, None, shape=(n, n))
    return HybridMatrix.from_coo(coo)


@pytest.fixture(scope="session")
def paper_fig2_matrix() -> HybridMatrix:
    """The exact 4x4 example of paper Fig. 2 (values a..g)."""
    dense = np.array(
        [
            [1, 0, 2, 0],
            [0, 0, 3, 0],
            [4, 5, 0, 6],
            [0, 0, 7, 0],
        ],
        dtype=np.float32,
    )
    return HybridMatrix.from_scipy(sp.csr_matrix(dense))


@pytest.fixture
def features(rng):
    def make(n, k, seed=0):
        return np.random.default_rng(seed).standard_normal((n, k)).astype(
            np.float32
        )

    return make
