"""Property-based invariants of the simulator and the tuner (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    DEFAULT_COST,
    LaunchConfig,
    TESLA_A30,
    TESLA_V100,
    WarpWorkload,
    simulate_launch,
)
from repro.tuning import (
    CANDIDATE_NNZ_PER_WARP,
    feature_groups,
    hvma_vector_width,
    select_partition,
)


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 400))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    scale = draw(st.floats(0.1, 1000.0))
    return WarpWorkload(
        issue=rng.random(n) * scale,
        l2_sectors=rng.random(n) * scale,
        dram_sectors=rng.random(n) * scale,
        fma=rng.random(n) * scale,
    )


CFG = LaunchConfig(warps_per_block=4)


@given(workloads(), st.floats(1.01, 10.0))
@settings(max_examples=40, deadline=None)
def test_launch_time_monotone_in_work(work, factor):
    t1 = simulate_launch(TESLA_V100, work, CFG).time_s
    t2 = simulate_launch(TESLA_V100, work.scaled(factor), CFG).time_s
    assert t2 >= t1 - 1e-12


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_launch_time_positive_and_bounded_below_by_overhead(work):
    stats = simulate_launch(TESLA_V100, work, CFG)
    assert stats.time_s >= TESLA_V100.kernel_launch_overhead_s
    assert np.isfinite(stats.time_s)
    assert stats.bound in ("balance", "issue", "fma", "l2", "dram", "atomic")


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_launch_critical_path_lower_bound(work):
    # The launch can never finish faster than its slowest single block.
    stats = simulate_launch(TESLA_V100, work, CFG)
    assert stats.cycles >= stats.longest_block_cycles - 1e-9


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_faster_device_is_not_slower(work):
    # Same silicon but double the SMs: never slower.
    bigger = TESLA_V100.with_(num_sms=TESLA_V100.num_sms * 2)
    t1 = simulate_launch(TESLA_V100, work, CFG).time_s
    t2 = simulate_launch(bigger, work, CFG).time_s
    assert t2 <= t1 + 1e-12


@given(
    st.integers(0, 10**8),
    st.sampled_from([16, 32, 64, 128, 256, 512]),
)
@settings(max_examples=60, deadline=None)
def test_dtp_selection_total_work_conserved(nnz, k):
    part = select_partition(nnz, k, TESLA_V100)
    assert part.nnz_per_warp in CANDIDATE_NNZ_PER_WARP
    # Slices cover all nonzeros exactly once.
    if nnz:
        assert (part.num_slices - 1) * part.nnz_per_warp < nnz
        assert part.num_slices * part.nnz_per_warp >= nnz
    # Feature groups cover K.
    assert part.num_feature_groups * 32 * part.vector_width >= min(k, 32)


@given(st.sampled_from([8, 32, 64, 128, 256, 512]), st.integers(1, 1024))
@settings(max_examples=80, deadline=None)
def test_hvma_width_legal(npw, k):
    vw = hvma_vector_width(npw, k)
    assert vw in (1, 2, 4)
    if vw > 1:
        assert k % (32 * vw) == 0
    assert feature_groups(k, vw) >= 1


@given(
    st.integers(1, 10**7),
    st.sampled_from([32, 64, 128]),
)
@settings(max_examples=40, deadline=None)
def test_dtp_consistent_across_devices(nnz, k):
    # Both devices produce a legal partition; a smaller device (fewer
    # SMs) never requires a larger NnzPerWarp than a bigger one for the
    # same waves target.
    v100 = select_partition(nnz, k, TESLA_V100)
    a30 = select_partition(nnz, k, TESLA_A30)
    assert a30.nnz_per_warp >= v100.nnz_per_warp
