"""Process-wide counters registry and the unified metrics snapshot.

Before this module, run statistics lived in scattered places: the
estimate cache kept hit/miss/eviction/disk-error counts on its own
instance, the bench runner printed plan-check totals to stderr, and the
process-pool fan-out had no accounting at all.  :data:`METRICS` is the
single registry those subsystems increment, and :func:`snapshot` merges
it with the live estimate-cache stats into one plain dict — the payload
embedded in every run manifest (:mod:`repro.obs.manifest`).

Counter names are dotted, ``subsystem.event``:

* ``parallel.pool_runs`` / ``parallel.pool_fallbacks`` /
  ``parallel.serial_runs`` / ``parallel.items`` — fan-out accounting;
* ``plan_check.checked`` / ``plan_check.failed`` and
  ``plan_check.diag_<severity>`` — static schedule checker totals;
* ``bench.sweeps`` / ``bench.reports`` — harness activity;
* ``gnn.spmm_ops`` / ``gnn.sddmm_ops`` / ``gnn.gemm_ops`` — training
  accrual (see :mod:`repro.gnn.timing`);
* ``gpusim.trace_replays`` / ``gpusim.profile_reports`` — validation
  tooling usage;
* ``serve.*`` — estimation-serving layer accounting (requests, batches,
  coalescing, degraded/timeout responses, ``serve.worker_crashes``;
  see :mod:`repro.serve`), plus the socket front end's connection and
  admission counters (``serve.conn_opened`` / ``serve.conn_closed`` /
  ``serve.conn_active_max``, ``serve.net_requests`` /
  ``serve.net_responses``, ``serve.shed``, ``serve.protocol_errors``)
  and its ``serve.conn_lifetime`` histogram;
* ``estimate_cache.*`` — merged in at snapshot time from
  :func:`repro.perf.estimate_cache.estimate_cache_stats`;
* ``store.*`` — shared graph/matrix store accounting (publishes,
  attaches, bytes shared, fallbacks), merged in at snapshot time from
  :func:`repro.store.store_counters`.

Counters are deterministic given the same inputs, so manifests diff
cleanly across runs; only host timings (which never enter the counter
registry) vary by machine.  The one exception is the **latency
histogram** registry below: histograms record *measured* serving-path
latencies (a wall-clock surface by definition, like the tracer), and
their percentile summaries appear in :func:`snapshot` only once a
histogram has observations — experiments that never serve requests keep
byte-stable manifests.
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """A named-counter registry; thread-safe, insertion-ordered."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def record_max(self, name: str, value: float) -> None:
        """Raise counter ``name`` to ``value`` if larger (high-water mark).

        Used for gauge-like quantities that only matter at their peak —
        serving queue depth, largest micro-batch — where a sum would be
        meaningless.
        """
        with self._lock:
            self._counters[name] = max(self._counters.get(name, 0), value)

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> dict[str, float]:
        """A sorted copy of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def reset(self) -> None:
        """Drop all counters (tests and fresh harness runs)."""
        with self._lock:
            self._counters.clear()


#: The process-wide registry all subsystems increment.
METRICS = MetricsRegistry()


# ----------------------------------------------------------------------
# Latency histograms (serving-path observability)
# ----------------------------------------------------------------------

#: Default fixed bucket upper bounds in seconds: a 1-2-5 geometric ladder
#: from 10 µs to 10 s, plus an implicit +inf overflow bucket.  Fixed (not
#: adaptive) buckets keep observations mergeable and percentile queries
#: O(buckets) with no sample retention.
DEFAULT_LATENCY_BOUNDS_S: tuple[float, ...] = (
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram over non-negative latencies, in seconds.

    Prometheus-style cumulative-bucket semantics: ``observe(s)`` lands in
    the first bucket whose upper bound is ``>= s`` (or the overflow
    bucket past the last bound).  :meth:`percentile` answers with the
    nearest-rank bucket upper bound, clamped to the observed maximum so
    a single-sample histogram reports that sample exactly and the
    overflow bucket never reports infinity.  Thread-safe; ``observe`` is
    O(buckets) worst case and lock-held work is a few adds.
    """

    def __init__(
        self,
        name: str,
        bounds_s: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_S,
    ) -> None:
        if not bounds_s or any(
            b <= 0 for b in bounds_s
        ) or list(bounds_s) != sorted(bounds_s):
            raise ValueError(
                "bounds_s must be a non-empty ascending tuple of positive "
                f"seconds; got {bounds_s!r}"
            )
        self.name = name
        self.bounds_s = tuple(float(b) for b in bounds_s)
        self._counts = [0] * (len(self.bounds_s) + 1)  # +1: overflow
        self._count = 0
        self._sum_s = 0.0
        self._max_s = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one latency observation (negatives clamp to 0)."""
        s = max(0.0, float(seconds))
        idx = len(self.bounds_s)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds_s):
            if s <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum_s += s
            self._max_s = max(self._max_s, s)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum_s(self) -> float:
        with self._lock:
            return self._sum_s

    @property
    def max_s(self) -> float:
        with self._lock:
            return self._max_s

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile estimate in seconds.

        Empty histograms answer 0.0.  The answer is the upper bound of
        the bucket holding the rank-``ceil(p/100 * count)`` observation,
        clamped to the observed maximum (exact for single samples and
        for overflow-bucket ranks).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, -(-self._count * p // 100))  # ceil, at least 1
            seen = 0
            for i, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    if i == len(self.bounds_s):  # overflow bucket
                        return self._max_s
                    return min(self.bounds_s[i], self._max_s)
            return self._max_s  # unreachable; defensive

    def summary(self) -> dict:
        """Plain-dict summary: count, mean, max, p50/p95/p99 (seconds)."""
        with self._lock:
            count, total, peak = self._count, self._sum_s, self._max_s
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "max": peak,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds_s) + 1)
            self._count = 0
            self._sum_s = 0.0
            self._max_s = 0.0


_HISTOGRAMS: dict[str, LatencyHistogram] = {}
_HISTOGRAMS_LOCK = threading.Lock()


def get_histogram(name: str) -> LatencyHistogram:
    """The process-wide histogram ``name``, created on first use."""
    with _HISTOGRAMS_LOCK:
        hist = _HISTOGRAMS.get(name)
        if hist is None:
            hist = _HISTOGRAMS[name] = LatencyHistogram(name)
        return hist


def observe_latency(name: str, seconds: float) -> None:
    """Record one observation into histogram ``name``."""
    get_histogram(name).observe(seconds)


def histogram_summaries() -> dict[str, dict]:
    """Summaries of every histogram with at least one observation."""
    with _HISTOGRAMS_LOCK:
        hists = sorted(_HISTOGRAMS.items())
    return {name: h.summary() for name, h in hists if h.count}


def reset_histograms() -> None:
    """Drop every histogram (tests and fresh harness runs)."""
    with _HISTOGRAMS_LOCK:
        _HISTOGRAMS.clear()


def snapshot() -> dict:
    """Unified metrics snapshot: registry counters + live subsystem stats.

    The estimate cache keeps its counters on the cache object (they
    survive env-driven reconfiguration — see
    :func:`repro.perf.estimate_cache.get_estimate_cache`), so they are
    merged here at read time rather than double-counted on every hit.
    """
    # Imported lazily: repro.perf.parallel imports this module, so a
    # top-level import would be circular.
    from ..perf.estimate_cache import estimate_cache_stats
    from ..store import store_counters
    from .tracer import get_tracer

    out = METRICS.counters()
    cache = estimate_cache_stats()
    out.update(
        {
            "estimate_cache.hits": cache.hits,
            "estimate_cache.misses": cache.misses,
            "estimate_cache.disk_hits": cache.disk_hits,
            "estimate_cache.disk_errors": cache.disk_errors,
            "estimate_cache.evictions": cache.evictions,
            "estimate_cache.entries": cache.entries,
            "estimate_cache.stored_bytes": cache.stored_bytes,
        }
    )
    # Shared-store counters live on the store instance (workers ship
    # deltas back through their executors) and merge the same way.
    out.update(
        {f"store.{k}": v for k, v in store_counters().items()}
    )
    tracer = get_tracer()
    out["trace.spans"] = len(tracer.spans) if tracer is not None else 0
    # Histogram percentiles are flattened as <name>.{count,p50,p95,p99}.
    # Only histograms with observations appear, so runs that never touch
    # the serving path keep deterministic, byte-stable manifests.
    for name, summary in histogram_summaries().items():
        for stat in ("count", "p50", "p95", "p99"):
            out[f"{name}.{stat}"] = summary[stat]
    return dict(sorted(out.items()))
