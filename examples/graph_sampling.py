"""Graph-sampling training and the tail effect (paper Sections III-B, IV-B2).

Usage::

    python examples/graph_sampling.py [graph-name]

Samples GraphSAINT-style subgraphs, shows how Dynamic Task Partition
adapts NnzPerWarp to each subgraph's size (small graphs need small
granularity to fill the GPU), and trains a GraphSAINT model with the
stock kernel vs HP-SpMM.
"""

import sys

from repro.bench import render_table
from repro.gnn import SyntheticTask, train_graph_sampling
from repro.gpusim import TESLA_V100
from repro.graphs import (
    load_graph,
    sage_neighbor_sampler,
    saint_edge_sampler,
    saint_node_sampler,
    saint_walk_sampler,
)
from repro.kernels import HPSpMM, make_spmm


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "yelp"
    ds = load_graph(name, max_edges=400_000)
    parent = ds.matrix
    print(f"parent graph {ds.name}: {ds.num_nodes} nodes, {ds.num_edges} edges\n")

    # --- DTP on sampled subgraphs ---------------------------------------
    hp = HPSpMM()
    subs = [
        saint_node_sampler(parent, 2000, seed=1),
        saint_edge_sampler(parent, 8000, seed=2),
        saint_walk_sampler(parent, 500, 4, seed=3),
        sage_neighbor_sampler(parent, 250, (10, 10), seed=4),
    ]
    rows = []
    for sub in subs:
        part = hp.partition(sub.matrix, 64, TESLA_V100)
        t_hp = hp.estimate(sub.matrix, 64, TESLA_V100).stats
        t_cu = make_spmm("cusparse-csr-alg2").estimate(
            sub.matrix, 64, TESLA_V100
        ).stats
        rows.append([
            sub.sampler, sub.num_nodes, sub.num_edges,
            part.nnz_per_warp, f"{part.waves:.2f}",
            t_hp.time_us, t_cu.time_s / t_hp.time_s,
        ])
    full_part = hp.partition(parent, 64, TESLA_V100)
    rows.append([
        "(full graph)", parent.shape[0], parent.nnz,
        full_part.nnz_per_warp, f"{full_part.waves:.2f}",
        hp.estimate(parent, 64, TESLA_V100).stats.time_us,
        make_spmm("cusparse-csr-alg2").estimate(parent, 64, TESLA_V100)
        .stats.time_s
        / hp.estimate(parent, 64, TESLA_V100).stats.time_s,
    ])
    print(render_table(
        ["workload", "nodes", "edges", "DTP NnzPerWarp", "waves",
         "HP-SpMM (us)", "vs cuSPARSE (x)"],
        rows,
        title="Dynamic Task Partition across subgraph scales",
    ))

    # --- GraphSAINT training --------------------------------------------
    task = SyntheticTask.for_graph(parent, seed=0)
    reps = {}
    for kernel in ("cusparse-csr-alg2", "hp-spmm"):
        reps[kernel] = train_graph_sampling(
            parent, task, hidden=32, num_layers=3, iterations=6,
            node_budget=4000, spmm_kernel=kernel, seed=5,
        )
    base, ours = reps["cusparse-csr-alg2"], reps["hp-spmm"]
    print(f"\nGraphSAINT training ({len(ours.losses)} iterations): "
          f"loss {ours.losses[0]:.3f} -> {ours.final_loss:.3f}")
    print(f"simulated GPU time: cuSPARSE {base.simulated_gpu_s * 1e3:.2f} ms, "
          f"HP-SpMM {ours.simulated_gpu_s * 1e3:.2f} ms "
          f"({base.simulated_gpu_s / ours.simulated_gpu_s:.2f}x, "
          f"paper Table V: up to 1.72x)")


if __name__ == "__main__":
    main()
