"""The unified estimation pipeline (repro.engine)."""

import pytest

from repro.engine import (
    VALID_BOUNDS,
    VALID_OPS,
    CostPriorBook,
    Engine,
    EngineConfig,
    EstimateRequest,
    InlineExecutor,
    PlanCheckError,
    PoolExecutor,
    ShardedExecutor,
    check_bound,
    cost_priors,
    kernel_factory,
    make_kernel,
    plan_checking_enabled,
    valid_kernels,
)
from repro.gpusim import TESLA_V100
from repro.kernels import make_spmm

from tests.conftest import random_hybrid


@pytest.fixture(autouse=True)
def fresh_engine_state(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_NO_PLAN_CHECK", raising=False)
    cost_priors().reset()
    yield
    cost_priors().reset()


def S():
    return random_hybrid(200, 200, 1500, seed=41)


def req(**kw):
    base = dict(op="spmm", kernel="hp-spmm", graph="g", k=32,
                device=TESLA_V100)
    base.update(kw)
    return EstimateRequest(**base)


# ----------------------------------------------------------------------
# Registry (deduplicated op -> factory maps)
# ----------------------------------------------------------------------

def test_kernel_factory_unknown_op_lists_valid_ops():
    with pytest.raises(KeyError, match="spmm.*sddmm"):
        kernel_factory("gemm")


def test_make_kernel_unknown_name_lists_registered_kernels():
    with pytest.raises(KeyError, match="hp-spmm"):
        make_kernel("spmm", "no-such-kernel")
    with pytest.raises(KeyError, match="hp-sddmm"):
        make_kernel("sddmm", "no-such-kernel")


def test_make_kernel_dispatches_both_ops():
    assert make_kernel("spmm", "hp-spmm").name == make_spmm("hp-spmm").name
    assert make_kernel("sddmm", "hp-sddmm") is not None
    assert valid_kernels("spmm") == tuple(sorted(valid_kernels("spmm")))
    assert "hp-spmm" in valid_kernels("spmm")


# ----------------------------------------------------------------------
# Bound vocabulary
# ----------------------------------------------------------------------

def test_check_bound_accepts_canonical_labels_only():
    for b in VALID_BOUNDS:
        assert check_bound(b) == b
    with pytest.raises(ValueError, match="valid bounds"):
        check_bound("latency")


def test_simulator_bounds_are_in_the_canonical_vocabulary():
    # The full simulator's possible labels (launch.py bounds dict keys
    # plus the launch-overhead degenerate case) must all be canonical.
    from repro.serve import quick_estimate

    res = Engine().estimate(req(), matrix=S())
    assert res.bound in VALID_BOUNDS
    _, qbound = quick_estimate("spmm", S(), 32, TESLA_V100)
    assert qbound in VALID_BOUNDS


# ----------------------------------------------------------------------
# Requests / config
# ----------------------------------------------------------------------

def test_request_validation():
    with pytest.raises(ValueError, match="op must be one of"):
        req(op="gemm")
    with pytest.raises(ValueError, match="k must be positive"):
        req(k=0)
    assert req().op in VALID_OPS


def test_config_env_resolution(monkeypatch):
    assert plan_checking_enabled()
    monkeypatch.setenv("REPRO_NO_PLAN_CHECK", "1")
    assert not plan_checking_enabled()
    assert EngineConfig(check_plans=None).plan_checking() is False
    assert EngineConfig(check_plans=True).plan_checking() is True
    monkeypatch.delenv("REPRO_NO_PLAN_CHECK")
    assert EngineConfig(check_plans=None).plan_checking() is True
    resolved = EngineConfig().resolved()
    assert set(resolved) == {"plan_check", "estimate_cache", "capture_errors"}


# ----------------------------------------------------------------------
# Pipeline behavior
# ----------------------------------------------------------------------

def test_engine_estimate_matches_direct_kernel_api():
    matrix = S()
    res = Engine().estimate(req(), matrix=matrix)
    direct = make_spmm("hp-spmm").estimate(matrix, 32, TESLA_V100)
    assert res.ok
    assert res.time_s == direct.stats.time_s
    assert res.preprocessing_s == direct.preprocessing_s
    assert res.bound == direct.stats.bound
    assert res.total_time_s == direct.stats.time_s + direct.preprocessing_s


def test_missing_graph_and_matrix_raises():
    with pytest.raises(ValueError, match="no matrix was supplied"):
        Engine().estimate(EstimateRequest(op="spmm", kernel="hp-spmm"))


def test_capture_errors_returns_error_results():
    eng = Engine(EngineConfig(capture_errors=True))
    batch = eng.estimate_batch(
        [req(), req(kernel="no-such-kernel"), req(device="no-such-device")],
        matrix=S(),
    )
    ok, bad_kernel, bad_device = batch.results
    assert ok.ok
    assert bad_kernel.status == "error" and "KeyError" in bad_kernel.error
    assert bad_device.status == "error"
    # Without capture, the same failure propagates.
    with pytest.raises(KeyError):
        Engine().estimate(req(kernel="no-such-kernel"), matrix=S())


def test_plan_check_failure_raises_plan_check_error(monkeypatch):
    from repro.engine import core as engine_core

    def exploding_check(plan):
        raise PlanCheckError("injected plan failure")

    monkeypatch.setattr(engine_core, "check_plan", exploding_check)
    eng = Engine(EngineConfig(check_plans=True))
    with pytest.raises(PlanCheckError):
        eng.estimate(req(), matrix=S())


def test_batch_results_keep_request_order():
    kernels = ("hp-spmm", "ge-spmm", "row-split")
    batch = Engine().estimate_batch(
        [req(kernel=k) for k in kernels], matrix=S()
    )
    assert [r.request.kernel for r in batch] == list(kernels)
    assert len(batch) == 3


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

def _three_graph_requests():
    matrices = {
        "a": random_hybrid(200, 200, 1500, seed=21),
        "b": random_hybrid(300, 300, 2500, seed=22),
        "c": random_hybrid(250, 250, 2000, seed=23),
    }
    requests = [
        req(graph=g, kernel=k)
        for g in matrices
        for k in ("hp-spmm", "ge-spmm")
    ]
    return matrices, requests


def _values(batch):
    return [
        (r.request.graph, r.request.kernel, r.time_s, r.preprocessing_s,
         r.gflops, r.bound)
        for r in batch
    ]


def test_all_executors_produce_identical_results():
    matrices, requests = _three_graph_requests()
    inline = Engine(executor=InlineExecutor()).estimate_batch(
        requests, matrices=matrices
    )
    pooled = Engine(executor=PoolExecutor(jobs=2)).estimate_batch(
        requests, matrices=matrices
    )
    with ShardedExecutor(workers=2) as sharded_exec:
        sharded = Engine(executor=sharded_exec).estimate_batch(
            requests, matrices=matrices
        )
    assert _values(inline) == _values(pooled) == _values(sharded)


def test_sharded_executor_spreads_units_over_workers():
    matrices, requests = _three_graph_requests()
    with ShardedExecutor(workers=2) as executor:
        assert executor.worker_count == 2
        Engine(executor=executor).estimate_batch(requests, matrices=matrices)
        # Three graph units round-robined over two persistent workers.
        assert len(executor.dispatch_counts) == 2
        assert sum(executor.dispatch_counts.values()) == 3


def test_sharded_executor_propagates_worker_errors():
    with ShardedExecutor(workers=2) as executor:
        eng = Engine(executor=executor)
        with pytest.raises(KeyError, match="no-such-kernel"):
            eng.estimate(req(kernel="no-such-kernel"), matrix=S())


def test_sharded_executor_requires_positive_workers():
    with pytest.raises(ValueError):
        ShardedExecutor(workers=0)


# ----------------------------------------------------------------------
# Cost priors
# ----------------------------------------------------------------------

def test_cost_prior_book_running_mean():
    book = CostPriorBook()
    assert book.predict("g") is None
    book.observe("g", 2.0, count=1)
    book.observe("g", 4.0, count=1)
    assert book.predict("g") == pytest.approx(3.0)
    book.observe("g", 3.0, count=2)
    assert book.predict("g") == pytest.approx(3.0)
    assert book.observations("g") == 4
    snap = book.snapshot()
    assert snap["g"]["count"] == 4
    book.reset()
    assert book.predict("g") is None


def test_engine_observes_priors_when_configured():
    eng = Engine(EngineConfig(observe_priors=True))
    eng.estimate_batch([req(), req(kernel="ge-spmm")], matrices={"g": S()})
    assert cost_priors().observations("g") == 2
    assert cost_priors().predict("g") >= 0.0
    # Default engines do not write the book.
    cost_priors().reset()
    Engine().estimate(req(), matrix=S())
    assert cost_priors().predict("g") is None
