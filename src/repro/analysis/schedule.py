"""Layer 1 — static plan checker for kernel task decompositions.

A :class:`KernelPlan` captures the *schedule* a kernel would launch — how
the nnz stream is sliced over warps, which output rows each slice
touches, how cross-warp writes to a shared row are merged, and the
:class:`~repro.gpusim.LaunchConfig` resources — without running the
simulator.  :func:`check_plan` verifies the invariants the HP-SpMM /
HP-SDDMM cost models (and every baseline model) silently assume:

* **Coverage** — warp slices partition ``[0, nnz)`` exactly: no gap
  (work silently dropped) and no overlap (work double-counted).
* **Write-write races** — every output row touched by two or more slices
  must be covered by a row-switch/atomic merge; a plan with plain stores
  and a shared row is the classic silent-corruption bug of nnz-split
  sparse kernels.
* **Occupancy legality** — threads/block, registers and shared memory
  within :class:`~repro.gpusim.DeviceSpec` limits, and at least one
  resident block per SM (paper Eqs. 3-4); a wave-geometry report rides
  along as an info diagnostic.
* **HVMA preconditions** — a claimed dense vector width must divide the
  feature dimension per the repo's own HVMA rule, and sparse vector
  loads require sector-aligned slice starts.

Rule ids are stable strings (``plan/...``) so tests and the CI gate can
assert on them; see DESIGN.md for the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..formats import HybridMatrix
from ..gpusim import DeviceSpec, LaunchConfig
from .diagnostics import ERROR, INFO, WARNING, Diagnostic

# Merge modes: how cross-warp writes to one output location are resolved.
MERGE_ATOMIC = "atomic"    #: row-switch / atomic accumulation — race-free
MERGE_PRIVATE = "private"  #: each output location owned by exactly one slice
MERGE_NONE = "none"        #: plain stores — shared rows are races

MERGE_MODES = (MERGE_ATOMIC, MERGE_PRIVATE, MERGE_NONE)

#: How many offending rows/slices to name in one diagnostic message.
_MAX_NAMED = 4


@dataclass(frozen=True)
class KernelPlan:
    """Static description of one kernel launch's task decomposition.

    ``starts``/``ends`` are per-slice offsets into the nnz stream (a
    slice may be empty — node-parallel kernels emit one slice per row,
    including empty rows).  ``row`` is the per-nnz output-row index in
    stream order, or ``None`` when every output location is written by
    construction at most once (per-nnz outputs, e.g. SDDMM values).
    """

    kernel: str               #: registry name, e.g. ``hp-spmm``
    op: str                   #: ``spmm`` | ``sddmm``
    nnz: int
    k: int
    starts: np.ndarray        #: int64 slice start offsets
    ends: np.ndarray          #: int64 slice end offsets (exclusive)
    row: np.ndarray | None    #: per-nnz output row, or None (private outputs)
    merge: str                #: one of :data:`MERGE_MODES`
    config: LaunchConfig
    device: DeviceSpec
    vector_width: int = 1         #: claimed dense-load vector width
    sparse_vector_width: int = 1  #: claimed sparse-tile vector width
    num_feature_groups: int = 1   #: warps replicated along K (Ineq. 5)
    notes: str = ""

    def __post_init__(self) -> None:
        if self.merge not in MERGE_MODES:
            raise ValueError(f"merge must be one of {MERGE_MODES}")
        object.__setattr__(
            self, "starts", np.asarray(self.starts, dtype=np.int64)
        )
        object.__setattr__(self, "ends", np.asarray(self.ends, dtype=np.int64))

    @property
    def num_slices(self) -> int:
        return int(self.starts.size)

    @property
    def num_warps(self) -> int:
        return self.num_slices * self.num_feature_groups


def _check_coverage(plan: KernelPlan) -> tuple[list[Diagnostic], bool]:
    """Coverage + bounds rules; returns (diags, partition_is_exact)."""
    diags: list[Diagnostic] = []
    starts, ends, nnz = plan.starts, plan.ends, plan.nnz

    def diag(rule, msg, loc="", hint=""):
        diags.append(
            Diagnostic(rule, ERROR, plan.kernel, msg, location=loc, hint=hint)
        )

    if starts.size != ends.size:
        diag(
            "plan/slice-bounds",
            f"{starts.size} starts but {ends.size} ends",
            hint="emit one (start, end) pair per warp slice",
        )
        return diags, False
    if nnz == 0 or starts.size == 0:
        if nnz > 0:
            diag(
                "plan/coverage-gap",
                f"no slices cover the {nnz}-element nnz stream",
                hint="every nonzero must be assigned to exactly one warp",
            )
            return diags, False
        return diags, True

    bad = (ends < starts) | (starts < 0) | (ends > nnz)
    if bad.any():
        w = int(np.argmax(bad))
        diag(
            "plan/slice-bounds",
            f"slice {w} spans [{starts[w]}, {ends[w]}) outside [0, {nnz})",
            loc=f"slice {w}",
            hint="clamp slice ends to nnz and keep starts non-negative",
        )
        return diags, False
    if np.any(starts[1:] < starts[:-1]):
        w = int(np.argmax(starts[1:] < starts[:-1])) + 1
        diag(
            "plan/slice-bounds",
            f"slice starts are not sorted (slice {w} starts at {starts[w]} "
            f"after {starts[w - 1]})",
            loc=f"slice {w}",
            hint="order slices by start offset",
        )
        return diags, False

    ok = True
    if starts[0] != 0:
        diag(
            "plan/coverage-gap",
            f"nnz [0, {starts[0]}) assigned to no slice",
            loc="slice 0",
            hint="the first slice must start at offset 0",
        )
        ok = False
    if ends[-1] != nnz:
        diag(
            "plan/coverage-gap",
            f"nnz [{ends[-1]}, {nnz}) assigned to no slice",
            loc=f"slice {starts.size - 1}",
            hint="the last slice must end at nnz",
        )
        ok = False
    gaps = np.nonzero(starts[1:] > ends[:-1])[0]
    for w in gaps[:_MAX_NAMED]:
        diag(
            "plan/coverage-gap",
            f"nnz [{ends[w]}, {starts[w + 1]}) falls between slices "
            f"{w} and {w + 1}",
            loc=f"slice {w}",
            hint="make each slice start where the previous one ends",
        )
        ok = False
    overlaps = np.nonzero(starts[1:] < ends[:-1])[0]
    for w in overlaps[:_MAX_NAMED]:
        diags.append(
            Diagnostic(
                "plan/coverage-overlap",
                ERROR,
                plan.kernel,
                f"slices {w} and {w + 1} both cover nnz "
                f"[{starts[w + 1]}, {ends[w]})",
                location=f"slice {w}",
                hint="nonzeros must not be processed twice "
                "(double-counted work and doubled accumulation)",
            )
        )
        ok = False
    return diags, ok


def _check_races(plan: KernelPlan) -> list[Diagnostic]:
    """Write-write race rule: shared output rows need an atomic merge."""
    if plan.row is None or plan.merge == MERGE_ATOMIC or plan.nnz == 0:
        return []
    row = np.asarray(plan.row)
    if row.size != plan.nnz:
        return [
            Diagnostic(
                "plan/row-race",
                ERROR,
                plan.kernel,
                f"row array has {row.size} entries for {plan.nnz} nonzeros",
                hint="supply the per-nnz output row in stream order",
            )
        ]
    lengths = plan.ends - plan.starts
    if lengths.size == 0:
        return []
    slice_id = np.repeat(
        np.arange(lengths.size, dtype=np.int64), np.maximum(lengths, 0)
    )
    # Distinct (row, slice) pairs; a row appearing in >= 2 pairs is
    # written by multiple warps.
    key = row.astype(np.int64) * np.int64(lengths.size) + slice_id
    pair_rows = np.unique(key) // lengths.size
    shared, counts = np.unique(pair_rows, return_counts=True)
    shared = shared[counts >= 2]
    if shared.size == 0:
        return []
    diags = []
    for r in shared[:_MAX_NAMED]:
        slices = np.unique(slice_id[row == r])
        names = ", ".join(str(s) for s in slices[:_MAX_NAMED])
        claim = (
            "claimed row-private slices"
            if plan.merge == MERGE_PRIVATE
            else "plain (non-atomic) stores"
        )
        diags.append(
            Diagnostic(
                "plan/row-race",
                ERROR,
                plan.kernel,
                f"output row {int(r)} is written by slices {names}"
                f"{' ...' if slices.size > _MAX_NAMED else ''} with {claim}"
                + (f" ({shared.size} racy rows total)" if shared.size > 1 else ""),
                location=f"row {int(r)}",
                hint="serialize cross-warp row writes with the row-switch "
                "atomic merge, or split slices on row boundaries",
            )
        )
    return diags


def _check_occupancy(plan: KernelPlan) -> list[Diagnostic]:
    """Launch-config legality (paper Eqs. 3-4) plus the wave report."""
    diags: list[Diagnostic] = []
    cfg, dev = plan.config, plan.device

    if cfg.threads_per_block > dev.max_threads_per_block:
        diags.append(
            Diagnostic(
                "plan/threads-per-block",
                ERROR,
                plan.kernel,
                f"{cfg.threads_per_block} threads/block exceeds "
                f"{dev.name}'s limit of {dev.max_threads_per_block}",
                hint="lower warps_per_block",
            )
        )
    if cfg.registers_per_thread > dev.max_registers_per_thread:
        diags.append(
            Diagnostic(
                "plan/registers",
                ERROR,
                plan.kernel,
                f"{cfg.registers_per_thread} registers/thread exceeds "
                f"{dev.name}'s limit of {dev.max_registers_per_thread}",
                hint="spill or restructure to fit the register budget",
            )
        )
    if cfg.shared_mem_per_block > dev.shared_mem_per_block_max:
        diags.append(
            Diagnostic(
                "plan/smem",
                ERROR,
                plan.kernel,
                f"{cfg.shared_mem_per_block} B shared memory/block exceeds "
                f"{dev.name}'s limit of {dev.shared_mem_per_block_max} B",
                hint="shrink the per-warp staging tiles",
            )
        )
    if diags:
        return diags

    active = dev.active_blocks_per_sm(
        cfg.warps_per_block, cfg.registers_per_thread, cfg.shared_mem_per_block
    )
    if active == 0:
        diags.append(
            Diagnostic(
                "plan/occupancy",
                ERROR,
                plan.kernel,
                f"launch config fits zero resident blocks per SM on "
                f"{dev.name} (Eq. 3)",
                hint="reduce registers/thread or shared memory/block until "
                "at least one block is resident",
            )
        )
        return diags

    full_wave = dev.num_sms * active
    blocks = -(-plan.num_warps // cfg.warps_per_block) if plan.num_warps else 0
    waves = blocks / full_wave if full_wave else 0.0
    diags.append(
        Diagnostic(
            "plan/wave-report",
            INFO,
            plan.kernel,
            f"{plan.num_warps} warps in {blocks} blocks; "
            f"{active} blocks/SM, FullWaveSize={full_wave}, "
            f"waves={waves:.2f}",
        )
    )
    if 0 < waves < 1.0:
        diags.append(
            Diagnostic(
                "plan/tail-effect",
                WARNING,
                plan.kernel,
                f"launch fills {waves:.0%} of one scheduling wave "
                f"({blocks}/{full_wave} blocks); bandwidth cannot saturate "
                "(paper Fig. 6)",
                hint="lower nnz_per_warp (DTP, Ineq. 5) to raise the warp "
                "count, or accept the tail on small inputs",
            )
        )
    return diags


def _check_hvma(plan: KernelPlan) -> list[Diagnostic]:
    """HVMA precondition rules: vector widths vs K and sector alignment."""
    diags: list[Diagnostic] = []
    sector = plan.device.l2_sector_bytes
    vw = plan.vector_width
    if vw > 1 and plan.k % (32 * vw) != 0:
        diags.append(
            Diagnostic(
                "plan/hvma-dense-alignment",
                ERROR,
                plan.kernel,
                f"dense vector width {vw} requires K divisible by "
                f"{32 * vw}, but K={plan.k}",
                hint="apply hvma_vector_width(nnz_per_warp, k) instead of "
                "forcing the width",
            )
        )
    svw = plan.sparse_vector_width
    if svw > 1 and plan.starts.size:
        lengths = plan.ends - plan.starts
        nonempty = plan.starts[lengths > 0]
        misaligned = nonempty[(nonempty * 4) % sector != 0]
        if misaligned.size:
            diags.append(
                Diagnostic(
                    "plan/hvma-sparse-alignment",
                    ERROR,
                    plan.kernel,
                    f"sparse vector width {svw} needs {sector}-byte-aligned "
                    f"slice starts, but {misaligned.size} slices start at "
                    f"unaligned offsets (first: {int(misaligned[0])})",
                    location=f"offset {int(misaligned[0])}",
                    hint="restrict NnzPerWarp to the HVMA candidate set "
                    "(multiples of sector_bytes/4)",
                )
            )
    return diags


def check_plan(plan: KernelPlan) -> list[Diagnostic]:
    """Run every plan rule; returns all diagnostics (errors first)."""
    diags, exact = _check_coverage(plan)
    if exact:
        # Race detection assigns nnz -> slice by repeat(lengths), which
        # is only meaningful once the partition is exact.
        diags.extend(_check_races(plan))
    diags.extend(_check_occupancy(plan))
    diags.extend(_check_hvma(plan))
    order = {ERROR: 0, WARNING: 1, INFO: 2}
    return sorted(diags, key=lambda d: order[d.severity])


def plan_errors(plan: KernelPlan) -> list[Diagnostic]:
    """Error-severity diagnostics only (the CI-gating subset)."""
    return [d for d in check_plan(plan) if d.severity == ERROR]


# ----------------------------------------------------------------------
# Plan builders for the shipped kernels
# ----------------------------------------------------------------------

def equal_nnz_plan(
    kernel: str,
    op: str,
    S: HybridMatrix,
    k: int,
    device: DeviceSpec,
    *,
    nnz_per_warp: int,
    config: LaunchConfig,
    merge: str,
    vector_width: int = 1,
    sparse_vector_width: int = 1,
    num_feature_groups: int = 1,
    per_nnz_output: bool = False,
    notes: str = "",
) -> KernelPlan:
    """Plan for an equal-NnzPerWarp slicing of the sorted nnz stream."""
    from ..kernels.common import warp_slice_starts

    starts = warp_slice_starts(S.nnz, nnz_per_warp)
    ends = np.minimum(starts + nnz_per_warp, S.nnz)
    return KernelPlan(
        kernel=kernel,
        op=op,
        nnz=S.nnz,
        k=k,
        starts=starts,
        ends=ends,
        row=None if per_nnz_output else S.row,
        merge=MERGE_PRIVATE if per_nnz_output else merge,
        config=config,
        device=device,
        vector_width=vector_width,
        sparse_vector_width=sparse_vector_width,
        num_feature_groups=num_feature_groups,
        notes=notes,
    )


def row_block_plan(
    kernel: str,
    op: str,
    S: HybridMatrix,
    k: int,
    device: DeviceSpec,
    *,
    rows_per_slice: int,
    config: LaunchConfig,
    num_feature_groups: int = 1,
    per_nnz_output: bool = False,
    notes: str = "",
) -> KernelPlan:
    """Plan for warp-per-row(-block) kernels: slices follow ``indptr``.

    Each slice owns ``rows_per_slice`` whole rows, so output rows are
    private to their slice by construction — which :func:`check_plan`
    verifies rather than trusts.
    """
    indptr = S.indptr().astype(np.int64)
    bounds = indptr[::rows_per_slice]
    if bounds.size == 0 or bounds[-1] != S.nnz:
        bounds = np.append(bounds, S.nnz)
    return KernelPlan(
        kernel=kernel,
        op=op,
        nnz=S.nnz,
        k=k,
        starts=bounds[:-1],
        ends=bounds[1:],
        row=None if per_nnz_output else S.row,
        merge=MERGE_PRIVATE,
        config=config,
        device=device,
        num_feature_groups=num_feature_groups,
        notes=notes,
    )


def _hp_plan(kernel, op: str, S: HybridMatrix, k: int, device: DeviceSpec) -> KernelPlan:
    """Plan for HP-SpMM / HP-SDDMM from the kernel's resolved partition."""
    from ..tuning import (
        HP_REGISTERS_PER_THREAD,
        HP_SMEM_PER_WARP,
        sparse_vector_width,
    )

    part = kernel.partition(S, k, device)
    config = LaunchConfig(
        warps_per_block=part.warps_per_block,
        registers_per_thread=HP_REGISTERS_PER_THREAD,
        shared_mem_per_block=HP_SMEM_PER_WARP * part.warps_per_block,
    )
    hvma = getattr(kernel, "use_hvma", True)
    return equal_nnz_plan(
        kernel.name,
        op,
        S,
        k,
        device,
        nnz_per_warp=part.nnz_per_warp,
        config=config,
        merge=MERGE_ATOMIC,  # the row-switch procedure's atomic store
        vector_width=part.vector_width if hvma else 1,
        sparse_vector_width=sparse_vector_width(part.nnz_per_warp) if hvma else 1,
        num_feature_groups=part.num_feature_groups,
        per_nnz_output=(op == "sddmm"),
        notes="row-switch atomic merge on slice-internal row changes",
    )


def _node_parallel_plan(kernel, op: str, S, k, device) -> KernelPlan:
    """Plan for profile-based warp-per-row kernels (row-split family)."""
    from ..kernels.baselines.node_parallel import NodeParallelProfile

    profile: NodeParallelProfile = kernel.profile
    fp = min(k, profile.features_per_warp)
    groups = -(-k // fp)
    config = LaunchConfig(
        warps_per_block=profile.warps_per_block,
        registers_per_thread=profile.registers_per_thread,
        shared_mem_per_block=profile.shared_mem_per_block,
    )
    return row_block_plan(
        kernel.name,
        op,
        S,
        k,
        device,
        rows_per_slice=1,
        config=config,
        num_feature_groups=groups,
        per_nnz_output=(op == "sddmm"),
        notes="one warp per CSR row; feature groups write disjoint columns",
    )


def _huang_plan(kernel, op: str, S, k, device) -> KernelPlan:
    """Huang's neighbor grouping: rows split into tiles, atomic combine."""
    from ..kernels.baselines.huang import neighbor_group_degrees

    profile = kernel.profile
    config = LaunchConfig(
        warps_per_block=profile.warps_per_block,
        registers_per_thread=profile.registers_per_thread,
        shared_mem_per_block=profile.shared_mem_per_block,
    )
    # Tiles walk each row in order: reconstruct per-row tile boundaries
    # over the sorted nnz stream.
    degrees = S.row_degrees().astype(np.int64)
    indptr = S.indptr().astype(np.int64)
    tile = int(kernel.tile)
    tiles_per_row = -(-degrees // tile)
    row_of_tile = np.repeat(
        np.arange(degrees.size, dtype=np.int64), tiles_per_row
    )
    first_tile = np.concatenate(([0], np.cumsum(tiles_per_row)[:-1]))
    intra = (
        np.arange(row_of_tile.size, dtype=np.int64)
        - np.repeat(first_tile, tiles_per_row)
    )
    starts = indptr[row_of_tile] + intra * tile
    ends = np.minimum(starts + tile, indptr[row_of_tile + 1])
    return KernelPlan(
        kernel=kernel.name,
        op=op,
        nnz=S.nnz,
        k=k,
        starts=starts,
        ends=ends,
        row=S.row,
        merge=MERGE_ATOMIC,  # tiles of one row combine atomically
        config=config,
        notes="neighbor-grouping tiles; one row may span several tiles",
        device=device,
    )


def plan_for_kernel(kernel, S: HybridMatrix, k: int, device: DeviceSpec) -> KernelPlan:
    """Build the :class:`KernelPlan` a shipped kernel instance would launch.

    Dispatches on the kernel's registry name / structure; raises
    ``KeyError`` for kernels with no plan builder (a new kernel should
    either match an existing family or register a builder here).
    """
    from ..kernels.baselines.node_parallel import NodeParallelProfile

    name = getattr(kernel, "name", type(kernel).__name__)
    if name in ("hp-spmm", "hp-sddmm"):
        return _hp_plan(kernel, "spmm" if name == "hp-spmm" else "sddmm", S, k, device)
    if name == "huang-ng":
        return _huang_plan(kernel, "spmm", S, k, device)
    if isinstance(getattr(kernel, "profile", None), NodeParallelProfile):
        op = "sddmm" if "sddmm" in name else "spmm"
        return _node_parallel_plan(kernel, op, S, k, device)
    if name == "merge-path":
        return equal_nnz_plan(
            name, "spmm", S, k, device,
            nnz_per_warp=kernel.items_per_warp,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=40,
            ),
            merge=MERGE_ATOMIC,
            notes="merge-path partitions; segment stores merge atomically",
        )
    if name in ("cusparse-csr-alg2", "cusparse-csr-alg3"):
        return equal_nnz_plan(
            name, "spmm", S, k, device,
            nnz_per_warp=kernel.nnz_per_warp,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=40,
            ),
            merge=MERGE_ATOMIC,
            notes="balanced CSR with built-in partition kernel",
        )
    if name == "cusparse-coo-alg4":
        return equal_nnz_plan(
            name, "spmm", S, k, device,
            nnz_per_warp=32,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=32,
            ),
            merge=MERGE_ATOMIC,
            notes="edge-parallel; every nonzero accumulates atomically",
        )
    if name == "dgl-sddmm":
        return equal_nnz_plan(
            name, "sddmm", S, k, device,
            nnz_per_warp=32,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=32,
            ),
            merge=MERGE_PRIVATE,
            per_nnz_output=True,
            notes="edge-parallel SDDMM; one scalar output per nonzero",
        )
    if name == "aspt":
        return equal_nnz_plan(
            name, "spmm", S, k, device,
            nnz_per_warp=256,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=40,
                shared_mem_per_block=32 * 1024,
            ),
            merge=MERGE_ATOMIC,
            notes="panel tiles; dense/sparse parts combine atomically",
        )
    if name == "cusparse-blocked-ell":
        bs = kernel.block_size
        return row_block_plan(
            name, "spmm", S, k, device,
            rows_per_slice=bs,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=64,
                shared_mem_per_block=bs * bs * 4 * kernel.warps_per_block,
            ),
            notes="block rows are slice-private (padding slots excluded)",
        )
    if name == "tc-gnn":
        from ..kernels.baselines.tcgnn import TILE_M

        return row_block_plan(
            name, "spmm", S, k, device,
            rows_per_slice=TILE_M,
            config=LaunchConfig(
                warps_per_block=kernel.warps_per_block,
                registers_per_thread=64,
                shared_mem_per_block=16 * 1024,
            ),
            notes="16-row SGT panels own their output rows",
        )
    raise KeyError(
        f"no plan builder for kernel {name!r}; register one in "
        "repro.analysis.schedule.plan_for_kernel"
    )
