"""Layers and models: shapes, parameter plumbing, training modes."""

import numpy as np
import pytest

from repro.gnn import GCN, GCNConv, GraphOperand, Linear, Tensor, TimingContext
from repro.graphs import community_graph


@pytest.fixture(scope="module")
def graph():
    g = community_graph(400, 3000, num_communities=5, seed=11)
    return GraphOperand.gcn_normalized(g)


def test_linear_shapes_and_params():
    rng = np.random.default_rng(0)
    lin = Linear(8, 16, rng)
    x = Tensor(rng.standard_normal((5, 8)).astype(np.float32))
    out = lin(x)
    assert out.shape == (5, 16)
    params = lin.parameters()
    assert len(params) == 2  # weight + bias
    assert params[0].shape == (8, 16)


def test_linear_records_gemms():
    rng = np.random.default_rng(1)
    lin = Linear(8, 16, rng)
    timing = TimingContext()
    lin(Tensor(np.zeros((5, 8), np.float32)), timing)
    assert timing.num_dense_ops == 3  # forward + 2 backward GEMMs


def test_gcnconv_output_shape(graph):
    rng = np.random.default_rng(2)
    conv = GCNConv(8, 12, rng)
    x = Tensor(rng.standard_normal((graph.num_nodes, 8)).astype(np.float32))
    out = conv(graph, x)
    assert out.shape == (graph.num_nodes, 12)
    assert np.all(out.data >= 0)  # ReLU applied


def test_gcnconv_final_layer_no_activation(graph):
    rng = np.random.default_rng(3)
    conv = GCNConv(8, 12, rng, activation=False)
    x = Tensor(rng.standard_normal((graph.num_nodes, 8)).astype(np.float32))
    out = conv(graph, x)
    assert np.any(out.data < 0)


def test_gcn_model_depth_and_params(graph):
    model = GCN(16, 32, 7, num_layers=4, seed=0)
    assert len(model.layers) == 4
    # 4 layers x (W + b).
    assert len(model.parameters()) == 8
    x = Tensor(np.random.default_rng(4).standard_normal(
        (graph.num_nodes, 16)).astype(np.float32))
    logits = model(graph, x)
    assert logits.shape == (graph.num_nodes, 7)


def test_gcn_validates_depth():
    with pytest.raises(ValueError):
        GCN(8, 8, 4, num_layers=1)


def test_train_eval_mode_propagates(graph):
    model = GCN(8, 8, 4, num_layers=3, dropout_p=0.5, seed=1)
    model.eval()
    assert all(not layer.training for layer in model.layers)
    model.train()
    assert all(layer.training for layer in model.layers)


def test_gcn_loss_backward_populates_all_grads(graph):
    model = GCN(8, 8, 4, num_layers=2, seed=2)
    x = Tensor(np.random.default_rng(5).standard_normal(
        (graph.num_nodes, 8)).astype(np.float32))
    labels = np.random.default_rng(6).integers(0, 4, graph.num_nodes)
    loss = model.loss(graph, x, labels)
    loss.backward()
    for p in model.parameters():
        assert p.grad is not None
        assert np.isfinite(p.grad).all()


def test_timing_accumulates_per_layer(graph):
    model = GCN(8, 8, 4, num_layers=3, seed=3)
    timing = TimingContext()
    x = Tensor(np.zeros((graph.num_nodes, 8), np.float32))
    model(graph, x, timing)
    assert timing.num_sparse_ops == 3   # one SpMM per layer (forward)
    assert timing.num_dense_ops == 9    # 3 GEMM records per Linear
    assert timing.total_s > 0
