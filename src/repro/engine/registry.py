"""The single op -> kernel-factory registry behind every estimation path.

Before the engine existed, the bench runner (``_SWEEP_MAKERS``) and the
serve estimator (``_MAKERS``) each kept a private copy of the same
``{"spmm": make_spmm, "sddmm": make_sddmm}`` map, and the fig/table
scripts plus GNN timing dispatched :func:`repro.kernels.make_spmm`
directly.  All of them now resolve kernels here, so adding an op (or a
backend) is a one-line change visible to every path at once.

Lookups fail with a :class:`KeyError` whose message lists the valid
choices — ops for a bad op, registered kernel names for a bad kernel —
because these errors surface verbatim in serve responses and CLI output.
"""

from __future__ import annotations

from ..kernels import make_sddmm, make_spmm
from ..kernels.api import SDDMM_REGISTRY, SPMM_REGISTRY

#: Canonical operation names.
OP_SPMM = "spmm"
OP_SDDMM = "sddmm"

#: Operations the engine can estimate, in registry order.
VALID_OPS: tuple[str, ...] = (OP_SPMM, OP_SDDMM)

#: op -> kernel factory.  The one copy of the previously duplicated maps.
_FACTORIES = {OP_SPMM: make_spmm, OP_SDDMM: make_sddmm}

#: op -> name registry, for error messages and introspection.
_REGISTRIES = {OP_SPMM: SPMM_REGISTRY, OP_SDDMM: SDDMM_REGISTRY}


def kernel_factory(op: str):
    """The factory callable for ``op``; raises a listing KeyError."""
    try:
        return _FACTORIES[op]
    except KeyError:
        raise KeyError(
            f"unknown op {op!r}; valid ops are {list(VALID_OPS)}"
        ) from None


def valid_kernels(op: str) -> tuple[str, ...]:
    """Registered kernel names for ``op``, sorted."""
    kernel_factory(op)  # validate op first, with the op-listing error
    return tuple(sorted(_REGISTRIES[op]))


def make_kernel(op: str, name: str, **kwargs):
    """Instantiate kernel ``name`` for ``op`` — the unified dispatch point.

    A bad kernel name raises ``KeyError`` (the type serve reports as
    ``"KeyError: ..."``) listing every registered kernel for that op.
    """
    factory = kernel_factory(op)
    if name not in _REGISTRIES[op]:
        raise KeyError(
            f"unknown {op} kernel {name!r}; valid {op} kernels are "
            f"{list(valid_kernels(op))}"
        )
    return factory(name, **kwargs)
