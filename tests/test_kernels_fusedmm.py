"""FusedMM: fused SDDMM+SpMM numerics and fusion savings."""

import numpy as np
import pytest

from repro.formats import HybridMatrix
from repro.kernels import FusedMM, fusedmm_reference, sddmm_reference, spmm_reference


def test_reference_composition(medium_matrix, features):
    S = medium_matrix
    k = 16
    A1 = features(S.shape[0], k, seed=0)
    A2T = features(S.shape[1], k, seed=1)
    X = features(S.shape[1], k, seed=2)
    out = fusedmm_reference(S, A1, A2T, X)
    vals = sddmm_reference(S, A1, A2T)
    weighted = HybridMatrix(row=S.row, col=S.col, val=vals, shape=S.shape)
    np.testing.assert_allclose(
        out, spmm_reference(weighted, X), rtol=1e-4, atol=1e-4
    )


def test_reference_with_edge_function(small_matrix, features):
    S = small_matrix
    A1 = features(S.shape[0], 8, seed=3)
    A2T = features(S.shape[1], 8, seed=4)
    X = features(S.shape[1], 8, seed=5)
    relu_out = fusedmm_reference(
        S, A1, A2T, X, edge_fn=lambda v: np.maximum(v, 0)
    )
    plain = fusedmm_reference(S, A1, A2T, X)
    assert not np.allclose(relu_out, plain)


def test_fusion_saves_time(medium_matrix):
    res = FusedMM().estimate(medium_matrix, 64)
    assert res.stats.time_s > 0
    # Fused must beat running the two kernels back to back...
    assert res.stats.time_s < res.unfused_time_s
    assert res.fusion_speedup > 1.0
    # ...but cannot be more than ~3x better (it still does all the math).
    assert res.fusion_speedup < 3.0


def test_run_returns_numerics(small_matrix, features):
    S = small_matrix
    A1 = features(S.shape[0], 8, seed=6)
    A2T = features(S.shape[1], 8, seed=7)
    X = features(S.shape[1], 8, seed=8)
    res = FusedMM().run(S, A1, A2T, X)
    np.testing.assert_allclose(
        res.output, fusedmm_reference(S, A1, A2T, X), rtol=1e-4, atol=1e-4
    )


def test_estimate_validates_k(small_matrix):
    with pytest.raises(ValueError):
        FusedMM().estimate(small_matrix, 0)
