"""Shared fixtures: small deterministic matrices and graphs.

Tests force a small edge cap for registry graphs (REPRO_MAX_EDGES) so
the calibrated datasets generate in well under a second each.

The session also enforces a **wall-clock duration budget** (recorded in
``tests/duration_budget.json``): if the full tier-1 run exceeds the
budget, the session fails.  This regression-guards the harness speedups
(vectorized footprint sampling, the estimate cache) — reintroducing a
per-window ``np.unique`` style hot spot blows the budget immediately.
Set ``REPRO_NO_DURATION_BUDGET=1`` to disable (e.g. on very slow or
heavily shared machines).
"""

import json
import os
import time

os.environ.setdefault("REPRO_MAX_EDGES", "60000")

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import COOMatrix, CSRMatrix, HybridMatrix

#: Exposes the ``check_plan`` fixture (static schedule checker) to all tests.
pytest_plugins = ["repro.analysis.pytest_plugin"]

_BUDGET_FILE = os.path.join(os.path.dirname(__file__), "duration_budget.json")


def pytest_configure(config):
    config._repro_session_t0 = time.monotonic()


def pytest_sessionfinish(session, exitstatus):
    if os.environ.get("REPRO_NO_DURATION_BUDGET", "").strip() not in ("", "0"):
        return
    t0 = getattr(session.config, "_repro_session_t0", None)
    if t0 is None:
        return
    elapsed = time.monotonic() - t0
    try:
        with open(_BUDGET_FILE) as f:
            budget = float(json.load(f)["budget_seconds"])
    except (OSError, ValueError, KeyError):
        return
    if elapsed > budget:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        msg = (
            f"test-suite duration budget exceeded: {elapsed:.1f}s > "
            f"{budget:.0f}s (tests/duration_budget.json). A harness hot "
            f"path likely regressed; profile with pytest --durations=10. "
            f"Set REPRO_NO_DURATION_BUDGET=1 to override."
        )
        if reporter is not None:
            reporter.write_line(f"\nERROR: {msg}", red=True, bold=True)
        if session.exitstatus == 0:
            session.exitstatus = 1


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


def random_hybrid(m, n, nnz, seed=0, values=True) -> HybridMatrix:
    """A random hybrid CSR/COO matrix with exactly-ish nnz entries."""
    r = np.random.default_rng(seed)
    density = min(1.0, nnz / max(1, m * n))
    mat = sp.random(
        m, n, density=density, random_state=np.random.RandomState(seed),
        format="csr", dtype=np.float32,
        data_rvs=(None if values else (lambda k: np.ones(k, dtype=np.float32))),
    )
    return HybridMatrix.from_scipy(mat)


@pytest.fixture(scope="session")
def small_matrix() -> HybridMatrix:
    """A 200x200 sparse matrix with ~2000 nonzeros."""
    return random_hybrid(200, 200, 2000, seed=1)


@pytest.fixture(scope="session")
def medium_matrix() -> HybridMatrix:
    """A 3000x3000 sparse matrix with ~40k nonzeros."""
    return random_hybrid(3000, 3000, 40_000, seed=2)


@pytest.fixture(scope="session")
def skewed_matrix() -> HybridMatrix:
    """A matrix with one enormous row (load-imbalance stressor)."""
    r = np.random.default_rng(3)
    n = 2000
    # 1500 nnz spread thin + 1200 nnz in row 0.
    rows = np.concatenate([
        np.zeros(1200, dtype=np.int64),
        r.integers(1, n, size=1500),
    ])
    cols = r.integers(0, n, size=rows.size)
    coo = COOMatrix.from_arrays(rows, cols, None, shape=(n, n))
    return HybridMatrix.from_coo(coo)


@pytest.fixture(scope="session")
def paper_fig2_matrix() -> HybridMatrix:
    """The exact 4x4 example of paper Fig. 2 (values a..g)."""
    dense = np.array(
        [
            [1, 0, 2, 0],
            [0, 0, 3, 0],
            [4, 5, 0, 6],
            [0, 0, 7, 0],
        ],
        dtype=np.float32,
    )
    return HybridMatrix.from_scipy(sp.csr_matrix(dense))


@pytest.fixture
def features(rng):
    def make(n, k, seed=0):
        return np.random.default_rng(seed).standard_normal((n, k)).astype(
            np.float32
        )

    return make
