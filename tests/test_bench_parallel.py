"""Parallel sweep fan-out (repro.perf.parallel) and the wall-clock harness."""

import json
import os
import sys

import pytest

from repro.bench.runner import SPMM_BASELINES, sweep_sddmm, sweep_spmm
from repro.perf import get_estimate_cache, parallel_map, resolve_jobs

from tests.conftest import random_hybrid


@pytest.fixture(autouse=True)
def serial_default(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    get_estimate_cache().clear()


# ----------------------------------------------------------------------
# resolve_jobs / parallel_map
# ----------------------------------------------------------------------

def test_resolve_jobs_default_is_serial():
    assert resolve_jobs() == 1
    assert resolve_jobs(100) == 1


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs() == 4
    assert resolve_jobs(2) == 2  # clamped to the item count
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert resolve_jobs() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert resolve_jobs() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "nope")
    with pytest.raises(ValueError):
        resolve_jobs()


def _square(x):
    return x * x


def test_parallel_map_orders_results():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]
    assert parallel_map(_square, items, jobs=3) == [x * x for x in items]


def test_parallel_map_falls_back_on_unpicklable_work():
    # A lambda cannot be pickled into a process pool; the serial
    # fallback must still produce the right answer.
    out = parallel_map(lambda x: x + 1, [1, 2, 3], jobs=2)
    assert out == [2, 3, 4]


def _touch_and_maybe_fail(item):
    """Append one line per execution, then fail on the marked item."""
    path, x, fail_on = item
    with open(path, "a") as f:
        f.write(f"{x}\n")
    if x == fail_on:
        raise ValueError(f"deterministic failure at {x}")
    return x * 10


@pytest.mark.parametrize("jobs", [1, 2])
def test_worker_exception_propagates_without_serial_retry(tmp_path, jobs):
    """Regression: a deterministic error raised by ``fn`` must propagate.

    The old blanket ``except Exception`` silently re-ran the whole sweep
    serially (doubling work and re-executing side effects) before
    re-raising.  Each item's side effect must happen exactly once.
    """
    log = str(tmp_path / "executions.log")
    items = [(log, x, 2) for x in range(4)]
    with pytest.raises(ValueError, match="deterministic failure at 2"):
        parallel_map(_touch_and_maybe_fail, items, jobs=jobs)
    with open(log) as f:
        executed = sorted(int(line) for line in f if line.strip())
    # Every item at most once — in particular no serial re-run of item 0.
    assert executed.count(0) == 1
    assert executed.count(2) == 1


def _raise_oserror(item):
    raise OSError(f"fn-level OSError on {item}")


def test_fn_oserror_is_not_mistaken_for_pool_setup_failure():
    """OSError from ``fn`` is a worker error, not a pool failure."""
    with pytest.raises(OSError, match="fn-level OSError"):
        parallel_map(_raise_oserror, [1, 2], jobs=2)


def test_plan_check_error_propagates_from_parallel_sweep(monkeypatch):
    """The sweep-point scenario from the issue: a plan-check failure at
    one point aborts the sweep instead of re-running it serially."""
    from repro.bench.runner import PlanCheckError, sweep_spmm
    from repro.engine import core as engine_core

    def exploding_check(plan):
        raise PlanCheckError("injected plan failure")

    monkeypatch.setattr(engine_core, "check_plan", exploding_check)
    graphs = [("a", random_hybrid(200, 200, 1500, seed=41))]
    with pytest.raises(PlanCheckError):
        sweep_spmm(graphs, ("hp-spmm",), k=32, jobs=1)


# ----------------------------------------------------------------------
# Serial == parallel sweeps (satellite acceptance)
# ----------------------------------------------------------------------

def _toy_graphs():
    return [
        ("a", random_hybrid(200, 200, 1500, seed=21)),
        ("b", random_hybrid(300, 300, 2500, seed=22)),
        ("c", random_hybrid(250, 250, 2000, seed=23)),
    ]


@pytest.mark.parametrize("op", ["spmm", "sddmm"])
def test_parallel_and_serial_sweeps_identical(op):
    graphs = _toy_graphs()
    if op == "spmm":
        sweep, kernels = sweep_spmm, ("hp-spmm",) + SPMM_BASELINES[:2]
    else:
        sweep, kernels = sweep_sddmm, ("hp-sddmm", "dgl-sddmm")
    serial = sweep(graphs, kernels, k=32, jobs=1)
    get_estimate_cache().clear()  # parallel run must not ride on memo hits
    parallel = sweep(graphs, kernels, k=32, jobs=2)
    assert [
        (r.graph, r.kernel, r.time_s, r.preprocessing_s, r.gflops)
        for r in serial.runs
    ] == [
        (r.graph, r.kernel, r.time_s, r.preprocessing_s, r.gflops)
        for r in parallel.runs
    ]


def test_sweep_respects_repro_jobs_env(monkeypatch):
    graphs = _toy_graphs()
    serial = sweep_spmm(graphs, ("hp-spmm",), k=32)
    monkeypatch.setenv("REPRO_JOBS", "2")
    get_estimate_cache().clear()
    parallel = sweep_spmm(graphs, ("hp-spmm",), k=32)
    assert [r.time_s for r in serial.runs] == [r.time_s for r in parallel.runs]


def test_fig12_parallel_matches_serial(monkeypatch):
    from repro.bench.fig12 import run_fig12

    kwargs = dict(num_graphs=3, num_nodes=1500)
    serial = run_fig12(**kwargs)
    monkeypatch.setenv("REPRO_JOBS", "2")
    get_estimate_cache().clear()
    parallel = run_fig12(**kwargs)
    assert serial.stds == parallel.stds
    assert serial.speedups == parallel.speedups
    assert serial.pearson == parallel.pearson


# ----------------------------------------------------------------------
# Wall-clock harness
# ----------------------------------------------------------------------

def test_bench_wallclock_writes_report(tmp_path, monkeypatch):
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))
    try:
        import bench_wallclock
    finally:
        sys.path.pop(0)
    out = tmp_path / "BENCH_harness.json"
    rc = bench_wallclock.main(
        [
            "--pipelines", "fig12",
            "--fig12-nodes", "1500",
            "--output", str(out),
        ]
    )
    assert rc == 0
    with open(out) as f:
        report = json.load(f)
    assert "fig12" in report["pipelines"]
    assert report["pipelines"]["fig12"]["seconds"] > 0
    assert report["meta"]["cpus"] == os.cpu_count()
    assert set(report["estimate_cache"]) >= {"hits", "misses", "hit_rate"}


# ----------------------------------------------------------------------
# Worker-span splicing
# ----------------------------------------------------------------------

def _span_worker(x):
    from repro.obs import trace_span

    with trace_span("worker-span", cat="test", item=x):
        return x + 1


def test_parallel_map_splices_worker_spans_onto_parent_trace():
    from repro.obs import METRICS, Tracer, set_tracer

    pool_runs_before = METRICS.get("parallel.pool_runs")
    tracer = Tracer()
    set_tracer(tracer)
    try:
        out = parallel_map(_span_worker, [1, 2, 3, 4], jobs=2)
    finally:
        set_tracer(None)
    assert out == [2, 3, 4, 5]
    worker_spans = [s for s in tracer.spans if s.name == "worker-span"]
    assert len(worker_spans) == 4  # no span died with its worker
    assert sorted(s.args["item"] for s in worker_spans) == [1, 2, 3, 4]
    assert any(s.name == "parallel_map" for s in tracer.spans)
    if METRICS.get("parallel.pool_runs") > pool_runs_before:
        # The pool actually ran: spans crossed the process boundary and
        # carry their worker's pid.
        assert all(s.args.get("pool_worker") for s in worker_spans)
        parent = [s for s in tracer.spans if s.name == "parallel_map"][0]
        for s in worker_spans:
            assert s.ts_us >= parent.ts_us  # shared t0: same timeline


def test_parallel_map_untraced_pool_path_unchanged():
    from repro.obs import get_tracer

    assert get_tracer() is None
    assert parallel_map(_span_worker, [5, 6], jobs=2) == [6, 7]
