"""Layer-1 plan checker: adversarial fixtures, shipped kernels, rules.

The seeded adversarial plans each exhibit exactly one scheduling bug; the
tests here pin the *rule id* the checker raises for each, so a refactor
that silently stops detecting a bug class fails loudly.  The complement —
every shipped kernel config passes with zero errors — is the positive
control required by ISSUE acceptance criteria.
"""

import numpy as np
import pytest

from repro.analysis import (
    ADVERSARIAL_PLANS,
    ERROR,
    MERGE_ATOMIC,
    MERGE_NONE,
    MERGE_PRIVATE,
    KernelPlan,
    check_plan,
    check_shipped_kernels,
    plan_errors,
    plan_for_kernel,
)
from repro.analysis.fixtures import (
    gap_plan,
    occupancy_plan,
    overlap_plan,
    race_plan,
)
from repro.gpusim import LaunchConfig, TESLA_A30, TESLA_V100
from repro.kernels import make_spmm
from repro.kernels.api import SDDMM_REGISTRY, SPMM_REGISTRY

pytestmark = pytest.mark.analysis

_CFG = LaunchConfig(warps_per_block=8, registers_per_thread=32)


def _rules(diags, severity=ERROR):
    return {d.rule for d in diags if d.severity == severity}


def _plan(starts, ends, *, nnz=48, row="default", merge=MERGE_ATOMIC, **kw):
    if isinstance(row, str):  # "default" sentinel (row may be an ndarray)
        row = np.repeat(np.arange(12, dtype=np.int64), 4)[:nnz]
    defaults = dict(
        kernel="test",
        op="spmm",
        nnz=nnz,
        k=64,
        starts=np.asarray(starts),
        ends=np.asarray(ends),
        row=row,
        merge=merge,
        config=_CFG,
        device=TESLA_V100,
    )
    defaults.update(kw)
    return KernelPlan(**defaults)


# -- adversarial fixtures: right rule id for each bug class --------------

def test_gap_fixture_flags_coverage_gap():
    rules = _rules(check_plan(gap_plan()))
    assert "plan/coverage-gap" in rules
    assert "plan/coverage-overlap" not in rules


def test_overlap_fixture_flags_coverage_overlap():
    rules = _rules(check_plan(overlap_plan()))
    assert "plan/coverage-overlap" in rules
    assert "plan/coverage-gap" not in rules


def test_race_fixture_flags_row_race():
    diags = check_plan(race_plan())
    assert "plan/row-race" in _rules(diags)
    # The offending diagnostic names a concrete racy row.
    racy = [d for d in diags if d.rule == "plan/row-race"]
    assert all(d.location.startswith("row ") for d in racy)


def test_occupancy_fixture_flags_all_three_limits():
    rules = _rules(check_plan(occupancy_plan()))
    assert {"plan/threads-per-block", "plan/registers", "plan/smem"} <= rules


def test_every_adversarial_fixture_fails():
    for name, builder in sorted(ADVERSARIAL_PLANS.items()):
        assert plan_errors(builder()), f"fixture {name!r} passed the checker"


# -- positive control: every shipped kernel config is clean --------------

def test_all_shipped_kernels_pass_clean():
    report = check_shipped_kernels()
    assert report.plans_checked == 2 * 3 * (
        len(SPMM_REGISTRY) + len(SDDMM_REGISTRY)
    )
    assert report.errors == [], "\n".join(d.render() for d in report.errors)


def test_plan_for_kernel_covers_every_registered_kernel(small_matrix):
    for registry in (SPMM_REGISTRY, SDDMM_REGISTRY):
        for name in sorted(registry):
            plan = plan_for_kernel(registry[name](), small_matrix, 64, TESLA_V100)
            assert plan.nnz == small_matrix.nnz


def test_plan_for_kernel_unknown_kernel_raises(small_matrix):
    class Mystery:
        name = "mystery-kernel"

    with pytest.raises(KeyError, match="mystery-kernel"):
        plan_for_kernel(Mystery(), small_matrix, 64, TESLA_V100)


def test_check_plan_fixture_integration(small_matrix, check_plan):
    diags = check_plan(make_spmm("hp-spmm"), small_matrix, k=64)
    assert "plan/wave-report" in {d.rule for d in diags}


# -- coverage rules ------------------------------------------------------

def test_exact_partition_passes():
    starts = np.arange(0, 48, 8)
    assert plan_errors(_plan(starts, starts + 8)) == []


def test_empty_stream_with_no_slices_passes():
    p = _plan(np.array([], dtype=np.int64), np.array([], dtype=np.int64),
              nnz=0, row=np.array([], dtype=np.int64))
    assert plan_errors(p) == []


def test_nonzero_stream_with_no_slices_is_a_gap():
    p = _plan(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert _rules(check_plan(p)) == {"plan/coverage-gap"}


def test_missing_head_and_tail_are_gaps():
    p = _plan(np.array([8]), np.array([40]))
    msgs = [d.message for d in check_plan(p) if d.rule == "plan/coverage-gap"]
    assert len(msgs) == 2
    assert any("[0, 8)" in m for m in msgs)
    assert any("[40, 48)" in m for m in msgs)


def test_out_of_range_slice_is_slice_bounds():
    p = _plan(np.array([0]), np.array([64]))
    assert "plan/slice-bounds" in _rules(check_plan(p))


def test_unsorted_starts_is_slice_bounds():
    p = _plan(np.array([0, 24, 8]), np.array([24, 48, 24]))
    assert "plan/slice-bounds" in _rules(check_plan(p))


def test_mismatched_start_end_counts_is_slice_bounds():
    p = _plan(np.array([0, 8]), np.array([48]))
    assert "plan/slice-bounds" in _rules(check_plan(p))


# -- race rules ----------------------------------------------------------

def test_atomic_merge_suppresses_race():
    starts = np.arange(0, 48, 6)  # slices cross row boundaries
    p = _plan(starts, np.minimum(starts + 6, 48), merge=MERGE_ATOMIC)
    assert plan_errors(p) == []


def test_per_nnz_output_row_none_has_no_race():
    starts = np.arange(0, 48, 6)
    p = _plan(starts, np.minimum(starts + 6, 48), row=None, merge=MERGE_NONE)
    assert plan_errors(p) == []


def test_private_claim_verified_not_trusted():
    # MERGE_PRIVATE with slices that split a row must still be flagged.
    starts = np.arange(0, 48, 6)
    p = _plan(starts, np.minimum(starts + 6, 48), merge=MERGE_PRIVATE)
    assert "plan/row-race" in _rules(check_plan(p))


def test_private_claim_passes_on_row_aligned_slices():
    # 8-element slices == 2 whole rows each: genuinely private.
    starts = np.arange(0, 48, 8)
    p = _plan(starts, starts + 8, merge=MERGE_PRIVATE)
    assert plan_errors(p) == []


def test_race_check_skipped_until_partition_exact():
    # A plan with both a gap and row-splitting slices reports the gap
    # only — race attribution over a broken partition would be noise.
    starts = np.array([0, 14])
    p = _plan(starts, np.array([6, 48]), merge=MERGE_NONE)
    rules = _rules(check_plan(p))
    assert "plan/coverage-gap" in rules
    assert "plan/row-race" not in rules


def test_wrong_row_array_length_is_reported():
    starts = np.arange(0, 48, 8)
    p = _plan(starts, starts + 8, row=np.zeros(7, dtype=np.int64),
              merge=MERGE_NONE)
    racy = [d for d in check_plan(p) if d.rule == "plan/row-race"]
    assert racy and "7 entries for 48 nonzeros" in racy[0].message


# -- occupancy rules -----------------------------------------------------

def test_wave_report_present_and_tail_warned():
    starts = np.arange(0, 48, 8)
    diags = check_plan(_plan(starts, starts + 8))
    info = [d for d in diags if d.rule == "plan/wave-report"]
    assert len(info) == 1 and "FullWaveSize" in info[0].message
    # 6 warps in 1 block on a V100 is far below one full wave.
    assert "plan/tail-effect" in _rules(diags, "warning")


def test_zero_resident_blocks_is_occupancy_error():
    # Legal per-block resources that still fit zero blocks per SM:
    # 96 KiB static smem > V100's 64 KiB per-SM opt-in default? No —
    # use registers: 32 warps * 32 threads * 255 regs = 261k > 65536.
    cfg = LaunchConfig(
        warps_per_block=32, registers_per_thread=255,
        shared_mem_per_block=0,
    )
    starts = np.arange(0, 48, 8)
    p = _plan(starts, starts + 8, config=cfg)
    assert "plan/occupancy" in _rules(check_plan(p))


# -- HVMA rules ----------------------------------------------------------

def test_hvma_dense_width_must_divide_k():
    starts = np.arange(0, 48, 8)
    p = _plan(starts, starts + 8, k=48, vector_width=4)
    assert "plan/hvma-dense-alignment" in _rules(check_plan(p))
    ok = _plan(starts, starts + 8, k=128, vector_width=4)
    assert plan_errors(ok) == []


def test_hvma_sparse_width_needs_aligned_starts():
    starts = np.arange(0, 48, 6)  # 6*4 = 24 B, not sector-aligned
    p = _plan(starts, np.minimum(starts + 6, 48), sparse_vector_width=2)
    assert "plan/hvma-sparse-alignment" in _rules(check_plan(p))
    starts = np.arange(0, 48, 8)  # 8*4 = 32 B = sector size
    ok = _plan(starts, starts + 8, sparse_vector_width=2)
    assert plan_errors(ok) == []


def test_invalid_merge_mode_rejected():
    starts = np.arange(0, 48, 8)
    with pytest.raises(ValueError, match="merge"):
        _plan(starts, starts + 8, merge="hope")


def test_errors_sort_before_warnings_and_info():
    diags = check_plan(race_plan())
    sev = [d.severity for d in diags]
    assert sev == sorted(sev, key=["error", "warning", "info"].index)


def test_plans_device_sensitive():
    # The same kernel plan geometry differs across device presets (wave
    # report reflects SM count), proving plans are built per-device.
    S_kernel = make_spmm("hp-spmm")
    import repro.analysis as ra

    S = ra.default_check_matrix()
    v100 = plan_for_kernel(S_kernel, S, 64, TESLA_V100)
    a30 = plan_for_kernel(S_kernel, S, 64, TESLA_A30)
    w_v100 = [d for d in check_plan(v100) if d.rule == "plan/wave-report"]
    w_a30 = [d for d in check_plan(a30) if d.rule == "plan/wave-report"]
    assert w_v100[0].message != w_a30[0].message
