"""Attention ops: autograd SDDMM, edge softmax, weighted SpMM, GAT."""

import numpy as np
import pytest

from repro.gnn import (
    GAT,
    Adam,
    GraphOperand,
    Tensor,
    TimingContext,
    edge_softmax,
    leaky_relu,
    sddmm_op,
    weighted_spmm,
)
from repro.graphs import community_graph
from repro.kernels import sddmm_reference


@pytest.fixture(scope="module")
def graph():
    g = community_graph(300, 2400, num_communities=5, seed=13)
    return GraphOperand(g)


def feats(n, k, seed):
    return np.random.default_rng(seed).standard_normal((n, k)).astype(
        np.float32
    )


def test_sddmm_op_forward(graph):
    S = graph.matrix
    a1 = Tensor(feats(S.shape[0], 8, 0))
    a2 = Tensor(feats(S.shape[1], 8, 1))
    out = sddmm_op(graph, a1, a2)
    # Reference includes the * S.val scaling; our op scores the raw
    # pattern, so compare against reference with unit values.
    expected = sddmm_reference(
        type(S)(row=S.row, col=S.col, val=np.ones_like(S.val), shape=S.shape),
        a1.data,
        a2.data,
    )
    np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)


def test_sddmm_op_backward_is_spmm(graph):
    S = graph.matrix
    a1 = Tensor(feats(S.shape[0], 4, 2), requires_grad=True)
    a2 = Tensor(feats(S.shape[1], 4, 3), requires_grad=True)
    out = sddmm_op(graph, a1, a2)
    g = np.random.default_rng(4).standard_normal(S.nnz).astype(np.float32)
    out.backward(g)
    import scipy.sparse as sp

    W = sp.csr_matrix((g, (S.row, S.col)), shape=S.shape)
    np.testing.assert_allclose(a1.grad, W @ a2.data, rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(a2.grad, W.T @ a1.data, rtol=1e-4, atol=1e-4)


def test_sddmm_op_records_kernel_timing(graph):
    timing = TimingContext()
    a1 = Tensor(feats(graph.matrix.shape[0], 4, 5), requires_grad=True)
    a2 = Tensor(feats(graph.matrix.shape[1], 4, 6), requires_grad=True)
    out = sddmm_op(graph, a1, a2, timing)
    assert timing.num_sparse_ops == 1  # the SDDMM
    out.backward(np.ones(graph.matrix.nnz, np.float32))
    assert timing.num_sparse_ops == 3  # + two backward SpMMs


def test_edge_softmax_rows_sum_to_one(graph):
    S = graph.matrix
    scores = Tensor(
        np.random.default_rng(7).standard_normal(S.nnz).astype(np.float32)
    )
    alpha = edge_softmax(graph, scores)
    sums = np.zeros(S.shape[0])
    np.add.at(sums, S.row, alpha.data)
    nonempty = S.row_degrees() > 0
    np.testing.assert_allclose(sums[nonempty], 1.0, rtol=1e-5)
    assert np.all(alpha.data >= 0)


def test_edge_softmax_gradient_vs_numeric(graph):
    S = graph.matrix
    rng = np.random.default_rng(8)
    x = rng.standard_normal(S.nnz).astype(np.float32)
    scores = Tensor(x.copy(), requires_grad=True)
    seed = rng.standard_normal(S.nnz).astype(np.float32)
    edge_softmax(graph, scores).backward(seed)

    # Numeric check on a few coordinates.
    def loss():
        t = Tensor(scores.data)
        return float((edge_softmax(graph, t).data * seed).sum())

    eps = 1e-3
    for idx in (0, S.nnz // 2, S.nnz - 1):
        orig = scores.data[idx]
        scores.data[idx] = orig + eps
        hi = loss()
        scores.data[idx] = orig - eps
        lo = loss()
        scores.data[idx] = orig
        numeric = (hi - lo) / (2 * eps)
        assert scores.grad[idx] == pytest.approx(numeric, abs=2e-2)


def test_weighted_spmm_forward_and_grads(graph):
    S = graph.matrix
    rng = np.random.default_rng(9)
    vals = Tensor(rng.standard_normal(S.nnz).astype(np.float32),
                  requires_grad=True)
    x = Tensor(feats(S.shape[1], 4, 10), requires_grad=True)
    out = weighted_spmm(graph, vals, x)
    import scipy.sparse as sp

    W = sp.csr_matrix((vals.data, (S.row, S.col)), shape=S.shape)
    np.testing.assert_allclose(out.data, W @ x.data, rtol=1e-4, atol=1e-4)

    g = rng.standard_normal(out.data.shape).astype(np.float32)
    out.backward(g)
    # grad wrt values is the SDDMM of (g, x) over the pattern.
    expected_vals = np.einsum("ij,ij->i", g[S.row], x.data[S.col])
    np.testing.assert_allclose(vals.grad, expected_vals, rtol=1e-3, atol=1e-3)
    np.testing.assert_allclose(x.grad, W.T @ g, rtol=1e-3, atol=1e-3)


def test_leaky_relu():
    a = Tensor(np.array([-2.0, 3.0], np.float32), requires_grad=True)
    out = leaky_relu(a, slope=0.1)
    np.testing.assert_allclose(out.data, [-0.2, 3.0], rtol=1e-6)
    out.backward(np.ones(2, np.float32))
    np.testing.assert_allclose(a.grad, [0.1, 1.0])


def test_gat_trains_and_times_both_kernels(graph):
    rng = np.random.default_rng(11)
    n = graph.num_nodes
    x = Tensor(feats(n, 16, 12))
    labels = rng.integers(0, 4, n)
    model = GAT(16, 16, 4, num_layers=2, seed=0)
    opt = Adam(model.parameters(), lr=0.01)
    timing = TimingContext()
    losses = []
    for _ in range(8):
        model.zero_grad()
        loss = model.loss(graph, x, labels, timing)
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    assert losses[-1] < losses[0]
    # Each layer: 1 SDDMM + 1 SpMM forward, plus backward sparse ops.
    assert timing.num_sparse_ops >= 8 * 2 * 2
    assert timing.sparse_s > 0


def test_gat_validates_depth():
    with pytest.raises(ValueError):
        GAT(8, 8, 2, num_layers=1)
