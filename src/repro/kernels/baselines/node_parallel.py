"""Shared cost-model machinery for node-parallel (warp-per-row) kernels.

GE-SpMM, GraphBLAST row-split, Sputnik and cuSPARSE's CSR SDDMM all map
one warp to one sparse-matrix row (possibly split along the feature
dimension).  They differ in how they stage sparse data, whether dense
loads are vectorized, and whether rows are pre-sorted — all expressed as
:class:`NodeParallelProfile` knobs.  The decisive shared property is that
per-warp work is proportional to the row's degree, so skewed degree
distributions produce load imbalance (long blocks monopolize their SM
slot until the heaviest row finishes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...formats import HybridMatrix
from ...gpusim import DeviceSpec, LaunchConfig, WarpWorkload
from ..common import estimate_hit_rate, split_by_hit_rate


@dataclass(frozen=True)
class NodeParallelProfile:
    """Per-nonzero / per-row cost coefficients of a warp-per-row kernel."""

    #: Features covered by one warp; K beyond this is split over groups.
    features_per_warp: int = 64
    #: Dense-load vector width (1 = scalar loads).
    vector_width: int = 1
    #: Warp instructions per nonzero spent reading sparse data.
    sparse_instr_per_nnz: float = 2.0
    #: 32B sectors per nonzero for sparse data (lower when staged via
    #: shared-memory tiles, higher for per-element broadcast loads).
    sparse_sectors_per_nnz: float = 2.0
    #: Extra sectors per dense row access when accesses are misaligned.
    misaligned_dense: bool = False
    #: Fixed per-row warp instructions (setup, pointer reads, store).
    row_overhead_instr: float = 8.0
    #: Warps per thread block.
    warps_per_block: int = 8
    #: Registers per thread (occupancy input).
    registers_per_thread: int = 32
    #: Shared memory per block in bytes (occupancy input).
    shared_mem_per_block: int = 0
    #: Whether rows are processed in descending-degree order (Sputnik).
    sorted_rows: bool = False
    #: Multiplier on dense-load traffic (e.g. redundant re-reads).
    dense_traffic_factor: float = 1.0


def build_node_parallel_workload(
    S: HybridMatrix,
    k: int,
    profile: NodeParallelProfile,
    device: DeviceSpec,
    *,
    hit_rate: float | None = None,
) -> tuple[WarpWorkload, LaunchConfig]:
    """Per-warp workload for a warp-per-row kernel over matrix ``S``."""
    degrees = S.row_degrees().astype(np.float64)
    m = degrees.size
    if m == 0:
        work = WarpWorkload.zeros(0)
        return work, LaunchConfig(
            warps_per_block=profile.warps_per_block,
            registers_per_thread=profile.registers_per_thread,
            shared_mem_per_block=profile.shared_mem_per_block,
        )

    if profile.sorted_rows:
        degrees = np.sort(degrees)[::-1]

    fp = min(k, profile.features_per_warp)
    groups = -(-k // fp)
    feats = k / groups  # average features per group warp

    vw = profile.vector_width
    while vw > 1 and k % (32 * vw) != 0:
        vw //= 2

    dense_sectors_per_nnz = (
        feats * 4 / device.l2_sector_bytes * profile.dense_traffic_factor
    )
    if profile.misaligned_dense or (k * 4) % device.l2_sector_bytes != 0:
        dense_sectors_per_nnz += 1.0

    dense_instr_per_nnz = np.ceil(feats / (32 * vw))
    fma_per_nnz = np.ceil(feats / 32.0)

    issue = degrees * (
        profile.sparse_instr_per_nnz + dense_instr_per_nnz + fma_per_nnz + 1.0
    ) + profile.row_overhead_instr
    fma = degrees * fma_per_nnz

    # Sparse-data traffic streams once from DRAM; feature-group replicas
    # of the same row hit L2 on re-read.
    sparse_sectors = degrees * profile.sparse_sectors_per_nnz
    sparse_dram = sparse_sectors / groups
    sparse_l2 = sparse_sectors * (groups - 1) / groups

    if hit_rate is None:
        hit_rate = estimate_hit_rate(
            S.col,
            bytes_per_item=k * 4.0,
            device=device,
            concurrent_warps=m * groups,
        )
    dense_sectors = degrees * dense_sectors_per_nnz
    dense_l2, dense_dram = split_by_hit_rate(dense_sectors, hit_rate)

    write_sectors = np.full(m, feats * 4 / device.l2_sector_bytes)

    l2 = sparse_l2 + dense_l2
    dram = sparse_dram + dense_dram + write_sectors

    def rep(a: np.ndarray) -> np.ndarray:
        return np.repeat(a, groups)

    work = WarpWorkload(
        issue=rep(issue),
        l2_sectors=rep(l2),
        dram_sectors=rep(dram),
        fma=rep(fma),
    )
    config = LaunchConfig(
        warps_per_block=profile.warps_per_block,
        registers_per_thread=profile.registers_per_thread,
        shared_mem_per_block=profile.shared_mem_per_block,
    )
    return work, config
