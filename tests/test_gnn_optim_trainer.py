"""Optimizers and end-to-end training loops."""

import numpy as np
import pytest

from repro.gnn import (
    SGD,
    Adam,
    SyntheticTask,
    Tensor,
    TimingContext,
    train_full_graph,
    train_graph_sampling,
)
from repro.graphs import community_graph


def quadratic_setup(opt_cls, **kwargs):
    x = Tensor(np.array([[5.0, -3.0]], np.float32), requires_grad=True)
    opt = opt_cls([x], **kwargs)
    for _ in range(200):
        opt.zero_grad()
        x.grad = 2 * x.data  # d/dx of x^2
        opt.step()
    return x.data


def test_sgd_minimizes_quadratic():
    final = quadratic_setup(SGD, lr=0.1)
    np.testing.assert_allclose(final, 0.0, atol=1e-3)


def test_sgd_momentum_minimizes_quadratic():
    final = quadratic_setup(SGD, lr=0.05, momentum=0.9)
    np.testing.assert_allclose(final, 0.0, atol=1e-2)


def test_adam_minimizes_quadratic():
    final = quadratic_setup(Adam, lr=0.1)
    np.testing.assert_allclose(final, 0.0, atol=1e-2)


def test_optimizers_validate_lr():
    with pytest.raises(ValueError):
        SGD([], lr=0.0)
    with pytest.raises(ValueError):
        Adam([], lr=-1.0)


def test_adam_skips_gradless_params():
    x = Tensor(np.ones((1, 1), np.float32), requires_grad=True)
    opt = Adam([x], lr=0.1)
    opt.step()  # no grad set: must not move or crash
    np.testing.assert_allclose(x.data, 1.0)


@pytest.fixture(scope="module")
def small_task():
    g = community_graph(1200, 12_000, num_communities=8, seed=21)
    return g, SyntheticTask.for_graph(g, in_features=32, num_classes=8, seed=2)


def test_synthetic_task_shapes(small_task):
    g, task = small_task
    assert task.features.shape == (g.shape[0], 32)
    assert task.labels.shape == (g.shape[0],)
    assert task.labels.max() < task.num_classes
    # Deterministic.
    again = SyntheticTask.for_graph(g, in_features=32, num_classes=8, seed=2)
    np.testing.assert_array_equal(task.labels, again.labels)


def test_full_graph_training_reduces_loss(small_task):
    g, task = small_task
    rep = train_full_graph(
        g, task, hidden=32, num_layers=3, epochs=12, lr=0.02, seed=0
    )
    assert rep.mode == "full-graph"
    assert len(rep.losses) == 12
    assert rep.final_loss < rep.losses[0] - 0.05
    assert rep.simulated_gpu_s > 0


def test_full_graph_kernels_share_numerics(small_task):
    g, task = small_task
    a = train_full_graph(g, task, epochs=3, spmm_kernel="hp-spmm", seed=1)
    b = train_full_graph(
        g, task, epochs=3, spmm_kernel="cusparse-csr-alg2", seed=1
    )
    # Same numerics (kernel choice only changes simulated timing)...
    np.testing.assert_allclose(a.losses, b.losses, rtol=1e-6)
    # ...and HP is faster.
    assert a.simulated_gpu_s < b.simulated_gpu_s


def test_graph_sampling_training(small_task):
    g, task = small_task
    rep = train_graph_sampling(
        g, task, hidden=16, num_layers=2, iterations=6, node_budget=400,
        seed=3,
    )
    assert rep.mode == "graph-sampling"
    assert len(rep.losses) == 6
    assert np.isfinite(rep.losses).all()
    assert rep.timing["num_sparse_ops"] > 0


def test_timing_context_summary():
    t = TimingContext()
    t.record_gemm(10, 10, 10)
    t.record_elementwise(100)
    s = t.summary()
    assert s["total_s"] == pytest.approx(
        s["sparse_s"] + s["dense_s"] + s["elementwise_s"]
    )
    assert s["spmm_kernel"] == "hp-spmm"


def test_timing_spmm_cache(small_task):
    g, task = small_task
    t = TimingContext()
    first = t.spmm_time(g, 32)
    second = t.spmm_time(g, 32)
    assert first == second
    assert len(t._spmm_cache) == 1


def test_synthetic_task_masks(small_task):
    g, task = small_task
    assert task.train_mask.dtype == bool
    assert task.train_mask.shape == (g.shape[0],)
    # Masks partition the nodes.
    assert not np.any(task.train_mask & task.val_mask)
    assert np.all(task.train_mask | task.val_mask)
    assert 0.4 < task.train_mask.mean() < 0.8


def test_synthetic_task_validates_fraction(small_task):
    g, _ = small_task
    from repro.gnn import SyntheticTask as ST

    with pytest.raises(ValueError):
        ST.for_graph(g, train_fraction=0.0)


def test_accuracy_helper():
    from repro.gnn.trainer import accuracy

    logits = np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0]], np.float32)
    labels = np.array([0, 1, 1])
    mask = np.array([True, True, True])
    assert accuracy(logits, labels, mask) == pytest.approx(2.0 / 3.0)
    assert accuracy(logits, labels, np.zeros(3, bool)) == 0.0


def test_training_reports_validation_accuracy(small_task):
    g, task = small_task
    rep = train_full_graph(
        g, task, hidden=32, num_layers=3, epochs=15, lr=0.02, seed=4
    )
    assert len(rep.val_accuracies) == 15
    assert all(0.0 <= a <= 1.0 for a in rep.val_accuracies)
    # Learning happens: the student beats the uniform-guess baseline.
    assert rep.final_val_accuracy > 1.5 / task.num_classes
