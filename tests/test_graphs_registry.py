"""Dataset registry: Table II specs, scaling, caching."""

import numpy as np
import pytest

from repro.graphs import (
    FULL_GRAPH_ORDER,
    FULL_GRAPH_SPECS,
    load_all,
    load_graph,
)


def test_nineteen_graphs_registered():
    # Paper Table II lists 19 graphs.
    assert len(FULL_GRAPH_SPECS) == 19
    assert len(FULL_GRAPH_ORDER) == 19


def test_paper_sizes_recorded():
    s = FULL_GRAPH_SPECS["reddit"]
    assert s.paper_nodes == 232_965
    assert s.paper_edges == 114_848_857
    assert s.source == "DGL"
    assert FULL_GRAPH_SPECS["yelp"].paper_mean_degree == pytest.approx(
        13_954_819 / 716_847
    )


def test_scaled_size_preserves_mean_degree():
    s = FULL_GRAPH_SPECS["arxiv"]
    nodes, edges = s.scaled_size(100_000)
    assert edges <= 100_000 * 1.1
    assert edges / nodes == pytest.approx(s.paper_mean_degree, rel=0.05)


def test_scaled_size_caps_density():
    s = FULL_GRAPH_SPECS["ddi"]  # mean degree ~502
    nodes, edges = s.scaled_size(20_000)
    assert edges / nodes <= 0.2 * nodes + 1


def test_scaled_size_no_upscaling():
    s = FULL_GRAPH_SPECS["aifb"]
    nodes, edges = s.scaled_size(10**12)
    assert nodes == s.paper_nodes


def test_load_graph_small(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    ds = load_graph("corafull", max_edges=20_000)
    assert ds.name == "corafull"
    assert ds.num_edges <= 20_000 + ds.num_nodes + 16
    assert ds.matrix.shape[0] == ds.matrix.shape[1]


def test_load_graph_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.graphs import registry

    registry._load_cached.cache_clear()
    a = load_graph("aifb", max_edges=15_000)
    registry._load_cached.cache_clear()
    b = load_graph("aifb", max_edges=15_000)  # from disk
    np.testing.assert_array_equal(a.matrix.row, b.matrix.row)
    np.testing.assert_array_equal(a.matrix.col, b.matrix.col)


def test_load_graph_unknown_name():
    with pytest.raises(KeyError):
        load_graph("not-a-graph")


def test_load_graph_case_insensitive(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    ds = load_graph("  AIFB ", max_edges=15_000)
    assert ds.name == "aifb"


def test_load_all_order(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    datasets = load_all(max_edges=8_000)
    assert [d.name for d in datasets] == list(FULL_GRAPH_ORDER)
