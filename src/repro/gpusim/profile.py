"""Profiler-style reports for simulated kernels.

The paper diagnoses cuSPARSE with Nsight Compute (misaligned accesses,
partition kernels, tail effect).  This module renders the equivalent
analysis for any simulated launch: achieved occupancy, bandwidth
utilization, issue-slot pressure, wave/tail accounting and the dominant
bound — so users can see *why* one kernel beats another, not just by how
much.
"""

from __future__ import annotations

from ..obs import METRICS
from .device import DeviceSpec
from .launch import KernelStats


def _pct(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole > 0 else 0.0


def utilization_summary(stats: KernelStats, device: DeviceSpec) -> dict:
    """Machine-readable utilization metrics for one launch."""
    exec_s = max(stats.cycles, 1e-12) / device.clock_hz
    dram_bw = stats.dram_bytes / exec_s if exec_s else 0.0
    l2_bw = (stats.l2_bytes + stats.dram_bytes) / exec_s if exec_s else 0.0
    occupancy_blocks = stats.active_blocks_per_sm
    max_blocks = device.max_blocks_per_sm
    return {
        "bound": stats.bound,
        "time_us": stats.time_us,
        "dram_bandwidth_pct": _pct(dram_bw, device.dram_bandwidth),
        "l2_bandwidth_pct": _pct(l2_bw, device.l2_bandwidth),
        "occupancy_pct": _pct(occupancy_blocks, max_blocks),
        "waves": stats.num_waves,
        "tail_utilization_pct": 100.0 * stats.tail_utilization,
        "blocks": stats.num_blocks,
        "warps": stats.num_warps,
        "imbalance_ratio": (
            stats.longest_block_cycles / stats.balance_cycles
            if stats.balance_cycles
            else 0.0
        ),
    }


def profile_report(
    stats: KernelStats,
    device: DeviceSpec,
    *,
    kernel_name: str = "kernel",
    flops: float | None = None,
) -> str:
    """Render an Nsight-style text report for one simulated launch."""
    METRICS.inc("gpusim.profile_reports")
    u = utilization_summary(stats, device)
    lines = [
        f"== profile: {kernel_name} on {device.name} ==",
        f"duration            : {stats.time_us:10.2f} us"
        + (
            f"   ({stats.throughput_gflops(flops):.1f} GFLOP/s)"
            if flops
            else ""
        ),
        f"dominant bound      : {stats.bound}",
        f"grid                : {stats.num_blocks} blocks x "
        f"{stats.num_warps // max(1, stats.num_blocks)} warps",
        f"occupancy           : {stats.active_blocks_per_sm} blocks/SM "
        f"({u['occupancy_pct']:.0f}% of hardware max)",
        f"waves               : {stats.num_waves} x {stats.full_wave_size} "
        f"blocks; last wave {u['tail_utilization_pct']:.0f}% full",
        f"DRAM traffic        : {stats.dram_bytes / 1e6:10.2f} MB "
        f"({u['dram_bandwidth_pct']:.0f}% of peak bandwidth)",
        f"L2 traffic          : {(stats.l2_bytes + stats.dram_bytes) / 1e6:10.2f} MB "
        f"({u['l2_bandwidth_pct']:.0f}% of L2 bandwidth)",
        f"load imbalance      : longest block = "
        f"{u['imbalance_ratio'] * 100:.0f}% of the makespan bound",
    ]
    hints = []
    if stats.bound == "balance" and u["imbalance_ratio"] > 0.5:
        hints.append(
            "load imbalance dominates: a single block's slowest warp sets "
            "the pace (node-parallel symptom; see paper Section III-A)"
        )
    if stats.num_waves <= 1 and stats.tail_utilization < 0.5:
        hints.append(
            "tail effect: too few blocks to fill one wave; reduce task "
            "granularity (paper Section III-B, DTP)"
        )
    if stats.bound == "dram":
        hints.append("memory-bandwidth bound: traffic reduction (locality /"
                     " GCR) is the remaining lever")
    for h in hints:
        lines.append(f"hint                : {h}")
    return "\n".join(lines)
