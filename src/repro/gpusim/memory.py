"""Global-memory transaction model: coalescing, alignment, vectorization.

This is the substrate for the paper's Hierarchical Vectorized Memory
Access analysis (Section III-B2):

* Global memory moves in 32-byte L2 sectors; a warp-wide access costs as
  many transactions as the sectors it touches.
* An access is *aligned* when its first address is a multiple of the
  sector size; a misaligned contiguous access touches one extra sector.
* Vectorized loads (``float2`` / ``float4``) require the address to be a
  multiple of the vector width and reduce the *instruction* count (and
  therefore issue pressure), not the byte count.

All helpers are pure functions over sizes/addresses so kernel cost models
can evaluate them vectorized over millions of accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per FP32 element; the paper evaluates everything in FP32.
FP32 = 4

#: Vector widths (in elements) usable by CUDA load/store instructions.
VECTOR_WIDTHS = (1, 2, 4)


def sectors_for_access(
    start_byte: np.ndarray | int,
    num_bytes: np.ndarray | int,
    sector_bytes: int = 32,
) -> np.ndarray | int:
    """Number of ``sector_bytes`` memory transactions for a contiguous access.

    Works elementwise on arrays.  ``num_bytes == 0`` costs zero sectors.
    """
    start = np.asarray(start_byte, dtype=np.int64)
    nbytes = np.asarray(num_bytes, dtype=np.int64)
    end = start + nbytes
    first = start // sector_bytes
    last = (end - 1) // sector_bytes
    out = np.where(nbytes > 0, last - first + 1, 0)
    if np.isscalar(start_byte) and np.isscalar(num_bytes):
        return int(out)
    return out


def is_aligned(start_byte: np.ndarray | int, granularity: int) -> np.ndarray | bool:
    """Whether an address is aligned to ``granularity`` bytes (elementwise)."""
    res = (np.asarray(start_byte, dtype=np.int64) % granularity) == 0
    if np.isscalar(start_byte):
        return bool(res)
    return res


def max_vector_width(start_byte: int, num_elems: int, elem_bytes: int = FP32) -> int:
    """Widest vector load usable for a contiguous run of elements.

    The address must be aligned to the vector byte-width and the run length
    must be a multiple of the vector width; this is the hardware rule HVMA
    engineers around.
    """
    for width in (4, 2):
        vbytes = width * elem_bytes
        if start_byte % vbytes == 0 and num_elems % width == 0:
            return width
    return 1


@dataclass(frozen=True)
class RowAccessProfile:
    """Cost profile for a warp cooperatively loading one dense K-vector row.

    Produced by :func:`dense_row_profile`; consumed per-nonzero by the
    kernel cost models (each SpMM/SDDMM nonzero triggers one such load of a
    row of the dense feature matrix).
    """

    k: int                     #: feature dimension (elements per row)
    vector_width: int          #: elements per thread per load instruction
    instructions: int          #: warp-wide load instructions per row
    sectors_aligned: int       #: 32B transactions when the row is aligned
    sectors_misaligned: int    #: 32B transactions when it is not
    aligned: bool              #: whether rows of this K are always aligned

    @property
    def sectors(self) -> int:
        """Transactions actually paid given the alignment of this profile."""
        return self.sectors_aligned if self.aligned else self.sectors_misaligned


def dense_row_profile(
    k: int,
    vector_width: int = 1,
    sector_bytes: int = 32,
    elem_bytes: int = FP32,
) -> RowAccessProfile:
    """Profile a warp loading one contiguous row of ``k`` FP32 elements.

    Row ``r`` of a row-major ``(N, K)`` matrix starts at byte ``r*K*4``;
    it is guaranteed sector-aligned iff ``K*4`` is a multiple of the sector
    size (true for the K = 32/64/128 the paper evaluates).  A warp of 32
    threads loading ``vector_width`` elements each covers ``32*vw``
    elements per instruction.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if vector_width not in VECTOR_WIDTHS:
        raise ValueError(f"vector_width must be one of {VECTOR_WIDTHS}")
    row_bytes = k * elem_bytes
    # A vectorized load additionally requires element-count divisibility.
    vw = vector_width
    while vw > 1 and k % (vw) != 0:
        vw //= 2
    per_instr_elems = 32 * vw
    instructions = int(np.ceil(k / per_instr_elems))
    aligned = (row_bytes % sector_bytes) == 0
    sectors_aligned = int(np.ceil(row_bytes / sector_bytes))
    sectors_misaligned = sectors_aligned + 1
    return RowAccessProfile(
        k=k,
        vector_width=vw,
        instructions=instructions,
        sectors_aligned=sectors_aligned,
        sectors_misaligned=sectors_misaligned,
        aligned=aligned,
    )


def strided_gather_sectors(
    k: int, sector_bytes: int = 32, elem_bytes: int = FP32
) -> int:
    """Transactions when a *single thread* walks a K-element row alone.

    This is the uncoalesced pattern of scalar row-split kernels: each
    4-byte load touches its own 32-byte sector unless consecutive elements
    share one, so the warp's 32 rows cost up to ``32 * ceil(K*4/32)``... for
    a single row the cost is ``ceil(K*elem/sector)`` sectors *touched*, but
    the useful bytes per sector is ``sector/elem`` only if the same thread
    revisits the sector immediately (it does, sequentially), so a lone
    thread still moves the whole row once.  The *inefficiency* of the
    pattern is that the warp's 32 concurrent lanes touch 32 unrelated rows,
    which we charge at one sector per element up to the row's span.
    """
    full = int(np.ceil(k * elem_bytes / sector_bytes))
    return full


def warp_scatter_sectors(
    num_addresses: int, sector_bytes: int = 32, elem_bytes: int = FP32
) -> int:
    """Transactions for a warp accessing ``num_addresses`` unrelated addresses.

    Fully uncoalesced: one sector per distinct address (upper bound used
    for random gathers such as per-thread column lookups).
    """
    return int(num_addresses)


def sparse_tile_load_sectors(
    tile_elems: int,
    arrays: int = 3,
    elem_bytes: int = FP32,
    sector_bytes: int = 32,
    aligned: bool = True,
) -> int:
    """Transactions for a warp cooperatively loading a sparse-data tile.

    HP kernels load ``tile_elems`` consecutive entries of each of the
    ``arrays`` hybrid CSR/COO arrays (RowInd, ColInd, Value) into shared
    memory.  The loads are coalesced by construction; alignment depends on
    whether the tile start (``warp_id * NnzPerWarp``) is sector-aligned,
    which HVMA guarantees by restricting NnzPerWarp to the candidate set.
    """
    per_array = sectors_for_access(0, tile_elems * elem_bytes, sector_bytes)
    extra = 0 if aligned else 1
    return arrays * (int(per_array) + extra)
