"""Subgraph samplers for graph-sampling (mini-batch) training.

The paper's graph-sampling dataset consists of 838 subgraphs collected
from training runs of sampling-based GNN models.  We reproduce the
collection by implementing the samplers those models use — GraphSAINT's
node / edge / random-walk samplers and GraphSAGE's neighbor sampler —
and applying them to the calibrated full graphs.

All samplers return *induced* subgraphs in hybrid CSR/COO form, with a
``node_map`` back to parent-graph ids (needed by training to gather
features), and are deterministic in their seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats import COOMatrix, HybridMatrix


@dataclass(frozen=True)
class Subgraph:
    """An induced subgraph plus the mapping to parent node ids."""

    matrix: HybridMatrix
    node_map: np.ndarray        #: subgraph node i == parent node node_map[i]
    sampler: str
    seed: int

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_edges(self) -> int:
        return self.matrix.nnz


def induced_subgraph(parent: HybridMatrix, nodes: np.ndarray) -> HybridMatrix:
    """Induced subgraph on ``nodes`` (parent ids, deduplicated + sorted)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    # Every sampler hands us an np.unique output already; only re-sort
    # when the strictly-increasing invariant doesn't hold.
    if nodes.size > 1 and not bool(np.all(nodes[1:] > nodes[:-1])):
        nodes = np.unique(nodes)
    n = parent.shape[0]
    relabel = np.full(n, -1, dtype=np.int64)
    relabel[nodes] = np.arange(nodes.size, dtype=np.int64)
    keep = (relabel[parent.row] >= 0) & (relabel[parent.col] >= 0)
    src = relabel[parent.row[keep]]
    dst = relabel[parent.col[keep]]
    val = parent.val[keep]
    coo = COOMatrix.from_arrays(src, dst, val, shape=(nodes.size, nodes.size))
    return HybridMatrix.from_coo(coo)


def saint_node_sampler(
    parent: HybridMatrix, budget: int, seed: int = 0
) -> Subgraph:
    """GraphSAINT node sampler: nodes drawn w.p. proportional to degree."""
    rng = np.random.default_rng(seed)
    deg = parent.row_degrees().astype(np.float64) + 1.0
    p = deg / deg.sum()
    budget = min(budget, parent.shape[0])
    nodes = rng.choice(parent.shape[0], size=budget, replace=False, p=p)
    nodes = np.unique(nodes)
    return Subgraph(
        matrix=induced_subgraph(parent, nodes),
        node_map=nodes,
        sampler="saint-node",
        seed=seed,
    )


def saint_edge_sampler(
    parent: HybridMatrix, budget_edges: int, seed: int = 0
) -> Subgraph:
    """GraphSAINT edge sampler: edges drawn uniformly, endpoints kept."""
    rng = np.random.default_rng(seed)
    nnz = parent.nnz
    budget_edges = min(budget_edges, nnz)
    idx = rng.choice(nnz, size=budget_edges, replace=False)
    nodes = np.unique(
        np.concatenate([parent.row[idx], parent.col[idx]]).astype(np.int64)
    )
    return Subgraph(
        matrix=induced_subgraph(parent, nodes),
        node_map=nodes,
        sampler="saint-edge",
        seed=seed,
    )


def saint_walk_sampler(
    parent: HybridMatrix,
    num_roots: int,
    walk_length: int,
    seed: int = 0,
) -> Subgraph:
    """GraphSAINT random-walk sampler: union of short walks from roots."""
    rng = np.random.default_rng(seed)
    n = parent.shape[0]
    indptr = parent.indptr()
    num_roots = min(num_roots, n)
    frontier = rng.choice(n, size=num_roots, replace=False)
    # All walk positions land in one preallocated (L+1, roots) matrix —
    # no per-step array copies or list concatenation.
    visited = np.empty((walk_length + 1, num_roots), dtype=np.int64)
    visited[0] = frontier
    current = frontier.astype(np.int64)
    for step in range(walk_length):
        deg = indptr[current + 1] - indptr[current]
        has = np.flatnonzero(deg > 0)
        nxt = current.copy()
        if has.size:
            movers = current[has]
            offs = (rng.random(has.size) * deg[has]).astype(np.int64)
            nxt[has] = parent.col[indptr[movers] + offs]
        current = nxt
        visited[step + 1] = current
    nodes = np.unique(visited.ravel())
    return Subgraph(
        matrix=induced_subgraph(parent, nodes),
        node_map=nodes,
        sampler="saint-walk",
        seed=seed,
    )


def sage_neighbor_sampler(
    parent: HybridMatrix,
    num_seeds: int,
    fanouts: tuple[int, ...] = (10, 10),
    seed: int = 0,
) -> Subgraph:
    """GraphSAGE neighbor sampler: k-hop expansion with per-hop fanout."""
    rng = np.random.default_rng(seed)
    n = parent.shape[0]
    indptr = parent.indptr()
    num_seeds = min(num_seeds, n)
    seeds = rng.choice(n, size=num_seeds, replace=False).astype(np.int64)
    layers = [seeds]
    frontier = seeds
    for fanout in fanouts:
        deg = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
        take = np.minimum(deg, fanout)
        total = int(take.sum())
        if total == 0:
            break
        # One repeat of frontier *positions*, then gathers — instead of
        # materializing three independent np.repeat expansions.
        rep_idx = np.repeat(np.arange(frontier.size), take)
        offs = (rng.random(total) * deg[rep_idx]).astype(np.int64)
        neigh = parent.col[indptr[frontier[rep_idx]] + offs].astype(np.int64)
        layers.append(neigh)
        frontier = np.unique(neigh)
    nodes = np.unique(np.concatenate(layers))
    return Subgraph(
        matrix=induced_subgraph(parent, nodes),
        node_map=nodes,
        sampler="sage-neighbor",
        seed=seed,
    )


def build_sampling_dataset(
    parents: list,
    *,
    per_parent: int = 8,
    node_budget: int = 4000,
    seed: int = 0,
) -> list[Subgraph]:
    """Collect a mixed-sampler subgraph dataset (paper's 838 subgraphs).

    ``parents`` is a list of :class:`~repro.graphs.registry.Dataset`;
    each contributes ``per_parent`` subgraphs cycling over the four
    samplers.  The paper's full collection corresponds to
    ``per_parent ~ 44`` over the 19 full graphs; the default is sized for
    CI speed (scale up with the harness's ``--subgraphs`` option).
    """
    out: list[Subgraph] = []
    for gi, parent in enumerate(parents):
        mat = parent.matrix if hasattr(parent, "matrix") else parent
        for j in range(per_parent):
            s = seed + 1000 * gi + j
            kind = j % 4
            if kind == 0:
                sub = saint_node_sampler(mat, node_budget, seed=s)
            elif kind == 1:
                budget_e = min(mat.nnz, node_budget * 4)
                sub = saint_edge_sampler(mat, budget_e, seed=s)
            elif kind == 2:
                sub = saint_walk_sampler(mat, node_budget // 4, 4, seed=s)
            else:
                sub = sage_neighbor_sampler(
                    mat, node_budget // 8, (10, 10), seed=s
                )
            if sub.num_edges > 0:
                out.append(sub)
    return out
