"""Smoke tests: every example script runs end to end.

Examples run in a subprocess with a tiny edge cap so the whole module
stays fast; each must exit 0 and print its headline section.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")

CASES = [
    ("quickstart.py", ["corafull"], "HP-SpMM"),
    ("kernel_comparison.py", ["corafull", "32"], "SpMM kernels on corafull"),
    ("gcn_training.py", ["corafull", "16", "2"], "end-to-end speedup"),
    ("graph_reordering.py", ["corafull"], "Louvain found"),
    ("graph_sampling.py", ["corafull"], "Dynamic Task Partition"),
    ("gat_attention.py", ["corafull"], "attention GNN"),
    ("fusedmm_demo.py", ["corafull"], "FusedMM"),
]


@pytest.mark.parametrize("script,args,needle", CASES)
def test_example_runs(script, args, needle):
    env = dict(os.environ)
    env["REPRO_MAX_EDGES"] = "30000"
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert needle in proc.stdout
