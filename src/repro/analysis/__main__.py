"""CLI: ``python -m repro.analysis [--json] [--fixture NAME] [paths...]``.

Default run checks every shipped kernel config's plan, lints
``src/repro`` and runs the procsafety concurrency/lifecycle analyzer
over it; exits nonzero on any error-severity diagnostic.  Mode flags:

* ``--procsafety`` — run *only* the procsafety layer (the CI
  negative-control loop runs this over each adversarial fixture, which
  must exit nonzero, and over ``src/repro``, which must exit 0);
* ``--no-plans`` / ``--no-lint`` / ``--no-procsafety`` — skip a layer;
* ``--fixture NAME`` — check one seeded adversarial kernel plan instead
  (must always fail);
* ``--list-waivers`` — print every ``# lint: allow(...)`` waiver in the
  analyzed tree (path, line, rule, justification) and exit 0.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ADVERSARIAL_PLANS,
    Report,
    check_plan,
    default_lint_root,
    iter_python_files,
    procsafety_paths,
    run_all,
)
from .waivers import collect_waivers


def _list_waivers(paths: list[str]) -> int:
    files = iter_python_files(paths)
    total = 0
    for f in files:
        with open(f, encoding="utf-8") as fh:
            waivers = collect_waivers(fh.read(), path=f)
        for w in waivers:
            total += 1
            reason = w.reason or "<no justification>"
            print(f"{f}:{w.line}: allow({w.rule}) — {reason}")
    print(f"{total} waivers in {len(files)} files")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static schedule checker + determinism linter + "
            "concurrency/lifecycle analyzer."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: the repro source tree)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--no-plans", action="store_true", help="skip the plan-checker layer"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the linter layer"
    )
    parser.add_argument(
        "--no-procsafety",
        action="store_true",
        help="skip the concurrency/lifecycle layer",
    )
    parser.add_argument(
        "--procsafety",
        action="store_true",
        help="run only the concurrency/lifecycle layer",
    )
    parser.add_argument(
        "--show-info",
        action="store_true",
        help="include info-severity diagnostics (wave reports) in text output",
    )
    parser.add_argument(
        "--fixture",
        choices=sorted(ADVERSARIAL_PLANS),
        help="check one seeded adversarial plan (must exit nonzero)",
    )
    parser.add_argument(
        "--list-waivers",
        action="store_true",
        help="list every lint waiver in the analyzed tree and exit",
    )
    args = parser.parse_args(argv)

    if args.list_waivers:
        return _list_waivers(args.paths or [default_lint_root()])

    if args.fixture:
        report = Report()
        report.extend(check_plan(ADVERSARIAL_PLANS[args.fixture]()))
        report.plans_checked = 1
    elif args.procsafety:
        report = Report()
        diags, nfiles = procsafety_paths(
            args.paths or [default_lint_root()], audit_unknown=True
        )
        report.extend(diags)
        report.files_scanned = nfiles
    else:
        report = run_all(
            args.paths or None,
            plans=not args.no_plans,
            lint=not args.no_lint,
            procsafety=not args.no_procsafety,
        )

    if args.json:
        print(report.render_json())
    else:
        print(report.render_text(show_info=args.show_info))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
