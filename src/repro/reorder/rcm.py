"""Reverse Cuthill-McKee reordering — from-scratch BFS implementation.

RCM is the classic bandwidth-minimizing permutation: BFS from a minimum-
degree node, visiting neighbors in ascending-degree order, then reverse
the visit order.  Included as an additional locality baseline for the
ablation tooling (not a paper baseline, but a standard point of
reference for reordering studies).
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix
from .base import Reorderer


class RCMReorderer(Reorderer):
    """Reverse Cuthill-McKee over the symmetrized adjacency structure."""

    name = "rcm"

    def permutation(self, S: HybridMatrix) -> np.ndarray:
        n = S.shape[0]
        # Symmetrize the structure so BFS sees an undirected graph.
        src = np.concatenate([S.row, S.col]).astype(np.int64)
        dst = np.concatenate([S.col, S.row]).astype(np.int64)
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        degrees = np.diff(indptr)

        visited = np.zeros(n, dtype=bool)
        out = np.empty(n, dtype=np.int64)
        pos = 0
        # Process every connected component, seeded at its min-degree node.
        node_by_degree = np.argsort(degrees, kind="stable")
        seed_cursor = 0
        while pos < n:
            while visited[node_by_degree[seed_cursor]]:
                seed_cursor += 1
            start = int(node_by_degree[seed_cursor])
            visited[start] = True
            out[pos] = start
            head = pos
            pos += 1
            while head < pos:
                u = int(out[head])
                head += 1
                neigh = dst[indptr[u] : indptr[u + 1]]
                neigh = neigh[~visited[neigh]]
                if neigh.size:
                    neigh = np.unique(neigh)
                    neigh = neigh[~visited[neigh]]
                    neigh = neigh[np.argsort(degrees[neigh], kind="stable")]
                    visited[neigh] = True
                    out[pos : pos + neigh.size] = neigh
                    pos += neigh.size
        return out[::-1].copy()
