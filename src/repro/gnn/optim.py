"""Optimizers for the training substrate: SGD and Adam."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) — the default for GNN training."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
