"""Process-pool fan-out for experiment sweeps.

``parallel_map`` is a deterministic-order ``map`` that fans work items
over a ``concurrent.futures`` process pool when ``REPRO_JOBS`` asks for
more than one worker, and degrades to a plain in-process loop otherwise
(or whenever a pool cannot be built — nested pools, unpicklable items,
missing semaphores in sandboxes).  Results always come back in item
order, so serial and parallel sweeps produce identical output.

``REPRO_JOBS`` semantics: unset or ``1`` → serial; ``N`` → N workers;
``0`` or ``auto`` → one worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(num_items: int | None = None) -> int:
    """Worker count from ``REPRO_JOBS``, clamped to the item count."""
    raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
    if raw in ("", "0", "auto"):
        jobs = os.cpu_count() or 1
    else:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, 'auto' or unset; got {raw!r}"
            ) from None
    jobs = max(1, jobs)
    if num_items is not None:
        jobs = min(jobs, max(1, num_items))
    return jobs


def _pool_context():
    """Prefer fork (cheap, inherits loaded graphs); else the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` with deterministic result ordering.

    ``fn`` must be a module-level callable and items picklable for the
    parallel path; any failure to run the pool falls back to the serial
    loop, so callers never need to special-case the environment.
    """
    seq: Sequence[T] = items if isinstance(items, Sequence) else list(items)
    if jobs is None:
        jobs = resolve_jobs(len(seq))
    if jobs <= 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=_pool_context()
        ) as pool:
            return list(pool.map(fn, seq))
    except Exception:
        return [fn(item) for item in seq]
