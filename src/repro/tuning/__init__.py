"""Task-partition tuning: Dynamic Task Partition + Hierarchical
Vectorized Memory Access (paper Section III-B)."""

from .dtp import (
    DEFAULT_ALPHA,
    DEFAULT_WARPS_PER_BLOCK,
    HP_REGISTERS_PER_THREAD,
    HP_SMEM_PER_WARP,
    TaskPartition,
    fixed_partition,
    select_partition,
)
from .hvma import (
    CANDIDATE_NNZ_PER_WARP,
    feature_groups,
    hvma_vector_width,
    is_candidate_aligned,
    naive_nnz_per_warp,
    sparse_vector_width,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_WARPS_PER_BLOCK",
    "HP_REGISTERS_PER_THREAD",
    "HP_SMEM_PER_WARP",
    "TaskPartition",
    "fixed_partition",
    "select_partition",
    "CANDIDATE_NNZ_PER_WARP",
    "feature_groups",
    "hvma_vector_width",
    "is_candidate_aligned",
    "naive_nnz_per_warp",
    "sparse_vector_width",
]
