"""Golden-reference numerics for SpMM and SDDMM (paper Algorithms 1-2).

These are chunked, fully-vectorized NumPy implementations of the
sequential reference algorithms.  Every kernel in the library delegates
its numerical result here (all modeled kernels compute the identical sum,
only their execution schedule differs), and the test-suite additionally
cross-checks against ``scipy.sparse``.

Chunking keeps peak temporary memory at ``CHUNK_ELEMS`` floats regardless
of ``nnz * K``.
"""

from __future__ import annotations

import numpy as np

from ..formats import HybridMatrix

#: Upper bound on the ``nnz_chunk * K`` temporary used per chunk (~64 MB fp32).
CHUNK_ELEMS = 16 * 1024 * 1024


def _chunk_bounds(indptr: np.ndarray, max_nnz: int) -> list[tuple[int, int]]:
    """Split rows into contiguous chunks of at most ``max_nnz`` nonzeros.

    Chunk boundaries always fall on row boundaries so reduceat segments
    never straddle chunks.  A single row larger than ``max_nnz`` becomes
    its own chunk.
    """
    bounds: list[tuple[int, int]] = []
    m = indptr.size - 1
    start_row = 0
    while start_row < m:
        start_nnz = int(indptr[start_row])
        # Furthest row whose end stays within budget.
        end_row = int(
            np.searchsorted(indptr, start_nnz + max_nnz, side="right") - 1
        )
        if end_row <= start_row:
            end_row = start_row + 1
        bounds.append((start_row, end_row))
        start_row = end_row
    return bounds


def spmm_reference(S: HybridMatrix, A: np.ndarray) -> np.ndarray:
    """Compute ``O = S @ A`` (paper Algorithm 1) with exact FP32 semantics.

    Rows are processed in chunks; within a chunk, per-row segments are
    reduced with ``np.add.reduceat`` over the gathered/scaled operand rows.
    """
    A = np.asarray(A, dtype=np.float32)
    m = S.shape[0]
    k = A.shape[1]
    out = np.zeros((m, k), dtype=np.float32)
    if S.nnz == 0 or k == 0:
        return out
    indptr = S.indptr()
    max_nnz = max(1, CHUNK_ELEMS // max(1, k))
    for row_lo, row_hi in _chunk_bounds(indptr, max_nnz):
        lo, hi = int(indptr[row_lo]), int(indptr[row_hi])
        if lo == hi:
            continue
        gathered = A[S.col[lo:hi]] * S.val[lo:hi, None]
        # One reduceat segment per *nonempty* row: their start offsets are
        # strictly increasing and always in-bounds, which empty rows'
        # repeated/past-the-end offsets are not.
        lengths = np.diff(indptr[row_lo : row_hi + 1])
        nonempty = lengths > 0
        seg_starts = (indptr[row_lo:row_hi][nonempty] - lo).astype(np.int64)
        sums = np.add.reduceat(gathered, seg_starts, axis=0)
        out[row_lo:row_hi][nonempty] = sums
    return out


def sddmm_reference(
    S: HybridMatrix, A1: np.ndarray, A2T: np.ndarray
) -> np.ndarray:
    """Compute ``S_O.val`` for ``S_O = (A1 @ A2) ⊙ S`` (paper Algorithm 2).

    ``A2T`` is the transposed second operand, shape ``(N, K)``.  Returns
    the nnz-length value array in ``S``'s element order.
    """
    A1 = np.asarray(A1, dtype=np.float32)
    A2T = np.asarray(A2T, dtype=np.float32)
    nnz = S.nnz
    k = A1.shape[1]
    out = np.empty(nnz, dtype=np.float32)
    if nnz == 0:
        return out
    step = max(1, CHUNK_ELEMS // max(1, k))
    for lo in range(0, nnz, step):
        hi = min(nnz, lo + step)
        dots = np.einsum(
            "ij,ij->i",
            A1[S.row[lo:hi]],
            A2T[S.col[lo:hi]],
            dtype=np.float32,
        )
        out[lo:hi] = dots * S.val[lo:hi]
    return out


def spmm_flops(S: HybridMatrix, k: int) -> float:
    """FLOP count of one SpMM (2 per nonzero per feature)."""
    return 2.0 * S.nnz * k


def sddmm_flops(S: HybridMatrix, k: int) -> float:
    """FLOP count of one SDDMM (2 per nonzero per feature + final scale)."""
    return 2.0 * S.nnz * k + S.nnz
