"""FusedMM demo: fusing SDDMM + SpMM (paper related work [22]).

Usage::

    python examples/fusedmm_demo.py [graph-name]

Attention-style aggregation computes ``O = S(g(SDDMM(S, H, H))) @ H``.
Running the paper's two kernels back to back writes the nnz-length edge
scores to global memory and reads them (plus the sparse indices) straight
back.  FusedMM keeps them in registers/shared memory.  This demo
quantifies the saving with the simulator and verifies the fused numerics.
"""

import sys

import numpy as np

from repro.bench import render_table
from repro.formats import HybridMatrix
from repro.gpusim import TESLA_V100
from repro.graphs import load_graph
from repro.kernels import FusedMM, fusedmm_reference, sddmm_reference, spmm_reference


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "arxiv"
    S = load_graph(name, max_edges=600_000).matrix
    k = 64
    rng = np.random.default_rng(0)
    H = rng.standard_normal((S.shape[0], k)).astype(np.float32) * 0.1
    assert S.shape[0] == S.shape[1]

    fused = FusedMM().run(S, H, H, H, device=TESLA_V100)
    # Verify against the two-kernel composition.
    vals = sddmm_reference(S, H, H)
    weighted = HybridMatrix(row=S.row, col=S.col, val=vals, shape=S.shape)
    expected = spmm_reference(weighted, H)
    err = np.abs(fused.output - expected).max()

    print(render_table(
        ["graph", "nnz", "fused (us)", "unfused (us)", "fusion speedup",
         "max err"],
        [[name, S.nnz, fused.stats.time_us, fused.unfused_time_s * 1e6,
          fused.fusion_speedup, f"{err:.1e}"]],
        title=f"FusedMM vs HP-SDDMM + HP-SpMM (K={k}, Tesla V100)",
    ))
    print("\nthe saving = the nnz intermediate's round trip plus the second"
          "\npass over the sparse index arrays (see repro.kernels.fusedmm).")


if __name__ == "__main__":
    main()
