"""Baseline kernel models: the open-source and literature kernels the
paper compares against (Section IV-A2)."""

from .aspt import ASpTSpMM, dense_fraction
from .blocked_ell import BlockedEllSpMM, blocked_ell_preprocess_s
from .dgl_sddmm import DGLSDDMM
from .gespmm import GESpMM, GESPMM_PROFILE
from .huang import HuangNGSpMM, neighbor_group_degrees
from .mergepath import MergePathSpMM
from .node_parallel import NodeParallelProfile, build_node_parallel_workload
from .rowsplit import RowSplitSpMM, ROWSPLIT_PROFILE
from .sputnik import SputnikSpMM, SPUTNIK_PROFILE
from .tcgnn import TCGNNSpMM, nonempty_tiles

__all__ = [
    "ASpTSpMM",
    "dense_fraction",
    "BlockedEllSpMM",
    "blocked_ell_preprocess_s",
    "DGLSDDMM",
    "GESpMM",
    "GESPMM_PROFILE",
    "HuangNGSpMM",
    "neighbor_group_degrees",
    "MergePathSpMM",
    "NodeParallelProfile",
    "build_node_parallel_workload",
    "RowSplitSpMM",
    "ROWSPLIT_PROFILE",
    "SputnikSpMM",
    "SPUTNIK_PROFILE",
    "TCGNNSpMM",
    "nonempty_tiles",
]
