"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str = "",
    floatfmt: str = ".2f",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with ``floatfmt``; everything else with ``str``.
    """
    def fmt(v) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_speedup(x: float) -> str:
    """Paper-style speedup formatting, e.g. ``1.72x``."""
    return f"{x:.2f}x"
