"""Hierarchical Vectorized Memory Access (paper Section III-B2, Fig. 7).

HVMA makes sparse- and dense-data accesses aligned and vectorized by
restricting ``NnzPerWarp`` to a candidate set whose members guarantee
sector-aligned warp slice boundaries, and by selecting the vector width
(``float``/``float2``/``float4``) that the chosen ``NnzPerWarp`` and the
feature dimension ``K`` permit:

* ``NnzPerWarp >= 128`` → ``int4``/``float4`` instructions,
* ``NnzPerWarp >= 64``  → ``int2``/``float2``,
* otherwise scalar loads.
"""

from __future__ import annotations

import numpy as np

#: The paper's candidate set for NnzPerWarp (Section III-B2).
CANDIDATE_NNZ_PER_WARP: tuple[int, ...] = (8, 32, 64, 128, 256, 512)


def hvma_vector_width(nnz_per_warp: int, k: int) -> int:
    """Vector width (elements/thread/instruction) HVMA selects.

    The width is capped by the paper's NnzPerWarp rule and by ``K``'s
    divisibility: a warp-wide vector load covers ``32 * width`` elements,
    which must divide into the row length to keep accesses aligned.
    """
    if nnz_per_warp >= 128:
        width = 4
    elif nnz_per_warp >= 64:
        width = 2
    else:
        width = 1
    while width > 1 and k % (32 * width) != 0:
        width //= 2
    return width


def feature_groups(k: int, vector_width: int) -> int:
    """Warps needed along the feature dimension (Ineq. 5's K term).

    Each warp covers ``WarpSize * VectorWidth`` features; K larger than
    that is split over multiple warps per nnz slice.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return -(-k // (32 * vector_width))


def is_candidate_aligned(nnz_per_warp: int, sector_bytes: int = 32) -> bool:
    """Whether warp slice starts are sector-aligned for 4-byte elements.

    ``warp_start = warp_id * NnzPerWarp``; its byte address in each sparse
    array is ``warp_start * 4``, aligned iff NnzPerWarp is a multiple of
    ``sector_bytes / 4``.  All candidate-set members satisfy this.
    """
    return (nnz_per_warp * 4) % sector_bytes == 0


def sparse_vector_width(nnz_per_warp: int) -> int:
    """Vector width for loading the sparse tile arrays themselves."""
    if not is_candidate_aligned(nnz_per_warp):
        return 1
    if nnz_per_warp >= 128:
        return 4
    if nnz_per_warp >= 64:
        return 2
    return 1


def naive_nnz_per_warp(nnz: int, m: int) -> int:
    """The pre-DTP heuristic ``NnzPerWarp = NNZ / M`` (paper Section III-B1).

    This is what the ablation's "base" configuration uses; it generally
    falls outside the candidate set, so accesses are unaligned and scalar.
    """
    if m <= 0:
        return max(1, nnz)
    return max(1, int(np.ceil(nnz / m)))
