"""Blocked-Ellpack format — cuSPARSE's third SpMM input format.

Paper Section II notes cuSPARSE supports CSR, COO *and Blocked-Ellpack*
for SpMM.  Blocked-ELL tiles the matrix into ``block x block`` squares
and stores, for every block-row, a fixed number of column-block indices
(padding with empty blocks when a block-row has fewer).  Dense blocks
make GEMM-like kernels possible; the cost is padding — power-law graphs
pad catastrophically, which is why GNN frameworks avoid the format and
why this library models it for comparison purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SparseFormatError
from .hybrid import HybridMatrix


@dataclass(frozen=True)
class BlockedEllStats:
    """Structural statistics of a Blocked-ELL conversion (no dense data).

    Cheap to compute for any matrix; the kernel cost model needs only
    these, avoiding the O(block_rows x width x bs^2) dense allocation,
    which explodes on skewed graphs (a single hub row forces the whole
    matrix to its width).
    """

    block_size: int
    num_block_rows: int
    num_block_cols: int
    ell_width: int
    stored_blocks: int
    nnz: int
    stored_col_blocks: np.ndarray  #: block-column ids of stored blocks

    @property
    def padded_blocks(self) -> int:
        return self.num_block_rows * self.ell_width

    def padding_ratio(self) -> float:
        total = self.padded_blocks
        return 1.0 - self.stored_blocks / total if total else 0.0

    def occupancy(self) -> float:
        dense = self.stored_blocks * self.block_size**2
        return self.nnz / dense if dense else 0.0


def blocked_ell_stats(S: HybridMatrix, block_size: int = 16) -> BlockedEllStats:
    """Compute Blocked-ELL structure without materializing blocks."""
    if block_size <= 0:
        raise SparseFormatError("block_size must be positive")
    m, n = S.shape
    nbr = -(-m // block_size) if m else 0
    nbc = -(-n // block_size) if n else 0
    if S.nnz == 0 or nbr == 0:
        return BlockedEllStats(
            block_size=block_size,
            num_block_rows=nbr,
            num_block_cols=nbc,
            ell_width=0,
            stored_blocks=0,
            nnz=0,
            stored_col_blocks=np.zeros(0, dtype=np.int64),
        )
    brow = S.row.astype(np.int64) // block_size
    bcol = S.col.astype(np.int64) // block_size
    uniq = np.unique(brow * nbc + bcol)
    u_brow = uniq // nbc
    blocks_per_row = np.bincount(u_brow, minlength=nbr)
    return BlockedEllStats(
        block_size=block_size,
        num_block_rows=nbr,
        num_block_cols=nbc,
        ell_width=int(blocks_per_row.max()),
        stored_blocks=int(uniq.size),
        nnz=S.nnz,
        stored_col_blocks=(uniq % nbc),
    )


@dataclass(frozen=True)
class BlockedEllMatrix:
    """An ``M x N`` matrix in Blocked-Ellpack layout.

    Attributes
    ----------
    block_size : int
        Side of the square blocks.
    col_blocks : int32 array, shape (num_block_rows, ell_width)
        Column-block index per slot; ``-1`` marks a padding slot.
    values : float32 array, shape (num_block_rows, ell_width, bs, bs)
        Dense contents of each stored block (zeros where the pattern is
        empty).
    shape : (int, int)
        Logical dense shape (unpadded).
    """

    block_size: int
    col_blocks: np.ndarray
    values: np.ndarray
    shape: tuple[int, int]

    @property
    def num_block_rows(self) -> int:
        return int(self.col_blocks.shape[0])

    @property
    def ell_width(self) -> int:
        """Stored blocks per block-row (the padded width)."""
        return int(self.col_blocks.shape[1])

    @property
    def stored_blocks(self) -> int:
        """Non-padding blocks actually present."""
        return int(np.count_nonzero(self.col_blocks >= 0))

    @property
    def padded_blocks(self) -> int:
        return self.num_block_rows * self.ell_width

    def padding_ratio(self) -> float:
        """Padded slots / total slots — the format's waste factor."""
        total = self.padded_blocks
        return 1.0 - self.stored_blocks / total if total else 0.0

    def occupancy(self) -> float:
        """Nonzeros / stored dense elements (intra-block density)."""
        dense_elems = self.stored_blocks * self.block_size**2
        nnz = int(np.count_nonzero(self.values))
        return nnz / dense_elems if dense_elems else 0.0

    def memory_elements(self) -> int:
        """Storage cost in array elements (indices + dense blocks)."""
        return self.padded_blocks * (1 + self.block_size**2)

    @classmethod
    def from_hybrid(
        cls, S: HybridMatrix, block_size: int = 16
    ) -> "BlockedEllMatrix":
        """Convert from hybrid CSR/COO; ELL width = max blocks per row.

        The conversion itself is what cuSPARSE requires users to perform
        offline; its padding explodes on skewed graphs.
        """
        if block_size <= 0:
            raise SparseFormatError("block_size must be positive")
        m, n = S.shape
        nbr = -(-m // block_size) if m else 0
        nbc = -(-n // block_size) if n else 0
        if S.nnz == 0 or nbr == 0:
            return cls(
                block_size=block_size,
                col_blocks=np.full((nbr, 0), -1, dtype=np.int32),
                values=np.zeros(
                    (nbr, 0, block_size, block_size), dtype=np.float32
                ),
                shape=S.shape,
            )
        brow = (S.row.astype(np.int64) // block_size).astype(np.int64)
        bcol = (S.col.astype(np.int64) // block_size).astype(np.int64)
        key = brow * nbc + bcol
        uniq, inverse = np.unique(key, return_inverse=True)
        u_brow = (uniq // nbc).astype(np.int64)
        u_bcol = (uniq % nbc).astype(np.int64)
        blocks_per_row = np.bincount(u_brow, minlength=nbr)
        width = int(blocks_per_row.max()) if blocks_per_row.size else 0

        col_blocks = np.full((nbr, width), -1, dtype=np.int32)
        slot_of_block = np.empty(uniq.size, dtype=np.int64)
        # Slot: rank of the block within its block-row (uniq is sorted by
        # (brow, bcol), so ranks are consecutive).
        row_start = np.zeros(nbr + 1, dtype=np.int64)
        np.cumsum(blocks_per_row, out=row_start[1:])
        slot_of_block = np.arange(uniq.size) - row_start[u_brow]
        col_blocks[u_brow, slot_of_block] = u_bcol.astype(np.int32)

        values = np.zeros(
            (nbr, width, block_size, block_size), dtype=np.float32
        )
        e_slot = slot_of_block[inverse]
        values[
            brow,
            e_slot,
            S.row.astype(np.int64) % block_size,
            S.col.astype(np.int64) % block_size,
        ] = S.val
        return cls(
            block_size=block_size,
            col_blocks=col_blocks,
            values=values,
            shape=S.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Densify (test-sized matrices only)."""
        m, n = self.shape
        bs = self.block_size
        out = np.zeros((self.num_block_rows * bs, -(-n // bs) * bs),
                       dtype=np.float32)
        for br in range(self.num_block_rows):
            for s in range(self.ell_width):
                bc = int(self.col_blocks[br, s])
                if bc < 0:
                    continue
                out[br * bs:(br + 1) * bs, bc * bs:(bc + 1) * bs] = (
                    self.values[br, s]
                )
        return out[:m, :n]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockedEllMatrix(shape={self.shape}, bs={self.block_size}, "
            f"width={self.ell_width}, padding={self.padding_ratio():.2f})"
        )
