"""Table III — average speedups and win percentages, V100 + A30."""

from repro.bench import PAPER_TABLE3, run_table3, write_report

from conftest import bench_max_edges, bench_subgraphs


def test_table3_both_platforms(run_once):
    res = run_once(
        run_table3,
        k=64,
        max_edges=bench_max_edges(),
        num_subgraphs=bench_subgraphs(),
    )
    report = res.render()
    print("\n" + report)
    write_report("table3", report)

    # Every (device, dataset, baseline) cell: HP faster on average.
    for row in res.rows:
        avg = row[3]
        assert avg > 1.0, row

    # Ordering within SpMM baselines matches the paper on both devices:
    # row-split slowest, then GE-SpMM, then the cuSPARSE algorithms.
    for dev in ("v100", "a30"):
        rs = res.measured(dev, "full", "row-split")
        ge = res.measured(dev, "full", "ge-spmm")
        a2 = res.measured(dev, "full", "cusparse-csr-alg2")
        a3 = res.measured(dev, "full", "cusparse-csr-alg3")
        assert rs > ge > a3 > a2

    # Within a factor-2 band of the published averages for the headline
    # cells (our substrate is a simulator; shape, not absolutes).
    for key, (paper_avg, _) in PAPER_TABLE3.items():
        dev, dataset, baseline = key
        measured = res.measured(dev, dataset, baseline)
        assert measured > paper_avg / 3.0, (key, measured, paper_avg)
