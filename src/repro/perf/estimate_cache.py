"""Sweep-level memo cache for simulated kernel estimates.

Every ``estimate()`` in the kernel API is deterministic, yet the harness
historically recomputed it per sweep — ``table3`` re-runs the exact
``fig9``/``fig10`` kernel×graph combinations on two devices.  This cache
memoizes ``(matrix structure, kernel, K, device, cost params) ->
(KernelStats, preprocessing_s)`` behind two layers:

* an in-process LRU (:class:`EstimateCache`), always on unless disabled;
* an optional on-disk JSON store (one file per entry, atomic writes),
  enabled by pointing ``REPRO_ESTIMATE_CACHE_DIR`` at a directory —
  mirroring the ``~/.cache/repro-graphs`` pattern of
  :mod:`repro.graphs.registry`, including the delete-and-regenerate
  recovery for corrupt entries.

Environment variables
---------------------
``REPRO_NO_ESTIMATE_CACHE``
    Any value other than empty/``0`` bypasses the cache entirely.
``REPRO_ESTIMATE_CACHE_DIR``
    Directory for the persistent layer (off when unset).
``REPRO_ESTIMATE_CACHE_SIZE``
    In-process LRU capacity in entries (default 4096).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass

from ..config import env_flag, env_str
from ..gpusim import CostParams, DeviceSpec, KernelStats
from ..obs import trace_span
from .fingerprint import (
    dataclass_fingerprint,
    kernel_config_fingerprint,
    matrix_fingerprint,
)

#: Cached payload: the simulated stats plus modeled preprocessing time.
Entry = tuple[KernelStats, float]


@dataclass(frozen=True)
class EstimateCacheStats:
    """Counter snapshot for hit/miss accounting."""

    hits: int
    misses: int
    disk_hits: int
    disk_errors: int
    evictions: int
    entries: int
    stored_bytes: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EstimateCache:
    """In-process LRU over estimate results, with optional disk spill."""

    def __init__(self, max_entries: int = 4096, disk_dir: str | None = None):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.disk_dir = disk_dir
        self._lru: OrderedDict[str, Entry] = OrderedDict()
        self._stored_bytes = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_errors = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        op: str,
        kernel,
        S,
        k: int,
        device: DeviceSpec,
        cost: CostParams,
    ) -> str:
        """Full content-addressed key for one estimate call."""
        return "&".join(
            (
                op,
                kernel_config_fingerprint(kernel),
                matrix_fingerprint(S),
                f"k={int(k)}",
                dataclass_fingerprint(device),
                dataclass_fingerprint(cost),
            )
        )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str) -> Entry | None:
        entry = self._lru.get(key)
        if entry is not None:
            self._lru.move_to_end(key)
            self.hits += 1
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self.hits += 1
            self.disk_hits += 1
            self._store_mem(key, entry)
            return entry
        self.misses += 1
        return None

    def put(self, key: str, stats: KernelStats, preprocessing_s: float) -> None:
        entry = (stats, float(preprocessing_s))
        self._store_mem(key, entry)
        self._disk_put(key, entry)

    def clear(self) -> None:
        """Drop all in-memory entries and reset counters."""
        self._lru.clear()
        self._stored_bytes = 0
        self.hits = self.misses = 0
        self.disk_hits = self.disk_errors = self.evictions = 0

    def stats(self) -> EstimateCacheStats:
        return EstimateCacheStats(
            hits=self.hits,
            misses=self.misses,
            disk_hits=self.disk_hits,
            disk_errors=self.disk_errors,
            evictions=self.evictions,
            entries=len(self._lru),
            stored_bytes=self._stored_bytes,
        )

    def _store_mem(self, key: str, entry: Entry) -> None:
        if key in self._lru:
            self._lru.move_to_end(key)
            return
        while len(self._lru) >= self.max_entries:
            old_key, _ = self._lru.popitem(last=False)
            self._stored_bytes -= self._entry_bytes(old_key)
            self.evictions += 1
        self._lru[key] = entry
        self._stored_bytes += self._entry_bytes(key)

    @staticmethod
    def _entry_bytes(key: str) -> int:
        # Key string + ~25 numeric KernelStats fields at 8 bytes each.
        return len(key) + 25 * 8

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> str | None:
        if not self.disk_dir:
            return None
        digest = hashlib.blake2b(key.encode(), digest_size=16).hexdigest()
        return os.path.join(self.disk_dir, f"est-{digest}-v1.json")

    def _disk_get(self, key: str) -> Entry | None:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as f:
                payload = json.load(f)
            if payload["key"] != key:  # digest collision: treat as miss
                return None
            stats = KernelStats(**payload["stats"])
            return stats, float(payload["preprocessing_s"])
        except Exception:
            # Corrupt entry: delete and let the caller regenerate (same
            # recovery path as graphs.registry._load_cached).
            self.disk_errors += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, entry: Entry) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        stats, pre = entry
        payload = {"key": key, "stats": asdict(stats), "preprocessing_s": pre}
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, path)
        except OSError:
            self.disk_errors += 1


# ----------------------------------------------------------------------
# Process-wide singleton + the kernel-API entry point
# ----------------------------------------------------------------------
_GLOBAL_CACHE: EstimateCache | None = None


def cache_enabled() -> bool:
    """False when ``REPRO_NO_ESTIMATE_CACHE`` opts out (read per call)."""
    return not env_flag("REPRO_NO_ESTIMATE_CACHE")


def _resolve_cache_size() -> int:
    """``REPRO_ESTIMATE_CACHE_SIZE`` as a validated positive integer."""
    raw = env_str("REPRO_ESTIMATE_CACHE_SIZE")
    if not raw:
        return 4096
    try:
        size = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_ESTIMATE_CACHE_SIZE must be a positive integer "
            f"(LRU capacity in entries); got {raw!r}"
        ) from None
    if size <= 0:
        raise ValueError(
            f"REPRO_ESTIMATE_CACHE_SIZE must be a positive integer "
            f"(LRU capacity in entries); got {size}"
        )
    return size


def get_estimate_cache() -> EstimateCache:
    """The process-wide cache (created on first use).

    An environment change (``REPRO_ESTIMATE_CACHE_DIR`` /
    ``REPRO_ESTIMATE_CACHE_SIZE``) rebuilds the cache with the new
    configuration, but the hit/miss/eviction/disk counters carry over —
    reconfiguring mid-run must not zero the run's accounting (the
    unified :func:`repro.obs.metrics.snapshot` reads them).
    """
    global _GLOBAL_CACHE
    disk_dir = env_str("REPRO_ESTIMATE_CACHE_DIR") or None
    size = _resolve_cache_size()
    if (
        _GLOBAL_CACHE is None
        or _GLOBAL_CACHE.disk_dir != disk_dir
        or _GLOBAL_CACHE.max_entries != size
    ):
        fresh = EstimateCache(max_entries=size, disk_dir=disk_dir)
        if _GLOBAL_CACHE is not None:
            fresh.hits = _GLOBAL_CACHE.hits
            fresh.misses = _GLOBAL_CACHE.misses
            fresh.disk_hits = _GLOBAL_CACHE.disk_hits
            fresh.disk_errors = _GLOBAL_CACHE.disk_errors
            fresh.evictions = _GLOBAL_CACHE.evictions
        _GLOBAL_CACHE = fresh
    return _GLOBAL_CACHE


def estimate_cache_stats() -> EstimateCacheStats:
    """Counter snapshot of the process-wide cache."""
    return get_estimate_cache().stats()


def cached_estimate(
    kernel,
    op: str,
    S,
    k: int,
    device: DeviceSpec,
    cost: CostParams,
) -> Entry:
    """Memoized ``kernel._estimate`` — the routing point for the API.

    Cache misses (the actual cost-model evaluations) are traced as
    ``estimate.compute`` host spans when ``REPRO_TRACE`` is on; hits
    never enter the trace, so the span count is the miss count.
    """
    if not cache_enabled():
        return kernel._estimate(S, k, device, cost)
    cache = get_estimate_cache()
    key = cache.make_key(op, kernel, S, k, device, cost)
    entry = cache.get(key)
    if entry is None:
        with trace_span(
            "estimate.compute", cat="cache", op=op, kernel=kernel.name, k=k
        ):
            stats, pre = kernel._estimate(S, k, device, cost)
        entry = (stats, float(pre))
        cache.put(key, stats, pre)
    return entry
