"""Adversarial fixture: ``procsafety/handle-without-gate``.

A matrix is published to the shared store without consulting the
executor's ``ships_work`` gate — for an inline executor the handle never
crosses a process boundary, so the publish is pure overhead.  Never
imported; analyzed statically by the CI negative-control loop.
"""


def dispatch(store, matrix, executor, evaluate):
    handle = store.publish(matrix)
    return executor.map(evaluate, [handle])
