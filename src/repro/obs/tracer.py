"""Span tracer with Chrome-trace/Perfetto JSON export.

Two kinds of spans share one trace file:

* **host spans** (:func:`trace_span`) measure wall-clock time of harness
  work — sweeps, estimate calls, pool fan-out — on the ``host`` track;
* **simulated spans** (:func:`trace_emit`) place simulated-GPU kernel
  durations on a separate ``sim-gpu`` track, so a Table-V training run
  shows the modeled kernel timeline the paper reads off Nsight Systems.

Tracing is **off by default** and costs one module-global check plus a
shared no-op context manager per call when disabled.  Enable it with
``REPRO_TRACE=<path>`` (or ``REPRO_TRACE=1`` for ``repro-trace.json``);
the bench CLI and the wall-clock harness export automatically, and an
``atexit`` hook covers ad-hoc scripts.  Spans recorded inside
``REPRO_JOBS`` process-pool workers are shipped back with each work
item's result and spliced onto the parent trace (see
:func:`repro.perf.parallel_map`), so parallel sweeps produce complete
traces too — worker spans carry a ``pool_worker`` arg with the worker's
pid.

The export format is the Chrome Trace Event ``traceEvents`` array of
complete (``"ph": "X"``) events, which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.
"""

from __future__ import annotations

import atexit
import functools
import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from ..config import env_str

#: Track name -> synthetic pid for the trace file.
HOST_TRACK = "host"
SIM_TRACK = "sim-gpu"
_TRACK_PIDS = {HOST_TRACK: 1, SIM_TRACK: 2}

#: Shared no-op context manager returned by trace_span when disabled —
#: one object for the whole process, so the disabled path allocates
#: nothing.
_NULL_SPAN = nullcontext()


@dataclass
class SpanRecord:
    """One recorded span (either track)."""

    name: str
    cat: str
    ts_us: float
    dur_us: float
    track: str
    tid: int
    depth: int
    args: dict = field(default_factory=dict)

    def to_event(self) -> dict:
        """Chrome Trace Event Format complete event."""
        event = {
            "name": self.name,
            "cat": self.cat or "repro",
            "ph": "X",
            "ts": self.ts_us,
            "dur": self.dur_us,
            "pid": _TRACK_PIDS.get(self.track, 1),
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """Collects spans; thread-safe enough for the harness's use."""

    def __init__(self, t0_ns: int | None = None) -> None:
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._depths: dict[int, int] = {}
        # Trace timestamps are relative to tracer creation so the viewer
        # opens at t=0 rather than at an epoch offset.  Pool workers pass
        # the parent tracer's ``t0_ns`` so their spans land on the parent
        # timeline (``perf_counter_ns`` is CLOCK_MONOTONIC on Linux —
        # shared across processes on one machine).
        if t0_ns is None:
            t0_ns = time.perf_counter_ns()  # lint: allow(wallclock) host-side tracing is a measured surface
        self._t0_ns = int(t0_ns)

    @property
    def t0_ns(self) -> int:
        """The monotonic-clock origin trace timestamps are relative to."""
        return self._t0_ns

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        now_ns = time.perf_counter_ns()  # lint: allow(wallclock) host-side tracing is a measured surface
        return (now_ns - self._t0_ns) / 1e3

    def now_us(self) -> float:
        """Current offset on this tracer's timeline, in microseconds."""
        return self._now_us()

    def splice(self, spans) -> None:
        """Append externally recorded spans (e.g. shipped back from
        ``REPRO_JOBS`` pool workers by :func:`repro.perf.parallel_map`).

        The spans must already be on this tracer's timeline — workers
        achieve that by building their tracer with the parent's
        :attr:`t0_ns`.
        """
        with self._lock:
            self.spans.extend(spans)

    @contextmanager
    def span(self, name: str, cat: str = "", **args):
        """Record one host (wall-clock) span around the ``with`` body."""
        tid = threading.get_ident()
        with self._lock:
            depth = self._depths.get(tid, 0)
            self._depths[tid] = depth + 1
        start = self._now_us()
        try:
            yield self
        finally:
            dur = self._now_us() - start
            record = SpanRecord(
                name=name,
                cat=cat,
                ts_us=start,
                dur_us=dur,
                track=HOST_TRACK,
                tid=tid,
                depth=depth,
                args=dict(args),
            )
            with self._lock:
                self.spans.append(record)
                self._depths[tid] = depth
        return

    def emit(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        cat: str = "",
        track: str = SIM_TRACK,
        **args,
    ) -> None:
        """Record one span with caller-supplied (e.g. simulated) times."""
        record = SpanRecord(
            name=name,
            cat=cat,
            ts_us=float(ts_us),
            dur_us=float(dur_us),
            track=track,
            tid=0,
            depth=0,
            args=dict(args),
        )
        with self._lock:
            self.spans.append(record)

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The full trace document (metadata + events)."""
        events: list[dict] = []
        for track in (HOST_TRACK, SIM_TRACK):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": _TRACK_PIDS[track],
                    "tid": 0,
                    "args": {"name": f"repro:{track}"},
                }
            )
        with self._lock:
            spans = list(self.spans)
        events.extend(s.to_event() for s in spans)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> str:
        """Write the Chrome-trace JSON to ``path``; returns the path."""
        doc = self.to_chrome_trace()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            json.dump(doc, f)
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_TRACER: Tracer | None = None
_TRACE_PATH: str | None = None
_ENV_CHECKED = False

DEFAULT_TRACE_PATH = "repro-trace.json"


def _env_trace_path() -> str | None:
    raw = env_str("REPRO_TRACE")
    if raw in ("", "0"):
        return None
    if raw == "1":
        return DEFAULT_TRACE_PATH
    return raw


def _ensure_env_tracer() -> None:
    """Install a tracer from ``REPRO_TRACE`` on first use (once)."""
    global _ENV_CHECKED, _TRACER, _TRACE_PATH
    if _ENV_CHECKED or _TRACER is not None:
        return
    _ENV_CHECKED = True
    path = _env_trace_path()
    if path is not None:
        _TRACER = Tracer()
        _TRACE_PATH = path
        atexit.register(_export_at_exit)


def _export_at_exit() -> None:
    if _TRACER is not None and _TRACE_PATH is not None and _TRACER.spans:
        try:
            _TRACER.export(_TRACE_PATH)
        except OSError:
            pass


def tracing_enabled() -> bool:
    """True when a tracer is installed (env or :func:`set_tracer`)."""
    _ensure_env_tracer()
    return _TRACER is not None


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is off."""
    _ensure_env_tracer()
    return _TRACER


def set_tracer(tracer: Tracer | None, path: str | None = None) -> None:
    """Install (or, with ``None``, remove) the process tracer.

    Used by tests and by programs that want tracing without environment
    variables.  Re-arms the ``REPRO_TRACE`` check when removing, so a
    later env change is still honored.
    """
    global _TRACER, _TRACE_PATH, _ENV_CHECKED
    _TRACER = tracer
    _TRACE_PATH = path
    _ENV_CHECKED = tracer is not None


def trace_span(name: str, cat: str = "", **args):
    """Context manager recording a host span — a shared no-op when off."""
    tracer = get_tracer()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def trace_emit(
    name: str,
    ts_us: float,
    dur_us: float,
    cat: str = "",
    track: str = SIM_TRACK,
    **args,
) -> None:
    """Record a caller-timed span (no-op when tracing is off)."""
    tracer = get_tracer()
    if tracer is not None:
        tracer.emit(name, ts_us, dur_us, cat, track, **args)


def traced(name: str, cat: str = ""):
    """Decorator: run the wrapped function inside a host span."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace_span(name, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def export_trace(path: str | None = None) -> str | None:
    """Export the active trace; returns the path or ``None`` when off.

    With no explicit ``path`` the ``REPRO_TRACE`` destination is used.
    """
    tracer = get_tracer()
    if tracer is None:
        return None
    target = path or _TRACE_PATH or DEFAULT_TRACE_PATH
    return tracer.export(target)
