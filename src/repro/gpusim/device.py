"""GPU device model: hardware resources, occupancy and wave geometry.

This module captures the quantities the paper's Dynamic Task Partition
technique reasons about (Section III-B, Eqs. 3-4):

* ``ActiveBlocksPerSM`` — Eq. (3): the number of thread blocks an SM can
  host concurrently, limited by warp slots, the register file and shared
  memory.
* ``FullWaveSize`` — Eq. (4): the number of blocks the whole device can
  run concurrently; launches are scheduled in *waves* of this size, and a
  partial final wave under-utilizes the GPU (the *tail effect*).

Device presets mirror the paper's evaluation platforms: Tesla V100,
Tesla A30 and GeForce RTX 3090.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Threads per warp on every modern NVIDIA GPU.
WARP_SIZE = 32


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU.

    All bandwidths are in bytes/second and clocks in Hz so cost formulas
    need no unit conversions.
    """

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    max_warps_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    registers_per_sm: int
    max_registers_per_thread: int
    shared_mem_per_sm: int           # bytes
    shared_mem_per_block_max: int    # bytes
    l2_cache_bytes: int
    l1_line_bytes: int               # L1 cache-line granularity (128 B)
    l2_sector_bytes: int             # L2 sector granularity (32 B)
    dram_bandwidth: float            # bytes / s
    l2_bandwidth: float              # bytes / s
    clock_hz: float
    fp32_lanes_per_sm: int           # FP32 CUDA cores per SM
    issue_slots_per_sm: int          # warp instructions issued per cycle per SM
    tf32_tc_flops: float             # tensor-core TF32 peak FLOP/s (0 if absent)
    kernel_launch_overhead_s: float  # fixed host->device launch latency

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def fma_throughput_per_sm(self) -> float:
        """Warp-wide FP32 FMA instructions retired per cycle per SM."""
        return self.fp32_lanes_per_sm / WARP_SIZE

    @property
    def peak_fp32_flops(self) -> float:
        """Device FP32 peak in FLOP/s (2 FLOPs per FMA lane per cycle)."""
        return 2.0 * self.fp32_lanes_per_sm * self.num_sms * self.clock_hz

    def active_blocks_per_sm(
        self,
        warps_per_block: int,
        registers_per_thread: int,
        shared_mem_per_block: int,
    ) -> int:
        """Paper Eq. (3): concurrent blocks per SM under resource limits.

        Returns at least 0; a configuration that cannot fit at all (e.g.
        more shared memory than the SM owns) yields 0 and the caller must
        treat the launch as invalid.
        """
        if warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        by_warps = self.max_warps_per_sm // warps_per_block
        regs_per_block = registers_per_thread * warps_per_block * WARP_SIZE
        by_regs = (
            self.registers_per_sm // regs_per_block if regs_per_block else by_warps
        )
        by_smem = (
            self.shared_mem_per_sm // shared_mem_per_block
            if shared_mem_per_block
            else self.max_blocks_per_sm
        )
        return max(0, min(by_warps, by_regs, by_smem, self.max_blocks_per_sm))

    def full_wave_size(
        self,
        warps_per_block: int,
        registers_per_thread: int,
        shared_mem_per_block: int,
    ) -> int:
        """Paper Eq. (4): blocks per full scheduling wave on this device."""
        return self.num_sms * self.active_blocks_per_sm(
            warps_per_block, registers_per_thread, shared_mem_per_block
        )

    def with_(self, **kwargs) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: Tesla V100-SXM2 16 GB — the paper's primary platform (CC 7.0, 80 SMs).
TESLA_V100 = DeviceSpec(
    name="Tesla V100",
    compute_capability=(7, 0),
    num_sms=80,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block_max=96 * 1024,
    l2_cache_bytes=6 * 1024 * 1024,
    l1_line_bytes=128,
    l2_sector_bytes=32,
    dram_bandwidth=900e9,
    l2_bandwidth=2_150e9,
    clock_hz=1.38e9,
    fp32_lanes_per_sm=64,
    issue_slots_per_sm=4,
    tf32_tc_flops=0.0,  # V100 tensor cores are FP16-only; TF32 unavailable
    kernel_launch_overhead_s=3.0e-6,
)

#: Tesla A30 24 GB — the paper's second platform (CC 8.0, 56 SMs).
TESLA_A30 = DeviceSpec(
    name="Tesla A30",
    compute_capability=(8, 0),
    num_sms=56,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    shared_mem_per_sm=164 * 1024,
    shared_mem_per_block_max=163 * 1024,
    l2_cache_bytes=24 * 1024 * 1024,
    l1_line_bytes=128,
    l2_sector_bytes=32,
    dram_bandwidth=933e9,
    l2_bandwidth=2_300e9,
    clock_hz=1.44e9,
    fp32_lanes_per_sm=64,
    issue_slots_per_sm=4,
    tf32_tc_flops=82e12,
    kernel_launch_overhead_s=3.0e-6,
)

#: GeForce RTX 3090 — used only for the TC-GNN comparison (Section IV-C).
RTX_3090 = DeviceSpec(
    name="RTX 3090",
    compute_capability=(8, 6),
    num_sms=82,
    max_warps_per_sm=48,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    shared_mem_per_sm=100 * 1024,
    shared_mem_per_block_max=99 * 1024,
    l2_cache_bytes=6 * 1024 * 1024,
    l1_line_bytes=128,
    l2_sector_bytes=32,
    dram_bandwidth=936e9,
    l2_bandwidth=2_000e9,
    clock_hz=1.70e9,
    fp32_lanes_per_sm=128,
    issue_slots_per_sm=4,
    tf32_tc_flops=35.6e12,
    kernel_launch_overhead_s=3.0e-6,
)

#: Registry used by the benchmark harness to select platforms by name.
DEVICES: dict[str, DeviceSpec] = {
    "v100": TESLA_V100,
    "a30": TESLA_A30,
    "rtx3090": RTX_3090,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by case-insensitive short name."""
    key = name.strip().lower().replace(" ", "").replace("tesla", "")
    if key not in DEVICES:
        raise KeyError(f"unknown device {name!r}; choose from {sorted(DEVICES)}")
    return DEVICES[key]
