"""Lint-waiver parsing and auditing, shared by every analysis layer.

A line can waive one rule with a trailing justification comment::

    t0 = time.perf_counter()  # lint: allow(wallclock) measured host pass

PR 2 introduced the syntax; this module (PR 7) tightens the contract:

* a waiver must name a **known** short rule id (the part after the
  ``lint/`` or ``procsafety/`` prefix) — unknown names are
  ``waiver/bad`` errors instead of silently suppressing nothing;
* a waiver must carry a **reason** after the closing paren — a bare
  ``allow(wallclock)`` is a ``waiver/bad`` error;
* a waiver that suppressed no finding of a rule family that actually
  ran is a ``waiver/stale`` error — stale waivers are how bypasses
  outlive the code they excused.

Waivers are collected from real comment tokens (via :mod:`tokenize`),
so waiver examples inside docstrings — like the one at the top of this
docstring — are documentation, not suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .diagnostics import ERROR, Diagnostic

_WAIVER_RE = re.compile(r"lint:\s*allow\(([a-z0-9-]*)\)\s*(.*)")

#: Short rule ids of the determinism linter (:mod:`repro.analysis.lint`).
LINT_RULES = frozenset(
    {"unseeded-rng", "set-iteration", "wallclock", "float32-accum"}
)

#: Short rule ids of the concurrency/resource analyzer
#: (:mod:`repro.analysis.procsafety`).  Kept here (not imported) so the
#: two modules share no import edge; ``tests/test_procsafety.py`` pins
#: the two lists against each other.
PROCSAFETY_RULES = frozenset(
    {
        "thread-before-fork",
        "module-lock-with-fork",
        "tracer-not-restored",
        "leaked-resource-on-error",
        "write-readonly-view",
        "publish-without-cleanup",
        "handle-without-gate",
        "lock-order-cycle",
        "nested-lock-call",
        "blocking-under-lock",
        "env-drift",
    }
)

#: Every waivable short rule id.
KNOWN_RULES = LINT_RULES | PROCSAFETY_RULES


@dataclass
class Waiver:
    """One parsed ``# lint: allow(<rule>) <reason>`` comment."""

    line: int
    rule: str
    reason: str
    used: bool = field(default=False, compare=False)


class WaiverSet:
    """All of one file's waivers, with per-run usage accounting."""

    def __init__(self, waivers: list[Waiver], path: str) -> None:
        self.path = path
        self._by_line: dict[int, list[Waiver]] = {}
        for w in waivers:
            self._by_line.setdefault(w.line, []).append(w)

    def __iter__(self):
        for line in sorted(self._by_line):
            yield from self._by_line[line]

    def __len__(self) -> int:
        return sum(len(ws) for ws in self._by_line.values())

    def suppresses(self, line: int, short_rule: str) -> bool:
        """True when ``line`` carries a valid waiver for ``short_rule``.

        A match is recorded as *used* (feeding stale detection).  Only
        well-formed waivers — known rule id plus a reason — suppress.
        """
        for w in self._by_line.get(line, ()):
            if w.rule == short_rule and w.rule in KNOWN_RULES and w.reason:
                w.used = True
                return True
        return False

    def audit(
        self, active_rules: frozenset[str], *, audit_unknown: bool = True
    ) -> list[Diagnostic]:
        """Bad/stale waiver diagnostics for this run.

        ``active_rules`` is the set of short rule ids the calling layer
        actually checked — a waiver for a rule family that did not run
        cannot be judged stale by this run.  ``audit_unknown`` gates the
        malformed-waiver check so a combined run (lint + procsafety over
        the same files) reports each bad waiver once.
        """
        diags: list[Diagnostic] = []
        for w in self:
            if not w.rule or w.rule not in KNOWN_RULES:
                if audit_unknown:
                    diags.append(
                        Diagnostic(
                            "waiver/bad", ERROR, self.path,
                            f"waiver names unknown rule {w.rule!r}",
                            location=f"line {w.line}",
                            hint=(
                                "waive one known short rule id, e.g. "
                                "`# lint: allow(wallclock) <why>`"
                            ),
                        )
                    )
                continue
            if not w.reason:
                if audit_unknown:
                    diags.append(
                        Diagnostic(
                            "waiver/bad", ERROR, self.path,
                            f"waiver for {w.rule!r} has no justification",
                            location=f"line {w.line}",
                            hint=(
                                "append the reason after the paren: "
                                f"`# lint: allow({w.rule}) <why>`"
                            ),
                        )
                    )
                continue
            if w.rule in active_rules and not w.used:
                diags.append(
                    Diagnostic(
                        "waiver/stale", ERROR, self.path,
                        f"waiver for {w.rule!r} suppresses nothing "
                        f"(the rule no longer fires here)",
                        location=f"line {w.line}",
                        hint="delete the waiver comment",
                    )
                )
        return diags


def collect_waivers(source: str, path: str = "<string>") -> WaiverSet:
    """Parse ``source``'s comment tokens into a :class:`WaiverSet`.

    Only real comments count — a waiver spelled inside a string literal
    or docstring is documentation.  Sources that cannot be tokenized
    (the syntax-error path; ``lint/syntax`` reports those) yield an
    empty set.
    """
    waivers: list[Waiver] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            for m in _WAIVER_RE.finditer(tok.string):
                waivers.append(
                    Waiver(
                        line=tok.start[0],
                        rule=m.group(1),
                        reason=m.group(2).strip(),
                    )
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return WaiverSet([], path)
    return WaiverSet(waivers, path)
