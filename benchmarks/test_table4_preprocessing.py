"""Table IV — preprocessing vs execution of preprocess-based kernels."""

from repro.bench import run_table4, write_report

from conftest import locality_max_edges


def test_table4_preprocessing_comparison(run_once):
    res = run_once(run_table4, k=64, max_edges=locality_max_edges())
    report = res.render()
    print("\n" + report)
    write_report("table4", report)

    for graph in ("corafull", "am", "amazon"):
        hp_exe = res.entry(graph, "hp-spmm", "exe")
        # Preprocessing dominates execution for the analysis-heavy
        # baselines (paper: up to 43x) ...
        for kernel in ("aspt", "sputnik", "huang-ng"):
            pre = res.entry(graph, kernel, "pre")
            exe = res.entry(graph, kernel, "exe")
            assert pre > exe, (graph, kernel)
        # ... while merge-path's binary-search pre-pass is the cheapest.
        mp_pre = res.entry(graph, "merge-path", "pre")
        assert mp_pre < res.entry(graph, "huang-ng", "pre")
        assert mp_pre < res.entry(graph, "aspt", "pre")
        # HP-SpMM executes competitively without any preprocessing.
        best_other_exe = min(
            res.entry(graph, k, "exe")
            for k in ("aspt", "sputnik", "merge-path", "huang-ng")
        )
        assert hp_exe <= best_other_exe * 1.6, graph
