"""Fig. 13 — sensitivity to the feature dimension K (Flickr).

HP-SpMM's throughput stays roughly flat as K grows, while cuSPARSE and
GE-SpMM amortize their per-nonzero overheads and improve — so the
relative speedup shrinks with K.  This is the effect that also caps the
end-to-end gains at large hidden sizes in Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EstimateRequest, default_engine
from ..gpusim import DeviceSpec, TESLA_V100
from .tables import render_table

DEFAULT_KS: tuple[int, ...] = (16, 32, 64, 128, 256, 512)


@dataclass
class Fig13Result:
    """Throughput (GFLOP/s) per kernel per K."""

    graph: str
    ks: list[int]
    gflops: dict[str, list[float]]  #: kernel -> series over ks

    def speedup_series(self, baseline: str) -> list[float]:
        ours = self.gflops["hp-spmm"]
        theirs = self.gflops[baseline]
        return [o / b for o, b in zip(ours, theirs)]

    def render(self) -> str:
        kernels = list(self.gflops)
        rows = []
        for i, k in enumerate(self.ks):
            rows.append([k] + [self.gflops[name][i] for name in kernels])
        table = render_table(
            ["K"] + [f"{n} (GFLOP/s)" for n in kernels],
            rows,
            title=f"Fig. 13 — throughput vs K on {self.graph}",
            floatfmt=".1f",
        )
        lines = [table]
        for b in kernels:
            if b == "hp-spmm":
                continue
            s = self.speedup_series(b)
            lines.append(
                f"speedup over {b}: "
                + " -> ".join(f"{x:.2f}x" for x in s)
            )
        return "\n".join(lines)


def run_fig13(
    *,
    graph: str = "flickr",
    ks: tuple[int, ...] = DEFAULT_KS,
    device: DeviceSpec = TESLA_V100,
    kernels: tuple[str, ...] = ("hp-spmm", "cusparse-csr-alg2", "ge-spmm"),
    max_edges: int | None = None,
) -> Fig13Result:
    """Run the K-sensitivity experiment."""
    # One engine batch, K-outer / kernels-inner: every request shares
    # the graph, so the plan stage loads it once for the whole series.
    requests = [
        EstimateRequest(
            op="spmm", kernel=name, graph=graph, k=k,
            device=device, max_edges=max_edges,
        )
        for k in ks
        for name in kernels
    ]
    batch = default_engine().estimate_batch(requests)
    gflops: dict[str, list[float]] = {name: [] for name in kernels}
    for res in batch:
        gflops[res.request.kernel].append(res.gflops)
    return Fig13Result(graph=graph, ks=list(ks), gflops=gflops)
