"""Layer-3 concurrency/lifecycle analyzer: per-rule behavior + invariants.

Every rule family gets a positive (the adversarial fixture corpus, each
file violating exactly one rule) and an idiomatic negative it must leave
alone.  The final tests pin the two repo invariants CI gates on:
``src/repro`` scans clean, and every fixture still trips.
"""

import os

import pytest

from repro.analysis import (
    default_lint_root,
    procsafety_fixture_files,
    procsafety_paths,
    procsafety_source,
)
from repro.analysis.lint import LINT_RULES as _LINT_RULES_EXPORTED
from repro.analysis.waivers import (
    KNOWN_RULES,
    LINT_RULES,
    PROCSAFETY_RULES,
    collect_waivers,
)

pytestmark = pytest.mark.analysis


def _rules(source, **kw):
    return [d.rule for d in procsafety_source(source, **kw)]


# -- the adversarial corpus: one fixture per rule family ------------------

#: fixture basename -> the single rule it must (and may only) trigger.
EXPECTED_FIXTURE_RULES = {
    "fork_thread_before_fork.py": "procsafety/thread-before-fork",
    "fork_module_lock.py": "procsafety/module-lock-with-fork",
    "fork_tracer_unrestored.py": "procsafety/tracer-not-restored",
    "store_leaked_handle.py": "procsafety/leaked-resource-on-error",
    "store_write_readonly.py": "procsafety/write-readonly-view",
    "store_publish_no_cleanup.py": "procsafety/publish-without-cleanup",
    "store_handle_no_gate.py": "procsafety/handle-without-gate",
    "lock_order_cycle.py": "procsafety/lock-order-cycle",
    "lock_nested_call.py": "procsafety/nested-lock-call",
    "lock_blocking_call.py": "procsafety/blocking-under-lock",
    "env_undeclared.py": "procsafety/env-drift",
    "waiver_bad.py": "waiver/bad",
    "waiver_stale.py": "waiver/stale",
}


def test_fixture_corpus_is_complete():
    names = sorted(os.path.basename(p) for p in procsafety_fixture_files())
    assert names == sorted(EXPECTED_FIXTURE_RULES)


@pytest.mark.parametrize(
    "path", procsafety_fixture_files(), ids=os.path.basename
)
def test_each_fixture_flags_exactly_its_rule(path):
    with open(path, encoding="utf-8") as fh:
        diags = procsafety_source(fh.read(), path=path)
    expected = EXPECTED_FIXTURE_RULES[os.path.basename(path)]
    assert {d.rule for d in diags} == {expected}, [d.render() for d in diags]
    assert all(d.severity == "error" for d in diags)
    assert all(d.hint for d in diags), "every procsafety rule carries a hint"


def test_fixtures_are_import_safe():
    """Fixtures are data, not live hazards: importing them is a no-op."""
    import importlib

    for path in procsafety_fixture_files():
        name = os.path.basename(path)[:-3]
        importlib.import_module(f"repro.analysis.fixtures.procsafety.{name}")


# -- negatives: idiomatic spellings each family must leave alone ----------

def test_single_lock_discipline_is_clean():
    src = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.n += 1\n"
        "        print(self.n)\n"
    )
    assert _rules(src) == []


def test_consistent_two_lock_order_is_clean():
    src = (
        "import threading\n"
        "class Pair:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "    def one(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
        "    def two(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
    )
    assert _rules(src) == []


def test_blocking_call_outside_lock_is_clean():
    src = (
        "import os\n"
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.paths = []\n"
        "    def drop(self, path):\n"
        "        with self._lock:\n"
        "            self.paths.remove(path)\n"
        "        os.remove(path)\n"
    )
    assert _rules(src) == []


def test_declared_env_reads_are_clean():
    src = (
        "import os\n"
        "def jobs():\n"
        "    return os.environ.get('REPRO_JOBS', '1')\n"
        "def trace():\n"
        "    return os.getenv('REPRO_TRACE', '')\n"
    )
    assert _rules(src) == []


def test_undeclared_env_read_flagged_through_every_accessor():
    for read in (
        "os.environ['REPRO_BOGUS_KNOB']",
        "os.environ.get('REPRO_BOGUS_KNOB', '')",
        "os.getenv('REPRO_BOGUS_KNOB')",
    ):
        src = f"import os\ndef f():\n    return {read}\n"
        assert _rules(src) == ["procsafety/env-drift"], read


def test_checked_helper_with_undeclared_name_flagged():
    src = (
        "from repro.config import env_str\n"
        "def f():\n"
        "    return env_str('REPRO_BOGUS_KNOB')\n"
    )
    assert _rules(src) == ["procsafety/env-drift"]


def test_tracer_set_and_restored_is_clean():
    src = (
        "from repro.obs.tracer import Tracer, get_tracer, set_tracer\n"
        "def worker(t0_ns):\n"
        "    prev = get_tracer()\n"
        "    set_tracer(Tracer(t0_ns=t0_ns))\n"
        "    try:\n"
        "        run()\n"
        "    finally:\n"
        "        set_tracer(prev)\n"
    )
    assert _rules(src) == []


def test_open_as_last_statement_of_try_is_clean():
    src = (
        "def attach(path):\n"
        "    try:\n"
        "        f = open(path, 'rb')\n"
        "    except OSError:\n"
        "        raise RuntimeError(path)\n"
        "    return f\n"
    )
    assert _rules(src) == []


def test_leaked_handle_closed_in_handler_is_clean():
    src = (
        "import mmap\n"
        "def attach(path):\n"
        "    try:\n"
        "        f = open(path, 'rb')\n"
        "        mm = mmap.mmap(f.fileno(), 0)\n"
        "    except OSError:\n"
        "        f.close()\n"
        "        raise\n"
        "    return f, mm\n"
    )
    assert _rules(src) == []


def test_publish_gated_on_ships_work_is_clean():
    src = (
        "def plan(self, store, matrix):\n"
        "    if getattr(self.executor, 'ships_work', False):\n"
        "        return store.publish(matrix)\n"
        "    return matrix\n"
    )
    assert _rules(src) == []


def test_syntax_error_reported_not_raised():
    assert _rules("def broken(:\n") == ["procsafety/syntax"]


# -- waiver mechanics -----------------------------------------------------

def test_justified_waiver_suppresses_and_is_not_stale():
    src = (
        "import os\n"
        "def f():\n"
        "    return os.getenv('REPRO_BOGUS_KNOB')"
        "  # lint: allow(env-drift) negative-control knob\n"
    )
    assert _rules(src) == []


def test_waiver_missing_reason_is_bad_and_does_not_suppress():
    src = (
        "import os\n"
        "def f():\n"
        "    return os.getenv('REPRO_BOGUS_KNOB')  # lint: allow(env-drift)\n"
    )
    assert sorted(_rules(src)) == ["procsafety/env-drift", "waiver/bad"]


def test_waiver_for_unknown_rule_is_bad():
    src = "x = 1  # lint: allow(not-a-rule) because reasons\n"
    assert _rules(src) == ["waiver/bad"]
    # ... unless the caller says the lint layer already reported it.
    assert _rules(src, audit_unknown=False) == []


def test_waiver_in_docstring_is_documentation_not_a_waiver():
    src = (
        '"""Example: waive with ``# lint: allow(env-drift) why``."""\n'
        "x = 1\n"
    )
    assert list(collect_waivers(src, "<doc>")) == []
    assert _rules(src) == []


def test_rule_registries_are_consistent():
    assert LINT_RULES is _LINT_RULES_EXPORTED
    assert KNOWN_RULES == LINT_RULES | PROCSAFETY_RULES
    assert not (LINT_RULES & PROCSAFETY_RULES)
    shorts = {
        rule.split("/", 1)[1]
        for rule in EXPECTED_FIXTURE_RULES.values()
        if rule.startswith("procsafety/")
    }
    assert shorts == PROCSAFETY_RULES


# -- repo invariants ------------------------------------------------------

def test_repo_source_tree_scans_clean():
    """The CI invariant: src/repro has zero procsafety findings."""
    diags, nfiles = procsafety_paths([default_lint_root()])
    assert nfiles > 50
    assert diags == [], "\n".join(d.render() for d in diags)


def test_fixture_corpus_excluded_from_tree_walks():
    diags, nfiles = procsafety_paths([default_lint_root()])
    fixture_names = {os.path.basename(p) for p in procsafety_fixture_files()}
    assert fixture_names, "corpus must not be empty"
    assert not any(
        os.path.basename(d.subject) in fixture_names for d in diags
    )
